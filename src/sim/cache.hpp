/**
 * @file
 * Set-associative cache model with MSHR-limited miss handling, prefetch
 * issue/fill tracking and pluggable replacement, composed into the
 * three-level hierarchy of the paper's simulated system (Table 5).
 *
 * Timing is resolved analytically: an access returns the cycle at which
 * its data is available. Blocks inserted on a miss carry their fill
 * completion time, so later accesses to in-flight lines naturally model
 * MSHR merging and *late* prefetches (the R_AL case of Pythia's reward
 * scheme).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/prefetcher_api.hpp"
#include "sim/replacement.hpp"

namespace pythia::sim {

class Dram;

/** One memory request travelling through the hierarchy. */
struct MemAccess
{
    Addr pc = 0;
    Addr block = 0;      ///< cacheline-granular address
    AccessType type = AccessType::Load;
    Cycle at = 0;        ///< issue cycle
    std::uint32_t core = 0;
};

/** Anything a cache can forward misses to (another cache or DRAM). */
class MemoryLevel
{
  public:
    virtual ~MemoryLevel() = default;

    /** Handle @p req; return the data-available cycle. */
    virtual Cycle access(const MemAccess& req) = 0;

    /** Level name for stats dumps. */
    virtual const std::string& levelName() const = 0;
};

/** Adapter presenting Dram as the terminal MemoryLevel. */
class DramLevel : public MemoryLevel
{
  public:
    explicit DramLevel(Dram& dram) : dram_(dram) {}
    Cycle access(const MemAccess& req) override;
    const std::string& levelName() const override { return name_; }

  private:
    Dram& dram_;
    std::string name_ = "dram";
};

/** Cache geometry and timing parameters. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t ways = 8;
    Cycle lookup_latency = 4;   ///< added before hit return / miss forward
    std::uint32_t mshrs = 16;
    std::string replacement = "lru";
    std::uint32_t max_prefetches_per_access = 32;
};

/**
 * A single cache level.
 *
 * A prefetcher may be attached with setPrefetcher(); it is trained on
 * every demand access reaching this level (for an L2 prefetcher this is
 * exactly the stream of L1 misses, matching the paper's §5.2 methodology)
 * and its candidates are issued from this level with a configurable fill
 * level (this cache, or next level only).
 */
class Cache : public MemoryLevel
{
  public:
    Cache(const CacheConfig& cfg, MemoryLevel& next);

    Cycle access(const MemAccess& req) override;
    const std::string& levelName() const override { return cfg_.name; }

    /** Attach (or detach with nullptr) the prefetcher for this level. */
    void setPrefetcher(PrefetcherApi* pf) { prefetcher_ = pf; }

    /** The attached prefetcher (may be nullptr). */
    PrefetcherApi* prefetcher() const { return prefetcher_; }

    /** True when @p block currently resides (or is in flight) here. */
    bool contains(Addr block) const;

    /** Statistic counters for this level. */
    const StatGroup& stats() const { return stats_; }
    StatGroup& stats() { return stats_; }

    /** Zero the statistics (keeps cache contents — used after warmup). */
    void resetStats() { stats_.reset(); }

    /** Invalidate all contents and reset statistics. */
    void flush();

    /** Number of sets. */
    std::uint32_t numSets() const { return sets_; }

    const CacheConfig& config() const { return cfg_; }

    /** Serialize contents, in-flight misses, replacement state and
     *  statistics (snapshot subsystem). The attached prefetcher is NOT
     *  included — it serializes through its own section. */
    void saveState(snap::Writer& w) const;

    /** Restore a saveState() image taken from a cache of identical
     *  geometry. @throws snap::CorruptError on shape mismatch. */
    void loadState(snap::Reader& r);

  private:
    struct Block
    {
        Addr addr = 0;  ///< full cacheline address (tag + index)
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        bool used = false;    ///< prefetched block later hit by a demand
        bool reused = false;  ///< any demand hit during residency
        Cycle fill_time = 0;  ///< when the data actually arrives
    };

    std::uint32_t setOf(Addr block) const;

    /** tags_ value of an invalid way. Block addresses are cacheline
     *  numbers (address >> 6, plus a per-core offset in bits 46+), so
     *  all-ones cannot collide with a real block. */
    static constexpr Addr kInvalidTag = ~static_cast<Addr>(0);

    /** Way-scan of the set at @p base for @p block; null on miss. The
     *  one tag-match loop both findBlock() and access() use. Scans the
     *  contiguous tag array (DESIGN.md §10) — one cache line per
     *  8-way set — instead of striding through Block records. */
    Block* findBlockAt(std::size_t base, Addr block);

    Block* findBlock(Addr block);
    const Block* findBlock(Addr block) const;

    /** Pop the smallest completion time off the in-flight min-heap. */
    void popInflight();

    /** Apply MSHR occupancy: may delay @p t until a slot frees up. */
    Cycle reserveMshr(Cycle t);

    /** Insert @p block; evicts as needed. Returns the block slot. */
    Block& insertBlock(const MemAccess& req, Cycle fill_time);

    void issuePrefetches(const PrefetchAccess& acc,
                         std::vector<PrefetchRequest>& candidates);

    /** Re-derive tags_ from blocks_ (flush / loadState). */
    void rebuildTags();

    // Devirtualized replacement dispatch: the factory returns one of
    // two concrete policies; branching on a cached downcast lets the
    // per-access hooks inline instead of going through the vtable.
    void replOnHit(std::uint32_t set, std::uint32_t way,
                   const ReplAccess& ctx)
    {
        if (lru_)
            lru_->onHit(set, way, ctx);
        else if (ship_)
            ship_->onHit(set, way, ctx);
        else
            repl_->onHit(set, way, ctx);
    }
    void replOnInsert(std::uint32_t set, std::uint32_t way,
                      const ReplAccess& ctx)
    {
        if (lru_)
            lru_->onInsert(set, way, ctx);
        else if (ship_)
            ship_->onInsert(set, way, ctx);
        else
            repl_->onInsert(set, way, ctx);
    }
    void replOnEvict(std::uint32_t set, std::uint32_t way, bool reused)
    {
        if (lru_)
            lru_->onEvict(set, way, reused);
        else if (ship_)
            ship_->onEvict(set, way, reused);
        else
            repl_->onEvict(set, way, reused);
    }
    std::uint32_t replVictim(std::uint32_t set)
    {
        if (lru_)
            return lru_->victim(set);
        if (ship_)
            return ship_->victim(set);
        return repl_->victim(set);
    }

    CacheConfig cfg_;
    MemoryLevel& next_;
    std::uint32_t sets_;
    bool pow2_sets_;         ///< enables mask indexing in setOf
    std::uint32_t set_mask_; ///< sets_ - 1 when pow2_sets_
    std::vector<Block> blocks_;
    /** blocks_[i].addr for valid ways, kInvalidTag otherwise — the
     *  structure-of-arrays mirror the tag scans read. */
    std::vector<Addr> tags_;
    std::unique_ptr<ReplacementPolicy> repl_;
    LruPolicy* lru_ = nullptr;   ///< repl_ downcast when kind == lru
    ShipPolicy* ship_ = nullptr; ///< repl_ downcast when kind == ship
    /** Completion times of pending misses, as a min-heap (only the
     *  earliest completion is ever consumed). */
    std::vector<Cycle> inflight_;
    PrefetcherApi* prefetcher_ = nullptr;
    std::vector<PrefetchRequest> scratch_candidates_;
    StatGroup stats_;

    /** Per-access counters, resolved once (see StatGroup::counterSlot). */
    struct HotCounters
    {
        std::uint64_t* demand_load_access;
        std::uint64_t* demand_store_access;
        std::uint64_t* demand_load_miss;
        std::uint64_t* demand_store_miss;
        std::uint64_t* read_miss_total;
        std::uint64_t* mshr_stalls;
        std::uint64_t* evictions;
        std::uint64_t* writebacks;
        std::uint64_t* prefetch_useless;
        std::uint64_t* prefetch_dropped;
        std::uint64_t* prefetch_bad_fill_level;
        std::uint64_t* prefetch_issued;
        std::uint64_t* prefetch_issued_next_level;
        std::uint64_t* prefetch_useful_timely;
        std::uint64_t* prefetch_useful_late;
    } hot_;
};

} // namespace pythia::sim
