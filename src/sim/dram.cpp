#include "sim/dram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/hashing.hpp"
#include "snapshot/codec.hpp"

namespace pythia::sim {

Dram::Dram(const DramConfig& cfg)
    : cfg_(cfg), stats_("dram"),
      c_row_hits_(stats_.counterSlot("row_hits")),
      c_row_misses_(stats_.counterSlot("row_misses")),
      c_bus_busy_cycles_(stats_.counterSlot("bus_busy_cycles")),
      c_reads_(stats_.counterSlot("reads")),
      c_writes_(stats_.counterSlot("writes"))
{
    assert(cfg_.channels > 0 && cfg_.banks_per_rank > 0);
    assert(cfg_.mtps > 0);
    const double ns_per_cycle = 1000.0 / cfg_.core_mhz;
    t_rcd_ = static_cast<Cycle>(std::ceil(cfg_.t_rcd_ns / ns_per_cycle));
    t_rp_ = static_cast<Cycle>(std::ceil(cfg_.t_rp_ns / ns_per_cycle));
    t_cas_ = static_cast<Cycle>(std::ceil(cfg_.t_cas_ns / ns_per_cycle));

    // A 64B line needs kBlockSize / bus_bytes transfers; each transfer
    // takes core_mhz / mtps core cycles (MTPS counts bus transfers).
    const double transfers =
        static_cast<double>(kBlockSize) / cfg_.bus_bytes_per_transfer;
    const double cycles_per_transfer =
        static_cast<double>(cfg_.core_mhz) / cfg_.mtps;
    line_transfer_cycles_ = std::max<Cycle>(
        1, static_cast<Cycle>(std::llround(transfers * cycles_per_transfer)));

    banks_.resize(static_cast<std::size_t>(cfg_.channels) *
                  cfg_.ranks_per_channel * cfg_.banks_per_rank);
    bus_next_free_.assign(cfg_.channels, 0);

    // Address-mapping strength reduction: the default geometry is all
    // powers of two, so the per-access channel/bank/row arithmetic
    // reduces to masks and shifts (identical values — unsigned x % 2^k
    // == x & (2^k - 1), and division by a power of two is a shift).
    const auto pow2 = [](std::uint64_t v) {
        return v > 0 && (v & (v - 1)) == 0;
    };
    const auto log2of = [](std::uint64_t v) {
        std::uint32_t s = 0;
        while ((v >>= 1) != 0)
            ++s;
        return s;
    };
    const std::uint32_t bpc = cfg_.ranks_per_channel * cfg_.banks_per_rank;
    ch_mask_ = pow2(cfg_.channels) ? cfg_.channels - 1 : 0;
    ch_pow2_ = pow2(cfg_.channels);
    bank_mask_ = pow2(bpc) ? bpc - 1 : 0;
    bank_pow2_ = pow2(bpc);
    row_pow2_ = pow2(cfg_.row_bytes) && pow2(bpc) &&
                cfg_.row_bytes >= kBlockSize;
    row_shift_ = row_pow2_ ? log2of(cfg_.row_bytes) - kBlockShift +
                                 log2of(bpc)
                           : 0;
}

void
Dram::advanceEpoch(Cycle now)
{
    while (now >= epoch_start_ + cfg_.monitor_epoch) {
        // Exponentially-weighted estimate: reacts within a couple of
        // epochs but does not flap on one quiet epoch.
        const double epoch_util = std::min(
            1.0, static_cast<double>(busy_in_epoch_) / cfg_.monitor_epoch);
        util_ = 0.5 * util_ + 0.5 * epoch_util;
        int bucket;
        if (util_ < 0.25)
            bucket = 0;
        else if (util_ < 0.50)
            bucket = 1;
        else if (util_ < 0.75)
            bucket = 2;
        else
            bucket = 3;
        ++bucket_epochs_[bucket];
        busy_in_epoch_ = 0;
        epoch_start_ += cfg_.monitor_epoch;
    }
}

Cycle
Dram::access(Addr block, Cycle at, bool is_write)
{
    advanceEpoch(at);

    const std::uint64_t line = block;
    const std::uint32_t channel = static_cast<std::uint32_t>(
        ch_pow2_ ? (mix64(line >> 1) & ch_mask_)
                 : (mix64(line >> 1) % cfg_.channels));
    const std::uint32_t banks_per_channel =
        cfg_.ranks_per_channel * cfg_.banks_per_rank;
    const std::uint32_t bank_in_channel = static_cast<std::uint32_t>(
        bank_pow2_ ? ((line >> 5) & bank_mask_)
                   : ((line >> 5) % banks_per_channel));
    Bank& bank = banks_[static_cast<std::size_t>(channel) *
                            banks_per_channel + bank_in_channel];

    const std::uint64_t row =
        row_pow2_ ? (line >> row_shift_)
                  : (line << kBlockShift) / cfg_.row_bytes /
                        banks_per_channel;

    const Cycle start = std::max(at, bank.next_free);
    Cycle access_lat;
    if (bank.open_row == row) {
        access_lat = t_cas_;
        // Row hits pipeline: the bank accepts the next CAS after one
        // transfer slot even though this access's data arrives at tCAS.
        bank.next_free = start + line_transfer_cycles_;
        ++*c_row_hits_;
    } else {
        access_lat = t_rp_ + t_rcd_ + t_cas_;
        bank.open_row = row;
        // Activating a new row occupies the bank for precharge+activate.
        bank.next_free = start + t_rp_ + t_rcd_ + line_transfer_cycles_;
        ++*c_row_misses_;
    }
    const Cycle bank_done = start + access_lat;

    // Serialize the line transfer on the channel's data bus.
    Cycle& bus = bus_next_free_[channel];
    const Cycle bus_start = std::max(bank_done, bus);
    const Cycle done = bus_start + line_transfer_cycles_;
    bus = done;

    busy_in_epoch_ += line_transfer_cycles_;
    *c_bus_busy_cycles_ += line_transfer_cycles_;
    ++*(is_write ? c_writes_ : c_reads_);
    return done;
}

std::vector<double>
Dram::utilizationBuckets() const
{
    std::uint64_t total = 0;
    for (auto b : bucket_epochs_)
        total += b;
    std::vector<double> out(4, 0.0);
    if (total == 0)
        return out;
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<double>(bucket_epochs_[i]) / total;
    return out;
}

void
Dram::resetStats()
{
    stats_.reset();
    for (auto& b : bucket_epochs_)
        b = 0;
}

void
Dram::saveState(snap::Writer& w) const
{
    w.u64(banks_.size());
    for (const Bank& b : banks_) {
        w.u64(b.next_free);
        w.u64(b.open_row);
    }
    w.vecU64(bus_next_free_);
    w.u64(epoch_start_);
    w.u64(busy_in_epoch_);
    w.f64(util_);
    for (std::uint64_t b : bucket_epochs_)
        w.u64(b);
    stats_.saveState(w);
}

void
Dram::loadState(snap::Reader& r)
{
    const std::uint64_t n_banks = r.u64();
    if (n_banks != banks_.size())
        throw snap::CorruptError(
            "snapshot corrupt: dram has " + std::to_string(n_banks) +
            " banks but this configuration has " +
            std::to_string(banks_.size()));
    for (Bank& b : banks_) {
        b.next_free = r.u64();
        b.open_row = r.u64();
    }
    std::vector<Cycle> bus = r.vecU64();
    if (bus.size() != bus_next_free_.size())
        throw snap::CorruptError(
            "snapshot corrupt: dram has " + std::to_string(bus.size()) +
            " channels but this configuration has " +
            std::to_string(bus_next_free_.size()));
    bus_next_free_ = std::move(bus);
    epoch_start_ = r.u64();
    busy_in_epoch_ = r.u64();
    util_ = r.f64();
    for (auto& b : bucket_epochs_)
        b = r.u64();
    stats_.loadState(r);
}

} // namespace pythia::sim
