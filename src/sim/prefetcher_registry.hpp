/**
 * @file
 * Self-registering prefetcher construction API.
 *
 * Every prefetcher translation unit drops a static PrefetcherRegistrar
 * into the registry at load time, declaring its name, its tunable
 * parameter keys and a factory from PrefetcherParams. Construction goes
 * through parameterized spec strings (common/spec.hpp):
 *
 *     sim::makePrefetcher("spp")
 *     sim::makePrefetcher("spp:max_lookahead=4")
 *     sim::makePrefetcher("pythia:alpha=0.006,gamma=0.55")
 *     sim::makePrefetcher("stride+spp+bingo")   // composite
 *
 * replacing the former hard-coded factory if-chains (pf::makeBaseline
 * and harness::makePrefetcher). Errors carry "did you mean" hints for
 * misspelled prefetcher or parameter names.
 *
 * This is the customization surface the paper argues for (§6.6): any
 * prefetcher's knobs can be retuned per run, with no recompilation.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/params.hpp"
#include "sim/prefetcher_api.hpp"

namespace pythia::sim {

/** Typed view over the key=value parameters of one spec part — the
 *  shared pythia::SpecParams (common/params.hpp), which also serves the
 *  workload registry. */
using PrefetcherParams = SpecParams;

/** Factory from parsed parameters to a live prefetcher. */
using PrefetcherFactory =
    std::function<std::unique_ptr<PrefetcherApi>(const PrefetcherParams&)>;

/** One registry entry. */
struct PrefetcherEntry
{
    std::string name;        ///< spec name (lowercase)
    std::string description; ///< one-line help text
    /** Parameter keys the factory accepts; anything else is rejected
     *  with a did-you-mean hint before the factory runs. */
    std::vector<std::string> param_keys;
    PrefetcherFactory factory;
};

/**
 * Process-wide prefetcher registry. Populated by static registrars; the
 * composition hook (building one prefetcher out of several) is itself
 * installed by the composite prefetcher's translation unit, so this
 * layer never depends on any concrete prefetcher.
 *
 * Thread-safe: registration happens during static initialization
 * (before main, single-threaded), but make()/names()/find() are called
 * from sweep worker threads and take a shared lock, so late add() calls
 * (e.g. a test registering a fixture prefetcher) cannot race them.
 * Pointers returned by find() stay valid for the process lifetime —
 * entries are never removed.
 */
class PrefetcherRegistry
{
  public:
    using Composer = std::function<std::unique_ptr<PrefetcherApi>(
        std::string name,
        std::vector<std::unique_ptr<PrefetcherApi>> children)>;

    static PrefetcherRegistry& instance();

    /** Register an entry. @throws std::logic_error on duplicate names. */
    void add(PrefetcherEntry entry);

    /** Install the composition hook for "a+b" specs. */
    void setComposer(Composer composer);

    /**
     * Resolve @p spec (see common/spec.hpp for the grammar) into a
     * prefetcher. Returns nullptr for "none" or an empty spec.
     * @throws std::invalid_argument for unknown names, unknown or
     * ill-typed parameters and malformed specs, with actionable
     * messages ("did you mean").
     */
    std::unique_ptr<PrefetcherApi> make(const std::string& spec) const;

    /** All registered names, sorted (excludes "none"). */
    std::vector<std::string> names() const;

    /** Entry for @p name, or nullptr when unknown. */
    const PrefetcherEntry* find(const std::string& name) const;

  private:
    PrefetcherRegistry() = default;

    /** Lock-free lookups for callers already holding @c mutex_. */
    const PrefetcherEntry* findLocked(const std::string& name) const;
    std::vector<std::string> namesLocked() const;

    mutable std::shared_mutex mutex_;
    std::map<std::string, PrefetcherEntry> entries_;
    Composer composer_;
};

/** Static registrar: file-scope instances self-register a prefetcher. */
struct PrefetcherRegistrar
{
    PrefetcherRegistrar(std::string name, std::string description,
                        std::vector<std::string> param_keys,
                        PrefetcherFactory factory)
    {
        PrefetcherRegistry::instance().add(
            {std::move(name), std::move(description),
             std::move(param_keys), std::move(factory)});
    }
};

/** Static registrar for the composition hook. */
struct PrefetcherComposerRegistrar
{
    explicit PrefetcherComposerRegistrar(PrefetcherRegistry::Composer c)
    {
        PrefetcherRegistry::instance().setComposer(std::move(c));
    }
};

/** The one construction entry point: resolve a spec string. */
std::unique_ptr<PrefetcherApi> makePrefetcher(const std::string& spec);

/** All registered prefetcher names, sorted (excluding "none"). */
std::vector<std::string> prefetcherNames();

} // namespace pythia::sim
