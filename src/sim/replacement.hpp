/**
 * @file
 * Cache replacement policies: LRU for the private levels and SHiP
 * (Signature-based Hit Predictor, Wu+ MICRO'11) for the LLC, matching the
 * simulated system of the paper (Table 5).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia::sim {

/** Per-access context handed to the replacement policy. */
struct ReplAccess
{
    Addr pc = 0;         ///< requesting PC (SHiP signature source)
    bool is_prefetch = false; ///< insertion caused by a prefetch
};

/**
 * Replacement policy driving victim selection within one cache.
 *
 * The cache identifies lines by (set, way); the policy keeps whatever
 * per-line state it needs, sized at construction.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Select the victim way in @p set among @p ways ways. Invalid ways are
     *  chosen by the cache itself before the policy is consulted. */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** A line was inserted at (set, way). */
    virtual void onInsert(std::uint32_t set, std::uint32_t way,
                          const ReplAccess& ctx) = 0;

    /** A line at (set, way) was hit by a demand access. */
    virtual void onHit(std::uint32_t set, std::uint32_t way,
                       const ReplAccess& ctx) = 0;

    /** A line at (set, way) was evicted; @p was_reused tells whether any
     *  demand hit it during residency. */
    virtual void onEvict(std::uint32_t set, std::uint32_t way,
                         bool was_reused) = 0;

    /** Policy display name. */
    virtual const std::string& name() const = 0;

    /** Serialize all victim-selection state (snapshot subsystem). */
    virtual void saveState(snap::Writer& w) const = 0;

    /** Restore a saveState() image taken from a policy of the same kind
     *  and geometry. @throws snap::CorruptError on mismatch. */
    virtual void loadState(snap::Reader& r) = 0;
};

/** Classic least-recently-used stack implemented with a global timestamp.
 *  final: Cache dispatches to the concrete type through a downcast
 *  pointer, and finality is what lets those calls devirtualize. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways);

    std::uint32_t victim(std::uint32_t set) override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const ReplAccess& ctx) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const ReplAccess& ctx) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 bool was_reused) override;
    const std::string& name() const override { return name_; }
    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

  private:
    void touch(std::uint32_t set, std::uint32_t way);

    std::string name_ = "lru";
    std::uint32_t ways_;
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> stamp_; ///< sets*ways timestamps
};

/**
 * SHiP: RRIP-based replacement with a signature history counter table.
 *
 * Insertions predicted dead by their PC signature enter at distant RRPV;
 * reused signatures train toward near re-reference. Prefetch insertions
 * are inserted at distant RRPV (standard SHiP practice), which matters for
 * pollution behaviour under aggressive prefetchers.
 */
class ShipPolicy final : public ReplacementPolicy
{
  public:
    ShipPolicy(std::uint32_t sets, std::uint32_t ways,
               std::uint32_t shct_entries = 16384);

    std::uint32_t victim(std::uint32_t set) override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const ReplAccess& ctx) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const ReplAccess& ctx) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 bool was_reused) override;
    const std::string& name() const override { return name_; }
    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

  private:
    static constexpr std::uint8_t kMaxRrpv = 3;
    static constexpr std::uint8_t kShctMax = 7;

    std::uint32_t signatureOf(Addr pc) const;

    std::string name_ = "ship";
    std::uint32_t ways_;
    std::uint32_t shct_mask_;
    std::vector<std::uint8_t> rrpv_;      ///< sets*ways
    std::vector<std::uint32_t> line_sig_; ///< sets*ways signatures
    std::vector<std::uint8_t> shct_;      ///< signature hit counters
};

/** Factory: "lru" or "ship". @throws std::invalid_argument otherwise. */
std::unique_ptr<ReplacementPolicy>
makeReplacement(const std::string& kind, std::uint32_t sets,
                std::uint32_t ways);

} // namespace pythia::sim
