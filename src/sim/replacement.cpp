#include "sim/replacement.hpp"

#include <cassert>
#include <stdexcept>

#include "common/hashing.hpp"

namespace pythia::sim {

// ---------------------------------------------------------------------------
// LruPolicy

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways), stamp_(static_cast<std::size_t>(sets) * ways, 0)
{
    assert(sets > 0 && ways > 0);
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

std::uint32_t
LruPolicy::victim(std::uint32_t set)
{
    std::uint32_t victim_way = 0;
    std::uint64_t oldest = ~0ull;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const std::uint64_t s =
            stamp_[static_cast<std::size_t>(set) * ways_ + w];
        if (s < oldest) {
            oldest = s;
            victim_way = w;
        }
    }
    return victim_way;
}

void
LruPolicy::onInsert(std::uint32_t set, std::uint32_t way, const ReplAccess&)
{
    touch(set, way);
}

void
LruPolicy::onHit(std::uint32_t set, std::uint32_t way, const ReplAccess&)
{
    touch(set, way);
}

void
LruPolicy::onEvict(std::uint32_t, std::uint32_t, bool)
{
}

// ---------------------------------------------------------------------------
// ShipPolicy

ShipPolicy::ShipPolicy(std::uint32_t sets, std::uint32_t ways,
                       std::uint32_t shct_entries)
    : ways_(ways), shct_mask_(shct_entries - 1),
      rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv),
      line_sig_(static_cast<std::size_t>(sets) * ways, 0),
      shct_(shct_entries, 1)
{
    assert((shct_entries & (shct_entries - 1)) == 0 &&
           "SHCT size must be a power of two");
}

std::uint32_t
ShipPolicy::signatureOf(Addr pc) const
{
    return static_cast<std::uint32_t>(mix64(pc)) & shct_mask_;
}

std::uint32_t
ShipPolicy::victim(std::uint32_t set)
{
    // Standard RRIP victim search: find RRPV==max, aging all on failure.
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w)
            if (rrpv_[base + w] == kMaxRrpv)
                return w;
        for (std::uint32_t w = 0; w < ways_; ++w)
            ++rrpv_[base + w];
    }
}

void
ShipPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                     const ReplAccess& ctx)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const std::uint32_t sig = signatureOf(ctx.pc);
    line_sig_[idx] = sig;
    if (ctx.is_prefetch) {
        rrpv_[idx] = kMaxRrpv; // prefetches inserted dead-on-arrival
    } else {
        rrpv_[idx] = (shct_[sig] == 0) ? kMaxRrpv : kMaxRrpv - 1;
    }
}

void
ShipPolicy::onHit(std::uint32_t set, std::uint32_t way, const ReplAccess&)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

void
ShipPolicy::onEvict(std::uint32_t set, std::uint32_t way, bool was_reused)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const std::uint32_t sig = line_sig_[idx];
    if (was_reused) {
        if (shct_[sig] < kShctMax)
            ++shct_[sig];
    } else {
        if (shct_[sig] > 0)
            --shct_[sig];
    }
    rrpv_[idx] = kMaxRrpv;
}

// ---------------------------------------------------------------------------

std::unique_ptr<ReplacementPolicy>
makeReplacement(const std::string& kind, std::uint32_t sets,
                std::uint32_t ways)
{
    if (kind == "lru")
        return std::make_unique<LruPolicy>(sets, ways);
    if (kind == "ship")
        return std::make_unique<ShipPolicy>(sets, ways);
    throw std::invalid_argument("unknown replacement policy: " + kind);
}

} // namespace pythia::sim
