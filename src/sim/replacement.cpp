#include "sim/replacement.hpp"

#include <cassert>
#include <stdexcept>

#include "common/hashing.hpp"
#include "snapshot/codec.hpp"

namespace pythia::sim {

namespace {

/** Geometry guard shared by the policy loaders: a state vector restored
 *  into a policy of different shape would index out of bounds later. */
void
requireSize(const char* what, std::size_t got, std::size_t want)
{
    if (got != want)
        throw snap::CorruptError(
            std::string("snapshot corrupt: replacement ") + what +
            " size " + std::to_string(got) + " does not match policy "
            "geometry " + std::to_string(want));
}

} // namespace

// ---------------------------------------------------------------------------
// LruPolicy

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways), stamp_(static_cast<std::size_t>(sets) * ways, 0)
{
    assert(sets > 0 && ways > 0);
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

std::uint32_t
LruPolicy::victim(std::uint32_t set)
{
    std::uint32_t victim_way = 0;
    std::uint64_t oldest = ~0ull;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const std::uint64_t s =
            stamp_[static_cast<std::size_t>(set) * ways_ + w];
        if (s < oldest) {
            oldest = s;
            victim_way = w;
        }
    }
    return victim_way;
}

void
LruPolicy::onInsert(std::uint32_t set, std::uint32_t way, const ReplAccess&)
{
    touch(set, way);
}

void
LruPolicy::onHit(std::uint32_t set, std::uint32_t way, const ReplAccess&)
{
    touch(set, way);
}

void
LruPolicy::onEvict(std::uint32_t, std::uint32_t, bool)
{
}

void
LruPolicy::saveState(snap::Writer& w) const
{
    w.u64(tick_);
    w.vecU64(stamp_);
}

void
LruPolicy::loadState(snap::Reader& r)
{
    const std::uint64_t tick = r.u64();
    std::vector<std::uint64_t> stamp = r.vecU64();
    requireSize("lru stamp", stamp.size(), stamp_.size());
    tick_ = tick;
    stamp_ = std::move(stamp);
}

// ---------------------------------------------------------------------------
// ShipPolicy

ShipPolicy::ShipPolicy(std::uint32_t sets, std::uint32_t ways,
                       std::uint32_t shct_entries)
    : ways_(ways), shct_mask_(shct_entries - 1),
      rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv),
      line_sig_(static_cast<std::size_t>(sets) * ways, 0),
      shct_(shct_entries, 1)
{
    assert((shct_entries & (shct_entries - 1)) == 0 &&
           "SHCT size must be a power of two");
}

std::uint32_t
ShipPolicy::signatureOf(Addr pc) const
{
    return static_cast<std::uint32_t>(mix64(pc)) & shct_mask_;
}

std::uint32_t
ShipPolicy::victim(std::uint32_t set)
{
    // Standard RRIP victim search: find RRPV==max, aging all on failure.
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w)
            if (rrpv_[base + w] == kMaxRrpv)
                return w;
        for (std::uint32_t w = 0; w < ways_; ++w)
            ++rrpv_[base + w];
    }
}

void
ShipPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                     const ReplAccess& ctx)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const std::uint32_t sig = signatureOf(ctx.pc);
    line_sig_[idx] = sig;
    if (ctx.is_prefetch) {
        rrpv_[idx] = kMaxRrpv; // prefetches inserted dead-on-arrival
    } else {
        rrpv_[idx] = (shct_[sig] == 0) ? kMaxRrpv : kMaxRrpv - 1;
    }
}

void
ShipPolicy::onHit(std::uint32_t set, std::uint32_t way, const ReplAccess&)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

void
ShipPolicy::onEvict(std::uint32_t set, std::uint32_t way, bool was_reused)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const std::uint32_t sig = line_sig_[idx];
    if (was_reused) {
        if (shct_[sig] < kShctMax)
            ++shct_[sig];
    } else {
        if (shct_[sig] > 0)
            --shct_[sig];
    }
    rrpv_[idx] = kMaxRrpv;
}

void
ShipPolicy::saveState(snap::Writer& w) const
{
    w.vecU8(rrpv_);
    w.vecU32(line_sig_);
    w.vecU8(shct_);
}

void
ShipPolicy::loadState(snap::Reader& r)
{
    std::vector<std::uint8_t> rrpv = r.vecU8();
    std::vector<std::uint32_t> line_sig = r.vecU32();
    std::vector<std::uint8_t> shct = r.vecU8();
    requireSize("ship rrpv", rrpv.size(), rrpv_.size());
    requireSize("ship line_sig", line_sig.size(), line_sig_.size());
    requireSize("ship shct", shct.size(), shct_.size());
    rrpv_ = std::move(rrpv);
    line_sig_ = std::move(line_sig);
    shct_ = std::move(shct);
}

// ---------------------------------------------------------------------------

std::unique_ptr<ReplacementPolicy>
makeReplacement(const std::string& kind, std::uint32_t sets,
                std::uint32_t ways)
{
    if (kind == "lru")
        return std::make_unique<LruPolicy>(sets, ways);
    if (kind == "ship")
        return std::make_unique<ShipPolicy>(sets, ways);
    throw std::invalid_argument("unknown replacement policy: " + kind);
}

} // namespace pythia::sim
