/**
 * @file
 * The full simulated machine: N cores with private L1/L2, a shared LLC
 * and a shared DRAM pool, wired exactly like the paper's Table 5 system.
 * Provides the warmup-then-measure methodology of §5 and extracts the
 * per-run metrics the evaluation uses (IPC, LLC demand/read misses,
 * prefetch usefulness).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/core.hpp"
#include "sim/dram.hpp"
#include "workloads/trace.hpp"

namespace pythia::sim {

/** Whole-machine configuration; defaults reproduce the paper's Table 5
 *  single-core system. */
struct SystemConfig
{
    std::uint32_t num_cores = 1;
    CoreConfig core;
    CacheConfig l1;
    CacheConfig l2;
    std::uint64_t llc_bytes_per_core = 2ull << 20; ///< 2MB/core
    std::uint32_t llc_ways = 16;
    Cycle llc_latency = 34;
    std::uint32_t llc_mshrs_per_core = 64;
    std::string llc_replacement = "ship";
    DramConfig dram;
    Cycle quantum = 10000; ///< multi-core interleaving granularity

    SystemConfig();

    /** Scale the DRAM channel count with core count as in §6.2.1
     *  (1-2C: one channel, 4-6C: two, 8-12C: four). */
    void applyPaperChannelScaling();
};

/** Metrics of one measured simulation window. */
struct RunResult
{
    std::vector<double> ipc;             ///< per-core IPC
    double ipc_geomean = 0.0;            ///< geomean of per-core IPC
    std::uint64_t instructions = 0;      ///< per-core instruction budget
    std::uint64_t llc_demand_load_misses = 0;
    std::uint64_t llc_read_misses = 0;   ///< demand + prefetch misses
    std::uint64_t prefetch_issued = 0;   ///< at the prefetcher's level
    std::uint64_t prefetch_useful = 0;
    std::uint64_t prefetch_useless = 0;
    std::uint64_t prefetch_late = 0;
    std::vector<double> dram_buckets;    ///< Fig.14 utilization buckets
    double dram_utilization = 0.0;

    /** Prefetch accuracy = useful / issued (1.0 when nothing issued). */
    double accuracy() const;
};

/**
 * The machine. Owns every component; workloads are cloned per core by the
 * caller and handed over at construction.
 */
class System
{
  public:
    System(const SystemConfig& cfg,
           std::vector<std::unique_ptr<wl::Workload>> workloads);
    ~System();

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    /** Attach an L2 prefetcher to @p core (the paper's default level). */
    void attachL2Prefetcher(std::uint32_t core,
                            std::unique_ptr<PrefetcherApi> pf);

    /** Attach an L1D prefetcher to @p core (multi-level schemes, §6.2.4). */
    void attachL1Prefetcher(std::uint32_t core,
                            std::unique_ptr<PrefetcherApi> pf);

    /** Run @p instrs_per_core instructions per core without measuring. */
    void warmup(std::uint64_t instrs_per_core);

    /** Measure a window of @p instrs_per_core instructions per core. */
    RunResult run(std::uint64_t instrs_per_core);

    Dram& dram() { return *dram_; }
    Cache& llc() { return *llc_; }
    Cache& l2(std::uint32_t core) { return *l2_[core]; }
    Cache& l1(std::uint32_t core) { return *l1_[core]; }
    Core& core(std::uint32_t core) { return *cores_[core]; }
    std::uint32_t numCores() const { return cfg_.num_cores; }
    const SystemConfig& config() const { return cfg_; }

  private:
    void resetAllStats();

    SystemConfig cfg_;
    std::vector<std::unique_ptr<wl::Workload>> workloads_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<DramLevel> dram_level_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<PrefetcherApi>> prefetchers_;
};

} // namespace pythia::sim
