/**
 * @file
 * The full simulated machine: N cores with private L1/L2, a shared LLC
 * and a shared DRAM pool, wired exactly like the paper's Table 5 system.
 * Provides the warmup-then-measure methodology of §5 and extracts the
 * per-run metrics the evaluation uses (IPC, LLC demand/read misses,
 * prefetch usefulness).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/core.hpp"
#include "sim/dram.hpp"
#include "workloads/trace.hpp"

namespace pythia::sim {

/** Whole-machine configuration; defaults reproduce the paper's Table 5
 *  single-core system. */
struct SystemConfig
{
    std::uint32_t num_cores = 1;
    CoreConfig core;
    CacheConfig l1;
    CacheConfig l2;
    std::uint64_t llc_bytes_per_core = 2ull << 20; ///< 2MB/core
    std::uint32_t llc_ways = 16;
    Cycle llc_latency = 34;
    std::uint32_t llc_mshrs_per_core = 64;
    std::string llc_replacement = "ship";
    DramConfig dram;
    Cycle quantum = 10000; ///< multi-core interleaving granularity

    SystemConfig();

    /** Scale the DRAM channel count with core count as in §6.2.1
     *  (1-2C: one channel, 4-6C: two, 8-12C: four). */
    void applyPaperChannelScaling();
};

/**
 * Metrics of one measured simulation window — either a full run, the
 * cumulative state of a streamed session, or a single window's delta
 * (see harness/session.hpp for the window algebra: deltas carry the raw
 * per-core cycle and DRAM-epoch counts so that composing them
 * reproduces the cumulative result bit-exactly).
 */
struct RunResult
{
    std::vector<double> ipc;             ///< per-core IPC
    double ipc_geomean = 0.0;            ///< geomean of per-core IPC
    std::uint64_t instructions = 0;      ///< per-core instruction budget
    std::uint64_t llc_demand_load_misses = 0;
    std::uint64_t llc_read_misses = 0;   ///< demand + prefetch misses
    std::uint64_t prefetch_issued = 0;   ///< at the prefetcher's level
    std::uint64_t prefetch_useful = 0;
    std::uint64_t prefetch_useless = 0;
    std::uint64_t prefetch_late = 0;
    std::vector<double> dram_buckets;    ///< Fig.14 utilization buckets
    double dram_utilization = 0.0;
    /** Measured cycles per core (the denominator behind ipc[]). */
    std::vector<std::uint64_t> core_cycles;
    /** Raw epoch counts behind dram_buckets (composable, unlike the
     *  normalized fractions). */
    std::vector<std::uint64_t> dram_bucket_epochs;

    /**
     * Prefetch accuracy = useful / issued.
     *
     * Zero-denominator convention: 1.0 when nothing was issued — a
     * prefetcher that stayed silent made no mispredictions, and sweeps
     * geomean accuracies so 0.0 would poison the aggregate. The ratio
     * is also clamped to 1.0 from above: prefetches issued during
     * warmup (or a previous window) can become useful inside this one,
     * so useful may exceed issued in a windowed reading.
     */
    double accuracy() const;
};

/**
 * The machine. Owns every component; workloads are cloned per core by the
 * caller and handed over at construction.
 */
class System
{
  public:
    System(const SystemConfig& cfg,
           std::vector<std::unique_ptr<wl::Workload>> workloads);
    ~System();

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    /** Attach an L2 prefetcher to @p core (the paper's default level). */
    void attachL2Prefetcher(std::uint32_t core,
                            std::unique_ptr<PrefetcherApi> pf);

    /** Attach an L1D prefetcher to @p core (multi-level schemes, §6.2.4). */
    void attachL1Prefetcher(std::uint32_t core,
                            std::unique_ptr<PrefetcherApi> pf);

    /** Run @p instrs_per_core instructions per core without measuring. */
    void warmup(std::uint64_t instrs_per_core);

    /**
     * Measure a window of @p instrs_per_core instructions per core.
     * Exactly beginMeasurement() + stepMeasuredTo() + collectResult() —
     * the monolithic run loop of the batch era is gone, so a streamed
     * session that advances the same budget in one step is bit-identical
     * to this call by construction.
     */
    RunResult run(std::uint64_t instrs_per_core);

    /**
     * Start (or restart) a measurement: resets every statistic,
     * captures each core's retirement count as the measurement origin
     * and clears the per-core measured-cycle accumulators. Subsequent
     * stepMeasuredTo() windows accrue into one cumulative result.
     */
    void beginMeasurement();

    /**
     * Advance every core to @p nominal_cumulative measured instructions
     * since beginMeasurement() (one window; must exceed the previous
     * target). Targets are absolute — core c runs until its retirement
     * count reaches origin_c + nominal_cumulative — so superscalar
     * overshoot at one window boundary does not shift later boundaries:
     * a single-core measurement cut into any window partition retires
     * through the exact same machine states as one big window. Cores
     * that hit the target keep running (trace replay) until every core
     * has — those wait cycles are excluded from the finished cores'
     * measured cycles, exactly as the batch loop excluded its tail.
     */
    void stepMeasuredTo(std::uint64_t nominal_cumulative);

    /** Cumulative RunResult since beginMeasurement() (counter snapshot:
     *  cheap, callable after every window). */
    RunResult collectResult() const;

    /** Measured instructions per core since beginMeasurement(). */
    std::uint64_t measuredInstrs() const { return measured_instrs_; }

    /**
     * Serialize the complete machine state as named sections —
     * "machine" (measurement bookkeeping), "dram", "llc", then
     * "l2.<c>"/"l1.<c>"/"core.<c>" per core and "pf.<i>" per attached
     * prefetcher in attach order (snapshot subsystem, DESIGN.md §9).
     * @throws snap::UnsupportedError when an attached prefetcher does
     * not implement serialization.
     */
    void saveState(snap::Writer& w) const;

    /**
     * Restore a saveState() image into an identically-configured
     * machine. Workload positions are re-derived by deterministic
     * replay (see Core::loadState). @throws snap::CorruptError on any
     * structural mismatch.
     */
    void loadState(snap::Reader& r);

    Dram& dram() { return *dram_; }
    Cache& llc() { return *llc_; }
    Cache& l2(std::uint32_t core) { return *l2_[core]; }
    Cache& l1(std::uint32_t core) { return *l1_[core]; }
    Core& core(std::uint32_t core) { return *cores_[core]; }
    std::uint32_t numCores() const { return cfg_.num_cores; }
    const SystemConfig& config() const { return cfg_; }

  private:
    void resetAllStats();

    bool measuring_ = false;
    std::uint64_t measured_instrs_ = 0;          ///< nominal cumulative
    std::vector<std::uint64_t> measure_origin_;  ///< retired at begin
    std::vector<std::uint64_t> measured_cycles_; ///< per core

    SystemConfig cfg_;
    std::vector<std::unique_ptr<wl::Workload>> workloads_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<DramLevel> dram_level_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<PrefetcherApi>> prefetchers_;
};

} // namespace pythia::sim
