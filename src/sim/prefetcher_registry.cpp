#include "sim/prefetcher_registry.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "common/spec.hpp"

namespace pythia::sim {

// ------------------------------------------------------ PrefetcherRegistry

PrefetcherRegistry&
PrefetcherRegistry::instance()
{
    static PrefetcherRegistry registry;
    return registry;
}

void
PrefetcherRegistry::add(PrefetcherEntry entry)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (!entries_.emplace(entry.name, entry).second)
        throw std::logic_error("duplicate prefetcher registration: " +
                               entry.name);
}

void
PrefetcherRegistry::setComposer(Composer composer)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    composer_ = std::move(composer);
}

std::vector<std::string>
PrefetcherRegistry::namesLocked() const
{
    std::vector<std::string> out;
    for (const auto& [name, entry] : entries_)
        out.push_back(name);
    return out;
}

std::vector<std::string>
PrefetcherRegistry::names() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return namesLocked();
}

const PrefetcherEntry*
PrefetcherRegistry::findLocked(const std::string& name) const
{
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
}

const PrefetcherEntry*
PrefetcherRegistry::find(const std::string& name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return findLocked(name);
}

std::unique_ptr<PrefetcherApi>
PrefetcherRegistry::make(const std::string& spec) const
{
    if (spec.empty())
        return nullptr;

    const std::vector<ParsedSpec> parts = parseSpecList(spec);
    if (parts.size() == 1 && parts[0].name == "none") {
        if (!parts[0].params.empty())
            throw std::invalid_argument(
                "'none' takes no parameters: " + spec);
        return nullptr;
    }

    std::vector<std::unique_ptr<PrefetcherApi>> built;
    std::string composite_name;
    for (const ParsedSpec& part : parts) {
        const PrefetcherEntry* entry = find(part.name);
        if (!entry) {
            if (part.name == "none")
                throw std::invalid_argument(
                    "'none' cannot appear in a composition: " + spec);
            throw std::invalid_argument(
                "unknown prefetcher '" + part.name + "'" +
                didYouMean(part.name, names()) +
                " (known: " + joinKeys(names(), "(none)") + ")");
        }

        std::map<std::string, std::string> kv;
        for (const auto& [key, value] : part.params) {
            const bool known =
                std::find(entry->param_keys.begin(),
                          entry->param_keys.end(),
                          key) != entry->param_keys.end();
            if (!known)
                throw std::invalid_argument(
                    entry->name + ": unknown parameter '" + key + "'" +
                    didYouMean(key, entry->param_keys) + " (accepted: " +
                    joinKeys(entry->param_keys, "(no parameters)") +
                    ")");
            kv[key] = value;
        }
        built.push_back(
            entry->factory(PrefetcherParams(entry->name, kv)));
        if (!built.back())
            throw std::logic_error("factory for '" + entry->name +
                                   "' returned null");
        if (!composite_name.empty())
            composite_name += "+";
        composite_name += entry->name;
    }

    if (built.size() == 1)
        return std::move(built.front());
    // Copy the hook under the lock, invoke it outside: stack-alias
    // factories re-enter make(), so no lock may be held across any
    // factory or composer call (find()/names() above lock internally
    // and return pointers that stay valid — entries are never erased).
    Composer composer;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        composer = composer_;
    }
    if (!composer)
        throw std::logic_error(
            "no composition hook installed for spec: " + spec);
    return composer(composite_name, std::move(built));
}

// ---------------------------------------------------------- entry points

std::unique_ptr<PrefetcherApi>
makePrefetcher(const std::string& spec)
{
    return PrefetcherRegistry::instance().make(spec);
}

std::vector<std::string>
prefetcherNames()
{
    return PrefetcherRegistry::instance().names();
}

} // namespace pythia::sim
