/**
 * @file
 * The boundary between the cache model and any prefetching algorithm.
 *
 * Mirrors the ChampSim prefetcher hook set the paper's artifact uses:
 * prefetchers are trained on the demand stream arriving at their cache
 * level (L1 misses, for the L2 prefetchers evaluated in the paper, §5.2),
 * are notified of prefetch fills, and emit cacheline prefetch candidates.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia::sim {

/** A demand access as seen by a prefetcher's cache level. */
struct PrefetchAccess
{
    Addr pc = 0;            ///< load/store PC
    Addr address = 0;       ///< full byte address
    Addr block = 0;         ///< cacheline-granular address
    bool hit = false;       ///< hit in this cache level
    bool is_write = false;  ///< store (true) or load (false)
    Cycle cycle = 0;        ///< core cycle of the access
    std::uint32_t core = 0; ///< issuing core id
};

/** One prefetch candidate produced by a prefetcher. */
struct PrefetchRequest
{
    Addr block = 0;  ///< cacheline-granular target address
    int fill_level = 2; ///< 2 = fill this cache (L2), 3 = fill LLC only
};

/**
 * Read-only view of the memory subsystem state a system-aware prefetcher
 * may consult (the paper's "system-level feedback"). Implemented by the
 * DRAM model.
 */
class BandwidthInfo
{
  public:
    virtual ~BandwidthInfo() = default;

    /** Bus utilization in [0,1] over the most recent epoch. */
    virtual double utilization() const = 0;

    /** True when utilization exceeds the high-usage threshold (paper's
     *  R^H vs R^L reward split). */
    virtual bool highUsage() const = 0;
};

/**
 * Abstract prefetching algorithm plugged into a Cache.
 */
class PrefetcherApi
{
  public:
    virtual ~PrefetcherApi() = default;

    /**
     * Observe one demand access and emit prefetch candidates into @p out.
     * Called for every demand (load/store) access that reaches the cache
     * level this prefetcher is attached to.
     */
    virtual void train(const PrefetchAccess& access,
                       std::vector<PrefetchRequest>& out) = 0;

    /**
     * A prefetch issued earlier will be (or has been) filled into the
     * cache. @p at is the fill completion cycle; because the simulator
     * resolves latencies at issue time, this may be called before the
     * simulated fill instant — implementations must compare @p at against
     * demand cycles rather than assume "already filled".
     */
    virtual void onFill(Addr block, Cycle at) { (void)block; (void)at; }

    /** A demand matched a prefetched block. @p timely is false when the
     *  demand arrived before the prefetch fill completed. */
    virtual void onPrefetchUsed(Addr block, bool timely)
    {
        (void)block; (void)timely;
    }

    /** A prefetched block left the cache. @p used tells whether any demand
     *  hit it during residency (false = wasted prefetch). */
    virtual void onPrefetchEvicted(Addr block, bool used)
    {
        (void)block; (void)used;
    }

    /** Attach the system bandwidth feedback source (may be nullptr). */
    virtual void setBandwidthInfo(const BandwidthInfo* bw) { (void)bw; }

    /** Stable display name. */
    virtual const std::string& name() const = 0;

    /** Metadata storage cost in bytes (paper Table 7 comparisons). */
    virtual std::size_t storageBytes() const = 0;

    /**
     * Serialize all learned/tracked state (snapshot subsystem). The
     * default implementation throws snap::UnsupportedError, so a
     * configuration containing a prefetcher without serialization
     * support fails a snapshot request loudly instead of silently
     * dropping its state.
     */
    virtual void saveState(snap::Writer& w) const;

    /** Restore a saveState() image. Defaults to snap::UnsupportedError
     *  like saveState(). */
    virtual void loadState(snap::Reader& r);
};

} // namespace pythia::sim
