/**
 * @file
 * Trace-driven core model approximating a 4-wide out-of-order machine with
 * a 256-entry ROB (paper Table 5).
 *
 * The model is slot-based and O(1) per instruction: time is tracked in
 * dispatch/retire *slots* (1 cycle = `width` slots). An instruction
 * dispatches when the instruction `rob_size` older than it has retired
 * (ROB occupancy limit), completes after its execution or memory latency,
 * and retires in order at one slot per instruction. Loads gate retirement
 * on their memory completion; stores drain through a store buffer and do
 * not. This reproduces the two first-order effects prefetching studies
 * care about — memory latency exposure and ROB-limited MLP — at the same
 * fidelity class as ChampSim's simplified core.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/cache.hpp"
#include "workloads/trace.hpp"

namespace pythia::sim {

/** Core microarchitectural parameters. */
struct CoreConfig
{
    std::uint32_t rob_size = 256;
    std::uint32_t width = 4;          ///< dispatch & retire width
    Cycle nonmem_latency = 1;         ///< execute latency of non-memory ops
};

/**
 * One simulated core bound to a workload trace and an L1D port.
 */
class Core
{
  public:
    /**
     * @param cfg  core parameters
     * @param id   core id (also used to disambiguate address spaces of
     *             homogeneous multi-programmed mixes)
     * @param l1d  first-level data cache port
     * @param workload  trace source; replayed endlessly
     */
    Core(const CoreConfig& cfg, std::uint32_t id, MemoryLevel& l1d,
         wl::Workload& workload);

    // Non-copyable: the counter slots point into this object's stats_.
    Core(const Core&) = delete;
    Core& operator=(const Core&) = delete;

    /** Execute trace records until the retirement frontier passes
     *  @p until or nothing can proceed. */
    void runUntil(Cycle until);

    /** Retirement frontier, in cycles. */
    Cycle currentCycle() const { return last_retire_slot_ / cfg_.width; }

    /** Total instructions retired since construction. */
    std::uint64_t instrsRetired() const { return instr_count_; }

    /** Core id. */
    std::uint32_t id() const { return id_; }

    /** Per-core counters (loads, stores, instrs). */
    const StatGroup& stats() const { return stats_; }
    StatGroup& stats() { return stats_; }

    /** Trace records consumed since construction (snapshot bookkeeping:
     *  restore replays the workload this far). */
    std::uint64_t recordsConsumed() const { return records_consumed_; }

    /** Serialize pipeline state + trace position (snapshot subsystem). */
    void saveState(snap::Writer& w) const;

    /**
     * Restore a saveState() image. The bound workload is reset() and
     * fast-forwarded by discarding the serialized number of records —
     * generators are deterministic functions of their seed, so this
     * reproduces the exact mid-stream position without serializing
     * generator internals. @throws snap::CorruptError on ROB mismatch.
     */
    void loadState(snap::Reader& r);

  private:
    /** Dispatch one instruction completing at @p completion_cycle
     *  (memory ops) or after the fixed execute latency (pass 0). */
    void dispatch(Cycle completion_cycle);

    /** Dispatch @p n consecutive non-memory instructions — the trace
     *  gap. Same arithmetic as n dispatch(0) calls, with the ROB index
     *  reduced by mask (power-of-two sizes) and the slot state kept in
     *  registers across the run. */
    void dispatchNonMemRun(std::uint32_t n);

    /** Consume and execute one trace record (gap + memory op). */
    void step();

    CoreConfig cfg_;
    std::uint32_t id_;
    MemoryLevel& l1d_;
    wl::Workload& workload_;
    Addr addr_offset_;
    bool rob_pow2_ = false;       ///< rob_size is a power of two
    std::uint32_t rob_mask_ = 0;  ///< rob_size - 1 when rob_pow2_

    std::uint64_t instr_count_ = 0;
    std::uint64_t records_consumed_ = 0;
    std::uint64_t next_dispatch_slot_ = 0;
    std::uint64_t last_retire_slot_ = 0;
    Cycle last_load_done_ = 0; ///< completion of the most recent load
    std::vector<std::uint64_t> rob_retire_slot_;

    StatGroup stats_;
    // Per-instruction counters, resolved once (StatGroup::counterSlot).
    std::uint64_t* c_loads_;
    std::uint64_t* c_stores_;
    std::uint64_t* c_mem_instrs_;
};

} // namespace pythia::sim
