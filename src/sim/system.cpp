#include "sim/system.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/table.hpp"
#include "snapshot/codec.hpp"

namespace pythia::sim {

SystemConfig::SystemConfig()
{
    l1.name = "l1d";
    l1.size_bytes = 32 * 1024;
    l1.ways = 8;
    l1.lookup_latency = 4;
    l1.mshrs = 16;
    l1.replacement = "lru";

    l2.name = "l2";
    l2.size_bytes = 256 * 1024;
    l2.ways = 8;
    l2.lookup_latency = 10; // L1->L2 round trip of 14 minus L1's 4
    l2.mshrs = 32;
    l2.replacement = "lru";
}

void
SystemConfig::applyPaperChannelScaling()
{
    if (num_cores <= 2)
        dram.channels = 1;
    else if (num_cores <= 6)
        dram.channels = 2;
    else
        dram.channels = 4;
    dram.ranks_per_channel = (num_cores <= 2) ? 1 : 2;
}

double
RunResult::accuracy() const
{
    if (prefetch_issued == 0)
        return 1.0;
    // Prefetches issued during warmup can be used (or evicted) inside
    // the measurement window, so the windowed ratio is clamped to 1.
    return std::min(
        1.0, static_cast<double>(prefetch_useful) / prefetch_issued);
}

System::System(const SystemConfig& cfg,
               std::vector<std::unique_ptr<wl::Workload>> workloads)
    : cfg_(cfg), workloads_(std::move(workloads))
{
    assert(workloads_.size() == cfg_.num_cores);

    dram_ = std::make_unique<Dram>(cfg_.dram);
    dram_level_ = std::make_unique<DramLevel>(*dram_);

    CacheConfig llc_cfg;
    llc_cfg.name = "llc";
    llc_cfg.size_bytes = cfg_.llc_bytes_per_core * cfg_.num_cores;
    llc_cfg.ways = cfg_.llc_ways;
    llc_cfg.lookup_latency = cfg_.llc_latency > cfg_.l2.lookup_latency
        ? cfg_.llc_latency - cfg_.l2.lookup_latency - cfg_.l1.lookup_latency
        : cfg_.llc_latency;
    llc_cfg.mshrs = cfg_.llc_mshrs_per_core * cfg_.num_cores;
    llc_cfg.replacement = cfg_.llc_replacement;
    llc_ = std::make_unique<Cache>(llc_cfg, *dram_level_);

    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
        CacheConfig l2_cfg = cfg_.l2;
        l2_cfg.name = "l2." + std::to_string(c);
        l2_.push_back(std::make_unique<Cache>(l2_cfg, *llc_));

        CacheConfig l1_cfg = cfg_.l1;
        l1_cfg.name = "l1d." + std::to_string(c);
        l1_.push_back(std::make_unique<Cache>(l1_cfg, *l2_.back()));

        cores_.push_back(std::make_unique<Core>(cfg_.core, c, *l1_.back(),
                                                *workloads_[c]));
    }
}

System::~System() = default;

void
System::attachL2Prefetcher(std::uint32_t core,
                           std::unique_ptr<PrefetcherApi> pf)
{
    assert(core < cfg_.num_cores);
    pf->setBandwidthInfo(dram_.get());
    l2_[core]->setPrefetcher(pf.get());
    prefetchers_.push_back(std::move(pf));
}

void
System::attachL1Prefetcher(std::uint32_t core,
                           std::unique_ptr<PrefetcherApi> pf)
{
    assert(core < cfg_.num_cores);
    pf->setBandwidthInfo(dram_.get());
    l1_[core]->setPrefetcher(pf.get());
    prefetchers_.push_back(std::move(pf));
}

void
System::resetAllStats()
{
    dram_->resetStats();
    llc_->resetStats();
    for (auto& c : l2_)
        c->resetStats();
    for (auto& c : l1_)
        c->resetStats();
    for (auto& c : cores_)
        c->stats().reset();
}

void
System::warmup(std::uint64_t instrs_per_core)
{
    if (instrs_per_core == 0)
        return;
    std::vector<std::uint64_t> target(cfg_.num_cores);
    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c)
        target[c] = cores_[c]->instrsRetired() + instrs_per_core;

    bool all_done = false;
    Cycle horizon = cfg_.quantum;
    while (!all_done) {
        all_done = true;
        for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
            if (cores_[c]->instrsRetired() >= target[c])
                continue;
            all_done = false;
            // Advance this core by one quantum of its own time.
            const Cycle until =
                std::max(horizon, cores_[c]->currentCycle() + 1);
            while (cores_[c]->currentCycle() < until &&
                   cores_[c]->instrsRetired() < target[c])
                cores_[c]->runUntil(cores_[c]->currentCycle() + 1);
        }
        horizon += cfg_.quantum;
    }
}

void
System::beginMeasurement()
{
    resetAllStats();
    measuring_ = true;
    measured_instrs_ = 0;
    measured_cycles_.assign(cfg_.num_cores, 0);
    measure_origin_.resize(cfg_.num_cores);
    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c)
        measure_origin_[c] = cores_[c]->instrsRetired();
}

void
System::stepMeasuredTo(std::uint64_t nominal_cumulative)
{
    assert(measuring_);
    assert(nominal_cumulative > measured_instrs_);

    std::vector<std::uint64_t> target(cfg_.num_cores);
    std::vector<Cycle> start_cycle(cfg_.num_cores);
    std::vector<Cycle> done_cycle(cfg_.num_cores, 0);
    std::vector<bool> done(cfg_.num_cores, false);
    std::uint32_t n_done = 0;
    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
        target[c] = measure_origin_[c] + nominal_cumulative;
        start_cycle[c] = cores_[c]->currentCycle();
        // A core that overshot past this window's whole budget at the
        // previous boundary contributes zero cycles (it cannot happen
        // on the first window: targets start above the origin).
        if (cores_[c]->instrsRetired() >= target[c]) {
            done[c] = true;
            done_cycle[c] = start_cycle[c];
            ++n_done;
        }
    }

    Cycle horizon = cfg_.quantum;
    // Interleave cores in quanta so the shared LLC/DRAM see a realistic
    // blend of request timestamps; cores that finish their budget keep
    // running (trace replay) until every core has finished measuring,
    // exactly like ChampSim's multi-programmed methodology (§5).
    while (n_done < cfg_.num_cores) {
        for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
            Core& core = *cores_[c];
            const Cycle until = std::max(horizon,
                                         core.currentCycle() + 1);
            while (core.currentCycle() < until) {
                core.runUntil(core.currentCycle() + 1);
                if (!done[c] && core.instrsRetired() >= target[c]) {
                    done[c] = true;
                    done_cycle[c] = core.currentCycle();
                    ++n_done;
                    break;
                }
            }
        }
        horizon += cfg_.quantum;
    }

    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c)
        measured_cycles_[c] += done_cycle[c] - start_cycle[c];
    measured_instrs_ = nominal_cumulative;
}

RunResult
System::collectResult() const
{
    assert(measuring_);
    RunResult res;
    res.instructions = measured_instrs_;
    res.core_cycles = measured_cycles_;
    std::vector<double> ipcs;
    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
        const double cycles = static_cast<double>(measured_cycles_[c]);
        const double ipc =
            cycles > 0 ? static_cast<double>(measured_instrs_) / cycles
                       : 0.0;
        res.ipc.push_back(ipc);
        ipcs.push_back(std::max(ipc, 1e-9));
    }
    res.ipc_geomean = geomean(ipcs);

    res.llc_demand_load_misses = llc_->stats().counter("demand_load_miss");
    res.llc_read_misses = llc_->stats().counter("read_miss_total");
    for (auto& c : l2_) {
        res.prefetch_issued += c->stats().counter("prefetch_issued") +
                               c->stats().counter(
                                   "prefetch_issued_next_level");
        res.prefetch_useful +=
            c->stats().counter("prefetch_useful_timely") +
            c->stats().counter("prefetch_useful_late");
        res.prefetch_late += c->stats().counter("prefetch_useful_late");
        res.prefetch_useless += c->stats().counter("prefetch_useless");
    }
    for (auto& c : l1_) {
        res.prefetch_issued += c->stats().counter("prefetch_issued") +
                               c->stats().counter(
                                   "prefetch_issued_next_level");
        res.prefetch_useful +=
            c->stats().counter("prefetch_useful_timely") +
            c->stats().counter("prefetch_useful_late");
        res.prefetch_late += c->stats().counter("prefetch_useful_late");
        res.prefetch_useless += c->stats().counter("prefetch_useless");
    }
    res.dram_buckets = dram_->utilizationBuckets();
    res.dram_utilization = dram_->utilization();
    res.dram_bucket_epochs = dram_->bucketEpochCounts();
    return res;
}

RunResult
System::run(std::uint64_t instrs_per_core)
{
    assert(instrs_per_core > 0);
    beginMeasurement();
    stepMeasuredTo(instrs_per_core);
    return collectResult();
}

void
System::saveState(snap::Writer& w) const
{
    w.beginSection("machine");
    w.u32(cfg_.num_cores);
    w.u64(prefetchers_.size());
    w.boolean(measuring_);
    w.u64(measured_instrs_);
    w.vecU64(measure_origin_);
    w.vecU64(measured_cycles_);
    w.endSection();

    w.beginSection("dram");
    dram_->saveState(w);
    w.endSection();

    w.beginSection("llc");
    llc_->saveState(w);
    w.endSection();

    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
        w.beginSection("l2." + std::to_string(c));
        l2_[c]->saveState(w);
        w.endSection();
        w.beginSection("l1." + std::to_string(c));
        l1_[c]->saveState(w);
        w.endSection();
        w.beginSection("core." + std::to_string(c));
        cores_[c]->saveState(w);
        w.endSection();
    }

    for (std::size_t i = 0; i < prefetchers_.size(); ++i) {
        w.beginSection("pf." + std::to_string(i));
        prefetchers_[i]->saveState(w);
        w.endSection();
    }
}

void
System::loadState(snap::Reader& r)
{
    r.enterSection("machine");
    const std::uint32_t num_cores = r.u32();
    if (num_cores != cfg_.num_cores)
        throw snap::CorruptError(
            "snapshot corrupt: machine has " + std::to_string(num_cores) +
            " cores but this configuration has " +
            std::to_string(cfg_.num_cores));
    const std::uint64_t num_pf = r.u64();
    if (num_pf != prefetchers_.size())
        throw snap::CorruptError(
            "snapshot corrupt: machine has " + std::to_string(num_pf) +
            " prefetchers but this configuration has " +
            std::to_string(prefetchers_.size()));
    measuring_ = r.boolean();
    measured_instrs_ = r.u64();
    measure_origin_ = r.vecU64();
    measured_cycles_ = r.vecU64();
    r.leaveSection();

    r.enterSection("dram");
    dram_->loadState(r);
    r.leaveSection();

    r.enterSection("llc");
    llc_->loadState(r);
    r.leaveSection();

    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
        r.enterSection("l2." + std::to_string(c));
        l2_[c]->loadState(r);
        r.leaveSection();
        r.enterSection("l1." + std::to_string(c));
        l1_[c]->loadState(r);
        r.leaveSection();
        r.enterSection("core." + std::to_string(c));
        cores_[c]->loadState(r);
        r.leaveSection();
    }

    for (std::size_t i = 0; i < prefetchers_.size(); ++i) {
        r.enterSection("pf." + std::to_string(i));
        prefetchers_[i]->loadState(r);
        r.leaveSection();
    }
}

} // namespace pythia::sim
