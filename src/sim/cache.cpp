#include "sim/cache.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "sim/dram.hpp"
#include "snapshot/codec.hpp"

namespace pythia::sim {

// ---------------------------------------------------------------------------
// DramLevel

Cycle
DramLevel::access(const MemAccess& req)
{
    return dram_.access(req.block, req.at,
                        req.type == AccessType::Writeback);
}

// ---------------------------------------------------------------------------
// Cache

Cache::Cache(const CacheConfig& cfg, MemoryLevel& next)
    : cfg_(cfg), next_(next), stats_(cfg.name)
{
    assert(cfg_.size_bytes % (kBlockSize * cfg_.ways) == 0);
    sets_ = static_cast<std::uint32_t>(cfg_.size_bytes /
                                       (kBlockSize * cfg_.ways));
    assert(sets_ > 0);
    pow2_sets_ = (sets_ & (sets_ - 1)) == 0;
    set_mask_ = sets_ - 1;
    blocks_.assign(static_cast<std::size_t>(sets_) * cfg_.ways, Block{});
    tags_.assign(blocks_.size(), kInvalidTag);
    repl_ = makeReplacement(cfg_.replacement, sets_, cfg_.ways);
    lru_ = dynamic_cast<LruPolicy*>(repl_.get());
    ship_ = dynamic_cast<ShipPolicy*>(repl_.get());

    hot_.demand_load_access = stats_.counterSlot("demand_load_access");
    hot_.demand_store_access = stats_.counterSlot("demand_store_access");
    hot_.demand_load_miss = stats_.counterSlot("demand_load_miss");
    hot_.demand_store_miss = stats_.counterSlot("demand_store_miss");
    hot_.read_miss_total = stats_.counterSlot("read_miss_total");
    hot_.mshr_stalls = stats_.counterSlot("mshr_stalls");
    hot_.evictions = stats_.counterSlot("evictions");
    hot_.writebacks = stats_.counterSlot("writebacks");
    hot_.prefetch_useless = stats_.counterSlot("prefetch_useless");
    hot_.prefetch_dropped = stats_.counterSlot("prefetch_dropped");
    hot_.prefetch_bad_fill_level =
        stats_.counterSlot("prefetch_bad_fill_level");
    hot_.prefetch_issued = stats_.counterSlot("prefetch_issued");
    hot_.prefetch_issued_next_level =
        stats_.counterSlot("prefetch_issued_next_level");
    hot_.prefetch_useful_timely =
        stats_.counterSlot("prefetch_useful_timely");
    hot_.prefetch_useful_late =
        stats_.counterSlot("prefetch_useful_late");
}

std::uint32_t
Cache::setOf(Addr block) const
{
    // Power-of-two set counts (the common geometry) reduce to a mask;
    // the modulo fallback supports e.g. the 24MB LLC of a 12-core
    // system. Both forms compute block % sets_.
    if (pow2_sets_)
        return static_cast<std::uint32_t>(block) & set_mask_;
    return static_cast<std::uint32_t>(block % sets_);
}

Cache::Block*
Cache::findBlockAt(std::size_t base, Addr block)
{
    // Invalid ways hold kInvalidTag, which never equals a real block, so
    // the scan needs no validity check: 8 contiguous u64 compares.
    const Addr* tags = tags_.data() + base;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (tags[w] == block)
            return &blocks_[base + w];
    }
    return nullptr;
}

void
Cache::rebuildTags()
{
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        tags_[i] = blocks_[i].valid ? blocks_[i].addr : kInvalidTag;
}

Cache::Block*
Cache::findBlock(Addr block)
{
    return findBlockAt(static_cast<std::size_t>(setOf(block)) * cfg_.ways,
                       block);
}

const Cache::Block*
Cache::findBlock(Addr block) const
{
    return const_cast<Cache*>(this)->findBlock(block);
}

bool
Cache::contains(Addr block) const
{
    return findBlock(block) != nullptr;
}

void
Cache::popInflight()
{
    std::pop_heap(inflight_.begin(), inflight_.end(),
                  std::greater<Cycle>{});
    inflight_.pop_back();
}

Cycle
Cache::reserveMshr(Cycle t)
{
    // Retire completed misses, then stall until a slot frees if needed.
    // The heap only ever surfaces the earliest completion time, which
    // is all MSHR accounting consumes.
    while (!inflight_.empty() && inflight_.front() <= t)
        popInflight();
    if (inflight_.size() >= cfg_.mshrs) {
        ++*hot_.mshr_stalls;
        t = inflight_.front();
        popInflight();
    }
    return t;
}

Cache::Block&
Cache::insertBlock(const MemAccess& req, Cycle fill_time)
{
    const std::uint32_t set = setOf(req.block);
    const std::size_t base = static_cast<std::size_t>(set) * cfg_.ways;

    // Prefer an invalid way; otherwise consult the replacement policy.
    std::uint32_t way = cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (tags_[base + w] == kInvalidTag) {
            way = w;
            break;
        }
    }
    if (way == cfg_.ways) {
        way = replVictim(set);
        Block& victim = blocks_[base + way];
        replOnEvict(set, way, victim.reused);
        ++*hot_.evictions;
        if (victim.prefetched) {
            if (!victim.used)
                ++*hot_.prefetch_useless;
            if (prefetcher_)
                prefetcher_->onPrefetchEvicted(victim.addr, victim.used);
        }
        if (victim.dirty) {
            ++*hot_.writebacks;
            MemAccess wb;
            wb.pc = 0;
            wb.block = victim.addr;
            wb.type = AccessType::Writeback;
            wb.at = req.at;
            wb.core = req.core;
            next_.access(wb); // fire and forget
        }
    }

    Block& b = blocks_[base + way];
    b.addr = req.block;
    tags_[base + way] = req.block;
    b.valid = true;
    b.dirty = (req.type == AccessType::Store ||
               req.type == AccessType::Writeback);
    b.prefetched = (req.type == AccessType::Prefetch);
    b.used = false;
    b.reused = false;
    b.fill_time = fill_time;

    ReplAccess ctx;
    ctx.pc = req.pc;
    ctx.is_prefetch = b.prefetched;
    replOnInsert(set, way, ctx);
    return b;
}

void
Cache::issuePrefetches(const PrefetchAccess& acc,
                       std::vector<PrefetchRequest>& candidates)
{
    std::uint32_t issued = 0;
    for (const PrefetchRequest& pr : candidates) {
        if (issued >= cfg_.max_prefetches_per_access)
            break;
        if (pr.fill_level < 2 || pr.fill_level > 3) {
            // Reject out-of-range fill levels from buggy prefetchers
            // instead of silently misrouting the fill.
            ++*hot_.prefetch_bad_fill_level;
            continue;
        }
        if (pr.block == acc.block)
            continue;
        if (contains(pr.block)) {
            ++*hot_.prefetch_dropped;
            continue;
        }
        MemAccess req;
        req.pc = acc.pc;
        req.block = pr.block;
        req.type = AccessType::Prefetch;
        req.at = acc.cycle;
        req.core = acc.core;

        if (pr.fill_level >= 3) {
            // Fill the next level only; do not pollute this cache.
            next_.access(req);
            ++*hot_.prefetch_issued_next_level;
        } else {
            const Cycle t = reserveMshr(req.at);
            req.at = t;
            const Cycle done = next_.access(req);
            inflight_.push_back(done);
            std::push_heap(inflight_.begin(), inflight_.end(),
                           std::greater<Cycle>{});
            insertBlock(req, done);
            ++*hot_.prefetch_issued;
            if (prefetcher_)
                prefetcher_->onFill(pr.block, done);
        }
        ++issued;
    }
    candidates.clear();
}

Cycle
Cache::access(const MemAccess& req)
{
    const bool is_demand = (req.type == AccessType::Load ||
                            req.type == AccessType::Store);
    const Cycle t = req.at + cfg_.lookup_latency;

    const std::uint32_t set = setOf(req.block);
    const std::size_t base = static_cast<std::size_t>(set) * cfg_.ways;
    Block* blk = findBlockAt(base, req.block);
    const bool hit = (blk != nullptr);

    if (is_demand) {
        ++*(req.type == AccessType::Load ? hot_.demand_load_access
                                         : hot_.demand_store_access);
        if (!hit) {
            ++*(req.type == AccessType::Load ? hot_.demand_load_miss
                                             : hot_.demand_store_miss);
            ++*hot_.read_miss_total;
        }
    } else if (req.type == AccessType::Prefetch && !hit) {
        ++*hot_.read_miss_total;
    }

    Cycle ready;
    if (hit) {
        if (is_demand) {
            if (blk->prefetched && !blk->used) {
                blk->used = true;
                const bool timely = blk->fill_time <= t;
                ++*(timely ? hot_.prefetch_useful_timely
                           : hot_.prefetch_useful_late);
                if (prefetcher_)
                    prefetcher_->onPrefetchUsed(req.block, timely);
            }
            blk->reused = true;
            const auto way =
                static_cast<std::uint32_t>(blk - &blocks_[base]);
            ReplAccess ctx;
            ctx.pc = req.pc;
            replOnHit(set, way, ctx);
        }
        if (req.type == AccessType::Store ||
            req.type == AccessType::Writeback)
            blk->dirty = true;
        ready = std::max(t, blk->fill_time);
    } else {
        if (req.type == AccessType::Writeback) {
            // Allocate the dirty line without stalling on MSHRs.
            insertBlock(req, t);
            ready = t;
        } else {
            const Cycle start = reserveMshr(t);
            MemAccess fwd = req;
            fwd.at = start;
            const Cycle done = next_.access(fwd);
            inflight_.push_back(done);
            std::push_heap(inflight_.begin(), inflight_.end(),
                           std::greater<Cycle>{});
            insertBlock(req, done);
            ready = done;
        }
    }

    // Train the attached prefetcher on the demand stream at this level.
    if (is_demand && prefetcher_) {
        PrefetchAccess acc;
        acc.pc = req.pc;
        acc.address = req.block << kBlockShift;
        acc.block = req.block;
        acc.hit = hit;
        acc.is_write = (req.type == AccessType::Store);
        acc.cycle = t;
        acc.core = req.core;
        scratch_candidates_.clear();
        prefetcher_->train(acc, scratch_candidates_);
        if (!scratch_candidates_.empty())
            issuePrefetches(acc, scratch_candidates_);
    }
    return ready;
}

void
Cache::flush()
{
    for (auto& b : blocks_)
        b = Block{};
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    inflight_.clear();
    stats_.reset();
}

void
Cache::saveState(snap::Writer& w) const
{
    // Geometry header so a mismatched restore fails loudly instead of
    // scattering blocks into the wrong sets.
    w.u32(sets_);
    w.u32(cfg_.ways);
    for (const Block& b : blocks_) {
        w.u64(b.addr);
        w.boolean(b.valid);
        w.boolean(b.dirty);
        w.boolean(b.prefetched);
        w.boolean(b.used);
        w.boolean(b.reused);
        w.u64(b.fill_time);
    }
    // The in-flight min-heap is serialized in its vector layout, which
    // preserves the heap invariant verbatim on restore.
    w.vecU64(inflight_);
    repl_->saveState(w);
    stats_.saveState(w);
}

void
Cache::loadState(snap::Reader& r)
{
    const std::uint32_t sets = r.u32();
    const std::uint32_t ways = r.u32();
    if (sets != sets_ || ways != cfg_.ways)
        throw snap::CorruptError(
            "snapshot corrupt: cache '" + cfg_.name + "' geometry " +
            std::to_string(sets) + "x" + std::to_string(ways) +
            " does not match this configuration (" +
            std::to_string(sets_) + "x" + std::to_string(cfg_.ways) + ")");
    for (Block& b : blocks_) {
        b.addr = r.u64();
        b.valid = r.boolean();
        b.dirty = r.boolean();
        b.prefetched = r.boolean();
        b.used = r.boolean();
        b.reused = r.boolean();
        b.fill_time = r.u64();
    }
    rebuildTags();
    inflight_ = r.vecU64();
    if (inflight_.size() > cfg_.mshrs)
        throw snap::CorruptError(
            "snapshot corrupt: cache '" + cfg_.name + "' has " +
            std::to_string(inflight_.size()) +
            " in-flight misses but only " + std::to_string(cfg_.mshrs) +
            " MSHRs");
    repl_->loadState(r);
    stats_.loadState(r);
}

} // namespace pythia::sim
