#include "sim/cache.hpp"

#include <algorithm>
#include <cassert>

#include "sim/dram.hpp"

namespace pythia::sim {

// ---------------------------------------------------------------------------
// DramLevel

Cycle
DramLevel::access(const MemAccess& req)
{
    return dram_.access(req.block, req.at,
                        req.type == AccessType::Writeback);
}

// ---------------------------------------------------------------------------
// Cache

Cache::Cache(const CacheConfig& cfg, MemoryLevel& next)
    : cfg_(cfg), next_(next), stats_(cfg.name)
{
    assert(cfg_.size_bytes % (kBlockSize * cfg_.ways) == 0);
    sets_ = static_cast<std::uint32_t>(cfg_.size_bytes /
                                       (kBlockSize * cfg_.ways));
    assert(sets_ > 0);
    blocks_.assign(static_cast<std::size_t>(sets_) * cfg_.ways, Block{});
    repl_ = makeReplacement(cfg_.replacement, sets_, cfg_.ways);
}

std::uint32_t
Cache::setOf(Addr block) const
{
    // Modulo indexing supports non-power-of-two set counts (e.g. the
    // 24MB LLC of a 12-core system); for power-of-two counts the
    // compiler reduces this to the usual mask.
    return static_cast<std::uint32_t>(block % sets_);
}

Cache::Block*
Cache::findBlock(Addr block)
{
    const std::size_t base =
        static_cast<std::size_t>(setOf(block)) * cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Block& b = blocks_[base + w];
        if (b.valid && b.addr == block)
            return &b;
    }
    return nullptr;
}

const Cache::Block*
Cache::findBlock(Addr block) const
{
    return const_cast<Cache*>(this)->findBlock(block);
}

bool
Cache::contains(Addr block) const
{
    return findBlock(block) != nullptr;
}

Cycle
Cache::reserveMshr(Cycle t)
{
    // Retire completed misses, then stall until a slot frees if needed.
    while (!inflight_.empty() && *inflight_.begin() <= t)
        inflight_.erase(inflight_.begin());
    if (inflight_.size() >= cfg_.mshrs) {
        stats_.inc("mshr_stalls");
        t = *inflight_.begin();
        inflight_.erase(inflight_.begin());
    }
    return t;
}

Cache::Block&
Cache::insertBlock(const MemAccess& req, Cycle fill_time)
{
    const std::uint32_t set = setOf(req.block);
    const std::size_t base = static_cast<std::size_t>(set) * cfg_.ways;

    // Prefer an invalid way; otherwise consult the replacement policy.
    std::uint32_t way = cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!blocks_[base + w].valid) {
            way = w;
            break;
        }
    }
    if (way == cfg_.ways) {
        way = repl_->victim(set);
        Block& victim = blocks_[base + way];
        repl_->onEvict(set, way, victim.reused);
        stats_.inc("evictions");
        if (victim.prefetched) {
            if (!victim.used)
                stats_.inc("prefetch_useless");
            if (prefetcher_)
                prefetcher_->onPrefetchEvicted(victim.addr, victim.used);
        }
        if (victim.dirty) {
            stats_.inc("writebacks");
            MemAccess wb;
            wb.pc = 0;
            wb.block = victim.addr;
            wb.type = AccessType::Writeback;
            wb.at = req.at;
            wb.core = req.core;
            next_.access(wb); // fire and forget
        }
    }

    Block& b = blocks_[base + way];
    b.addr = req.block;
    b.valid = true;
    b.dirty = (req.type == AccessType::Store ||
               req.type == AccessType::Writeback);
    b.prefetched = (req.type == AccessType::Prefetch);
    b.used = false;
    b.reused = false;
    b.fill_time = fill_time;

    ReplAccess ctx;
    ctx.pc = req.pc;
    ctx.is_prefetch = b.prefetched;
    repl_->onInsert(set, way, ctx);
    return b;
}

void
Cache::issuePrefetches(const PrefetchAccess& acc,
                       std::vector<PrefetchRequest>& candidates)
{
    std::uint32_t issued = 0;
    for (const PrefetchRequest& pr : candidates) {
        if (issued >= cfg_.max_prefetches_per_access)
            break;
        if (pr.fill_level < 2 || pr.fill_level > 3) {
            // Reject out-of-range fill levels from buggy prefetchers
            // instead of silently misrouting the fill.
            stats_.inc("prefetch_bad_fill_level");
            continue;
        }
        if (pr.block == acc.block)
            continue;
        if (contains(pr.block)) {
            stats_.inc("prefetch_dropped");
            continue;
        }
        MemAccess req;
        req.pc = acc.pc;
        req.block = pr.block;
        req.type = AccessType::Prefetch;
        req.at = acc.cycle;
        req.core = acc.core;

        if (pr.fill_level >= 3) {
            // Fill the next level only; do not pollute this cache.
            next_.access(req);
            stats_.inc("prefetch_issued_next_level");
        } else {
            const Cycle t = reserveMshr(req.at);
            req.at = t;
            const Cycle done = next_.access(req);
            inflight_.insert(done);
            insertBlock(req, done);
            stats_.inc("prefetch_issued");
            if (prefetcher_)
                prefetcher_->onFill(pr.block, done);
        }
        ++issued;
    }
    candidates.clear();
}

Cycle
Cache::access(const MemAccess& req)
{
    const bool is_demand = (req.type == AccessType::Load ||
                            req.type == AccessType::Store);
    const Cycle t = req.at + cfg_.lookup_latency;

    Block* blk = findBlock(req.block);
    const bool hit = (blk != nullptr);

    if (is_demand) {
        stats_.inc(req.type == AccessType::Load ? "demand_load_access"
                                                : "demand_store_access");
        if (!hit) {
            stats_.inc(req.type == AccessType::Load ? "demand_load_miss"
                                                    : "demand_store_miss");
            stats_.inc("read_miss_total");
        }
    } else if (req.type == AccessType::Prefetch && !hit) {
        stats_.inc("read_miss_total");
    }

    Cycle ready;
    if (hit) {
        if (is_demand) {
            if (blk->prefetched && !blk->used) {
                blk->used = true;
                const bool timely = blk->fill_time <= t;
                stats_.inc(timely ? "prefetch_useful_timely"
                                  : "prefetch_useful_late");
                if (prefetcher_)
                    prefetcher_->onPrefetchUsed(req.block, timely);
            }
            blk->reused = true;
            const std::uint32_t set = setOf(req.block);
            const std::size_t base =
                static_cast<std::size_t>(set) * cfg_.ways;
            const auto way =
                static_cast<std::uint32_t>(blk - &blocks_[base]);
            ReplAccess ctx;
            ctx.pc = req.pc;
            repl_->onHit(set, way, ctx);
        }
        if (req.type == AccessType::Store ||
            req.type == AccessType::Writeback)
            blk->dirty = true;
        ready = std::max(t, blk->fill_time);
    } else {
        if (req.type == AccessType::Writeback) {
            // Allocate the dirty line without stalling on MSHRs.
            insertBlock(req, t);
            ready = t;
        } else {
            const Cycle start = reserveMshr(t);
            MemAccess fwd = req;
            fwd.at = start;
            const Cycle done = next_.access(fwd);
            inflight_.insert(done);
            insertBlock(req, done);
            ready = done;
        }
    }

    // Train the attached prefetcher on the demand stream at this level.
    if (is_demand && prefetcher_) {
        PrefetchAccess acc;
        acc.pc = req.pc;
        acc.address = req.block << kBlockShift;
        acc.block = req.block;
        acc.hit = hit;
        acc.is_write = (req.type == AccessType::Store);
        acc.cycle = t;
        acc.core = req.core;
        scratch_candidates_.clear();
        prefetcher_->train(acc, scratch_candidates_);
        if (!scratch_candidates_.empty())
            issuePrefetches(acc, scratch_candidates_);
    }
    return ready;
}

void
Cache::flush()
{
    for (auto& b : blocks_)
        b = Block{};
    inflight_.clear();
    stats_.reset();
}

} // namespace pythia::sim
