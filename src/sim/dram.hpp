/**
 * @file
 * Main-memory model: channels, ranks, banks with open-row policy, a
 * serializing data bus per channel, and an epoch-based bandwidth monitor.
 *
 * Matches the modelling level of ChampSim's DRAM controller that the
 * paper measured on (Table 5): DDR4-2400-like timing (tRCD/tRP/tCAS), 64b
 * data bus per channel, 2KB row buffers, configurable channel count and a
 * transfer-rate (MTPS) knob used for the bandwidth-scaling studies of
 * Fig. 8(b)/8(d)/11.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/prefetcher_api.hpp"

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia::sim {

/** DRAM configuration; defaults model single-channel DDR4-2400 at a 4GHz
 *  core clock (paper Table 5). */
struct DramConfig
{
    std::uint32_t channels = 1;
    std::uint32_t ranks_per_channel = 1;
    std::uint32_t banks_per_rank = 8;
    std::uint32_t row_bytes = 2048;        ///< 2KB row buffer per bank
    std::uint32_t mtps = 2400;             ///< mega-transfers per second
    std::uint32_t core_mhz = 4000;         ///< core clock, for conversion
    std::uint32_t bus_bytes_per_transfer = 8; ///< 64-bit data bus
    double t_rcd_ns = 15.0;
    double t_rp_ns = 15.0;
    double t_cas_ns = 12.5;
    Cycle monitor_epoch = 4096;            ///< bandwidth monitor window
};

/**
 * The DRAM device pool. Accesses are resolved analytically: each bank and
 * each channel data bus tracks its next-free cycle, so queueing delay and
 * bus serialization (the key effects behind the paper's bandwidth
 * sensitivity results) emerge from contention.
 */
class Dram : public BandwidthInfo
{
  public:
    explicit Dram(const DramConfig& cfg);

    // Non-copyable: the counter slots point into this object's stats_.
    Dram(const Dram&) = delete;
    Dram& operator=(const Dram&) = delete;

    /**
     * Issue a 64B line read at @p at; returns the completion cycle (data
     * fully transferred on the channel bus).
     */
    Cycle access(Addr block, Cycle at, bool is_write);

    // BandwidthInfo
    double utilization() const override { return util_; }
    bool highUsage() const override { return util_ >= high_threshold_; }

    /** Threshold above which utilization counts as "high" (default 0.5). */
    void setHighThreshold(double t) { high_threshold_ = t; }

    /** Cycles a full 64B line occupies one channel's data bus. */
    Cycle lineTransferCycles() const { return line_transfer_cycles_; }

    /** Row-hit access latency in core cycles (tCAS). */
    Cycle rowHitCycles() const { return t_cas_; }

    /** Row-miss access latency in core cycles (tRP+tRCD+tCAS). */
    Cycle rowMissCycles() const { return t_rp_ + t_rcd_ + t_cas_; }

    /** Counters: reads, writes, row hits/misses, busy cycles. */
    const StatGroup& stats() const { return stats_; }
    StatGroup& stats() { return stats_; }

    /**
     * Fraction of elapsed epochs spent in each utilization bucket
     * [<25%, 25-50%, 50-75%, >=75%] — the Fig. 14 runtime breakdown.
     */
    std::vector<double> utilizationBuckets() const;

    /** Raw epoch counts behind utilizationBuckets(). Unlike the
     *  normalized fractions these subtract and add cleanly, which is
     *  what makes per-window RunResult deltas composable. */
    std::vector<std::uint64_t> bucketEpochCounts() const
    {
        return {bucket_epochs_[0], bucket_epochs_[1], bucket_epochs_[2],
                bucket_epochs_[3]};
    }

    /** Reset statistics and the bucket histogram (keeps device state). */
    void resetStats();

    const DramConfig& config() const { return cfg_; }

    /** Serialize bank/bus timing state + bandwidth monitor + statistics
     *  (snapshot subsystem). */
    void saveState(snap::Writer& w) const;

    /** Restore a saveState() image from an identical DRAM geometry.
     *  @throws snap::CorruptError on shape mismatch. */
    void loadState(snap::Reader& r);

  private:
    struct Bank
    {
        Cycle next_free = 0;
        std::uint64_t open_row = ~0ull;
    };

    void advanceEpoch(Cycle now);

    DramConfig cfg_;
    Cycle t_rcd_, t_rp_, t_cas_;
    Cycle line_transfer_cycles_;
    // Strength-reduced address mapping (power-of-two geometries; see
    // the constructor). Masks/shift are unused when the _pow2_ flag of
    // their term is false.
    bool ch_pow2_ = false, bank_pow2_ = false, row_pow2_ = false;
    std::uint64_t ch_mask_ = 0, bank_mask_ = 0;
    std::uint32_t row_shift_ = 0;
    double high_threshold_ = 0.5;

    std::vector<Bank> banks_;            ///< channels*ranks*banks
    std::vector<Cycle> bus_next_free_;   ///< per channel

    // Bandwidth monitor state.
    Cycle epoch_start_ = 0;
    Cycle busy_in_epoch_ = 0;
    double util_ = 0.0;
    std::uint64_t bucket_epochs_[4] = {0, 0, 0, 0};

    StatGroup stats_;
    // Per-access counters, resolved once (StatGroup::counterSlot).
    std::uint64_t* c_row_hits_;
    std::uint64_t* c_row_misses_;
    std::uint64_t* c_bus_busy_cycles_;
    std::uint64_t* c_reads_;
    std::uint64_t* c_writes_;
};

} // namespace pythia::sim
