#include "sim/prefetcher_api.hpp"

#include "snapshot/codec.hpp"

namespace pythia::sim {

void
PrefetcherApi::saveState(snap::Writer&) const
{
    throw snap::UnsupportedError(
        "prefetcher '" + name() +
        "' does not support state snapshots (saveState not implemented)");
}

void
PrefetcherApi::loadState(snap::Reader&)
{
    throw snap::UnsupportedError(
        "prefetcher '" + name() +
        "' does not support state snapshots (loadState not implemented)");
}

} // namespace pythia::sim
