#include "sim/core.hpp"

#include <algorithm>
#include <cassert>

#include "snapshot/codec.hpp"

namespace pythia::sim {

Core::Core(const CoreConfig& cfg, std::uint32_t id, MemoryLevel& l1d,
           wl::Workload& workload)
    : cfg_(cfg), id_(id), l1d_(l1d), workload_(workload),
      addr_offset_(static_cast<Addr>(id) << 46),
      rob_retire_slot_(cfg.rob_size, 0), stats_("core"),
      c_loads_(stats_.counterSlot("loads")),
      c_stores_(stats_.counterSlot("stores")),
      c_mem_instrs_(stats_.counterSlot("mem_instrs"))
{
    assert(cfg_.rob_size > 0 && cfg_.width > 0);
    rob_pow2_ = (cfg_.rob_size & (cfg_.rob_size - 1)) == 0;
    rob_mask_ = cfg_.rob_size - 1;
}

void
Core::dispatch(Cycle completion_cycle)
{
    const std::uint32_t width = cfg_.width;
    std::uint64_t ds = next_dispatch_slot_;

    // ROB occupancy: the instruction rob_size older must have retired.
    const std::uint64_t rob_idx = rob_pow2_
                                      ? (instr_count_ & rob_mask_)
                                      : (instr_count_ % cfg_.rob_size);
    ds = std::max(ds, rob_retire_slot_[rob_idx]);

    std::uint64_t completion_slot;
    if (completion_cycle == 0) {
        completion_slot = ds + cfg_.nonmem_latency * width;
    } else {
        completion_slot = std::max(ds + width, completion_cycle * width);
    }

    // In-order retirement, one slot per instruction.
    const std::uint64_t retire_slot =
        std::max(last_retire_slot_ + 1, completion_slot);
    rob_retire_slot_[rob_idx] = retire_slot;
    last_retire_slot_ = retire_slot;
    next_dispatch_slot_ = ds + 1;
    ++instr_count_;
}

void
Core::dispatchNonMemRun(std::uint32_t n)
{
    const std::uint64_t lat_slots =
        static_cast<std::uint64_t>(cfg_.nonmem_latency) * cfg_.width;
    std::uint64_t ic = instr_count_;
    std::uint64_t nds = next_dispatch_slot_;
    std::uint64_t lrs = last_retire_slot_;
    std::uint64_t* rob = rob_retire_slot_.data();

    if (rob_pow2_) {
        const std::uint64_t mask = rob_mask_;
        for (std::uint32_t g = 0; g < n; ++g) {
            const std::uint64_t idx = ic & mask;
            const std::uint64_t ds = std::max(nds, rob[idx]);
            const std::uint64_t retire = std::max(lrs + 1, ds + lat_slots);
            rob[idx] = retire;
            lrs = retire;
            nds = ds + 1;
            ++ic;
        }
    } else {
        for (std::uint32_t g = 0; g < n; ++g) {
            const std::uint64_t idx = ic % cfg_.rob_size;
            const std::uint64_t ds = std::max(nds, rob[idx]);
            const std::uint64_t retire = std::max(lrs + 1, ds + lat_slots);
            rob[idx] = retire;
            lrs = retire;
            nds = ds + 1;
            ++ic;
        }
    }

    instr_count_ = ic;
    next_dispatch_slot_ = nds;
    last_retire_slot_ = lrs;
}

void
Core::step()
{
    const wl::TraceRecord rec = workload_.next();
    ++records_consumed_;

    if (rec.gap > 0)
        dispatchNonMemRun(rec.gap);

    Cycle issue_cycle = next_dispatch_slot_ / cfg_.width;
    // Address-dependent loads cannot issue before the producing load's
    // data returns (pointer chase / loaded index).
    if (rec.depends_on_prev && !rec.is_write)
        issue_cycle = std::max(issue_cycle, last_load_done_);

    MemAccess req;
    req.pc = rec.pc;
    req.block = blockAddr(rec.addr + addr_offset_);
    req.type = rec.is_write ? AccessType::Store : AccessType::Load;
    req.at = issue_cycle;
    req.core = id_;
    const Cycle done = l1d_.access(req);

    if (rec.is_write) {
        // Stores retire through the store buffer without waiting on memory.
        dispatch(0);
        ++*c_stores_;
    } else {
        dispatch(done);
        last_load_done_ = done;
        ++*c_loads_;
    }
    ++*c_mem_instrs_;
}

void
Core::runUntil(Cycle until)
{
    while (currentCycle() < until)
        step();
}

void
Core::saveState(snap::Writer& w) const
{
    w.u64(instr_count_);
    w.u64(records_consumed_);
    w.u64(next_dispatch_slot_);
    w.u64(last_retire_slot_);
    w.u64(last_load_done_);
    w.vecU64(rob_retire_slot_);
    stats_.saveState(w);
}

void
Core::loadState(snap::Reader& r)
{
    const std::uint64_t instr_count = r.u64();
    const std::uint64_t records_consumed = r.u64();
    const std::uint64_t next_dispatch_slot = r.u64();
    const std::uint64_t last_retire_slot = r.u64();
    const std::uint64_t last_load_done = r.u64();
    std::vector<std::uint64_t> rob = r.vecU64();
    if (rob.size() != rob_retire_slot_.size())
        throw snap::CorruptError(
            "snapshot corrupt: core ROB size " +
            std::to_string(rob.size()) +
            " does not match this configuration (" +
            std::to_string(rob_retire_slot_.size()) + ")");
    stats_.loadState(r);

    instr_count_ = instr_count;
    records_consumed_ = records_consumed;
    next_dispatch_slot_ = next_dispatch_slot;
    last_retire_slot_ = last_retire_slot;
    last_load_done_ = last_load_done;
    rob_retire_slot_ = std::move(rob);

    // Re-derive the workload's mid-stream position by replay: rewind to
    // the seed state, then discard exactly as many records as the saved
    // run had consumed. Generators are pure functions of their seed, so
    // this lands bit-exactly where the snapshot was taken.
    workload_.reset();
    for (std::uint64_t i = 0; i < records_consumed_; ++i)
        (void)workload_.next();
}

} // namespace pythia::sim
