#include "common/config.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/spec.hpp"

namespace pythia {

void
Config::set(const std::string& key, const std::string& value)
{
    kv_[key] = value;
}

void
Config::setInt(const std::string& key, std::int64_t value)
{
    kv_[key] = std::to_string(value);
}

void
Config::setDouble(const std::string& key, double value)
{
    kv_[key] = std::to_string(value);
}

bool
Config::has(const std::string& key) const
{
    return kv_.count(key) > 0;
}

std::string
Config::getString(const std::string& key, const std::string& dflt) const
{
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
}

std::int64_t
Config::getInt(const std::string& key, std::int64_t dflt) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return dflt;
    std::size_t pos = 0;
    std::int64_t v = 0;
    try {
        v = std::stoll(it->second, &pos);
    } catch (const std::exception&) {
        pos = 0; // fall through to the descriptive error below
    }
    if (pos != it->second.size() || it->second.empty())
        throw std::invalid_argument("non-integer config value for " + key +
                                    ": " + it->second);
    return v;
}

double
Config::getDouble(const std::string& key, double dflt) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return dflt;
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(it->second, &pos);
    } catch (const std::exception&) {
        pos = 0; // fall through to the descriptive error below
    }
    if (pos != it->second.size() || it->second.empty())
        throw std::invalid_argument("non-numeric config value for " + key +
                                    ": " + it->second);
    return v;
}

bool
Config::getBool(const std::string& key, bool dflt) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return dflt;
    const std::string& s = it->second;
    if (s == "1" || s == "true" || s == "yes")
        return true;
    if (s == "0" || s == "false" || s == "no")
        return false;
    throw std::invalid_argument("non-boolean config value for " + key +
                                ": " + s);
}

std::vector<std::string>
Config::parseArgs(int argc, const char* const* argv)
{
    std::vector<std::string> ignored;
    for (int i = 1; i < argc; ++i) {
        const std::string tok = argv[i];
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
            ignored.push_back(tok);
            continue;
        }
        set(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return ignored;
}

void
Config::parseArgsStrict(int argc, const char* const* argv,
                        const std::vector<std::string>& allowed)
{
    for (int i = 1; i < argc; ++i) {
        const std::string tok = argv[i];
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument(
                "malformed argument '" + tok +
                "' (expected key=value; accepted keys: " +
                joinKeys(allowed) + ")");
        const std::string key = tok.substr(0, eq);
        if (std::find(allowed.begin(), allowed.end(), key) ==
            allowed.end())
            throw std::invalid_argument(
                "unknown argument '" + key + "'" +
                didYouMean(key, allowed) +
                " (accepted keys: " + joinKeys(allowed) + ")");
        set(key, tok.substr(eq + 1));
    }
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(kv_.size());
    for (const auto& [k, v] : kv_)
        out.push_back(k);
    return out;
}

} // namespace pythia
