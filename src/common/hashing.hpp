/**
 * @file
 * Hash primitives used to index tile-coded planes (Pythia QVStore),
 * signature tables (SPP) and pattern history tables (Bingo/DSPatch).
 *
 * All hashes here are cheap, deterministic and well-mixing; the QVStore
 * planes additionally apply a per-plane shift constant before hashing, as
 * described in §4.2.1 of the paper ("the given feature is first shifted by
 * a shifting constant ... followed by a hashing").
 */
#pragma once

#include <cstdint>

namespace pythia {

/** Knuth multiplicative hash of a 64-bit key. */
constexpr std::uint64_t
knuthHash(std::uint64_t x)
{
    return x * 0x9E3779B97F4A7C15ull;
}

/** Full-avalanche 64-bit mixer (murmur3 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

/** Fold a 64-bit value down to @p bits by repeated XOR of bit groups. */
constexpr std::uint32_t
foldedXor(std::uint64_t value, unsigned bits)
{
    const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
    // Fixed trip count (ceil(64/bits) chunks) instead of shifting until
    // the value drains: same chunks, same result, but the loop bound no
    // longer depends on the (well-mixed, hence unpredictable) value
    // being folded, so the branch predictor sees a constant pattern.
    std::uint64_t folded = 0;
    for (unsigned shift = 0; shift < 64; shift += bits)
        folded ^= (value >> shift) & mask;
    return static_cast<std::uint32_t>(folded);
}

/** Combine two hashes (boost::hash_combine recipe, 64-bit). */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t v)
{
    return seed ^ (mix64(v) + 0x9E3779B97F4A7C15ull + (seed << 12) +
                   (seed >> 4));
}

/**
 * Tile-coding plane index: shift the feature by a per-plane constant, mix,
 * and fold into @p index_bits bits. Distinct @p plane_shift values give the
 * overlapping quantizations that tile coding requires (paper Fig. 5(c)).
 */
constexpr std::uint32_t
planeIndex(std::uint64_t feature, unsigned plane_shift, unsigned index_bits)
{
    const std::uint64_t shifted = feature + (feature << plane_shift);
    return foldedXor(mix64(shifted), index_bits) &
           ((1u << index_bits) - 1);
}

} // namespace pythia
