/**
 * @file
 * Small, deterministic pseudo-random number generator.
 *
 * The simulator must be bit-reproducible given a seed (tests rely on it and
 * the paper's epsilon-greedy exploration needs a cheap uniform source), so
 * we use a self-contained xorshift128+ generator instead of std::mt19937 —
 * it is faster, trivially seedable, and its output is stable across
 * standard-library implementations.
 */
#pragma once

#include <cstdint>

namespace pythia {

/** The full internal state of an Rng stream (two xorshift128+ words).
 *  Serializable: setState(state()) reproduces the stream exactly from
 *  the current position — the property snapshots rely on. */
struct RngState
{
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;

    bool operator==(const RngState&) const = default;
};

/**
 * Deterministic xorshift128+ PRNG.
 *
 * Passes BigCrush except for the two lowest bits; we never expose those
 * alone. Not cryptographic — exactly what a microarchitecture simulator
 * needs and nothing more.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Mid-stream state, exactly as positioned now. */
    RngState state() const { return {s0_, s1_}; }

    /** Restore a state captured by state(). Rejects the all-zero state
     *  (unreachable by any seed; xorshift would emit zeros forever). */
    void setState(const RngState& st);

    // The per-draw primitives are defined inline: the simulator draws
    // tens of millions of values per run (workload generators, the
    // epsilon-greedy policy), and a call per draw costs more than the
    // xorshift step itself in non-LTO builds.

    /** Next raw 64-bit value. */
    std::uint64_t next64()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound)
    {
        // Rejection-free multiply-shift; bias < 2^-64 * bound.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next64()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p) { return nextDouble() < p; }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi)
    {
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(nextBounded(span));
    }

    /** Sample from a geometric-ish heavy-tail in [1, max_v]. */
    std::uint64_t nextHeavyTail(std::uint64_t max_v);

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace pythia
