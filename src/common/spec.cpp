#include "common/spec.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace pythia {

namespace {

std::string
trim(const std::string& s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

[[noreturn]] void
fail(const std::string& spec, const std::string& why)
{
    throw std::invalid_argument("bad spec '" + spec + "': " + why);
}

ParsedSpec
parsePart(const std::string& spec, const std::string& part)
{
    ParsedSpec out;
    const std::size_t colon = part.find(':');
    out.name = trim(part.substr(0, colon));
    if (out.name.empty())
        fail(spec, "empty component name");
    std::transform(out.name.begin(), out.name.end(), out.name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (colon == std::string::npos)
        return out;

    const std::string param_str = part.substr(colon + 1);
    if (trim(param_str).empty())
        fail(spec, "'" + out.name + "' has a ':' but no parameters");
    for (const std::string& kv : split(param_str, ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            fail(spec, "parameter '" + trim(kv) +
                           "' is not of the form key=value");
        const std::string key = trim(kv.substr(0, eq));
        const std::string value = trim(kv.substr(eq + 1));
        if (key.empty())
            fail(spec, "empty parameter name in '" + trim(kv) + "'");
        if (value.empty())
            fail(spec, "empty value for parameter '" + key + "' of '" +
                           out.name + "'");
        out.params.emplace_back(key, value);
    }
    return out;
}

std::size_t
editDistance(const std::string& a, const std::string& b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst = diag + (a[i - 1] != b[j - 1]);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
        }
    }
    return row[b.size()];
}

} // namespace

std::vector<ParsedSpec>
parseSpecList(const std::string& spec)
{
    std::vector<ParsedSpec> out;
    for (const std::string& part : split(spec, '+')) {
        if (trim(part).empty())
            fail(spec, "empty component in composition");
        out.push_back(parsePart(spec, part));
    }
    return out;
}

std::string
closestMatch(const std::string& word,
             const std::vector<std::string>& candidates)
{
    std::string best;
    std::size_t best_d = 4; // hint only when within edit distance 3
    for (const auto& c : candidates) {
        const std::size_t d = editDistance(word, c);
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    return best;
}

std::string
didYouMean(const std::string& word,
           const std::vector<std::string>& candidates)
{
    const std::string best = closestMatch(word, candidates);
    return best.empty() ? "" : "; did you mean '" + best + "'?";
}

std::string
joinKeys(const std::vector<std::string>& keys, const std::string& empty)
{
    std::string out;
    for (const auto& k : keys) {
        if (!out.empty())
            out += ", ";
        out += k;
    }
    return out.empty() ? empty : out;
}

} // namespace pythia
