#include "common/stats.hpp"

#include <utility>

#include "snapshot/codec.hpp"

namespace pythia {

StatGroup::StatGroup(std::string name) : name_(std::move(name)) {}

void
StatGroup::inc(const std::string& key, std::uint64_t delta)
{
    counters_[key] += delta;
}

void
StatGroup::set(const std::string& key, double value)
{
    values_[key] = value;
}

std::uint64_t
StatGroup::counter(const std::string& key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
}

double
StatGroup::value(const std::string& key) const
{
    auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string& key) const
{
    return counters_.count(key) > 0 || values_.count(key) > 0;
}

void
StatGroup::reset()
{
    for (auto& [k, v] : counters_)
        v = 0;
    for (auto& [k, v] : values_)
        v = 0.0;
}

void
StatGroup::saveState(snap::Writer& w) const
{
    // std::map iterates in sorted key order, so identical statistics
    // always serialize to identical bytes (snapshot diffing depends on
    // byte-stable encodings).
    w.u64(counters_.size());
    for (const auto& [k, v] : counters_) {
        w.str(k);
        w.u64(v);
    }
    w.u64(values_.size());
    for (const auto& [k, v] : values_) {
        w.str(k);
        w.f64(v);
    }
}

void
StatGroup::loadState(snap::Reader& r)
{
    reset();
    const std::uint64_t n_counters = r.u64();
    for (std::uint64_t i = 0; i < n_counters; ++i) {
        const std::string k = r.str();
        counters_[k] = r.u64();
    }
    const std::uint64_t n_values = r.u64();
    for (std::uint64_t i = 0; i < n_values; ++i) {
        const std::string k = r.str();
        values_[k] = r.f64();
    }
}

void
StatGroup::dump(std::ostream& os) const
{
    const std::string prefix = name_.empty() ? "" : name_ + ".";
    for (const auto& [k, v] : counters_)
        os << prefix << k << " " << v << "\n";
    for (const auto& [k, v] : values_)
        os << prefix << k << " " << v << "\n";
}

} // namespace pythia
