/**
 * @file
 * Fundamental address/cycle types and address-arithmetic helpers shared by
 * every subsystem of the Pythia reproduction.
 *
 * The whole simulator works on byte addresses; helpers convert to cacheline
 * and page granularity assuming the paper's traditionally-sized 64B
 * cachelines and 4KB pages.
 */
#pragma once

#include <cstdint>
#include <cstddef>

namespace pythia {

/** A byte-granular physical address. */
using Addr = std::uint64_t;
/** A simulation time point, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Cacheline size in bytes (fixed at 64B as in the paper, §3.1). */
inline constexpr std::uint64_t kBlockSize = 64;
/** log2 of the cacheline size. */
inline constexpr std::uint64_t kBlockShift = 6;
/** Physical page size in bytes (fixed at 4KB as in the paper, §3.1). */
inline constexpr std::uint64_t kPageSize = 4096;
/** log2 of the page size. */
inline constexpr std::uint64_t kPageShift = 12;
/** Number of cachelines per page (64 for 4KB/64B). */
inline constexpr std::uint64_t kBlocksPerPage = kPageSize / kBlockSize;

/** Cacheline-granular address (byte address with block offset dropped). */
constexpr Addr
blockAddr(Addr byte_addr)
{
    return byte_addr >> kBlockShift;
}

/** Byte address of the first byte of the cacheline containing @p byte_addr. */
constexpr Addr
blockBase(Addr byte_addr)
{
    return byte_addr & ~(kBlockSize - 1);
}

/** Physical page number of a byte address. */
constexpr Addr
pageId(Addr byte_addr)
{
    return byte_addr >> kPageShift;
}

/** Physical page number of a cacheline-granular address. */
constexpr Addr
pageIdOfBlock(Addr block_addr)
{
    return block_addr >> (kPageShift - kBlockShift);
}

/** Cacheline index of a byte address within its page, in [0, 63]. */
constexpr std::uint32_t
pageOffset(Addr byte_addr)
{
    return static_cast<std::uint32_t>((byte_addr >> kBlockShift) &
                                      (kBlocksPerPage - 1));
}

/**
 * True when adding a (signed) cacheline offset to a cacheline address stays
 * inside the same physical page. Out-of-page actions receive the R_CL
 * reward in Pythia (paper §3.1).
 */
constexpr bool
sameePageAfterOffset(Addr block_addr, std::int32_t line_offset)
{
    const std::int64_t target =
        static_cast<std::int64_t>(block_addr) + line_offset;
    if (target < 0)
        return false;
    return pageIdOfBlock(static_cast<Addr>(target)) ==
           pageIdOfBlock(block_addr);
}

/** Access type carried by a memory request. */
enum class AccessType : std::uint8_t {
    Load,       ///< demand load
    Store,      ///< demand store (write-allocate)
    Prefetch,   ///< prefetcher-issued request
    Writeback,  ///< dirty eviction travelling down the hierarchy
};

/** Human-readable name for an AccessType. */
constexpr const char*
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::Load: return "load";
      case AccessType::Store: return "store";
      case AccessType::Prefetch: return "prefetch";
      case AccessType::Writeback: return "writeback";
    }
    return "?";
}

} // namespace pythia
