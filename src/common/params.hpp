/**
 * @file
 * Typed view over the key=value parameters of one parsed spec part
 * (common/spec.hpp), shared by every registry that constructs components
 * from spec strings — prefetchers (sim/prefetcher_registry.hpp) and
 * workloads (workloads/registry.hpp).
 *
 * Getters return the default when the key is absent and throw
 * std::invalid_argument (naming the owning component and the key) when
 * the value does not parse as the requested type.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pythia {

class SpecParams
{
  public:
    SpecParams() = default;
    SpecParams(std::string owner, std::map<std::string, std::string> kv)
        : owner_(std::move(owner)), kv_(std::move(kv))
    {
    }

    /** Name of the component these params configure (for messages). */
    const std::string& owner() const { return owner_; }

    bool has(const std::string& key) const;

    std::string getString(const std::string& key,
                          const std::string& dflt = "") const;
    std::int64_t getInt(const std::string& key, std::int64_t dflt) const;
    std::uint32_t getU32(const std::string& key, std::uint32_t dflt) const;
    std::uint64_t getU64(const std::string& key, std::uint64_t dflt) const;
    std::int32_t getI32(const std::string& key, std::int32_t dflt) const;
    double getDouble(const std::string& key, double dflt) const;

    /** Byte size with an optional K / M / G suffix ("256M", "4096"). */
    std::uint64_t getBytes(const std::string& key,
                           std::uint64_t dflt) const;

    /** '/'-separated integer list ("2/3/5" -> {2, 3, 5}). */
    std::vector<std::int32_t>
    getI32List(const std::string& key,
               const std::vector<std::int32_t>& dflt) const;

    /** All keys present, sorted. */
    std::vector<std::string> keys() const;

  private:
    [[noreturn]] void badValue(const std::string& key,
                               const std::string& value,
                               const char* expected) const;

    std::string owner_;
    std::map<std::string, std::string> kv_;
};

} // namespace pythia
