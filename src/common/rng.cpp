#include "common/rng.hpp"

#include <cassert>
#include <stdexcept>

namespace pythia {

namespace {

/** splitmix64 step, used only to expand the user seed into PRNG state. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    s0_ = splitmix64(x);
    s1_ = splitmix64(x);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1; // xorshift state must not be all-zero
}

void
Rng::setState(const RngState& st)
{
    if (st.s0 == 0 && st.s1 == 0)
        throw std::invalid_argument(
            "Rng::setState: all-zero state is not a valid xorshift128+ "
            "state");
    s0_ = st.s0;
    s1_ = st.s1;
}

std::uint64_t
Rng::next64()
{
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection-free multiply-shift; bias is < 2^-64 * bound, negligible.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

std::uint64_t
Rng::nextHeavyTail(std::uint64_t max_v)
{
    // Repeated halving: P(v >= 2^k) ~ 2^-k, clamped to [1, max_v].
    std::uint64_t v = 1;
    while (v < max_v && nextBool(0.5))
        v *= 2;
    return v > max_v ? max_v : v;
}

} // namespace pythia
