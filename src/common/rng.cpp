#include "common/rng.hpp"

#include <stdexcept>

namespace pythia {

namespace {

/** splitmix64 step, used only to expand the user seed into PRNG state. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    s0_ = splitmix64(x);
    s1_ = splitmix64(x);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1; // xorshift state must not be all-zero
}

void
Rng::setState(const RngState& st)
{
    if (st.s0 == 0 && st.s1 == 0)
        throw std::invalid_argument(
            "Rng::setState: all-zero state is not a valid xorshift128+ "
            "state");
    s0_ = st.s0;
    s1_ = st.s1;
}

std::uint64_t
Rng::nextHeavyTail(std::uint64_t max_v)
{
    // Repeated halving: P(v >= 2^k) ~ 2^-k, clamped to [1, max_v].
    std::uint64_t v = 1;
    while (v < max_v && nextBool(0.5))
        v *= 2;
    return v > max_v ? max_v : v;
}

} // namespace pythia
