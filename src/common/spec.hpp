/**
 * @file
 * Parser for parameterized component spec strings.
 *
 * A spec names a component plus optional key=value parameters:
 *
 *     "spp"
 *     "spp:max_lookahead=4"
 *     "pythia:alpha=0.006,gamma=0.55"
 *     "stride+spp+bingo"          (composition of three components)
 *     "stride:degree=2+spp"       (per-part parameters compose too)
 *
 * The grammar is shared by every registry that constructs components
 * from strings (prefetchers today; replacement policies and workload
 * generators are natural future users). It plays the role ChampSim's
 * ini-file knobs play in the paper's artifact: reconfiguration without
 * recompilation (paper §6.6).
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pythia {

/** One parsed component of a spec string. */
struct ParsedSpec
{
    std::string name;                   ///< component name, lowercase
    /** key=value parameters in source order (keys unvalidated here). */
    std::vector<std::pair<std::string, std::string>> params;
};

/**
 * Parse @p spec into its "+"-separated parts, each of the form
 * `name[:key=value[,key=value]...]`. Whitespace around tokens is
 * ignored. @throws std::invalid_argument on structural errors (empty
 * part, empty key, empty value, missing '='), with the offending spec
 * quoted in the message.
 */
std::vector<ParsedSpec> parseSpecList(const std::string& spec);

/**
 * Closest candidate to @p word by edit distance, or "" when nothing is
 * within distance 3 — used for "did you mean" hints in registry errors.
 */
std::string closestMatch(const std::string& word,
                         const std::vector<std::string>& candidates);

/** "; did you mean 'x'?" when a close candidate exists, else "". */
std::string didYouMean(const std::string& word,
                       const std::vector<std::string>& candidates);

/** Comma-join @p keys for error messages; @p empty when none exist. */
std::string joinKeys(const std::vector<std::string>& keys,
                     const std::string& empty = "(none)");

} // namespace pythia
