#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <utility>

namespace pythia {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    assert(header_.empty() || row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
    return buf;
}

void
Table::print() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::cout << row[c];
            for (std::size_t p = row[c].size(); p < width[c] + 2; ++p)
                std::cout << ' ';
        }
        std::cout << "\n";
    };

    std::cout << "\n== " << title_ << " ==\n";
    if (!header_.empty()) {
        print_row(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        std::cout << std::string(total, '-') << "\n";
    }
    for (const auto& row : rows_)
        print_row(row);
    std::cout.flush();
}

bool
Table::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ",";
            out << row[c];
        }
        out << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& row : rows_)
        emit(row);
    return static_cast<bool>(out);
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace pythia
