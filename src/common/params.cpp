#include "common/params.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace pythia {

bool
SpecParams::has(const std::string& key) const
{
    return kv_.count(key) != 0;
}

std::string
SpecParams::getString(const std::string& key, const std::string& dflt) const
{
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
}

void
SpecParams::badValue(const std::string& key, const std::string& value,
                     const char* expected) const
{
    throw std::invalid_argument(owner_ + ": parameter '" + key +
                                "' expects " + expected + ", got '" +
                                value + "'");
}

std::int64_t
SpecParams::getInt(const std::string& key, std::int64_t dflt) const
{
    const auto it = kv_.find(key);
    if (it == kv_.end())
        return dflt;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        badValue(key, it->second, "an integer");
    return v;
}

std::uint32_t
SpecParams::getU32(const std::string& key, std::uint32_t dflt) const
{
    const std::int64_t v = getInt(key, dflt);
    if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX))
        badValue(key, kv_.at(key), "a non-negative 32-bit integer");
    return static_cast<std::uint32_t>(v);
}

std::uint64_t
SpecParams::getU64(const std::string& key, std::uint64_t dflt) const
{
    const std::int64_t v = getInt(key, static_cast<std::int64_t>(dflt));
    if (v < 0)
        badValue(key, kv_.at(key), "a non-negative integer");
    return static_cast<std::uint64_t>(v);
}

std::int32_t
SpecParams::getI32(const std::string& key, std::int32_t dflt) const
{
    const std::int64_t v = getInt(key, dflt);
    if (v < INT32_MIN || v > INT32_MAX)
        badValue(key, kv_.at(key), "a 32-bit integer");
    return static_cast<std::int32_t>(v);
}

double
SpecParams::getDouble(const std::string& key, double dflt) const
{
    const auto it = kv_.find(key);
    if (it == kv_.end())
        return dflt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        badValue(key, it->second, "a number");
    return v;
}

std::uint64_t
SpecParams::getBytes(const std::string& key, std::uint64_t dflt) const
{
    const auto it = kv_.find(key);
    if (it == kv_.end())
        return dflt;
    const std::string& s = it->second;
    // strtoull silently wraps negative input ("-1" -> 2^64-1), so
    // reject a sign explicitly before parsing.
    if (!s.empty() && (s[0] == '-' || s[0] == '+'))
        badValue(key, s, "a non-negative byte size (optional K/M/G "
                         "suffix)");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || end == s.c_str())
        badValue(key, s, "a byte size (optional K/M/G suffix)");
    std::uint64_t shift = 0;
    if (*end != '\0') {
        switch (*end) {
        case 'K': case 'k': shift = 10; break;
        case 'M': case 'm': shift = 20; break;
        case 'G': case 'g': shift = 30; break;
        default:
            badValue(key, s, "a byte size (optional K/M/G suffix)");
        }
        if (*(end + 1) != '\0')
            badValue(key, s, "a byte size (optional K/M/G suffix)");
        if (shift != 0 && (v >> (64 - shift)) != 0)
            badValue(key, s, "a byte size that fits in 64 bits");
    }
    return static_cast<std::uint64_t>(v) << shift;
}

std::vector<std::int32_t>
SpecParams::getI32List(const std::string& key,
                       const std::vector<std::int32_t>& dflt) const
{
    const auto it = kv_.find(key);
    if (it == kv_.end())
        return dflt;
    const std::string& s = it->second;
    std::vector<std::int32_t> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i < s.size() && s[i] != '/')
            continue;
        const std::string tok = s.substr(start, i - start);
        start = i + 1;
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(tok.c_str(), &end, 0);
        if (tok.empty() || errno != 0 || end == tok.c_str() ||
            *end != '\0' || v < INT32_MIN || v > INT32_MAX)
            badValue(key, s, "a '/'-separated integer list (e.g. 2/3/5)");
        out.push_back(static_cast<std::int32_t>(v));
    }
    return out;
}

std::vector<std::string>
SpecParams::keys() const
{
    std::vector<std::string> out;
    for (const auto& [k, v] : kv_)
        out.push_back(k);
    return out;
}

} // namespace pythia
