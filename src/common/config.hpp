/**
 * @file
 * Minimal key/value configuration registry.
 *
 * Plays the role of ChampSim's ini files in the original artifact: every
 * prefetcher and simulator component can be parameterized from string
 * key/value pairs, which the examples and benches use to build sweeps
 * ("customization via configuration registers", paper §6.6).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pythia {

/**
 * String-keyed configuration with typed accessors and defaults.
 */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string& key, const std::string& value);
    /** Set an integer key. */
    void setInt(const std::string& key, std::int64_t value);
    /** Set a floating-point key. */
    void setDouble(const std::string& key, double value);

    /** True if the key is present. */
    bool has(const std::string& key) const;

    /** String lookup with default. */
    std::string getString(const std::string& key,
                          const std::string& dflt = "") const;
    /** Integer lookup with default; throws std::invalid_argument on junk. */
    std::int64_t getInt(const std::string& key, std::int64_t dflt = 0) const;
    /** Double lookup with default; throws std::invalid_argument on junk. */
    double getDouble(const std::string& key, double dflt = 0.0) const;
    /** Bool lookup; accepts 0/1/true/false/yes/no. */
    bool getBool(const std::string& key, bool dflt = false) const;

    /**
     * Parse "key=value" tokens (e.g. command-line args); unknown formats
     * are ignored and reported in the return value.
     */
    std::vector<std::string> parseArgs(int argc, const char* const* argv);

    /**
     * Parse "key=value" command-line tokens, accepting only keys listed
     * in @p allowed. A malformed token or an unknown key (a typo like
     * "sim_scal=2" would otherwise silently run the defaults) throws
     * std::invalid_argument with a "did you mean" hint and the accepted
     * key list.
     */
    void parseArgsStrict(int argc, const char* const* argv,
                         const std::vector<std::string>& allowed);

    /** All keys, sorted (for dumping). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> kv_;
};

} // namespace pythia
