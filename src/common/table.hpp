/**
 * @file
 * Plain-text table and CSV emitter used by the benchmark harness to print
 * the same rows/series the paper's figures and tables report.
 */
#pragma once

#include <string>
#include <vector>

namespace pythia {

/**
 * A rectangular table of strings with a header row.
 *
 * Benches build one Table per paper artifact, print it aligned to stdout,
 * and optionally write it as CSV so the numbers can be post-processed the
 * same way the paper's artifact appendix describes (rollup -> spreadsheet).
 */
class Table
{
  public:
    /** @param title Caption printed above the table. */
    explicit Table(std::string title);

    /** Set the header row (column names). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string fmt(double v, int precision = 3);

    /** Convenience: format a percentage with sign, e.g. "+3.4%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render aligned text to stdout. */
    void print() const;

    /** Write as CSV to @p path; returns false on I/O failure. */
    bool writeCsv(const std::string& path) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Access a data cell (row, col) for test introspection. */
    const std::string& cell(std::size_t r, std::size_t c) const
    {
        return rows_.at(r).at(c);
    }

    /** Table title. */
    const std::string& title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of a vector of positive values; 0 on empty input. */
double geomean(const std::vector<double>& values);

} // namespace pythia
