/**
 * @file
 * Lightweight named-counter statistics registry, in the spirit of the gem5
 * stats package but sized for this project: every simulator component owns
 * a StatGroup and registers scalar counters/values in it; the harness can
 * dump all groups as text or CSV.
 */
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia {

/**
 * A flat collection of named statistics.
 *
 * Counters are uint64 and monotonically incremented; values are doubles
 * set directly (for derived metrics like IPC). Lookup of a missing name
 * creates it at zero, which keeps call sites terse.
 */
class StatGroup
{
  public:
    /** @param name Group name used as a prefix when dumping. */
    explicit StatGroup(std::string name = "");

    /** Add @p delta to the counter called @p key. */
    void inc(const std::string& key, std::uint64_t delta = 1);

    /**
     * Stable pointer to the counter called @p key, created at zero if
     * absent. Hot paths resolve their counters once at construction and
     * bump through the pointer, skipping the per-event string hash/map
     * walk; the pointer stays valid for the group's lifetime (std::map
     * nodes never move) and reset() zeroes the value in place.
     */
    std::uint64_t* counterSlot(const std::string& key)
    {
        return &counters_[key];
    }

    /** Set the floating-point value called @p key. */
    void set(const std::string& key, double value);

    /** Read a counter; missing counters read as zero. */
    std::uint64_t counter(const std::string& key) const;

    /** Read a value; missing values read as zero. */
    double value(const std::string& key) const;

    /** True when a counter or value of this name exists. */
    bool has(const std::string& key) const;

    /** Reset every counter and value to zero (keeps the names). */
    void reset();

    /** Group name. */
    const std::string& name() const { return name_; }

    /** Dump "group.key value" lines to @p os. */
    void dump(std::ostream& os) const;

    /** All integer counters (for test introspection). */
    const std::map<std::string, std::uint64_t>& counters() const
    {
        return counters_;
    }

    /** All floating-point values (for test introspection). */
    const std::map<std::string, double>& values() const { return values_; }

    /** Serialize every counter and value (snapshot subsystem). */
    void saveState(snap::Writer& w) const;

    /**
     * Restore a saveState() image: reset() in place, then assign the
     * serialized entries. Existing map nodes are reused, so counter
     * pointers handed out by counterSlot() stay valid across a load —
     * the same stability guarantee reset() gives the hot paths.
     */
    void loadState(snap::Reader& r);

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> values_;
};

} // namespace pythia
