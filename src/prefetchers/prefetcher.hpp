/**
 * @file
 * Common base class for all prefetching algorithms in this repository,
 * plus small helpers shared by several of them (in-page clamping, delta
 * history tracking).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/prefetcher_api.hpp"

namespace pythia::pf {

using sim::BandwidthInfo;
using sim::PrefetchAccess;
using sim::PrefetcherApi;
using sim::PrefetchRequest;

/**
 * Base class holding the name, the bandwidth feedback pointer and the
 * declared storage budget of a prefetcher.
 */
class PrefetcherBase : public PrefetcherApi
{
  public:
    /**
     * @param name          display name
     * @param storage_bytes declared metadata budget (Table 7 comparisons)
     */
    PrefetcherBase(std::string name, std::size_t storage_bytes);

    const std::string& name() const override { return name_; }
    std::size_t storageBytes() const override { return storage_bytes_; }
    void setBandwidthInfo(const BandwidthInfo* bw) override { bw_ = bw; }

    /**
     * Emit block + @p line_offset as a prefetch candidate iff the target
     * stays inside the same physical page (post-L1 prefetchers never cross
     * pages, §3.1). @return true when emitted.
     */
    static bool emitWithinPage(Addr block, std::int32_t line_offset,
                               std::vector<PrefetchRequest>& out,
                               int fill_level = 2);

  protected:
    /** Bandwidth feedback source; may be nullptr in unit tests. */
    const BandwidthInfo* bandwidth() const { return bw_; }

    /** True when DRAM bandwidth usage is currently high (false when no
     *  feedback source is attached). */
    bool highBandwidth() const { return bw_ != nullptr && bw_->highUsage(); }

  private:
    std::string name_;
    std::size_t storage_bytes_;
    const BandwidthInfo* bw_ = nullptr;
};

/**
 * Rolling per-page last-offset tracker used by delta-based prefetchers
 * (SPP, DSPatch, Pythia's feature extraction). Small direct-mapped table
 * keyed by page id.
 */
class PageTracker
{
  public:
    explicit PageTracker(std::size_t entries = 256);

    /**
     * Record an access to @p block; returns the delta (in cachelines) to
     * the previous access in the same page, or 0 when this is the first
     * access observed for the page (a fresh table entry).
     */
    std::int32_t recordAndDelta(Addr block);

    /** Last recorded in-page offset for @p block's page (-1 if unknown). */
    std::int32_t lastOffset(Addr block) const;

  private:
    struct Entry
    {
        Addr page = ~0ull;
        std::int32_t last_offset = -1;
    };
    std::size_t index(Addr page) const;
    std::vector<Entry> entries_;
};

} // namespace pythia::pf
