/**
 * @file
 * Degenerate next-line prefetcher, used as a sanity baseline in tests and
 * ablations (not one of the paper's comparison points, but the simplest
 * member of the API for validation).
 */
#pragma once

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/** Prefetches the next @p degree sequential cachelines on every demand. */
class NextLinePrefetcher : public PrefetcherBase
{
  public:
    explicit NextLinePrefetcher(std::uint32_t degree = 1);

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;

    // Stateless: nothing to serialize, but the overrides opt next-line
    // configurations into snapshot support (the default implementations
    // throw UnsupportedError).
    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

  private:
    std::uint32_t degree_;
};

} // namespace pythia::pf
