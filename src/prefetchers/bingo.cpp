#include "prefetchers/bingo.hpp"

#include <bit>
#include <cassert>

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"
#include "snapshot/codec.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "bingo",
    "Bingo spatial footprint prefetcher [Bakhshalipour+ HPCA'19]",
    {"region_bytes", "ft_entries", "at_entries", "pht_sets", "pht_ways"},
    [](const sim::PrefetcherParams& p) {
        BingoConfig cfg;
        cfg.region_bytes = p.getU32("region_bytes", cfg.region_bytes);
        cfg.ft_entries = p.getU32("ft_entries", cfg.ft_entries);
        cfg.at_entries = p.getU32("at_entries", cfg.at_entries);
        cfg.pht_sets = p.getU32("pht_sets", cfg.pht_sets);
        cfg.pht_ways = p.getU32("pht_ways", cfg.pht_ways);
        return std::make_unique<BingoPrefetcher>(cfg);
    }};

} // namespace

BingoPrefetcher::BingoPrefetcher(const BingoConfig& cfg)
    : PrefetcherBase("bingo", 47104 /* ~46KB, Table 7 */), cfg_(cfg)
{
    blocks_per_region_ =
        cfg_.region_bytes / static_cast<std::uint32_t>(kBlockSize);
    assert(blocks_per_region_ <= 64 &&
           "footprint bitvector is 64 bits wide");
    region_shift_ = std::countr_zero(cfg_.region_bytes) -
                    static_cast<std::uint32_t>(kBlockShift);
    at_.resize(cfg_.at_entries);
    pht_.resize(static_cast<std::size_t>(cfg_.pht_sets) * cfg_.pht_ways);
}

Addr
BingoPrefetcher::regionOf(Addr block) const
{
    return block >> region_shift_;
}

std::uint32_t
BingoPrefetcher::offsetInRegion(Addr block) const
{
    return static_cast<std::uint32_t>(block & (blocks_per_region_ - 1));
}

std::uint64_t
BingoPrefetcher::longEvent(Addr pc, Addr block) const
{
    return hashCombine(mix64(pc), block);
}

std::uint64_t
BingoPrefetcher::shortEvent(Addr pc, std::uint32_t offset) const
{
    return hashCombine(mix64(pc) ^ 0xB1960ull, offset);
}

BingoPrefetcher::AtEntry*
BingoPrefetcher::findAt(Addr region)
{
    for (auto& e : at_)
        if (e.valid && e.region == region)
            return &e;
    return nullptr;
}

void
BingoPrefetcher::evictToPht(AtEntry& e)
{
    if (!e.valid || std::popcount(e.footprint) < 2) {
        e.valid = false;
        return;
    }
    const Addr trigger_block =
        (e.region << region_shift_) + e.trigger_offset;
    const std::uint64_t long_ev = longEvent(e.trigger_pc, trigger_block);
    const std::uint64_t short_ev =
        shortEvent(e.trigger_pc, e.trigger_offset);

    // The PHT is indexed by the *short* event (PC+Offset) so that both
    // the long-event and the fallback lookup land in the same set; the
    // long event acts as a tag within the set.
    const std::size_t set =
        static_cast<std::size_t>(short_ev) % cfg_.pht_sets;
    PhtEntry* base = &pht_[set * cfg_.pht_ways];
    PhtEntry* victim = &base[0];
    for (std::uint32_t w = 0; w < cfg_.pht_ways; ++w) {
        if (base[w].valid && base[w].long_event == long_ev) {
            victim = &base[w];
            break;
        }
        if (!base[w].valid || base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->long_event = long_ev;
    victim->short_event = short_ev;
    victim->footprint = e.footprint;
    victim->lru = ++tick_;
    e.valid = false;
}

const BingoPrefetcher::PhtEntry*
BingoPrefetcher::lookupPht(std::uint64_t long_ev,
                           std::uint64_t short_ev) const
{
    // Both lookups scan the short-event-indexed set: first an exact
    // long-event (PC+Address) tag match, then the PC+Offset fallback.
    const std::size_t set =
        static_cast<std::size_t>(short_ev) % cfg_.pht_sets;
    const PhtEntry* base = &pht_[set * cfg_.pht_ways];
    for (std::uint32_t w = 0; w < cfg_.pht_ways; ++w)
        if (base[w].valid && base[w].long_event == long_ev)
            return &base[w];
    const PhtEntry* best = nullptr;
    for (std::uint32_t w = 0; w < cfg_.pht_ways; ++w)
        if (base[w].valid && base[w].short_event == short_ev)
            if (best == nullptr || base[w].lru > best->lru)
                best = &base[w];
    return best;
}

void
BingoPrefetcher::predict(const PrefetchAccess& access,
                         std::vector<PrefetchRequest>& out)
{
    const std::uint32_t offset = offsetInRegion(access.block);
    const PhtEntry* e = lookupPht(longEvent(access.pc, access.block),
                                  shortEvent(access.pc, offset));
    if (e == nullptr)
        return;
    const Addr region_base = access.block - offset;
    for (std::uint32_t b = 0; b < blocks_per_region_; ++b) {
        if (b == offset || ((e->footprint >> b) & 1) == 0)
            continue;
        // Footprint offsets are region-relative; convert to a line offset
        // from the trigger block.
        const auto rel = static_cast<std::int32_t>(b) -
                         static_cast<std::int32_t>(offset);
        emitWithinPage(access.block, rel, out);
        (void)region_base;
    }
}

void
BingoPrefetcher::train(const PrefetchAccess& access,
                       std::vector<PrefetchRequest>& out)
{
    const Addr region = regionOf(access.block);
    const std::uint32_t offset = offsetInRegion(access.block);

    AtEntry* at = findAt(region);
    if (at != nullptr) {
        at->footprint |= 1ull << offset;
        at->lru = ++tick_;
        return; // non-trigger accesses only accumulate
    }

    // Trigger access for this region: predict, then start accumulating.
    predict(access, out);

    AtEntry* victim = &at_[0];
    for (auto& e : at_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    evictToPht(*victim);
    victim->valid = true;
    victim->region = region;
    victim->trigger_pc = access.pc;
    victim->trigger_offset = offset;
    victim->footprint = 1ull << offset;
    victim->lru = ++tick_;
}

void
BingoPrefetcher::saveState(snap::Writer& w) const
{
    w.u64(tick_);
    w.u64(at_.size());
    for (const AtEntry& e : at_) {
        w.u64(e.region);
        w.u64(e.trigger_pc);
        w.u32(e.trigger_offset);
        w.u64(e.footprint);
        w.u64(e.lru);
        w.boolean(e.valid);
    }
    w.u64(pht_.size());
    for (const PhtEntry& e : pht_) {
        w.u64(e.long_event);
        w.u64(e.short_event);
        w.u64(e.footprint);
        w.u64(e.lru);
        w.boolean(e.valid);
    }
}

void
BingoPrefetcher::loadState(snap::Reader& r)
{
    const std::uint64_t tick = r.u64();
    const std::uint64_t n_at = r.u64();
    if (n_at != at_.size())
        throw snap::CorruptError(
            "snapshot corrupt: bingo accumulation table has " +
            std::to_string(n_at) + " entries but this configuration has " +
            std::to_string(at_.size()));
    tick_ = tick;
    for (AtEntry& e : at_) {
        e.region = r.u64();
        e.trigger_pc = r.u64();
        e.trigger_offset = r.u32();
        e.footprint = r.u64();
        e.lru = r.u64();
        e.valid = r.boolean();
    }
    const std::uint64_t n_pht = r.u64();
    if (n_pht != pht_.size())
        throw snap::CorruptError(
            "snapshot corrupt: bingo history table has " +
            std::to_string(n_pht) + " entries but this configuration has " +
            std::to_string(pht_.size()));
    for (PhtEntry& e : pht_) {
        e.long_event = r.u64();
        e.short_event = r.u64();
        e.footprint = r.u64();
        e.lru = r.u64();
        e.valid = r.boolean();
    }
}

} // namespace pythia::pf
