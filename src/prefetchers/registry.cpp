#include "prefetchers/registry.hpp"

#include <stdexcept>

#include "prefetchers/bingo.hpp"
#include "prefetchers/composite.hpp"
#include "prefetchers/cp_hw.hpp"
#include "prefetchers/dspatch.hpp"
#include "prefetchers/ipcp.hpp"
#include "prefetchers/mlop.hpp"
#include "prefetchers/nextline.hpp"
#include "prefetchers/power7.hpp"
#include "prefetchers/ppf.hpp"
#include "prefetchers/spp.hpp"
#include "prefetchers/streamer.hpp"
#include "prefetchers/stride.hpp"

namespace pythia::pf {

namespace {

std::unique_ptr<PrefetcherApi>
makeStack(const std::string& name, int depth)
{
    std::vector<std::unique_ptr<PrefetcherApi>> kids;
    kids.push_back(std::make_unique<StridePrefetcher>());
    if (depth >= 2)
        kids.push_back(std::make_unique<SppPrefetcher>());
    if (depth >= 3)
        kids.push_back(std::make_unique<BingoPrefetcher>());
    if (depth >= 4)
        kids.push_back(std::make_unique<DspatchPrefetcher>());
    if (depth >= 5)
        kids.push_back(std::make_unique<MlopPrefetcher>());
    return std::make_unique<CompositePrefetcher>(name, std::move(kids));
}

} // namespace

std::unique_ptr<PrefetcherApi>
makeBaseline(const std::string& name)
{
    if (name == "none")
        return nullptr;
    if (name == "nextline")
        return std::make_unique<NextLinePrefetcher>();
    if (name == "stride")
        return std::make_unique<StridePrefetcher>();
    if (name == "streamer")
        return std::make_unique<StreamerPrefetcher>();
    if (name == "spp")
        return std::make_unique<SppPrefetcher>();
    if (name == "spp_ppf")
        return std::make_unique<PpfPrefetcher>();
    if (name == "bingo")
        return std::make_unique<BingoPrefetcher>();
    if (name == "mlop")
        return std::make_unique<MlopPrefetcher>();
    if (name == "dspatch")
        return std::make_unique<DspatchPrefetcher>();
    if (name == "spp_dspatch") {
        std::vector<std::unique_ptr<PrefetcherApi>> kids;
        kids.push_back(std::make_unique<SppPrefetcher>());
        kids.push_back(std::make_unique<DspatchPrefetcher>());
        return std::make_unique<CompositePrefetcher>("spp_dspatch",
                                                     std::move(kids));
    }
    if (name == "ipcp")
        return std::make_unique<IpcpPrefetcher>();
    if (name == "power7")
        return std::make_unique<Power7Prefetcher>();
    if (name == "cp_hw")
        return std::make_unique<CpHwPrefetcher>();
    if (name == "st")
        return makeStack(name, 1);
    if (name == "st_s")
        return makeStack(name, 2);
    if (name == "st_s_b")
        return makeStack(name, 3);
    if (name == "st_s_b_d")
        return makeStack(name, 4);
    if (name == "st_s_b_d_m")
        return makeStack(name, 5);
    throw std::invalid_argument("unknown baseline prefetcher: " + name);
}

const std::vector<std::string>&
baselineNames()
{
    static const std::vector<std::string> names = {
        "nextline", "stride",   "streamer",  "spp",      "spp_ppf",
        "bingo",    "mlop",     "dspatch",   "spp_dspatch", "ipcp",
        "power7",   "cp_hw",    "st",        "st_s",     "st_s_b",
        "st_s_b_d", "st_s_b_d_m"};
    return names;
}

} // namespace pythia::pf
