#include "prefetchers/mlop.hpp"

#include <algorithm>

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "mlop",
    "Multi-Lookahead Offset Prefetcher [Shakerinava+ DPC3'19]",
    {"amt_entries", "update_round", "max_degree", "max_offset"},
    [](const sim::PrefetcherParams& p) {
        MlopConfig cfg;
        cfg.amt_entries = p.getU32("amt_entries", cfg.amt_entries);
        cfg.update_round = p.getU32("update_round", cfg.update_round);
        cfg.max_degree = p.getU32("max_degree", cfg.max_degree);
        cfg.max_offset = p.getI32("max_offset", cfg.max_offset);
        return std::make_unique<MlopPrefetcher>(cfg);
    }};

} // namespace

MlopPrefetcher::MlopPrefetcher(const MlopConfig& cfg)
    : PrefetcherBase("mlop", 8192 /* ~8KB, Table 7 */), cfg_(cfg),
      maps_(cfg.amt_entries),
      scores_(cfg.max_degree,
              std::vector<std::uint32_t>(2 * cfg.max_offset + 1, 0))
{
}

MlopPrefetcher::MapEntry&
MlopPrefetcher::mapOf(Addr page)
{
    return maps_[static_cast<std::size_t>(mix64(page)) % maps_.size()];
}

void
MlopPrefetcher::finishRound()
{
    // Per lookahead level pick the best-scoring offset; a level abstains
    // when its best score is too weak relative to the round length.
    chosen_.clear();
    const std::uint32_t min_score = cfg_.update_round / 8;
    for (std::uint32_t l = 0; l < cfg_.max_degree; ++l) {
        const auto& row = scores_[l];
        std::size_t best = 0;
        for (std::size_t i = 1; i < row.size(); ++i)
            if (row[i] > row[best])
                best = i;
        const auto offset = static_cast<std::int32_t>(best) -
                            cfg_.max_offset;
        if (row[best] >= min_score && offset != 0)
            chosen_.push_back(offset);
    }
    std::sort(chosen_.begin(), chosen_.end());
    chosen_.erase(std::unique(chosen_.begin(), chosen_.end()),
                  chosen_.end());
    for (auto& row : scores_)
        std::fill(row.begin(), row.end(), 0u);
    updates_ = 0;
}

void
MlopPrefetcher::train(const PrefetchAccess& access,
                      std::vector<PrefetchRequest>& out)
{
    const Addr page = pageIdOfBlock(access.block);
    const auto offset =
        static_cast<std::int32_t>(access.block & (kBlocksPerPage - 1));

    MapEntry& m = mapOf(page);
    if (!m.valid || m.page != page) {
        m = MapEntry{};
        m.page = page;
        m.valid = true;
    }

    // Score candidates: offset d gets credit at level l when block
    // (offset - d) was accessed and its recency distance is >= l.
    for (std::int32_t d = -cfg_.max_offset; d <= cfg_.max_offset; ++d) {
        if (d == 0)
            continue;
        const std::int32_t src = offset - d;
        if (src < 0 || src >= static_cast<std::int32_t>(kBlocksPerPage))
            continue;
        if (((m.bitmap >> src) & 1) == 0)
            continue;
        const std::uint32_t dist =
            static_cast<std::uint8_t>(m.seq - m.access_seq[src]);
        const std::uint32_t levels =
            std::min<std::uint32_t>(dist, cfg_.max_degree);
        for (std::uint32_t l = 0; l < levels; ++l)
            ++scores_[l][static_cast<std::size_t>(d + cfg_.max_offset)];
    }

    m.bitmap |= 1ull << offset;
    ++m.seq;
    m.access_seq[offset] = m.seq;

    if (++updates_ >= cfg_.update_round)
        finishRound();

    for (std::int32_t d : chosen_)
        emitWithinPage(access.block, d, out);
}

} // namespace pythia::pf
