#include "prefetchers/nextline.hpp"

namespace pythia::pf {

NextLinePrefetcher::NextLinePrefetcher(std::uint32_t degree)
    : PrefetcherBase("nextline", 0), degree_(degree)
{
}

void
NextLinePrefetcher::train(const PrefetchAccess& access,
                          std::vector<PrefetchRequest>& out)
{
    for (std::uint32_t d = 1; d <= degree_; ++d)
        emitWithinPage(access.block, static_cast<std::int32_t>(d), out);
}

} // namespace pythia::pf
