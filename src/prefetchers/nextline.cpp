#include "prefetchers/nextline.hpp"

#include "sim/prefetcher_registry.hpp"
#include "snapshot/codec.hpp"

namespace pythia::pf {

NextLinePrefetcher::NextLinePrefetcher(std::uint32_t degree)
    : PrefetcherBase("nextline", 8 /* degree register */), degree_(degree)
{
}

void
NextLinePrefetcher::train(const PrefetchAccess& access,
                          std::vector<PrefetchRequest>& out)
{
    for (std::uint32_t d = 1; d <= degree_; ++d)
        emitWithinPage(access.block, static_cast<std::int32_t>(d), out);
}

void
NextLinePrefetcher::saveState(snap::Writer&) const
{
    // No learned state; presence of the override is the whole point.
}

void
NextLinePrefetcher::loadState(snap::Reader&)
{
}

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "nextline",
    "next-N-sequential-lines prefetcher (sanity baseline)",
    {"degree"},
    [](const sim::PrefetcherParams& p) {
        return std::make_unique<NextLinePrefetcher>(p.getU32("degree", 1));
    }};

} // namespace

} // namespace pythia::pf
