#include "prefetchers/composite.hpp"

#include <algorithm>
#include <numeric>

namespace pythia::pf {

namespace {

std::size_t
totalStorage(const std::vector<std::unique_ptr<PrefetcherApi>>& children)
{
    return std::accumulate(
        children.begin(), children.end(), std::size_t{0},
        [](std::size_t acc, const auto& c) {
            return acc + c->storageBytes();
        });
}

} // namespace

CompositePrefetcher::CompositePrefetcher(
    std::string name, std::vector<std::unique_ptr<PrefetcherApi>> children)
    : PrefetcherBase(std::move(name), totalStorage(children)),
      children_(std::move(children))
{
}

void
CompositePrefetcher::train(const PrefetchAccess& access,
                           std::vector<PrefetchRequest>& out)
{
    for (auto& c : children_)
        c->train(access, out);
    // Union: drop duplicate target blocks, keeping the strongest
    // (lowest) fill level.
    std::sort(out.begin(), out.end(),
              [](const PrefetchRequest& a, const PrefetchRequest& b) {
                  return a.block != b.block ? a.block < b.block
                                            : a.fill_level < b.fill_level;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const PrefetchRequest& a,
                             const PrefetchRequest& b) {
                              return a.block == b.block;
                          }),
              out.end());
}

void
CompositePrefetcher::onFill(Addr block, Cycle at)
{
    for (auto& c : children_)
        c->onFill(block, at);
}

void
CompositePrefetcher::onPrefetchUsed(Addr block, bool timely)
{
    for (auto& c : children_)
        c->onPrefetchUsed(block, timely);
}

void
CompositePrefetcher::onPrefetchEvicted(Addr block, bool used)
{
    for (auto& c : children_)
        c->onPrefetchEvicted(block, used);
}

void
CompositePrefetcher::setBandwidthInfo(const BandwidthInfo* bw)
{
    PrefetcherBase::setBandwidthInfo(bw);
    for (auto& c : children_)
        c->setBandwidthInfo(bw);
}

} // namespace pythia::pf
