#include "prefetchers/composite.hpp"

#include <numeric>
#include <unordered_map>

#include "sim/prefetcher_registry.hpp"
#include "snapshot/codec.hpp"

namespace pythia::pf {

namespace {

std::size_t
totalStorage(const std::vector<std::unique_ptr<PrefetcherApi>>& children)
{
    return std::accumulate(
        children.begin(), children.end(), std::size_t{0},
        [](std::size_t acc, const auto& c) {
            return acc + c->storageBytes();
        });
}

} // namespace

CompositePrefetcher::CompositePrefetcher(
    std::string name, std::vector<std::unique_ptr<PrefetcherApi>> children)
    : PrefetcherBase(std::move(name), totalStorage(children)),
      children_(std::move(children))
{
}

void
CompositePrefetcher::train(const PrefetchAccess& access,
                           std::vector<PrefetchRequest>& out)
{
    const std::size_t first = out.size();
    for (auto& c : children_)
        c->train(access, out);
    // Union: drop duplicate target blocks, keeping the strongest
    // (lowest) fill level. The dedup must be stable in first-emission
    // order — children are trained in priority order and the cache
    // truncates the candidate list at max_prefetches_per_access, so
    // reordering (e.g. sorting by block address) would make truncation
    // drop the wrong candidates.
    std::unordered_map<Addr, std::size_t> seen;
    std::size_t keep = first;
    for (std::size_t i = first; i < out.size(); ++i) {
        const auto [it, fresh] = seen.emplace(out[i].block, keep);
        if (fresh)
            out[keep++] = out[i];
        else if (out[i].fill_level < out[it->second].fill_level)
            out[it->second].fill_level = out[i].fill_level;
    }
    out.resize(keep);
}

void
CompositePrefetcher::onFill(Addr block, Cycle at)
{
    for (auto& c : children_)
        c->onFill(block, at);
}

void
CompositePrefetcher::onPrefetchUsed(Addr block, bool timely)
{
    for (auto& c : children_)
        c->onPrefetchUsed(block, timely);
}

void
CompositePrefetcher::onPrefetchEvicted(Addr block, bool used)
{
    for (auto& c : children_)
        c->onPrefetchEvicted(block, used);
}

void
CompositePrefetcher::setBandwidthInfo(const BandwidthInfo* bw)
{
    PrefetcherBase::setBandwidthInfo(bw);
    for (auto& c : children_)
        c->setBandwidthInfo(bw);
}

void
CompositePrefetcher::saveState(snap::Writer& w) const
{
    w.u64(children_.size());
    for (const auto& c : children_)
        c->saveState(w);
}

void
CompositePrefetcher::loadState(snap::Reader& r)
{
    const std::uint64_t n = r.u64();
    if (n != children_.size())
        throw snap::CorruptError(
            "snapshot corrupt: composite '" + name() + "' has " +
            std::to_string(n) + " children in the snapshot but " +
            std::to_string(children_.size()) + " in this configuration");
    for (auto& c : children_)
        c->loadState(r);
}

// ------------------------------------------------------------ registration

namespace {

/** Hook that lets the registry build "a+b+c" specs without depending on
 *  this translation unit at compile time. */
[[maybe_unused]] const sim::PrefetcherComposerRegistrar composer{
    [](std::string name,
       std::vector<std::unique_ptr<sim::PrefetcherApi>> children) {
        return std::make_unique<CompositePrefetcher>(std::move(name),
                                                     std::move(children));
    }};

/** Register a named alias for a fixed composition (the paper's
 *  cumulative "St+S+B+D+M" stacks of Figs. 9(b)/10(b)). */
sim::PrefetcherEntry
stackAlias(const std::string& name, std::vector<std::string> child_specs)
{
    return {name,
            "fixed prefetcher stack",
            {},
            [child_specs = std::move(child_specs),
             name](const sim::PrefetcherParams&) {
                auto& registry = sim::PrefetcherRegistry::instance();
                std::vector<std::unique_ptr<sim::PrefetcherApi>> kids;
                for (const auto& spec : child_specs)
                    kids.push_back(registry.make(spec));
                return std::make_unique<CompositePrefetcher>(
                    name, std::move(kids));
            }};
}

struct StackRegistrar
{
    StackRegistrar()
    {
        auto& registry = sim::PrefetcherRegistry::instance();
        registry.add(stackAlias("st", {"stride"}));
        registry.add(stackAlias("st_s", {"stride", "spp"}));
        registry.add(stackAlias("st_s_b", {"stride", "spp", "bingo"}));
        registry.add(
            stackAlias("st_s_b_d", {"stride", "spp", "bingo", "dspatch"}));
        registry.add(stackAlias(
            "st_s_b_d_m", {"stride", "spp", "bingo", "dspatch", "mlop"}));
        registry.add(stackAlias("spp_dspatch", {"spp", "dspatch"}));
    }
};

[[maybe_unused]] const StackRegistrar stacks;

} // namespace

} // namespace pythia::pf
