#include "prefetchers/ipcp.hpp"

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "ipcp",
    "IPCP bouquet-of-IP-classes prefetcher [Pakalapati & Panda ISCA'20]",
    {"ip_entries", "cspt_entries", "cs_degree", "stream_degree"},
    [](const sim::PrefetcherParams& p) {
        IpcpConfig cfg;
        cfg.ip_entries = p.getU32("ip_entries", cfg.ip_entries);
        cfg.cspt_entries = p.getU32("cspt_entries", cfg.cspt_entries);
        cfg.cs_degree = p.getU32("cs_degree", cfg.cs_degree);
        cfg.stream_degree = p.getU32("stream_degree", cfg.stream_degree);
        return std::make_unique<IpcpPrefetcher>(cfg);
    }};

} // namespace

IpcpPrefetcher::IpcpPrefetcher(const IpcpConfig& cfg)
    : PrefetcherBase("ipcp", cfg.ip_entries * 12 + cfg.cspt_entries * 2),
      cfg_(cfg), ip_(cfg.ip_entries), cspt_(cfg.cspt_entries)
{
}

void
IpcpPrefetcher::train(const PrefetchAccess& access,
                      std::vector<PrefetchRequest>& out)
{
    IpEntry& e = ip_[mix64(access.pc) % ip_.size()];
    if (!e.valid || e.pc != access.pc) {
        e = IpEntry{};
        e.pc = access.pc;
        e.last_block = access.block;
        e.valid = true;
        return;
    }

    const auto delta = static_cast<std::int32_t>(
        static_cast<std::int64_t>(access.block) -
        static_cast<std::int64_t>(e.last_block));
    if (delta == 0)
        return;

    // --- classification -----------------------------------------------
    if (delta == e.stride) {
        if (e.stride_conf < 3)
            ++e.stride_conf;
    } else {
        e.stride = delta;
        e.stride_conf = e.stride_conf > 0 ? e.stride_conf - 1 : 0;
    }
    if (delta == 1 || delta == -1) {
        if (e.stream_conf < 3)
            ++e.stream_conf;
    } else if (e.stream_conf > 0) {
        --e.stream_conf;
    }

    // Complex pattern table: signature of recent deltas -> next delta.
    CsptEntry& cs = cspt_[e.signature % cspt_.size()];
    if (cs.delta == delta) {
        if (cs.conf < 3)
            ++cs.conf;
    } else {
        if (cs.conf > 0)
            --cs.conf;
        else
            cs.delta = delta;
    }
    const std::uint32_t new_sig =
        ((e.signature << 3) ^ static_cast<std::uint32_t>(delta & 0x7F)) &
        0xFFF;

    if (e.stride_conf >= 2 && e.stride != 1 && e.stride != -1)
        e.cls = IpClass::ConstStride;
    else if (e.stream_conf >= 2)
        e.cls = IpClass::Stream;
    else if (cs.conf >= 2)
        e.cls = IpClass::Cplx;
    else
        e.cls = IpClass::None;

    // --- prediction -----------------------------------------------------
    switch (e.cls) {
      case IpClass::ConstStride:
        for (std::uint32_t d = 1; d <= cfg_.cs_degree; ++d)
            emitWithinPage(access.block,
                           e.stride * static_cast<std::int32_t>(d), out);
        break;
      case IpClass::Stream: {
        const std::int32_t dir = e.stream_conf > 0 && delta < 0 ? -1 : 1;
        for (std::uint32_t d = 1; d <= cfg_.stream_degree; ++d)
            emitWithinPage(access.block,
                           dir * static_cast<std::int32_t>(d), out);
        break;
      }
      case IpClass::Cplx: {
        // Walk the complex table a couple of steps.
        std::uint32_t sig = new_sig;
        std::int32_t acc = 0;
        for (int depth = 0; depth < 3; ++depth) {
            const CsptEntry& step = cspt_[sig % cspt_.size()];
            if (step.conf < 2 || step.delta == 0)
                break;
            acc += step.delta;
            emitWithinPage(access.block, acc, out);
            sig = ((sig << 3) ^
                   static_cast<std::uint32_t>(step.delta & 0x7F)) & 0xFFF;
        }
        break;
      }
      case IpClass::None:
        break;
    }

    e.signature = new_sig;
    e.last_block = access.block;
}

} // namespace pythia::pf
