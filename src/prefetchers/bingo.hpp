/**
 * @file
 * Bingo spatial prefetcher [Bakhshalipour+ HPCA'19], the paper's second
 * headline baseline. Learns the spatial access footprint of 2KB regions
 * and replays it when the region's *trigger* access recurs, looking the
 * pattern up first with the long PC+Address event and falling back to the
 * shorter PC+Offset event — the "one-table lookahead" trick of Bingo.
 */
#pragma once

#include <unordered_map>

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/** Bingo tuning knobs; defaults follow Table 7 (2KB regions, 64/128/4K
 *  entry FT/AT/PHT). */
struct BingoConfig
{
    std::uint32_t region_bytes = 2048;
    std::uint32_t ft_entries = 64;
    std::uint32_t at_entries = 128;
    std::uint32_t pht_sets = 1024;
    std::uint32_t pht_ways = 4;
};

/**
 * Bingo. Footprints are bitvectors over the blocks of one region,
 * anchored at the trigger offset.
 */
class BingoPrefetcher : public PrefetcherBase
{
  public:
    explicit BingoPrefetcher(const BingoConfig& cfg = BingoConfig{});

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;

    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

    /** Blocks per region (32 for 2KB regions). */
    std::uint32_t blocksPerRegion() const { return blocks_per_region_; }

  private:
    struct AtEntry
    {
        Addr region = ~0ull;
        Addr trigger_pc = 0;
        std::uint32_t trigger_offset = 0;
        std::uint64_t footprint = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    struct PhtEntry
    {
        std::uint64_t long_event = 0;  ///< hash of PC+Address
        std::uint64_t short_event = 0; ///< hash of PC+Offset
        std::uint64_t footprint = 0;   ///< anchored at trigger offset
        std::uint64_t lru = 0;
        bool valid = false;
    };

    Addr regionOf(Addr block) const;
    std::uint32_t offsetInRegion(Addr block) const;
    std::uint64_t longEvent(Addr pc, Addr block) const;
    std::uint64_t shortEvent(Addr pc, std::uint32_t offset) const;

    AtEntry* findAt(Addr region);
    void evictToPht(AtEntry& e);
    const PhtEntry* lookupPht(std::uint64_t long_ev,
                              std::uint64_t short_ev) const;
    void predict(const PrefetchAccess& access,
                 std::vector<PrefetchRequest>& out);

    BingoConfig cfg_;
    std::uint32_t blocks_per_region_;
    std::uint32_t region_shift_;
    std::vector<AtEntry> at_;
    std::vector<PhtEntry> pht_;
    std::uint64_t tick_ = 0;
};

} // namespace pythia::pf
