/**
 * @file
 * PPF — Perceptron-based Prefetch Filtering [Bhatia+ ISCA'19] layered on
 * SPP, the "SPP+PPF" baseline of the paper. A perceptron judges every SPP
 * candidate from a handful of cheap features; rejected candidates are
 * suppressed, and the perceptron trains from prefetch outcome feedback.
 */
#pragma once

#include <unordered_map>

#include "prefetchers/prefetcher.hpp"
#include "prefetchers/spp.hpp"

namespace pythia::pf {

/** PPF tuning knobs. */
struct PpfConfig
{
    std::uint32_t table_entries = 4096; ///< per-feature weight table size
    std::int32_t threshold = 0;         ///< accept when sum >= threshold
    std::int32_t train_margin = 32;     ///< retrain when |sum| < margin
    std::int32_t weight_max = 31;       ///< saturating weight bound
};

/**
 * SPP with a perceptron filter. Wraps an internal SppPrefetcher; its
 * candidates are scored by summing per-feature weights (PC, page offset,
 * delta, signature). Outcomes (useful / useless) adjust the weights.
 */
class PpfPrefetcher : public PrefetcherBase
{
  public:
    explicit PpfPrefetcher(const PpfConfig& cfg = PpfConfig{},
                           const SppConfig& spp_cfg = SppConfig{});

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;
    void onFill(Addr block, Cycle at) override;
    void onPrefetchUsed(Addr block, bool timely) override;
    void onPrefetchEvicted(Addr block, bool used) override;

    /** Number of candidates rejected by the filter so far. */
    std::uint64_t rejected() const { return rejected_; }

  private:
    static constexpr int kFeatures = 4;

    struct PendingPrefetch
    {
        std::uint32_t feature_idx[kFeatures] = {0, 0, 0, 0};
        std::int32_t sum = 0;
    };

    /** Compute the perceptron feature indices of a candidate. */
    void featureIndices(const PrefetchAccess& access, Addr target,
                        std::uint32_t idx[kFeatures]) const;
    std::int32_t score(const std::uint32_t idx[kFeatures]) const;
    void adjust(const PendingPrefetch& p, bool useful);

    PpfConfig cfg_;
    SppPrefetcher spp_;
    std::vector<std::int32_t> weights_; ///< kFeatures * table_entries
    std::unordered_map<Addr, PendingPrefetch> pending_;
    std::uint64_t rejected_ = 0;
};

} // namespace pythia::pf
