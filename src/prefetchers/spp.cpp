#include "prefetchers/spp.hpp"

#include <algorithm>

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"
#include "snapshot/codec.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "spp",
    "Signature Path Prefetcher [Kim+ MICRO'16]",
    {"st_entries", "pt_sets", "pt_ways", "fill_threshold",
     "pf_threshold", "max_lookahead"},
    [](const sim::PrefetcherParams& p) {
        SppConfig cfg;
        cfg.st_entries = p.getU32("st_entries", cfg.st_entries);
        cfg.pt_sets = p.getU32("pt_sets", cfg.pt_sets);
        cfg.pt_ways = p.getU32("pt_ways", cfg.pt_ways);
        cfg.fill_threshold =
            p.getDouble("fill_threshold", cfg.fill_threshold);
        cfg.pf_threshold = p.getDouble("pf_threshold", cfg.pf_threshold);
        cfg.max_lookahead = p.getU32("max_lookahead", cfg.max_lookahead);
        return std::make_unique<SppPrefetcher>(cfg);
    }};

} // namespace

SppPrefetcher::SppPrefetcher(const SppConfig& cfg)
    : PrefetcherBase("spp", 6349 /* ~6.2KB, Table 7 */), cfg_(cfg),
      st_(cfg.st_entries),
      pt_(static_cast<std::size_t>(cfg.pt_sets) * cfg.pt_ways)
{
}

std::uint32_t
SppPrefetcher::advanceSignature(std::uint32_t sig, std::int32_t delta)
{
    // Deltas are sign-magnitude-packed into 7 bits before mixing, as in
    // the original design (6-bit magnitude + sign).
    const std::uint32_t mag =
        static_cast<std::uint32_t>(delta < 0 ? -delta : delta) & 0x3F;
    const std::uint32_t packed = (delta < 0 ? 0x40u : 0u) | mag;
    return ((sig << 3) ^ packed) & kSigMask;
}

SppPrefetcher::StEntry&
SppPrefetcher::stEntry(Addr page)
{
    return st_[static_cast<std::size_t>(mix64(page)) % st_.size()];
}

SppPrefetcher::PtEntry*
SppPrefetcher::findPt(std::uint32_t signature)
{
    const std::size_t set =
        static_cast<std::size_t>(signature) % cfg_.pt_sets;
    PtEntry* base = &pt_[set * cfg_.pt_ways];
    for (std::uint32_t w = 0; w < cfg_.pt_ways; ++w)
        if (base[w].valid && base[w].signature == signature)
            return &base[w];
    return nullptr;
}

const SppPrefetcher::PtEntry*
SppPrefetcher::findPt(std::uint32_t signature) const
{
    return const_cast<SppPrefetcher*>(this)->findPt(signature);
}

void
SppPrefetcher::updatePattern(std::uint32_t signature, std::int32_t delta)
{
    PtEntry* e = findPt(signature);
    if (e == nullptr) {
        // Allocate: pick the way with the weakest c_sig in the set.
        const std::size_t set =
            static_cast<std::size_t>(signature) % cfg_.pt_sets;
        PtEntry* base = &pt_[set * cfg_.pt_ways];
        e = &base[0];
        for (std::uint32_t w = 1; w < cfg_.pt_ways; ++w)
            if (!base[w].valid || base[w].c_sig < e->c_sig)
                e = &base[w];
        *e = PtEntry{};
        e->valid = true;
        e->signature = signature;
    }

    // Find or replace the delta slot.
    int slot = -1;
    int weakest = 0;
    for (int i = 0; i < 4; ++i) {
        if (e->c_delta[i] > 0 && e->delta[i] == delta) {
            slot = i;
            break;
        }
        if (e->c_delta[i] < e->c_delta[weakest])
            weakest = i;
    }
    if (slot < 0) {
        slot = weakest;
        e->delta[slot] = delta;
        e->c_delta[slot] = 0;
    }
    if (e->c_delta[slot] < 0xFFF0)
        ++e->c_delta[slot];
    if (e->c_sig < 0xFFF0)
        ++e->c_sig;

    // Periodic halving keeps counters adaptive to phase changes.
    if (e->c_sig >= 4096) {
        e->c_sig /= 2;
        for (auto& c : e->c_delta)
            c /= 2;
    }
}

SppPrefetcher::Prediction
SppPrefetcher::predictBest(std::uint32_t signature) const
{
    const PtEntry* e = findPt(signature);
    Prediction p;
    // Require a minimum amount of evidence before trusting a signature;
    // a freshly-allocated entry (1/1) must not read as full confidence.
    constexpr std::uint16_t kMinEvidence = 4;
    if (e == nullptr || e->c_sig < kMinEvidence)
        return p;
    std::uint16_t best = 0;
    for (int i = 0; i < 4; ++i) {
        if (e->c_delta[i] > best) {
            best = e->c_delta[i];
            p.delta = e->delta[i];
        }
    }
    p.confidence = static_cast<double>(best) / e->c_sig;
    return p;
}

std::uint32_t
SppPrefetcher::pageSignature(Addr block) const
{
    const Addr page = pageIdOfBlock(block);
    const StEntry& e =
        const_cast<SppPrefetcher*>(this)->stEntry(page);
    return e.page == page ? e.signature : 0;
}

void
SppPrefetcher::train(const PrefetchAccess& access,
                     std::vector<PrefetchRequest>& out)
{
    const Addr page = pageIdOfBlock(access.block);
    const auto offset =
        static_cast<std::int32_t>(access.block & (kBlocksPerPage - 1));

    StEntry& st = stEntry(page);
    std::uint32_t signature = 0;
    bool has_history = false;
    if (st.page == page && st.last_offset >= 0) {
        const std::int32_t delta = offset - st.last_offset;
        if (delta != 0) {
            updatePattern(st.signature, delta);
            signature = advanceSignature(st.signature, delta);
        } else {
            signature = st.signature;
        }
        has_history = true;
    }
    st.page = page;
    st.last_offset = offset;
    st.signature = signature;

    // No lookahead without in-page delta history: signature 0 would alias
    // every page-first access onto one hot pattern-table row.
    if (!has_history)
        return;

    // Lookahead walk: follow the highest-confidence delta chain while the
    // multiplicative path confidence stays above the LLC threshold.
    double path_conf = 1.0;
    std::uint32_t sig = signature;
    std::int64_t line =
        static_cast<std::int64_t>(access.block);
    for (std::uint32_t depth = 0; depth < cfg_.max_lookahead; ++depth) {
        const Prediction p = predictBest(sig);
        if (p.confidence <= 0.0 || p.delta == 0)
            break;
        path_conf *= p.confidence;
        if (path_conf < cfg_.pf_threshold)
            break;
        line += p.delta;
        const std::int64_t base =
            static_cast<std::int64_t>(access.block);
        const auto total_off = static_cast<std::int32_t>(line - base);
        const int fill = path_conf >= cfg_.fill_threshold ? 2 : 3;
        if (!emitWithinPage(access.block, total_off, out, fill))
            break; // SPP never crosses the page in this model
        sig = advanceSignature(sig, p.delta);
    }
}

void
SppPrefetcher::saveState(snap::Writer& w) const
{
    w.u64(st_.size());
    for (const StEntry& e : st_) {
        w.u64(e.page);
        w.u32(e.signature);
        w.i32(e.last_offset);
    }
    w.u64(pt_.size());
    for (const PtEntry& e : pt_) {
        w.u32(e.signature);
        w.boolean(e.valid);
        for (std::int32_t d : e.delta)
            w.i32(d);
        for (std::uint16_t c : e.c_delta)
            w.u16(c);
        w.u16(e.c_sig);
    }
}

void
SppPrefetcher::loadState(snap::Reader& r)
{
    const std::uint64_t n_st = r.u64();
    if (n_st != st_.size())
        throw snap::CorruptError(
            "snapshot corrupt: spp signature table has " +
            std::to_string(n_st) + " entries but this configuration has " +
            std::to_string(st_.size()));
    for (StEntry& e : st_) {
        e.page = r.u64();
        e.signature = r.u32();
        e.last_offset = r.i32();
    }
    const std::uint64_t n_pt = r.u64();
    if (n_pt != pt_.size())
        throw snap::CorruptError(
            "snapshot corrupt: spp pattern table has " +
            std::to_string(n_pt) + " entries but this configuration has " +
            std::to_string(pt_.size()));
    for (PtEntry& e : pt_) {
        e.signature = r.u32();
        e.valid = r.boolean();
        for (std::int32_t& d : e.delta)
            d = r.i32();
        for (std::uint16_t& c : e.c_delta)
            c = r.u16();
        e.c_sig = r.u16();
    }
}

} // namespace pythia::pf
