/**
 * @file
 * L2 stream prefetcher in the style of commercial Intel streamers
 * [Chen & Baer, IEEE TC'95; Intel disclosure], the second half of the
 * "stride+streamer" multi-level baseline of §6.2.4.
 */
#pragma once

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/**
 * Tracks up to N concurrent streams at page granularity; once a stream's
 * direction is confirmed by @p train_len accesses it runs @p degree lines
 * ahead of the demand stream.
 */
class StreamerPrefetcher : public PrefetcherBase
{
  public:
    StreamerPrefetcher(std::uint32_t streams = 64, std::uint32_t degree = 8,
                       std::uint32_t train_len = 2);

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;

    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

    /** Adjust the run-ahead distance (used by the POWER7-style wrapper). */
    void setDegree(std::uint32_t degree) { degree_ = degree; }

    /** Current run-ahead distance. */
    std::uint32_t degree() const { return degree_; }

  private:
    struct Stream
    {
        Addr page = ~0ull;
        std::int32_t last_offset = -1;
        std::int8_t dir = 0;      ///< +1 ascending, -1 descending, 0 unset
        std::uint8_t confirmations = 0;
        std::uint64_t lru = 0;
    };

    std::vector<Stream> streams_;
    std::uint32_t degree_;
    std::uint32_t train_len_;
    std::uint64_t tick_ = 0;
};

} // namespace pythia::pf
