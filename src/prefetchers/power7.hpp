/**
 * @file
 * POWER7-style adaptive stream prefetcher [Jimenez+ TOPC'14], compared
 * against Pythia in the paper's Appendix B.5. A conventional streamer
 * whose depth is retuned periodically from observed prefetch usefulness
 * and DRAM bandwidth utilization — system feedback as an *afterthought*
 * control loop, in contrast to Pythia's inherent reward integration.
 */
#pragma once

#include "prefetchers/prefetcher.hpp"
#include "prefetchers/streamer.hpp"

namespace pythia::pf {

/** POWER7 adaptive prefetcher knobs. */
struct Power7Config
{
    std::uint32_t epoch_prefetches = 256; ///< retune interval
    std::uint32_t min_depth = 1;
    std::uint32_t max_depth = 16;
};

/** Streamer with epoch-based adaptive depth selection. */
class Power7Prefetcher : public PrefetcherBase
{
  public:
    explicit Power7Prefetcher(const Power7Config& cfg = Power7Config{});

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;
    void onPrefetchUsed(Addr block, bool timely) override;
    void onPrefetchEvicted(Addr block, bool used) override;

    /** Current adaptive depth (for tests). */
    std::uint32_t depth() const { return streamer_.degree(); }

  private:
    void maybeRetune();

    Power7Config cfg_;
    StreamerPrefetcher streamer_;
    std::uint64_t issued_ = 0;
    std::uint64_t used_ = 0;
    std::uint64_t wasted_ = 0;
};

} // namespace pythia::pf
