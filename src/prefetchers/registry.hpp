/**
 * @file
 * Factory for the baseline prefetchers by name. (The Pythia agent itself
 * is layered above this library; the harness composes both registries —
 * see harness/runner.hpp.)
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/**
 * Build a baseline prefetcher by name. Known names: "none" (returns
 * nullptr), "nextline", "stride", "streamer", "spp", "spp_ppf", "bingo",
 * "mlop", "dspatch", "spp_dspatch", "ipcp", "power7", "cp_hw", and the
 * combination stacks "st", "st_s", "st_s_b", "st_s_b_d", "st_s_b_d_m".
 * @throws std::invalid_argument on unknown names.
 */
std::unique_ptr<PrefetcherApi> makeBaseline(const std::string& name);

/** Names accepted by makeBaseline (excluding "none"). */
const std::vector<std::string>& baselineNames();

} // namespace pythia::pf
