#include "prefetchers/cp_hw.hpp"

#include <algorithm>

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "cp_hw",
    "contextual-bandit prefetcher over hardware contexts [Peled+ ISCA'15]",
    {"table_entries", "alpha", "epsilon", "reward_timely", "reward_late",
     "reward_unused", "seed"},
    [](const sim::PrefetcherParams& p) {
        CpHwConfig cfg;
        cfg.table_entries = p.getU32("table_entries", cfg.table_entries);
        cfg.alpha = p.getDouble("alpha", cfg.alpha);
        cfg.epsilon = p.getDouble("epsilon", cfg.epsilon);
        cfg.reward_timely = p.getDouble("reward_timely", cfg.reward_timely);
        cfg.reward_late = p.getDouble("reward_late", cfg.reward_late);
        cfg.reward_unused =
            p.getDouble("reward_unused", cfg.reward_unused);
        cfg.seed = p.getU64("seed", cfg.seed);
        return std::make_unique<CpHwPrefetcher>(cfg);
    }};

} // namespace

const std::vector<std::int32_t>&
CpHwPrefetcher::actionList()
{
    static const std::vector<std::int32_t> actions = {
        -6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32};
    return actions;
}

CpHwPrefetcher::CpHwPrefetcher(const CpHwConfig& cfg)
    : PrefetcherBase("cp_hw",
                     cfg.table_entries * actionList().size() * 2),
      cfg_(cfg),
      q_(cfg.table_entries,
         std::vector<double>(actionList().size(), 0.0)),
      tracker_(256), rng_(cfg.seed)
{
}

std::uint32_t
CpHwPrefetcher::contextOf(Addr pc, std::int32_t delta) const
{
    const std::uint64_t key =
        hashCombine(mix64(pc), static_cast<std::uint64_t>(delta + 64));
    return static_cast<std::uint32_t>(key % cfg_.table_entries);
}

void
CpHwPrefetcher::reinforce(std::uint32_t ctx, std::size_t action,
                          double reward)
{
    double& q = q_[ctx][action];
    // Myopic bandit update: no bootstrapping from successor state.
    q += cfg_.alpha * (reward - q);
}

void
CpHwPrefetcher::train(const PrefetchAccess& access,
                      std::vector<PrefetchRequest>& out)
{
    const std::int32_t delta = tracker_.recordAndDelta(access.block);
    const std::uint32_t ctx = contextOf(access.pc, delta);
    const auto& actions = actionList();

    std::size_t choice;
    if (rng_.nextBool(cfg_.epsilon)) {
        choice = rng_.nextBounded(actions.size());
    } else {
        choice = 0;
        for (std::size_t a = 1; a < actions.size(); ++a)
            if (q_[ctx][a] > q_[ctx][choice])
                choice = a;
    }

    const std::int32_t offset = actions[choice];
    if (offset == 0)
        return; // the bandit may also choose not to prefetch
    if (!emitWithinPage(access.block, offset, out)) {
        reinforce(ctx, choice, cfg_.reward_unused);
        return;
    }
    const Addr target = static_cast<Addr>(
        static_cast<std::int64_t>(access.block) + offset);
    pending_[target] = Pending{ctx, choice};
    if (pending_.size() > 2048)
        pending_.erase(pending_.begin());
}

void
CpHwPrefetcher::onPrefetchUsed(Addr block, bool timely)
{
    auto it = pending_.find(block);
    if (it == pending_.end())
        return;
    reinforce(it->second.ctx, it->second.action,
              timely ? cfg_.reward_timely : cfg_.reward_late);
    pending_.erase(it);
}

void
CpHwPrefetcher::onPrefetchEvicted(Addr block, bool used)
{
    auto it = pending_.find(block);
    if (it == pending_.end())
        return;
    if (!used)
        reinforce(it->second.ctx, it->second.action, cfg_.reward_unused);
    pending_.erase(it);
}

} // namespace pythia::pf
