#include "prefetchers/power7.hpp"

#include <algorithm>

namespace pythia::pf {

Power7Prefetcher::Power7Prefetcher(const Power7Config& cfg)
    : PrefetcherBase("power7", 1024), cfg_(cfg),
      streamer_(64, /*degree=*/4, /*train_len=*/2)
{
}

void
Power7Prefetcher::maybeRetune()
{
    if (issued_ < cfg_.epoch_prefetches)
        return;
    const double accuracy =
        used_ + wasted_ > 0
            ? static_cast<double>(used_) / (used_ + wasted_)
            : 1.0;
    std::uint32_t depth = streamer_.degree();
    // Accurate and bandwidth-cheap epochs ramp the depth up; inaccurate
    // or bandwidth-saturated epochs ramp it down.
    if (accuracy > 0.6 && !highBandwidth())
        depth = std::min(cfg_.max_depth, depth + 2);
    else if (accuracy < 0.4 || highBandwidth())
        depth = std::max(cfg_.min_depth, depth > 2 ? depth - 2 : 1);
    streamer_.setDegree(depth);
    issued_ = 0;
    used_ = 0;
    wasted_ = 0;
}

void
Power7Prefetcher::train(const PrefetchAccess& access,
                        std::vector<PrefetchRequest>& out)
{
    const std::size_t before = out.size();
    streamer_.train(access, out);
    issued_ += out.size() - before;
    maybeRetune();
}

void
Power7Prefetcher::onPrefetchUsed(Addr, bool)
{
    ++used_;
}

void
Power7Prefetcher::onPrefetchEvicted(Addr, bool used)
{
    if (!used)
        ++wasted_;
}

} // namespace pythia::pf
