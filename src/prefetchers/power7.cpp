#include "prefetchers/power7.hpp"

#include <algorithm>

#include "sim/prefetcher_registry.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "power7",
    "POWER7-style adaptive-depth streamer [Jimenez+ TOPC'14]",
    {"epoch_prefetches", "min_depth", "max_depth"},
    [](const sim::PrefetcherParams& p) {
        Power7Config cfg;
        cfg.epoch_prefetches =
            p.getU32("epoch_prefetches", cfg.epoch_prefetches);
        cfg.min_depth = p.getU32("min_depth", cfg.min_depth);
        cfg.max_depth = p.getU32("max_depth", cfg.max_depth);
        return std::make_unique<Power7Prefetcher>(cfg);
    }};

} // namespace

Power7Prefetcher::Power7Prefetcher(const Power7Config& cfg)
    : PrefetcherBase("power7", 1024), cfg_(cfg),
      streamer_(64, /*degree=*/4, /*train_len=*/2)
{
}

void
Power7Prefetcher::maybeRetune()
{
    if (issued_ < cfg_.epoch_prefetches)
        return;
    const double accuracy =
        used_ + wasted_ > 0
            ? static_cast<double>(used_) / (used_ + wasted_)
            : 1.0;
    std::uint32_t depth = streamer_.degree();
    // Accurate and bandwidth-cheap epochs ramp the depth up; inaccurate
    // or bandwidth-saturated epochs ramp it down.
    if (accuracy > 0.6 && !highBandwidth())
        depth = std::min(cfg_.max_depth, depth + 2);
    else if (accuracy < 0.4 || highBandwidth())
        depth = std::max(cfg_.min_depth, depth > 2 ? depth - 2 : 1);
    streamer_.setDegree(depth);
    issued_ = 0;
    used_ = 0;
    wasted_ = 0;
}

void
Power7Prefetcher::train(const PrefetchAccess& access,
                        std::vector<PrefetchRequest>& out)
{
    const std::size_t before = out.size();
    streamer_.train(access, out);
    issued_ += out.size() - before;
    maybeRetune();
}

void
Power7Prefetcher::onPrefetchUsed(Addr, bool)
{
    ++used_;
}

void
Power7Prefetcher::onPrefetchEvicted(Addr, bool used)
{
    if (!used)
        ++wasted_;
}

} // namespace pythia::pf
