/**
 * @file
 * SPP — Signature Path Prefetcher [Kim+ MICRO'16], one of the paper's two
 * headline baselines. Learns compressed delta-history signatures per page
 * and walks the pattern table speculatively (lookahead) while the path
 * confidence stays above threshold.
 */
#pragma once

#include <array>

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/** SPP tuning knobs; defaults follow the paper's Table 7 configuration
 *  (256-entry ST, 512-entry 4-way PT). */
struct SppConfig
{
    std::uint32_t st_entries = 256;
    std::uint32_t pt_sets = 512;
    std::uint32_t pt_ways = 4;
    double fill_threshold = 0.40;  ///< confidence to fill into L2
    double pf_threshold = 0.15;    ///< confidence to fill into LLC only
    std::uint32_t max_lookahead = 8;
};

/**
 * Signature Path Prefetcher.
 *
 * Per page, a 12-bit signature compresses the delta history
 * (sig' = (sig << 3) XOR delta). The pattern table maps a signature to
 * candidate next deltas with confidence counters; prediction multiplies
 * per-step confidences along the speculative path and stops below
 * threshold, exactly the lookahead scheme of the original design.
 */
class SppPrefetcher : public PrefetcherBase
{
  public:
    explicit SppPrefetcher(const SppConfig& cfg = SppConfig{});

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;

    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

    /** Expose the predicted (delta, confidence) list for one signature —
     *  consumed by the PPF wrapper and by unit tests. */
    struct Prediction
    {
        std::int32_t delta = 0;
        double confidence = 0.0;
    };

    /** Highest-confidence prediction for @p signature (confidence 0 when
     *  the signature is unknown). */
    Prediction predictBest(std::uint32_t signature) const;

    /** Signature currently tracked for @p block's page (0 if untracked). */
    std::uint32_t pageSignature(Addr block) const;

    static constexpr std::uint32_t kSigBits = 12;
    static constexpr std::uint32_t kSigMask = (1u << kSigBits) - 1;

    /** sig' = (sig << 3) ^ delta, folded to 12 bits. */
    static std::uint32_t advanceSignature(std::uint32_t sig,
                                          std::int32_t delta);

  private:
    struct StEntry
    {
        Addr page = ~0ull;
        std::uint32_t signature = 0;
        std::int32_t last_offset = -1;
    };

    struct PtEntry
    {
        std::uint32_t signature = 0;
        bool valid = false;
        std::array<std::int32_t, 4> delta{};
        std::array<std::uint16_t, 4> c_delta{};
        std::uint16_t c_sig = 0;
    };

    StEntry& stEntry(Addr page);
    PtEntry* findPt(std::uint32_t signature);
    const PtEntry* findPt(std::uint32_t signature) const;
    void updatePattern(std::uint32_t signature, std::int32_t delta);

    SppConfig cfg_;
    std::vector<StEntry> st_;
    std::vector<PtEntry> pt_;
};

} // namespace pythia::pf
