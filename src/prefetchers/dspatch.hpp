/**
 * @file
 * DSPatch — Dual Spatial Pattern prefetcher [Bera+ MICRO'19], the
 * "SPP+DSPatch" companion baseline of the paper. Keeps two bit-pattern
 * predictions per program context: a coverage-biased pattern (CovP,
 * union of observed footprints) and an accuracy-biased pattern (AccP,
 * intersection), and selects between them using DRAM bandwidth usage.
 */
#pragma once

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/** DSPatch tuning knobs (defaults sized to the paper's ~3.6KB budget). */
struct DspatchConfig
{
    std::uint32_t region_bytes = 2048;
    std::uint32_t spt_entries = 256;  ///< signature pattern table entries
    std::uint32_t at_entries = 32;    ///< in-flight region accumulators
};

/** Dual Spatial Pattern prefetcher. */
class DspatchPrefetcher : public PrefetcherBase
{
  public:
    explicit DspatchPrefetcher(const DspatchConfig& cfg = DspatchConfig{});

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;

  private:
    struct SptEntry
    {
        std::uint64_t sig = 0;
        std::uint64_t cov_pattern = 0; ///< union (coverage-biased)
        std::uint64_t acc_pattern = 0; ///< intersection (accuracy-biased)
        std::uint8_t trained = 0;
        bool valid = false;
    };

    struct AtEntry
    {
        Addr region = ~0ull;
        std::uint64_t sig = 0;
        std::uint32_t anchor = 0;
        std::uint64_t footprint = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    Addr regionOf(Addr block) const;
    std::uint32_t offsetInRegion(Addr block) const;
    void commit(AtEntry& e);

    DspatchConfig cfg_;
    std::uint32_t blocks_per_region_;
    std::uint32_t region_shift_;
    std::vector<SptEntry> spt_;
    std::vector<AtEntry> at_;
    std::uint64_t tick_ = 0;
};

} // namespace pythia::pf
