#include "prefetchers/streamer.hpp"

#include "sim/prefetcher_registry.hpp"
#include "snapshot/codec.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "streamer",
    "multi-stream L2 streamer [Chen & Baer, IEEE TC'95]",
    {"streams", "degree", "train_len"},
    [](const sim::PrefetcherParams& p) {
        return std::make_unique<StreamerPrefetcher>(
            p.getU32("streams", 64), p.getU32("degree", 8),
            p.getU32("train_len", 2));
    }};

} // namespace

StreamerPrefetcher::StreamerPrefetcher(std::uint32_t streams,
                                       std::uint32_t degree,
                                       std::uint32_t train_len)
    : PrefetcherBase("streamer", streams * 12), streams_(streams),
      degree_(degree), train_len_(train_len)
{
}

void
StreamerPrefetcher::train(const PrefetchAccess& access,
                          std::vector<PrefetchRequest>& out)
{
    const Addr page = pageIdOfBlock(access.block);
    const auto offset =
        static_cast<std::int32_t>(access.block & (kBlocksPerPage - 1));
    ++tick_;

    // Find the stream tracking this page, or allocate the LRU slot.
    Stream* s = nullptr;
    Stream* lru = &streams_[0];
    for (auto& st : streams_) {
        if (st.page == page) {
            s = &st;
            break;
        }
        if (st.lru < lru->lru)
            lru = &st;
    }
    if (s == nullptr) {
        *lru = Stream{};
        lru->page = page;
        lru->last_offset = offset;
        lru->lru = tick_;
        return;
    }
    s->lru = tick_;

    const std::int32_t delta = offset - s->last_offset;
    s->last_offset = offset;
    if (delta == 0)
        return;

    const std::int8_t dir = delta > 0 ? 1 : -1;
    if (dir == s->dir) {
        if (s->confirmations < 255)
            ++s->confirmations;
    } else {
        s->dir = dir;
        s->confirmations = 1;
    }

    if (s->confirmations >= train_len_) {
        for (std::uint32_t d = 1; d <= degree_; ++d)
            emitWithinPage(access.block,
                           s->dir * static_cast<std::int32_t>(d), out);
    }
}

void
StreamerPrefetcher::saveState(snap::Writer& w) const
{
    w.u64(tick_);
    // degree_ is runtime-adjustable (setDegree), hence state not config.
    w.u32(degree_);
    w.u64(streams_.size());
    for (const Stream& s : streams_) {
        w.u64(s.page);
        w.i32(s.last_offset);
        w.i32(s.dir);
        w.u8(s.confirmations);
        w.u64(s.lru);
    }
}

void
StreamerPrefetcher::loadState(snap::Reader& r)
{
    const std::uint64_t tick = r.u64();
    const std::uint32_t degree = r.u32();
    const std::uint64_t n = r.u64();
    if (n != streams_.size())
        throw snap::CorruptError(
            "snapshot corrupt: streamer tracks " + std::to_string(n) +
            " streams but this configuration has " +
            std::to_string(streams_.size()));
    tick_ = tick;
    degree_ = degree;
    for (Stream& s : streams_) {
        s.page = r.u64();
        s.last_offset = r.i32();
        s.dir = static_cast<std::int8_t>(r.i32());
        s.confirmations = r.u8();
        s.lru = r.u64();
    }
}

} // namespace pythia::pf
