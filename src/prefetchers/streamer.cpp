#include "prefetchers/streamer.hpp"

#include "sim/prefetcher_registry.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "streamer",
    "multi-stream L2 streamer [Chen & Baer, IEEE TC'95]",
    {"streams", "degree", "train_len"},
    [](const sim::PrefetcherParams& p) {
        return std::make_unique<StreamerPrefetcher>(
            p.getU32("streams", 64), p.getU32("degree", 8),
            p.getU32("train_len", 2));
    }};

} // namespace

StreamerPrefetcher::StreamerPrefetcher(std::uint32_t streams,
                                       std::uint32_t degree,
                                       std::uint32_t train_len)
    : PrefetcherBase("streamer", streams * 12), streams_(streams),
      degree_(degree), train_len_(train_len)
{
}

void
StreamerPrefetcher::train(const PrefetchAccess& access,
                          std::vector<PrefetchRequest>& out)
{
    const Addr page = pageIdOfBlock(access.block);
    const auto offset =
        static_cast<std::int32_t>(access.block & (kBlocksPerPage - 1));
    ++tick_;

    // Find the stream tracking this page, or allocate the LRU slot.
    Stream* s = nullptr;
    Stream* lru = &streams_[0];
    for (auto& st : streams_) {
        if (st.page == page) {
            s = &st;
            break;
        }
        if (st.lru < lru->lru)
            lru = &st;
    }
    if (s == nullptr) {
        *lru = Stream{};
        lru->page = page;
        lru->last_offset = offset;
        lru->lru = tick_;
        return;
    }
    s->lru = tick_;

    const std::int32_t delta = offset - s->last_offset;
    s->last_offset = offset;
    if (delta == 0)
        return;

    const std::int8_t dir = delta > 0 ? 1 : -1;
    if (dir == s->dir) {
        if (s->confirmations < 255)
            ++s->confirmations;
    } else {
        s->dir = dir;
        s->confirmations = 1;
    }

    if (s->confirmations >= train_len_) {
        for (std::uint32_t d = 1; d <= degree_; ++d)
            emitWithinPage(access.block,
                           s->dir * static_cast<std::int32_t>(d), out);
    }
}

} // namespace pythia::pf
