/**
 * @file
 * PC-based stride prefetcher [Fu+ MICRO'92, Jouppi ISCA'90], the classic
 * L1 prefetcher used by the paper's multi-level comparisons (§6.2.4) and
 * the "St" component of the §6.3 prefetcher-combination study.
 */
#pragma once

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/**
 * Per-PC stride table with 2-bit confidence. When the same PC produces the
 * same cacheline stride twice in a row the entry becomes confident and
 * prefetches @p degree strides ahead.
 */
class StridePrefetcher : public PrefetcherBase
{
  public:
    /**
     * @param entries table entries (direct mapped by PC hash)
     * @param degree  prefetch distance in strides once confident
     */
    explicit StridePrefetcher(std::uint32_t entries = 256,
                              std::uint32_t degree = 4);

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;

    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr last_block = 0;
        std::int32_t stride = 0;
        std::uint8_t confidence = 0; ///< saturating 0..3; >=2 prefetches
        bool valid = false;
    };

    std::vector<Entry> table_;
    std::uint32_t degree_;
};

} // namespace pythia::pf
