#include "prefetchers/prefetcher.hpp"

#include <utility>

#include "common/hashing.hpp"

namespace pythia::pf {

PrefetcherBase::PrefetcherBase(std::string name, std::size_t storage_bytes)
    : name_(std::move(name)), storage_bytes_(storage_bytes)
{
}

bool
PrefetcherBase::emitWithinPage(Addr block, std::int32_t line_offset,
                               std::vector<PrefetchRequest>& out,
                               int fill_level)
{
    if (line_offset == 0)
        return false;
    if (!sameePageAfterOffset(block, line_offset))
        return false;
    PrefetchRequest pr;
    pr.block = static_cast<Addr>(
        static_cast<std::int64_t>(block) + line_offset);
    pr.fill_level = fill_level;
    out.push_back(pr);
    return true;
}

PageTracker::PageTracker(std::size_t entries) : entries_(entries) {}

std::size_t
PageTracker::index(Addr page) const
{
    return static_cast<std::size_t>(mix64(page)) % entries_.size();
}

std::int32_t
PageTracker::recordAndDelta(Addr block)
{
    const Addr page = pageIdOfBlock(block);
    const auto offset =
        static_cast<std::int32_t>(block & (kBlocksPerPage - 1));
    Entry& e = entries_[index(page)];
    std::int32_t delta = 0;
    if (e.page == page && e.last_offset >= 0)
        delta = offset - e.last_offset;
    e.page = page;
    e.last_offset = offset;
    return delta;
}

std::int32_t
PageTracker::lastOffset(Addr block) const
{
    const Addr page = pageIdOfBlock(block);
    const Entry& e = entries_[index(page)];
    return e.page == page ? e.last_offset : -1;
}

} // namespace pythia::pf
