/**
 * @file
 * Composite prefetcher that runs several child prefetchers side by side
 * and merges their candidates — the "St+S+B+D+M" hybrid stacks of the
 * paper's Figs. 9(b)/10(b), whose additive overprediction Pythia is shown
 * to beat.
 */
#pragma once

#include <memory>

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/** Trains every child on every access; unions their candidate lists. */
class CompositePrefetcher : public PrefetcherBase
{
  public:
    /** @param name display name (e.g. "St+S+B")
     *  @param children component prefetchers, trained in order. */
    CompositePrefetcher(std::string name,
                        std::vector<std::unique_ptr<PrefetcherApi>>
                            children);

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;
    void onFill(Addr block, Cycle at) override;
    void onPrefetchUsed(Addr block, bool timely) override;
    void onPrefetchEvicted(Addr block, bool used) override;
    void setBandwidthInfo(const BandwidthInfo* bw) override;

    /** Delegates to every child in training order; any child without
     *  snapshot support propagates its UnsupportedError. */
    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

    /** Number of children. */
    std::size_t size() const { return children_.size(); }

  private:
    std::vector<std::unique_ptr<PrefetcherApi>> children_;
};

} // namespace pythia::pf
