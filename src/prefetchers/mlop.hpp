/**
 * @file
 * MLOP — Multi-Lookahead Offset Prefetcher [Shakerinava+ DPC3'19], the
 * third baseline of the paper's headline comparison. Scores every
 * candidate offset at multiple lookahead levels against an access-map
 * history and prefetches the best offset of each level once enough
 * evaluation updates have accumulated.
 */
#pragma once

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/** MLOP tuning knobs; defaults follow Table 7 (128-entry AMT, 500-update
 *  evaluation rounds, degree 16). */
struct MlopConfig
{
    std::uint32_t amt_entries = 128;   ///< tracked pages (access maps)
    std::uint32_t update_round = 500;  ///< updates per evaluation round
    std::uint32_t max_degree = 16;     ///< lookahead levels / max prefetches
    std::int32_t max_offset = 31;      ///< candidate offsets in [-max,max]
};

/**
 * MLOP. Each tracked page keeps a 64-bit access bitmap plus the sequence
 * index of each block's access; offset d earns a point at lookahead level
 * l when the current access was preceded, at least l accesses earlier,
 * by an access to (block - d) in the same page — i.e. prefetching d ahead
 * from that earlier access would have covered this demand in time.
 */
class MlopPrefetcher : public PrefetcherBase
{
  public:
    explicit MlopPrefetcher(const MlopConfig& cfg = MlopConfig{});

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;

    /** Offsets currently chosen per lookahead level (for tests). */
    const std::vector<std::int32_t>& chosenOffsets() const
    {
        return chosen_;
    }

  private:
    struct MapEntry
    {
        Addr page = ~0ull;
        std::uint64_t bitmap = 0;
        std::uint8_t access_seq[64] = {}; ///< per-block recency rank
        std::uint8_t seq = 0;
        bool valid = false;
    };

    MapEntry& mapOf(Addr page);
    void finishRound();

    MlopConfig cfg_;
    std::vector<MapEntry> maps_;
    /** score[level][offset_index]; offset_index 0 => -max_offset. */
    std::vector<std::vector<std::uint32_t>> scores_;
    std::vector<std::int32_t> chosen_;
    std::uint32_t updates_ = 0;
};

} // namespace pythia::pf
