/**
 * @file
 * IPCP-style multi-class instruction-pointer prefetcher [Pakalapati &
 * Panda, ISCA'20], the DPC3-winning multi-level baseline of §6.2.4.
 * Classifies every load IP as constant-stride (CS), streaming (S) or
 * complex delta-correlated (CPLX) and prefetches per class.
 */
#pragma once

#include "prefetchers/prefetcher.hpp"

namespace pythia::pf {

/** IPCP tuning knobs. */
struct IpcpConfig
{
    std::uint32_t ip_entries = 256;
    std::uint32_t cspt_entries = 1024; ///< complex-stride pattern table
    std::uint32_t cs_degree = 4;
    std::uint32_t stream_degree = 8;
};

/** Bouquet-of-IP-classes prefetcher. */
class IpcpPrefetcher : public PrefetcherBase
{
  public:
    explicit IpcpPrefetcher(const IpcpConfig& cfg = IpcpConfig{});

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;

  private:
    enum class IpClass : std::uint8_t { None, ConstStride, Stream, Cplx };

    struct IpEntry
    {
        Addr pc = 0;
        Addr last_block = 0;
        std::int32_t stride = 0;
        std::uint8_t stride_conf = 0;
        std::uint8_t stream_conf = 0;
        std::uint32_t signature = 0;
        IpClass cls = IpClass::None;
        bool valid = false;
    };

    struct CsptEntry
    {
        std::int32_t delta = 0;
        std::uint8_t conf = 0;
    };

    IpcpConfig cfg_;
    std::vector<IpEntry> ip_;
    std::vector<CsptEntry> cspt_;
};

} // namespace pythia::pf
