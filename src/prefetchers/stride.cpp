#include "prefetchers/stride.hpp"

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"
#include "snapshot/codec.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "stride",
    "per-PC stride prefetcher with 2-bit confidence [Fu+ MICRO'92]",
    {"entries", "degree"},
    [](const sim::PrefetcherParams& p) {
        return std::make_unique<StridePrefetcher>(
            p.getU32("entries", 256), p.getU32("degree", 4));
    }};

} // namespace

StridePrefetcher::StridePrefetcher(std::uint32_t entries,
                                   std::uint32_t degree)
    : PrefetcherBase("stride",
                     entries * 16 /* pc tag + addr + stride + conf */),
      table_(entries), degree_(degree)
{
}

void
StridePrefetcher::train(const PrefetchAccess& access,
                        std::vector<PrefetchRequest>& out)
{
    Entry& e = table_[mix64(access.pc) % table_.size()];
    if (!e.valid || e.pc != access.pc) {
        e = Entry{};
        e.pc = access.pc;
        e.last_block = access.block;
        e.valid = true;
        return;
    }

    const auto stride = static_cast<std::int32_t>(
        static_cast<std::int64_t>(access.block) -
        static_cast<std::int64_t>(e.last_block));
    if (stride == 0)
        return;

    if (stride == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
    }
    e.last_block = access.block;

    if (e.confidence >= 2) {
        for (std::uint32_t d = 1; d <= degree_; ++d)
            emitWithinPage(access.block,
                           e.stride * static_cast<std::int32_t>(d), out);
    }
}

void
StridePrefetcher::saveState(snap::Writer& w) const
{
    w.u64(table_.size());
    for (const Entry& e : table_) {
        w.u64(e.pc);
        w.u64(e.last_block);
        w.i32(e.stride);
        w.u8(e.confidence);
        w.boolean(e.valid);
    }
}

void
StridePrefetcher::loadState(snap::Reader& r)
{
    const std::uint64_t n = r.u64();
    if (n != table_.size())
        throw snap::CorruptError(
            "snapshot corrupt: stride table has " + std::to_string(n) +
            " entries but this configuration has " +
            std::to_string(table_.size()));
    for (Entry& e : table_) {
        e.pc = r.u64();
        e.last_block = r.u64();
        e.stride = r.i32();
        e.confidence = r.u8();
        e.valid = r.boolean();
    }
}

} // namespace pythia::pf
