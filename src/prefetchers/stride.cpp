#include "prefetchers/stride.hpp"

#include "common/hashing.hpp"

namespace pythia::pf {

StridePrefetcher::StridePrefetcher(std::uint32_t entries,
                                   std::uint32_t degree)
    : PrefetcherBase("stride",
                     entries * 16 /* pc tag + addr + stride + conf */),
      table_(entries), degree_(degree)
{
}

void
StridePrefetcher::train(const PrefetchAccess& access,
                        std::vector<PrefetchRequest>& out)
{
    Entry& e = table_[mix64(access.pc) % table_.size()];
    if (!e.valid || e.pc != access.pc) {
        e = Entry{};
        e.pc = access.pc;
        e.last_block = access.block;
        e.valid = true;
        return;
    }

    const auto stride = static_cast<std::int32_t>(
        static_cast<std::int64_t>(access.block) -
        static_cast<std::int64_t>(e.last_block));
    if (stride == 0)
        return;

    if (stride == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
    }
    e.last_block = access.block;

    if (e.confidence >= 2) {
        for (std::uint32_t d = 1; d <= degree_; ++d)
            emitWithinPage(access.block,
                           e.stride * static_cast<std::int32_t>(d), out);
    }
}

} // namespace pythia::pf
