/**
 * @file
 * CP-HW — the context prefetcher of Peled+ [ISCA'15] restricted to
 * hardware-observable contexts, as the paper builds it for the Appendix
 * B.4 comparison. A *contextual bandit*: it scores (context, offset)
 * pairs with immediate rewards only — no bootstrapped long-term value —
 * which is exactly the "myopic" property Pythia's SARSA formulation
 * improves upon (§4.5).
 */
#pragma once

#include "common/rng.hpp"
#include "prefetchers/prefetcher.hpp"

#include <unordered_map>

namespace pythia::pf {

/** CP-HW knobs. */
struct CpHwConfig
{
    std::uint32_t table_entries = 2048; ///< context rows
    double alpha = 0.10;                ///< bandit learning rate
    double epsilon = 0.01;              ///< exploration rate
    double reward_timely = 1.0;
    double reward_late = 0.5;
    double reward_unused = -1.0;
    std::uint64_t seed = 0xC0FFEEull;
};

/** Contextual-bandit prefetcher over hardware contexts (PC + last delta). */
class CpHwPrefetcher : public PrefetcherBase
{
  public:
    explicit CpHwPrefetcher(const CpHwConfig& cfg = CpHwConfig{});

    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override;
    void onPrefetchUsed(Addr block, bool timely) override;
    void onPrefetchEvicted(Addr block, bool used) override;

    /** The shared pruned offset action list (same as Pythia's, so the
     *  comparison isolates the learning algorithm). */
    static const std::vector<std::int32_t>& actionList();

  private:
    std::uint32_t contextOf(Addr pc, std::int32_t delta) const;
    void reinforce(std::uint32_t ctx, std::size_t action, double reward);

    CpHwConfig cfg_;
    std::vector<std::vector<double>> q_; ///< [context][action]
    PageTracker tracker_;
    Rng rng_;

    struct Pending { std::uint32_t ctx; std::size_t action; };
    std::unordered_map<Addr, Pending> pending_;
};

} // namespace pythia::pf
