#include "prefetchers/ppf.hpp"

#include <algorithm>

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "spp_ppf",
    "SPP with Perceptron-based Prefetch Filtering [Bhatia+ ISCA'19]",
    {"table_entries", "threshold", "train_margin", "weight_max",
     "spp_st_entries", "spp_pt_sets", "spp_max_lookahead"},
    [](const sim::PrefetcherParams& p) {
        PpfConfig cfg;
        cfg.table_entries = p.getU32("table_entries", cfg.table_entries);
        cfg.threshold = p.getI32("threshold", cfg.threshold);
        cfg.train_margin = p.getI32("train_margin", cfg.train_margin);
        cfg.weight_max = p.getI32("weight_max", cfg.weight_max);
        SppConfig spp;
        spp.st_entries = p.getU32("spp_st_entries", spp.st_entries);
        spp.pt_sets = p.getU32("spp_pt_sets", spp.pt_sets);
        spp.max_lookahead =
            p.getU32("spp_max_lookahead", spp.max_lookahead);
        return std::make_unique<PpfPrefetcher>(cfg, spp);
    }};

} // namespace

PpfPrefetcher::PpfPrefetcher(const PpfConfig& cfg, const SppConfig& spp_cfg)
    : PrefetcherBase("spp_ppf", 40243 /* ~39.3KB, Table 7 */), cfg_(cfg),
      spp_(spp_cfg),
      weights_(static_cast<std::size_t>(kFeatures) * cfg.table_entries, 0)
{
}

void
PpfPrefetcher::featureIndices(const PrefetchAccess& access, Addr target,
                              std::uint32_t idx[kFeatures]) const
{
    const std::uint32_t mask = cfg_.table_entries - 1;
    const auto delta = static_cast<std::int64_t>(target) -
                       static_cast<std::int64_t>(access.block);
    idx[0] = static_cast<std::uint32_t>(mix64(access.pc)) & mask;
    idx[1] = static_cast<std::uint32_t>(
                 mix64(access.block & (kBlocksPerPage - 1))) & mask;
    idx[2] = static_cast<std::uint32_t>(
                 mix64(static_cast<std::uint64_t>(delta + 64))) & mask;
    idx[3] = static_cast<std::uint32_t>(
                 mix64(access.pc ^ static_cast<std::uint64_t>(delta + 64)))
             & mask;
}

std::int32_t
PpfPrefetcher::score(const std::uint32_t idx[kFeatures]) const
{
    std::int32_t sum = 0;
    for (int f = 0; f < kFeatures; ++f)
        sum += weights_[static_cast<std::size_t>(f) * cfg_.table_entries +
                        idx[f]];
    return sum;
}

void
PpfPrefetcher::adjust(const PendingPrefetch& p, bool useful)
{
    // Perceptron rule: only retrain on mispredictions or weak margins.
    const bool predicted_useful = p.sum >= cfg_.threshold;
    if (predicted_useful == useful &&
        std::abs(p.sum - cfg_.threshold) >= cfg_.train_margin)
        return;
    const std::int32_t dir = useful ? 1 : -1;
    for (int f = 0; f < kFeatures; ++f) {
        std::int32_t& w =
            weights_[static_cast<std::size_t>(f) * cfg_.table_entries +
                     p.feature_idx[f]];
        w = std::clamp(w + dir, -cfg_.weight_max, cfg_.weight_max);
    }
}

void
PpfPrefetcher::train(const PrefetchAccess& access,
                     std::vector<PrefetchRequest>& out)
{
    // A demand to an address we prefetched and never saw used: the
    // pending table is scanned opportunistically via onPrefetchUsed; here
    // we only generate and filter fresh candidates.
    std::vector<PrefetchRequest> raw;
    spp_.train(access, raw);

    for (const PrefetchRequest& pr : raw) {
        std::uint32_t idx[kFeatures];
        featureIndices(access, pr.block, idx);
        const std::int32_t s = score(idx);
        PendingPrefetch pending;
        std::copy(idx, idx + kFeatures, pending.feature_idx);
        pending.sum = s;
        if (s >= cfg_.threshold) {
            out.push_back(pr);
            pending_[pr.block] = pending;
            if (pending_.size() > 4096)
                pending_.erase(pending_.begin()); // bounded metadata
        } else {
            ++rejected_;
            // Track rejects too: if the line is demanded later we learn
            // the rejection was wrong (handled lazily on re-prefetch).
        }
    }
}

void
PpfPrefetcher::onFill(Addr block, Cycle at)
{
    spp_.onFill(block, at);
}

void
PpfPrefetcher::onPrefetchEvicted(Addr block, bool used)
{
    auto it = pending_.find(block);
    if (it != pending_.end()) {
        if (!used)
            adjust(it->second, false); // wasted prefetch: train to reject
        pending_.erase(it);
    }
    spp_.onPrefetchEvicted(block, used);
}

void
PpfPrefetcher::onPrefetchUsed(Addr block, bool timely)
{
    auto it = pending_.find(block);
    if (it != pending_.end()) {
        adjust(it->second, true);
        pending_.erase(it);
    }
    spp_.onPrefetchUsed(block, timely);
}

} // namespace pythia::pf
