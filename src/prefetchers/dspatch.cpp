#include "prefetchers/dspatch.hpp"

#include <bit>
#include <cassert>

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia::pf {

namespace {

[[maybe_unused]] const sim::PrefetcherRegistrar registrar{
    "dspatch",
    "Dual Spatial Pattern prefetcher [Bera+ MICRO'19]",
    {"region_bytes", "spt_entries", "at_entries"},
    [](const sim::PrefetcherParams& p) {
        DspatchConfig cfg;
        cfg.region_bytes = p.getU32("region_bytes", cfg.region_bytes);
        cfg.spt_entries = p.getU32("spt_entries", cfg.spt_entries);
        cfg.at_entries = p.getU32("at_entries", cfg.at_entries);
        return std::make_unique<DspatchPrefetcher>(cfg);
    }};

} // namespace

DspatchPrefetcher::DspatchPrefetcher(const DspatchConfig& cfg)
    : PrefetcherBase("dspatch", 3686 /* ~3.6KB, Table 7 */), cfg_(cfg),
      spt_(cfg.spt_entries), at_(cfg.at_entries)
{
    blocks_per_region_ =
        cfg_.region_bytes / static_cast<std::uint32_t>(kBlockSize);
    assert(blocks_per_region_ <= 64);
    region_shift_ = std::countr_zero(cfg_.region_bytes) -
                    static_cast<std::uint32_t>(kBlockShift);
}

Addr
DspatchPrefetcher::regionOf(Addr block) const
{
    return block >> region_shift_;
}

std::uint32_t
DspatchPrefetcher::offsetInRegion(Addr block) const
{
    return static_cast<std::uint32_t>(block & (blocks_per_region_ - 1));
}

void
DspatchPrefetcher::commit(AtEntry& e)
{
    if (!e.valid || std::popcount(e.footprint) < 2) {
        e.valid = false;
        return;
    }
    // Rotate the footprint so it is anchored at the trigger offset — the
    // stored patterns are trigger-relative like DSPatch's.
    SptEntry& s = spt_[static_cast<std::size_t>(e.sig) % spt_.size()];
    if (!s.valid || s.sig != e.sig) {
        s = SptEntry{};
        s.valid = true;
        s.sig = e.sig;
        s.cov_pattern = e.footprint;
        s.acc_pattern = e.footprint;
        s.trained = 1;
    } else {
        s.cov_pattern |= e.footprint;           // union: more coverage
        s.acc_pattern &= e.footprint;           // intersection: accuracy
        if (s.trained < 255)
            ++s.trained;
        // Periodically re-seed AccP so it does not decay to empty.
        if (s.acc_pattern == 0)
            s.acc_pattern = e.footprint;
    }
    e.valid = false;
}

void
DspatchPrefetcher::train(const PrefetchAccess& access,
                         std::vector<PrefetchRequest>& out)
{
    const Addr region = regionOf(access.block);
    const std::uint32_t offset = offsetInRegion(access.block);
    const std::uint64_t sig = mix64(access.pc);

    AtEntry* at = nullptr;
    AtEntry* lru = &at_[0];
    for (auto& e : at_) {
        if (e.valid && e.region == region) {
            at = &e;
            break;
        }
        if (!e.valid || e.lru < lru->lru)
            lru = &e;
    }

    if (at != nullptr) {
        at->footprint |= 1ull << offset;
        at->lru = ++tick_;
        return;
    }

    // Trigger access: predict with the bandwidth-selected dual pattern.
    const SptEntry& s = spt_[static_cast<std::size_t>(sig) % spt_.size()];
    if (s.valid && s.sig == sig && s.trained >= 2) {
        // High bandwidth usage -> accuracy-biased pattern; low -> coverage
        // (this inherent dual-pattern switch is DSPatch's contribution).
        const std::uint64_t pattern =
            highBandwidth() ? s.acc_pattern : s.cov_pattern;
        for (std::uint32_t b = 0; b < blocks_per_region_; ++b) {
            if (b == offset || ((pattern >> b) & 1) == 0)
                continue;
            const auto rel = static_cast<std::int32_t>(b) -
                             static_cast<std::int32_t>(offset);
            emitWithinPage(access.block, rel, out);
        }
    }

    commit(*lru);
    lru->valid = true;
    lru->region = region;
    lru->sig = sig;
    lru->anchor = offset;
    lru->footprint = 1ull << offset;
    lru->lru = ++tick_;
}

} // namespace pythia::pf
