/**
 * @file
 * Synthetic workload generators standing in for the paper's SPEC / PARSEC /
 * Ligra / Cloudsuite traces.
 *
 * Each generator reproduces one *pattern class* that the paper's evaluation
 * hinges on (see DESIGN.md §4):
 *  - StreamGen        : monotonic streams (libquantum/bwaves-like); favours
 *                       streamer/Bingo-style full-page prefetching.
 *  - StrideGen        : constant per-PC strides (lbm-like); favours stride.
 *  - SpatialRegionGen : recurring region footprints triggered by the first
 *                       access (sphinx3/canneal/facesim-like); favours
 *                       Bingo/SMS.
 *  - DeltaChainGen    : repeating in-page delta sequences (GemsFDTD-like);
 *                       favours SPP's delta-history lookahead.
 *  - IrregularGen     : pointer-chasing over a large footprint (mcf-like);
 *                       punishes overprediction.
 *  - GraphGen         : CSR-style frontier processing mixing sequential
 *                       offset scans with irregular neighbour loads under
 *                       high bandwidth demand (Ligra-like).
 *  - MixedPhaseGen    : phase-alternating composite (Cloudsuite-like).
 *  - CaseStudyGen     : the exact "+23 / +11 after first page access"
 *                       behaviour dissected in the paper's §6.5 case study.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workloads/trace.hpp"

namespace pythia::wl {

/**
 * Shared knobs for all generators.
 *
 * @c mem_ratio controls memory intensity: the average number of non-memory
 * instructions between memory accesses is (1 - mem_ratio) / mem_ratio. The
 * paper only evaluates memory-intensive traces (>= 3 LLC MPKI); defaults
 * here are chosen to keep every generator memory-intensive.
 */
struct GenParams
{
    double mem_ratio = 0.30;       ///< fraction of instrs that touch memory
    double write_ratio = 0.10;     ///< fraction of memory ops that are stores
    /** Fraction of loads whose address depends on the previous load's
     *  data. Regular numeric kernels sit near 0.2-0.3; pointer chasing
     *  near 0.9. Controls how latency-bound the workload is. */
    double dep_ratio = 0.25;
    std::uint64_t footprint_bytes = 64ull << 20; ///< addressable working set
};

/** Base class factoring the gap/store sampling shared by all generators. */
class GenBase : public Workload
{
  public:
    GenBase(std::string name, std::uint64_t seed, GenParams params);

    const std::string& name() const override { return name_; }
    void reset() override;

    /** Seed this generator was constructed with. */
    std::uint64_t seed() const { return seed_; }

  protected:
    /** Derived classes rebuild their pattern state here on reset(). */
    virtual void resetState() = 0;

    /** Wrap a byte address into a finished record with sampled gap/store. */
    TraceRecord emit(Addr pc, Addr addr);

    /** Force the next emitted record to be a load (for trigger accesses). */
    TraceRecord emitLoad(Addr pc, Addr addr);

    Rng& rng() { return rng_; }
    const GenParams& params() const { return params_; }

  private:
    std::string name_;
    std::uint64_t seed_;
    GenParams params_;
    Rng rng_;
};

/** Monotonic multi-stream generator. */
class StreamGen : public GenBase
{
  public:
    /**
     * @param streams   number of concurrently-advancing streams
     * @param backwards fraction of streams that descend instead of ascend
     */
    StreamGen(std::string name, std::uint64_t seed, GenParams params,
              unsigned streams = 4, double backwards = 0.0);

    TraceRecord next() override;
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

  protected:
    void resetState() override;

  private:
    struct Stream { Addr pc; Addr line; std::int32_t dir; };
    unsigned n_streams_;
    double backwards_;
    std::vector<Stream> streams_;
};

/** Constant per-PC stride generator. */
class StrideGen : public GenBase
{
  public:
    /** @param strides stride (in cachelines) of each simulated load PC. */
    StrideGen(std::string name, std::uint64_t seed, GenParams params,
              std::vector<std::int32_t> strides = {2, 3, 5, 7});

    TraceRecord next() override;
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

  protected:
    void resetState() override;

  private:
    struct Walker { Addr pc; Addr line; std::int32_t stride; };
    std::vector<std::int32_t> strides_;
    std::vector<Walker> walkers_;
};

/** Recurring region-footprint generator (SMS/Bingo-friendly). */
class SpatialRegionGen : public GenBase
{
  public:
    /**
     * @param n_patterns  distinct footprint patterns (keyed by trigger PC)
     * @param density     fraction of the 64 lines of a region that are
     *                    touched by each footprint
     * @param concurrency region visits in flight at once; interleaving
     *                    gives prefetchers timeliness headroom, like the
     *                    multiple live data structures of real workloads
     */
    SpatialRegionGen(std::string name, std::uint64_t seed, GenParams params,
                     unsigned n_patterns = 6, double density = 0.4,
                     unsigned concurrency = 4);

    TraceRecord next() override;
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

  protected:
    void resetState() override;

  private:
    struct Visit
    {
        Addr page = 0;
        unsigned pattern = 0;
        std::size_t cursor = 0;
    };

    void startRegion(Visit& v);

    unsigned n_patterns_;
    double density_;
    unsigned concurrency_;
    std::vector<std::vector<std::uint8_t>> patterns_; ///< offsets per pattern
    std::vector<Visit> visits_;
    std::size_t active_visit_ = 0;
    unsigned burst_left_ = 0;
};

/** Repeating in-page delta-sequence generator (SPP-friendly). */
class DeltaChainGen : public GenBase
{
  public:
    /** @param deltas repeating delta pattern, in cachelines (all > 0). */
    DeltaChainGen(std::string name, std::uint64_t seed, GenParams params,
                  std::vector<std::int32_t> deltas = {1, 2, 1, 3});

    TraceRecord next() override;
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

  protected:
    void resetState() override;

  private:
    std::vector<std::int32_t> deltas_;
    Addr page_ = 0;
    std::int32_t offset_ = 0;
    std::size_t delta_idx_ = 0;
};

/** Pointer-chasing generator with no learnable pattern (mcf-like). */
class IrregularGen : public GenBase
{
  public:
    /**
     * @param stride_fraction fraction of accesses that come from a regular
     *                        auxiliary loop (index arrays etc.)
     */
    IrregularGen(std::string name, std::uint64_t seed, GenParams params,
                 double stride_fraction = 0.2);

    TraceRecord next() override;
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

  protected:
    void resetState() override;

  private:
    double stride_fraction_;
    std::uint64_t chase_state_ = 0;
    Addr aux_line_ = 0;
};

/** CSR graph-processing generator (Ligra-like, bandwidth hungry). */
class GraphGen : public GenBase
{
  public:
    /**
     * @param avg_degree   average edges scanned per visited vertex
     * @param irregularity fraction of per-edge data loads that land on a
     *                     random vertex (vs. a nearby one)
     */
    GraphGen(std::string name, std::uint64_t seed, GenParams params,
             unsigned avg_degree = 8, double irregularity = 0.8);

    TraceRecord next() override;
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

  protected:
    void resetState() override;

  private:
    unsigned avg_degree_;
    double irregularity_;
    Addr offsets_line_ = 0;   ///< sequential scan of the CSR offsets array
    Addr edges_line_ = 0;     ///< sequential scan of the CSR edges array
    unsigned edges_left_ = 0; ///< edges remaining for the current vertex
    unsigned phase_ = 0;      ///< rotates offsets -> edges -> data loads
};

/** Phase-alternating composite generator (Cloudsuite-like). */
class MixedPhaseGen : public GenBase
{
  public:
    /**
     * @param children  sub-generators to rotate through
     * @param phase_len records emitted per phase before switching
     */
    MixedPhaseGen(std::string name, std::uint64_t seed,
                  std::vector<std::unique_ptr<Workload>> children,
                  std::size_t phase_len = 20000);

    /**
     * Per-child phase lengths: child i emits @p phase_lens[i] records
     * per rotation (the registry's "phase:stream@40+graph@60" form).
     * @pre phase_lens.size() == children.size(), all entries > 0.
     */
    MixedPhaseGen(std::string name, std::uint64_t seed,
                  std::vector<std::unique_ptr<Workload>> children,
                  std::vector<std::size_t> phase_lens);

    TraceRecord next() override;
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

  protected:
    void resetState() override;

  private:
    std::vector<std::unique_ptr<Workload>> children_;
    std::vector<std::size_t> phase_lens_; ///< records per phase, per child
    std::size_t emitted_ = 0;
    std::size_t active_ = 0;
};

/** The §6.5 case-study pattern: first access to a page at a known PC is
 *  followed by exactly one more access +23 (or +11) lines ahead. */
class CaseStudyGen : public GenBase
{
  public:
    CaseStudyGen(std::string name, std::uint64_t seed, GenParams params);

    TraceRecord next() override;
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

    /** Trigger PC whose pages get a +23 companion access. */
    static constexpr Addr kPc23 = 0x436a81;
    /** Trigger PC whose pages get a +11 companion access. */
    static constexpr Addr kPc11 = 0x4377c5;

  protected:
    void resetState() override;

  private:
    Addr page_ = 0;
    int stage_ = 0;       ///< 0 = trigger access, 1 = companion access
    bool use_23_ = true;  ///< alternates between the two trigger PCs
};

} // namespace pythia::wl
