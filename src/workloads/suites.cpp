#include "workloads/suites.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "common/hashing.hpp"
#include "common/spec.hpp"

namespace pythia::wl {

namespace {

/// Deterministic per-name seed: same workload name => same trace.
std::uint64_t
nameSeed(const std::string& name)
{
    std::uint64_t h = 0xB16B00B5ull;
    for (char c : name)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    return h | 1;
}

/**
 * The catalog's shared GenParams spelling. The catalog expresses
 * *relative* memory intensity; @p half_ratio is the absolute
 * mem_ratio with the 0.5x scaling already applied (so the no-prefetch
 * baseline is latency-bound rather than bus-saturated — prefetching
 * then pays off by hiding latency, as on the paper's systems, while
 * the low-MTPS sweeps of Fig. 8(b) still drive the bus into
 * saturation). dep_ratio 0.45 throughout; footprint only when it
 * departs from the family default of 64M.
 */
std::string
mp(const std::string& half_ratio, unsigned footprint_mb = 64)
{
    std::string s = "mem_ratio=" + half_ratio + ",dep_ratio=0.45";
    if (footprint_mb != 64)
        s += ",footprint=" + std::to_string(footprint_mb) + "M";
    return s;
}

/// Cloudsuite-like phase mix of spatial + irregular + stream. Child
/// seeds derive as mix64(seed ^ (i+1)) inside the registry's phase
/// factory, matching the historical makeCloudMix() construction.
std::string
cloudMix(const std::string& irr_frac, std::size_t phase_len)
{
    std::string at = "@";
    at += std::to_string(phase_len);
    std::string s = "phase:spatial:patterns=8,density=0.3,";
    s += mp("0.15");
    s += at;
    s += "+irregular:stride_fraction=";
    s += irr_frac;
    s += ",";
    s += mp("0.15");
    s += at;
    s += "+stream:streams=2,";
    s += mp("0.125");
    s += at;
    return s;
}

std::vector<WorkloadSpec>
buildCatalog()
{
    std::vector<WorkloadSpec> v;

    // ---- SPEC06-like -----------------------------------------------------
    v.push_back({"482.sphinx3-417B", "SPEC06",
                 "spatial:patterns=6,density=0.35," + mp("0.15")});
    v.push_back({"459.GemsFDTD-765B", "SPEC06",
                 "delta:deltas=1/2/1/3," + mp("0.16")});
    v.push_back({"459.GemsFDTD-1320B", "SPEC06",
                 "casestudy:" + mp("0.16")});
    v.push_back({"429.mcf-184B", "SPEC06",
                 "irregular:stride_fraction=0.15," + mp("0.165", 96)});
    v.push_back({"462.libquantum-1343B", "SPEC06",
                 "stream:streams=1," + mp("0.175")});
    v.push_back({"470.lbm-164B", "SPEC06",
                 "stride:strides=2/3," + mp("0.165")});
    v.push_back({"410.bwaves-945B", "SPEC06",
                 "stream:streams=8," + mp("0.165")});
    v.push_back({"433.milc-127B", "SPEC06",
                 "delta:deltas=2/3/2/5," + mp("0.15")});

    // ---- SPEC17-like -----------------------------------------------------
    v.push_back({"603.bwaves_s-2931B", "SPEC17",
                 "stream:streams=6," + mp("0.18")});
    v.push_back({"605.mcf_s-665B", "SPEC17",
                 "irregular:stride_fraction=0.2," + mp("0.16", 96)});
    v.push_back({"619.lbm_s-4268B", "SPEC17",
                 "stride:strides=3/5," + mp("0.17")});
    v.push_back({"654.roms_s-842B", "SPEC17",
                 "delta:deltas=1/1/2/4," + mp("0.15")});
    v.push_back({"623.xalancbmk_s-592B", "SPEC17",
                 "irregular:stride_fraction=0.45," + mp("0.14", 32)});
    v.push_back({"602.gcc_s-734B", "SPEC17", cloudMix("0.35", 8000)});

    // ---- PARSEC-like -----------------------------------------------------
    v.push_back({"PARSEC-Canneal", "PARSEC",
                 "spatial:patterns=8,density=0.45," + mp("0.15")});
    v.push_back({"PARSEC-Facesim", "PARSEC",
                 "spatial:patterns=5,density=0.5," + mp("0.14")});
    v.push_back({"PARSEC-Streamcluster", "PARSEC",
                 "stream:streams=3," + mp("0.165")});
    v.push_back({"PARSEC-Raytrace", "PARSEC",
                 "irregular:stride_fraction=0.3," + mp("0.13", 48)});
    v.push_back({"PARSEC-Fluidanimate", "PARSEC",
                 "stride:strides=1/2/6," + mp("0.15")});

    // ---- Ligra-like (bandwidth hungry graph processing) -------------------
    struct GraphCfg
    {
        const char* name;
        const char* deg;
        const char* irr;
        const char* half_mr; // memParams() intensity, pre-halved
    };
    const GraphCfg graphs[] = {
        {"Ligra-PageRank",      "16", "0.7",  "0.21"},
        {"Ligra-PageRankDelta", "12", "0.75", "0.2"},
        {"Ligra-CC",            "10", "0.8",  "0.21"},
        {"Ligra-BFS",            "6", "0.85", "0.19"},
        {"Ligra-BC",             "8", "0.8",  "0.2"},
        {"Ligra-BellmanFord",   "10", "0.75", "0.2"},
        {"Ligra-Triangle",      "20", "0.65", "0.21"},
        {"Ligra-Radii",          "8", "0.8",  "0.19"},
        {"Ligra-MIS",            "6", "0.85", "0.18"},
        {"Ligra-BFSCC",          "6", "0.85", "0.19"},
    };
    for (const auto& g : graphs)
        v.push_back({g.name, "Ligra",
                     std::string("graph:degree=") + g.deg +
                         ",irregularity=" + g.irr + "," +
                         mp(g.half_mr, 96)});

    // ---- Cloudsuite-like ---------------------------------------------------
    v.push_back({"Cloudsuite-Cassandra", "Cloudsuite",
                 cloudMix("0.3", 12000)});
    v.push_back({"Cloudsuite-Cloud9", "Cloudsuite",
                 cloudMix("0.4", 6000)});
    v.push_back({"Cloudsuite-Nutch", "Cloudsuite",
                 cloudMix("0.25", 9000)});
    v.push_back({"Cloudsuite-Classification", "Cloudsuite",
                 cloudMix("0.35", 15000)});

    return v;
}

std::vector<WorkloadSpec>
buildUnseenCatalog()
{
    // Held-out seeds and parameter draws never used anywhere else — the
    // moral equivalent of the CVP-2 traces of §6.4.
    std::vector<WorkloadSpec> v;
    v.push_back({"crypto-aes-17", "Crypto",
                 "stride:strides=1/1/4," + mp("0.125", 16)});
    v.push_back({"crypto-sha-5", "Crypto",
                 "stream:streams=2," + mp("0.14")});
    v.push_back({"int-41", "INT", cloudMix("0.3", 7000)});
    v.push_back({"int-112", "INT",
                 "irregular:stride_fraction=0.35," + mp("0.15", 48)});
    v.push_back({"fp-23", "FP", "delta:deltas=1/3/1/5," + mp("0.165")});
    v.push_back({"fp-77", "FP", "stream:streams=5," + mp("0.17")});
    v.push_back({"srv-9", "Server",
                 "graph:degree=9,irregularity=0.75," + mp("0.19", 96)});
    v.push_back({"srv-62", "Server", cloudMix("0.45", 10000)});
    return v;
}

/** Candidate list for "did you mean": every catalog name (main +
 *  unseen) plus every registry family. */
std::vector<std::string>
suggestionCandidates()
{
    std::vector<std::string> out;
    for (const auto& w : allWorkloads())
        out.push_back(w.name);
    for (const auto& w : unseenWorkloads())
        out.push_back(w.name);
    for (const auto& f : workloadFamilyNames())
        out.push_back(f);
    return out;
}

} // namespace

namespace {

/// Store alias specs canonically (sorted key order) — names and
/// baseline keys then never depend on how suites.cpp spelled them —
/// and validate every alias against the registry on first use.
std::vector<WorkloadSpec>
canonicalized(std::vector<WorkloadSpec> v)
{
    for (auto& w : v)
        w.spec = WorkloadRegistry::instance().canonical(w.spec);
    return v;
}

} // namespace

const std::vector<WorkloadSpec>&
allWorkloads()
{
    static const std::vector<WorkloadSpec> catalog =
        canonicalized(buildCatalog());
    return catalog;
}

const std::vector<WorkloadSpec>&
unseenWorkloads()
{
    static const std::vector<WorkloadSpec> catalog =
        canonicalized(buildUnseenCatalog());
    return catalog;
}

const std::vector<std::string>&
suiteNames()
{
    static const std::vector<std::string> names = {
        "SPEC06", "SPEC17", "PARSEC", "Ligra", "Cloudsuite"};
    return names;
}

std::vector<const WorkloadSpec*>
suiteWorkloads(const std::string& suite)
{
    std::vector<const WorkloadSpec*> out;
    for (const auto& w : allWorkloads())
        if (w.suite == suite)
            out.push_back(&w);
    return out;
}

const WorkloadSpec*
findWorkload(const std::string& name)
{
    for (const auto& w : allWorkloads())
        if (w.name == name)
            return &w;
    for (const auto& w : unseenWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

std::unique_ptr<Workload>
makeWorkload(const std::string& name, std::uint64_t seed_override)
{
    // Catalog alias: the paper-style name carries its deterministic
    // seed and display name; the construction itself goes through the
    // registry, so aliases and raw specs share one path.
    if (const WorkloadSpec* alias = findWorkload(name))
        return WorkloadRegistry::instance().make(
            alias->spec, seed_override ? seed_override : nameSeed(name),
            alias->name);

    // Raw registry spec? Decide by whether the family token resolves,
    // so spec-shaped inputs get the registry's precise parameter
    // diagnostics while bare unknown names get catalog suggestions.
    auto& registry = WorkloadRegistry::instance();
    std::string family = name.substr(0, name.find(':'));
    std::transform(family.begin(), family.end(), family.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    if (name.find(':') != std::string::npos ||
        family == "phase" || registry.find(family) != nullptr) {
        const std::string canon = registry.canonical(name);
        return registry.make(
            name, seed_override ? seed_override : nameSeed(canon));
    }

    throw std::invalid_argument(
        "unknown workload '" + name + "'" +
        didYouMean(name, suggestionCandidates()) +
        " (catalog names: " + std::to_string(allWorkloads().size()) +
        " main + " + std::to_string(unseenWorkloads().size()) +
        " unseen, see wl::allWorkloads(); families: " +
        joinKeys(workloadFamilyNames()) + ")");
}

std::string
canonicalWorkloadSpec(const std::string& name)
{
    if (findWorkload(name))
        return name;
    try {
        return WorkloadRegistry::instance().canonical(name);
    } catch (const std::exception&) {
        return name; // not a valid spec; fails at makeWorkload time
    }
}

} // namespace pythia::wl
