#include "workloads/suites.hpp"

#include <stdexcept>

#include "common/hashing.hpp"

namespace pythia::wl {

namespace {

/// Deterministic per-name seed: same workload name => same trace.
std::uint64_t
nameSeed(const std::string& name)
{
    std::uint64_t h = 0xB16B00B5ull;
    for (char c : name)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    return h | 1;
}

GenParams
memParams(double mem_ratio, std::uint64_t footprint_mb = 64)
{
    GenParams p;
    // The catalog expresses *relative* memory intensity; the absolute
    // ratio is scaled so that the no-prefetch baseline is latency-bound
    // rather than bus-saturated (prefetching then pays off by hiding
    // latency, as on the paper's systems, while the low-MTPS sweeps of
    // Fig. 8(b) still drive the bus into saturation).
    p.mem_ratio = 0.5 * mem_ratio;
    p.dep_ratio = 0.45;
    p.footprint_bytes = footprint_mb << 20;
    return p;
}

WorkloadSpec
spec(std::string name, std::string suite,
     std::function<std::unique_ptr<Workload>(std::uint64_t)> make)
{
    return WorkloadSpec{std::move(name), std::move(suite), std::move(make)};
}

/// Builds a Cloudsuite-like phase mix of spatial + irregular + stream.
std::unique_ptr<Workload>
makeCloudMix(const std::string& name, std::uint64_t seed, double irr_frac,
             std::size_t phase_len)
{
    std::vector<std::unique_ptr<Workload>> kids;
    kids.push_back(std::make_unique<SpatialRegionGen>(
        name + ".spatial", mix64(seed ^ 1), memParams(0.30), 8, 0.3));
    kids.push_back(std::make_unique<IrregularGen>(
        name + ".irr", mix64(seed ^ 2), memParams(0.30), irr_frac));
    kids.push_back(std::make_unique<StreamGen>(
        name + ".stream", mix64(seed ^ 3), memParams(0.25), 2));
    return std::make_unique<MixedPhaseGen>(name, seed, std::move(kids),
                                           phase_len);
}

std::vector<WorkloadSpec>
buildCatalog()
{
    std::vector<WorkloadSpec> v;

    // ---- SPEC06-like -----------------------------------------------------
    v.push_back(spec("482.sphinx3-417B", "SPEC06", [](std::uint64_t s) {
        return std::make_unique<SpatialRegionGen>(
            "482.sphinx3-417B", s, memParams(0.30), 6, 0.35);
    }));
    v.push_back(spec("459.GemsFDTD-765B", "SPEC06", [](std::uint64_t s) {
        return std::make_unique<DeltaChainGen>(
            "459.GemsFDTD-765B", s, memParams(0.32),
            std::vector<std::int32_t>{1, 2, 1, 3});
    }));
    v.push_back(spec("459.GemsFDTD-1320B", "SPEC06", [](std::uint64_t s) {
        return std::make_unique<CaseStudyGen>(
            "459.GemsFDTD-1320B", s, memParams(0.32));
    }));
    v.push_back(spec("429.mcf-184B", "SPEC06", [](std::uint64_t s) {
        return std::make_unique<IrregularGen>(
            "429.mcf-184B", s, memParams(0.33, 96), 0.15);
    }));
    v.push_back(spec("462.libquantum-1343B", "SPEC06", [](std::uint64_t s) {
        return std::make_unique<StreamGen>(
            "462.libquantum-1343B", s, memParams(0.35), 1);
    }));
    v.push_back(spec("470.lbm-164B", "SPEC06", [](std::uint64_t s) {
        return std::make_unique<StrideGen>(
            "470.lbm-164B", s, memParams(0.33),
            std::vector<std::int32_t>{2, 3});
    }));
    v.push_back(spec("410.bwaves-945B", "SPEC06", [](std::uint64_t s) {
        return std::make_unique<StreamGen>(
            "410.bwaves-945B", s, memParams(0.33), 8);
    }));
    v.push_back(spec("433.milc-127B", "SPEC06", [](std::uint64_t s) {
        return std::make_unique<DeltaChainGen>(
            "433.milc-127B", s, memParams(0.30),
            std::vector<std::int32_t>{2, 3, 2, 5});
    }));

    // ---- SPEC17-like -----------------------------------------------------
    v.push_back(spec("603.bwaves_s-2931B", "SPEC17", [](std::uint64_t s) {
        return std::make_unique<StreamGen>(
            "603.bwaves_s-2931B", s, memParams(0.36), 6);
    }));
    v.push_back(spec("605.mcf_s-665B", "SPEC17", [](std::uint64_t s) {
        return std::make_unique<IrregularGen>(
            "605.mcf_s-665B", s, memParams(0.32, 96), 0.2);
    }));
    v.push_back(spec("619.lbm_s-4268B", "SPEC17", [](std::uint64_t s) {
        return std::make_unique<StrideGen>(
            "619.lbm_s-4268B", s, memParams(0.34),
            std::vector<std::int32_t>{3, 5});
    }));
    v.push_back(spec("654.roms_s-842B", "SPEC17", [](std::uint64_t s) {
        return std::make_unique<DeltaChainGen>(
            "654.roms_s-842B", s, memParams(0.30),
            std::vector<std::int32_t>{1, 1, 2, 4});
    }));
    v.push_back(spec("623.xalancbmk_s-592B", "SPEC17", [](std::uint64_t s) {
        return std::make_unique<IrregularGen>(
            "623.xalancbmk_s-592B", s, memParams(0.28, 32), 0.45);
    }));
    v.push_back(spec("602.gcc_s-734B", "SPEC17", [](std::uint64_t s) {
        return makeCloudMix("602.gcc_s-734B", s, 0.35, 8000);
    }));

    // ---- PARSEC-like -----------------------------------------------------
    v.push_back(spec("PARSEC-Canneal", "PARSEC", [](std::uint64_t s) {
        return std::make_unique<SpatialRegionGen>(
            "PARSEC-Canneal", s, memParams(0.30), 8, 0.45);
    }));
    v.push_back(spec("PARSEC-Facesim", "PARSEC", [](std::uint64_t s) {
        return std::make_unique<SpatialRegionGen>(
            "PARSEC-Facesim", s, memParams(0.28), 5, 0.5);
    }));
    v.push_back(spec("PARSEC-Streamcluster", "PARSEC", [](std::uint64_t s) {
        return std::make_unique<StreamGen>(
            "PARSEC-Streamcluster", s, memParams(0.33), 3);
    }));
    v.push_back(spec("PARSEC-Raytrace", "PARSEC", [](std::uint64_t s) {
        return std::make_unique<IrregularGen>(
            "PARSEC-Raytrace", s, memParams(0.26, 48), 0.3);
    }));
    v.push_back(spec("PARSEC-Fluidanimate", "PARSEC", [](std::uint64_t s) {
        return std::make_unique<StrideGen>(
            "PARSEC-Fluidanimate", s, memParams(0.30),
            std::vector<std::int32_t>{1, 2, 6});
    }));

    // ---- Ligra-like (bandwidth hungry graph processing) -------------------
    struct GraphCfg { const char* name; unsigned deg; double irr; double mr; };
    const GraphCfg graphs[] = {
        {"Ligra-PageRank",      16, 0.70, 0.42},
        {"Ligra-PageRankDelta", 12, 0.75, 0.40},
        {"Ligra-CC",            10, 0.80, 0.42},
        {"Ligra-BFS",            6, 0.85, 0.38},
        {"Ligra-BC",             8, 0.80, 0.40},
        {"Ligra-BellmanFord",   10, 0.75, 0.40},
        {"Ligra-Triangle",      20, 0.65, 0.42},
        {"Ligra-Radii",          8, 0.80, 0.38},
        {"Ligra-MIS",            6, 0.85, 0.36},
        {"Ligra-BFSCC",          6, 0.85, 0.38},
    };
    for (const auto& g : graphs) {
        const std::string nm = g.name;
        const unsigned deg = g.deg;
        const double irr = g.irr;
        const double mr = g.mr;
        v.push_back(spec(nm, "Ligra", [nm, deg, irr, mr](std::uint64_t s) {
            return std::make_unique<GraphGen>(nm, s, memParams(mr, 96), deg,
                                              irr);
        }));
    }

    // ---- Cloudsuite-like ---------------------------------------------------
    v.push_back(spec("Cloudsuite-Cassandra", "Cloudsuite",
                     [](std::uint64_t s) {
        return makeCloudMix("Cloudsuite-Cassandra", s, 0.30, 12000);
    }));
    v.push_back(spec("Cloudsuite-Cloud9", "Cloudsuite", [](std::uint64_t s) {
        return makeCloudMix("Cloudsuite-Cloud9", s, 0.40, 6000);
    }));
    v.push_back(spec("Cloudsuite-Nutch", "Cloudsuite", [](std::uint64_t s) {
        return makeCloudMix("Cloudsuite-Nutch", s, 0.25, 9000);
    }));
    v.push_back(spec("Cloudsuite-Classification", "Cloudsuite",
                     [](std::uint64_t s) {
        return makeCloudMix("Cloudsuite-Classification", s, 0.35, 15000);
    }));

    return v;
}

std::vector<WorkloadSpec>
buildUnseenCatalog()
{
    // Held-out seeds and parameter draws never used anywhere else — the
    // moral equivalent of the CVP-2 traces of §6.4.
    std::vector<WorkloadSpec> v;
    v.push_back(spec("crypto-aes-17", "Crypto", [](std::uint64_t s) {
        return std::make_unique<StrideGen>(
            "crypto-aes-17", s, memParams(0.25, 16),
            std::vector<std::int32_t>{1, 1, 4});
    }));
    v.push_back(spec("crypto-sha-5", "Crypto", [](std::uint64_t s) {
        return std::make_unique<StreamGen>(
            "crypto-sha-5", s, memParams(0.28), 2);
    }));
    v.push_back(spec("int-41", "INT", [](std::uint64_t s) {
        return makeCloudMix("int-41", s, 0.30, 7000);
    }));
    v.push_back(spec("int-112", "INT", [](std::uint64_t s) {
        return std::make_unique<IrregularGen>(
            "int-112", s, memParams(0.30, 48), 0.35);
    }));
    v.push_back(spec("fp-23", "FP", [](std::uint64_t s) {
        return std::make_unique<DeltaChainGen>(
            "fp-23", s, memParams(0.33),
            std::vector<std::int32_t>{1, 3, 1, 5});
    }));
    v.push_back(spec("fp-77", "FP", [](std::uint64_t s) {
        return std::make_unique<StreamGen>(
            "fp-77", s, memParams(0.34), 5);
    }));
    v.push_back(spec("srv-9", "Server", [](std::uint64_t s) {
        return std::make_unique<GraphGen>(
            "srv-9", s, memParams(0.38, 96), 9, 0.75);
    }));
    v.push_back(spec("srv-62", "Server", [](std::uint64_t s) {
        return makeCloudMix("srv-62", s, 0.45, 10000);
    }));
    return v;
}

} // namespace

const std::vector<WorkloadSpec>&
allWorkloads()
{
    static const std::vector<WorkloadSpec> catalog = buildCatalog();
    return catalog;
}

const std::vector<WorkloadSpec>&
unseenWorkloads()
{
    static const std::vector<WorkloadSpec> catalog = buildUnseenCatalog();
    return catalog;
}

const std::vector<std::string>&
suiteNames()
{
    static const std::vector<std::string> names = {
        "SPEC06", "SPEC17", "PARSEC", "Ligra", "Cloudsuite"};
    return names;
}

std::vector<const WorkloadSpec*>
suiteWorkloads(const std::string& suite)
{
    std::vector<const WorkloadSpec*> out;
    for (const auto& w : allWorkloads())
        if (w.suite == suite)
            out.push_back(&w);
    return out;
}

std::unique_ptr<Workload>
makeWorkload(const std::string& name, std::uint64_t seed_override)
{
    auto find_in = [&](const std::vector<WorkloadSpec>& catalog)
        -> std::unique_ptr<Workload> {
        for (const auto& w : catalog)
            if (w.name == name)
                return w.make(seed_override ? seed_override
                                            : nameSeed(name));
        return nullptr;
    };
    if (auto w = find_in(allWorkloads()))
        return w;
    if (auto w = find_in(unseenWorkloads()))
        return w;
    throw std::invalid_argument("unknown workload: " + name);
}

} // namespace pythia::wl
