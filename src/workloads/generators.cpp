#include "workloads/generators.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/hashing.hpp"
#include "workloads/registry.hpp"

namespace pythia::wl {

namespace {

/// Each generator walks its own disjoint slab of the address space so that
/// mixes composed of several generators never alias.
Addr
slabBase(std::uint64_t seed)
{
    return (mix64(seed) & 0x3FFull) << 32; // 1024 slabs of 4 GiB
}

} // namespace

// ---------------------------------------------------------------------------
// GenBase

GenBase::GenBase(std::string name, std::uint64_t seed, GenParams params)
    : name_(std::move(name)), seed_(seed), params_(params), rng_(seed)
{
    assert(params_.mem_ratio > 0.0 && params_.mem_ratio <= 1.0);
}

void
GenBase::reset()
{
    rng_ = Rng(seed_);
    resetState();
}

TraceRecord
GenBase::emit(Addr pc, Addr addr)
{
    TraceRecord r = emitLoad(pc, addr);
    r.is_write = rng_.nextBool(params_.write_ratio);
    return r;
}

TraceRecord
GenBase::emitLoad(Addr pc, Addr addr)
{
    TraceRecord r;
    r.pc = pc;
    r.addr = addr;
    // Average gap of (1-m)/m non-memory instructions, uniformly jittered
    // over [0, 2*avg] so the mean matches the configured ratio.
    const double avg_gap = (1.0 - params_.mem_ratio) / params_.mem_ratio;
    const auto max_gap = static_cast<std::uint64_t>(2.0 * avg_gap + 0.5);
    r.gap = static_cast<std::uint32_t>(rng_.nextBounded(max_gap + 1));
    r.is_write = false;
    r.depends_on_prev = rng_.nextBool(params_.dep_ratio);
    return r;
}

// ---------------------------------------------------------------------------
// StreamGen

StreamGen::StreamGen(std::string name, std::uint64_t seed, GenParams params,
                     unsigned streams, double backwards)
    : GenBase(std::move(name), seed, params), n_streams_(streams),
      backwards_(backwards)
{
    assert(streams > 0);
    resetState();
}

void
StreamGen::resetState()
{
    streams_.clear();
    const Addr base = slabBase(seed());
    for (unsigned i = 0; i < n_streams_; ++i) {
        Stream s;
        s.pc = 0x400000 + 0x40 * i;
        s.line = blockAddr(base) + (static_cast<Addr>(i) << 20);
        s.dir = rng().nextBool(backwards_) ? -1 : 1;
        if (s.dir < 0)
            s.line += 1 << 19; // room to descend
        streams_.push_back(s);
    }
}

TraceRecord
StreamGen::next()
{
    Stream& s = streams_[rng().nextBounded(streams_.size())];
    s.line = static_cast<Addr>(static_cast<std::int64_t>(s.line) + s.dir);
    return emit(s.pc, s.line << kBlockShift);
}

std::unique_ptr<Workload>
StreamGen::clone(std::uint64_t reseed) const
{
    return std::make_unique<StreamGen>(
        name(), reseed ? reseed : seed(), params(), n_streams_, backwards_);
}

// ---------------------------------------------------------------------------
// StrideGen

StrideGen::StrideGen(std::string name, std::uint64_t seed, GenParams params,
                     std::vector<std::int32_t> strides)
    : GenBase(std::move(name), seed, params), strides_(std::move(strides))
{
    assert(!strides_.empty());
    resetState();
}

void
StrideGen::resetState()
{
    walkers_.clear();
    const Addr base = slabBase(seed());
    for (std::size_t i = 0; i < strides_.size(); ++i) {
        Walker w;
        w.pc = 0x500000 + 0x40 * i;
        w.line = blockAddr(base) + (static_cast<Addr>(i) << 21);
        w.stride = strides_[i];
        walkers_.push_back(w);
    }
}

TraceRecord
StrideGen::next()
{
    Walker& w = walkers_[rng().nextBounded(walkers_.size())];
    w.line = static_cast<Addr>(
        static_cast<std::int64_t>(w.line) + w.stride);
    return emit(w.pc, w.line << kBlockShift);
}

std::unique_ptr<Workload>
StrideGen::clone(std::uint64_t reseed) const
{
    return std::make_unique<StrideGen>(
        name(), reseed ? reseed : seed(), params(), strides_);
}

// ---------------------------------------------------------------------------
// SpatialRegionGen

SpatialRegionGen::SpatialRegionGen(std::string name, std::uint64_t seed,
                                   GenParams params, unsigned n_patterns,
                                   double density, unsigned concurrency)
    : GenBase(std::move(name), seed, params), n_patterns_(n_patterns),
      density_(density), concurrency_(concurrency)
{
    assert(n_patterns_ > 0);
    assert(density_ > 0.0 && density_ <= 1.0);
    assert(concurrency_ > 0);
    resetState();
}

void
SpatialRegionGen::resetState()
{
    patterns_.clear();
    // Footprints are a fixed function of the seed: every revisit of a
    // pattern touches the same offsets, which is what SMS/Bingo learn.
    Rng pattern_rng(mix64(seed()) ^ 0xF007F007ull);
    for (unsigned p = 0; p < n_patterns_; ++p) {
        std::vector<std::uint8_t> offsets;
        offsets.push_back(0); // trigger access is always the region base
        for (unsigned o = 1; o < kBlocksPerPage; ++o)
            if (pattern_rng.nextBool(density_))
                offsets.push_back(static_cast<std::uint8_t>(o));
        patterns_.push_back(std::move(offsets));
    }
    visits_.assign(concurrency_, Visit{});
    for (auto& v : visits_)
        startRegion(v);
    active_visit_ = 0;
    burst_left_ = 0;
}

void
SpatialRegionGen::startRegion(Visit& v)
{
    // Pick a region far away from recent ones so its lines have left the
    // cache hierarchy (regions are revisited in pattern only, not address).
    const Addr slab_page = pageId(slabBase(seed()));
    v.page = slab_page + rng().nextBounded(1ull << 22);
    v.pattern = static_cast<unsigned>(rng().nextBounded(n_patterns_));
    v.cursor = 0;
}

TraceRecord
SpatialRegionGen::next()
{
    // Emit short bursts from one region before switching to another: real
    // spatial workloads touch a few lines of a structure at a time, which
    // both preserves intra-region delta locality (learnable by delta-based
    // prefetchers) and leaves timeliness headroom across regions.
    if (burst_left_ == 0) {
        active_visit_ = rng().nextBounded(visits_.size());
        burst_left_ = 2 + static_cast<unsigned>(rng().nextBounded(4));
    }
    --burst_left_;
    Visit& v = visits_[active_visit_];
    if (v.cursor >= patterns_[v.pattern].size())
        startRegion(v);
    const auto& pat = patterns_[v.pattern];
    const Addr line =
        (v.page << (kPageShift - kBlockShift)) + pat[v.cursor];
    // The trigger PC identifies the pattern, so PC+offset recurs with the
    // same footprint — the correlation Bingo/SMS exploit.
    const Addr pc = 0x600000 + 0x40 * v.pattern;
    ++v.cursor;
    return emit(pc, line << kBlockShift);
}

std::unique_ptr<Workload>
SpatialRegionGen::clone(std::uint64_t reseed) const
{
    return std::make_unique<SpatialRegionGen>(
        name(), reseed ? reseed : seed(), params(), n_patterns_, density_,
        concurrency_);
}

// ---------------------------------------------------------------------------
// DeltaChainGen

DeltaChainGen::DeltaChainGen(std::string name, std::uint64_t seed,
                             GenParams params,
                             std::vector<std::int32_t> deltas)
    : GenBase(std::move(name), seed, params), deltas_(std::move(deltas))
{
    assert(!deltas_.empty());
    for ([[maybe_unused]] auto d : deltas_)
        assert(d > 0);
    resetState();
}

void
DeltaChainGen::resetState()
{
    page_ = pageId(slabBase(seed()));
    offset_ = 0;
    delta_idx_ = 0;
}

TraceRecord
DeltaChainGen::next()
{
    const Addr line =
        (page_ << (kPageShift - kBlockShift)) + static_cast<Addr>(offset_);
    const Addr pc = 0x700000 + 0x40 * delta_idx_;
    const TraceRecord r = emit(pc, line << kBlockShift);

    offset_ += deltas_[delta_idx_];
    delta_idx_ = (delta_idx_ + 1) % deltas_.size();
    if (offset_ >= static_cast<std::int32_t>(kBlocksPerPage)) {
        ++page_;      // move to the next page and restart the chain
        offset_ = 0;
        delta_idx_ = 0;
    }
    return r;
}

std::unique_ptr<Workload>
DeltaChainGen::clone(std::uint64_t reseed) const
{
    return std::make_unique<DeltaChainGen>(
        name(), reseed ? reseed : seed(), params(), deltas_);
}

// ---------------------------------------------------------------------------
// IrregularGen

IrregularGen::IrregularGen(std::string name, std::uint64_t seed,
                           GenParams params, double stride_fraction)
    : GenBase(std::move(name), seed, params),
      stride_fraction_(stride_fraction)
{
    resetState();
}

void
IrregularGen::resetState()
{
    chase_state_ = mix64(seed() ^ 0xC4A5Eull);
    aux_line_ = blockAddr(slabBase(seed())) + (1ull << 24);
}

TraceRecord
IrregularGen::next()
{
    if (rng().nextBool(stride_fraction_)) {
        aux_line_ += 1;
        TraceRecord r = emit(0x800040, aux_line_ << kBlockShift);
        r.depends_on_prev = false; // loop-index access, no data dependence
        return r;
    }
    // Pointer chase: the next address is an unlearnable function of the
    // previous one, confined to the configured footprint.
    chase_state_ = mix64(chase_state_ + 0x9E3779B97F4A7C15ull);
    const std::uint64_t lines = params().footprint_bytes >> kBlockShift;
    const Addr line = blockAddr(slabBase(seed())) + chase_state_ % lines;
    TraceRecord r = emit(0x800000, line << kBlockShift);
    r.depends_on_prev = true; // the address came from the previous load
    return r;
}

std::unique_ptr<Workload>
IrregularGen::clone(std::uint64_t reseed) const
{
    return std::make_unique<IrregularGen>(
        name(), reseed ? reseed : seed(), params(), stride_fraction_);
}

// ---------------------------------------------------------------------------
// GraphGen

GraphGen::GraphGen(std::string name, std::uint64_t seed, GenParams params,
                   unsigned avg_degree, double irregularity)
    : GenBase(std::move(name), seed, params), avg_degree_(avg_degree),
      irregularity_(irregularity)
{
    assert(avg_degree_ > 0);
    resetState();
}

void
GraphGen::resetState()
{
    const Addr base_line = blockAddr(slabBase(seed()));
    offsets_line_ = base_line;
    edges_line_ = base_line + (1ull << 22);
    edges_left_ = 0;
    phase_ = 0;
}

TraceRecord
GraphGen::next()
{
    // Rotates: (0) scan CSR offsets sequentially, (1) scan the edge array
    // sequentially for the current vertex, (2) load per-neighbour data at
    // an irregular address. The blend creates both prefetchable streams and
    // unprefetchable loads while demanding high bandwidth (Ligra-like).
    if (phase_ == 0) {
        offsets_line_ += 1;
        edges_left_ = 1 + static_cast<unsigned>(
            rng().nextBounded(2ull * avg_degree_));
        phase_ = 1;
        return emit(0x900000, offsets_line_ << kBlockShift);
    }
    if (phase_ == 1) {
        edges_line_ += 1;
        phase_ = 2;
        return emit(0x900040, edges_line_ << kBlockShift);
    }
    // Phase 2: one data load per edge; the address is the neighbour id
    // loaded from the edge array, hence data-dependent.
    Addr line;
    if (rng().nextBool(irregularity_)) {
        const std::uint64_t lines = params().footprint_bytes >> kBlockShift;
        line = blockAddr(slabBase(seed())) + (2ull << 22) +
               rng().nextBounded(lines);
    } else {
        line = offsets_line_ + (4ull << 20); // locality near the frontier
    }
    if (--edges_left_ == 0)
        phase_ = 0;
    TraceRecord r = emit(0x900080, line << kBlockShift);
    r.depends_on_prev = true;
    return r;
}

std::unique_ptr<Workload>
GraphGen::clone(std::uint64_t reseed) const
{
    return std::make_unique<GraphGen>(
        name(), reseed ? reseed : seed(), params(), avg_degree_,
        irregularity_);
}

// ---------------------------------------------------------------------------
// MixedPhaseGen

MixedPhaseGen::MixedPhaseGen(std::string name, std::uint64_t seed,
                             std::vector<std::unique_ptr<Workload>> children,
                             std::size_t phase_len)
    : MixedPhaseGen(std::move(name), seed, std::move(children),
                    std::vector<std::size_t>())
{
    assert(phase_len > 0);
    phase_lens_.assign(children_.size(), phase_len);
}

MixedPhaseGen::MixedPhaseGen(std::string name, std::uint64_t seed,
                             std::vector<std::unique_ptr<Workload>> children,
                             std::vector<std::size_t> phase_lens)
    : GenBase(std::move(name), seed, GenParams{}),
      children_(std::move(children)), phase_lens_(std::move(phase_lens))
{
    assert(!children_.empty());
    assert(phase_lens_.empty() || phase_lens_.size() == children_.size());
    for ([[maybe_unused]] std::size_t len : phase_lens_)
        assert(len > 0);
}

void
MixedPhaseGen::resetState()
{
    for (auto& c : children_)
        c->reset();
    emitted_ = 0;
    active_ = 0;
}

TraceRecord
MixedPhaseGen::next()
{
    if (emitted_ >= phase_lens_[active_]) {
        emitted_ = 0;
        active_ = (active_ + 1) % children_.size();
    }
    ++emitted_;
    return children_[active_]->next();
}

std::unique_ptr<Workload>
MixedPhaseGen::clone(std::uint64_t reseed) const
{
    std::vector<std::unique_ptr<Workload>> copies;
    copies.reserve(children_.size());
    for (std::size_t i = 0; i < children_.size(); ++i)
        copies.push_back(children_[i]->clone(
            reseed ? mix64(reseed + i) : 0));
    return std::make_unique<MixedPhaseGen>(
        name(), reseed ? reseed : seed(), std::move(copies), phase_lens_);
}

// ---------------------------------------------------------------------------
// CaseStudyGen

CaseStudyGen::CaseStudyGen(std::string name, std::uint64_t seed,
                           GenParams params)
    : GenBase(std::move(name), seed, params)
{
    resetState();
}

void
CaseStudyGen::resetState()
{
    page_ = pageId(slabBase(seed()));
    stage_ = 0;
    use_23_ = true;
}

TraceRecord
CaseStudyGen::next()
{
    const Addr page_line = page_ << (kPageShift - kBlockShift);
    if (stage_ == 0) {
        stage_ = 1;
        const Addr pc = use_23_ ? kPc23 : kPc11;
        return emitLoad(pc, page_line << kBlockShift);
    }
    // Companion access: exactly one more line in the page, +23 or +11
    // lines ahead of the trigger — the behaviour §6.5 dumps from the trace.
    const std::int32_t companion = use_23_ ? 23 : 11;
    const Addr line = page_line + static_cast<Addr>(companion);
    stage_ = 0;
    use_23_ = !use_23_;
    ++page_;
    return emitLoad(0xA00000, line << kBlockShift);
}

std::unique_ptr<Workload>
CaseStudyGen::clone(std::uint64_t reseed) const
{
    return std::make_unique<CaseStudyGen>(
        name(), reseed ? reseed : seed(), params());
}

// ---------------------------------------------------------------------------
// Registry entries: one WorkloadRegistrar per generator family, so any
// family is constructible from a parameterized spec string
// ("stream:footprint=256M,mem_ratio=0.4") next to the catalog names.
// Range checks live here, not in the constructors: spec strings are
// user input, constructor arguments are programmer input (asserts).

namespace {

[[noreturn]] void
badParam(const WorkloadParams& p, const std::string& key,
         const char* expected)
{
    throw std::invalid_argument(p.owner() + ": parameter '" + key +
                                "' must be " + expected);
}

double
unitFraction(const WorkloadParams& p, const std::string& key, double dflt)
{
    const double v = p.getDouble(key, dflt);
    if (v < 0.0 || v > 1.0)
        badParam(p, key, "in [0, 1]");
    return v;
}

/** The GenParams keys every generator family accepts. */
const std::vector<std::string> kCommonKeys = {"mem_ratio", "write_ratio",
                                              "dep_ratio", "footprint"};

std::vector<std::string>
withCommonKeys(std::vector<std::string> keys)
{
    keys.insert(keys.end(), kCommonKeys.begin(), kCommonKeys.end());
    return keys;
}

GenParams
genParams(const WorkloadParams& p)
{
    GenParams g;
    g.mem_ratio = p.getDouble("mem_ratio", g.mem_ratio);
    if (g.mem_ratio <= 0.0 || g.mem_ratio > 1.0)
        badParam(p, "mem_ratio", "in (0, 1]");
    g.write_ratio = unitFraction(p, "write_ratio", g.write_ratio);
    g.dep_ratio = unitFraction(p, "dep_ratio", g.dep_ratio);
    g.footprint_bytes = p.getBytes("footprint", g.footprint_bytes);
    if ((g.footprint_bytes >> kBlockShift) == 0)
        badParam(p, "footprint", "at least one cacheline (64 bytes)");
    return g;
}

[[maybe_unused]] const WorkloadRegistrar stream_registrar{
    "stream",
    "monotonic multi-stream scans (libquantum/bwaves-like)",
    withCommonKeys({"streams", "backwards"}),
    [](const WorkloadParams& p, std::uint64_t seed,
       const std::string& name) -> std::unique_ptr<Workload> {
        const std::uint32_t streams = p.getU32("streams", 4);
        if (streams == 0)
            badParam(p, "streams", "> 0");
        return std::make_unique<StreamGen>(
            name, seed, genParams(p), streams,
            unitFraction(p, "backwards", 0.0));
    }};

[[maybe_unused]] const WorkloadRegistrar stride_registrar{
    "stride",
    "constant per-PC stride walkers (lbm-like)",
    withCommonKeys({"strides"}),
    [](const WorkloadParams& p, std::uint64_t seed,
       const std::string& name) -> std::unique_ptr<Workload> {
        const auto strides = p.getI32List("strides", {2, 3, 5, 7});
        if (strides.empty())
            badParam(p, "strides", "a non-empty list (e.g. 2/3/5)");
        return std::make_unique<StrideGen>(name, seed, genParams(p),
                                           strides);
    }};

[[maybe_unused]] const WorkloadRegistrar spatial_registrar{
    "spatial",
    "recurring region footprints keyed by trigger PC (sphinx3-like)",
    withCommonKeys({"patterns", "density", "concurrency"}),
    [](const WorkloadParams& p, std::uint64_t seed,
       const std::string& name) -> std::unique_ptr<Workload> {
        const std::uint32_t patterns = p.getU32("patterns", 6);
        const std::uint32_t concurrency = p.getU32("concurrency", 4);
        const double density = p.getDouble("density", 0.4);
        if (patterns == 0)
            badParam(p, "patterns", "> 0");
        if (concurrency == 0)
            badParam(p, "concurrency", "> 0");
        if (density <= 0.0 || density > 1.0)
            badParam(p, "density", "in (0, 1]");
        return std::make_unique<SpatialRegionGen>(
            name, seed, genParams(p), patterns, density, concurrency);
    }};

[[maybe_unused]] const WorkloadRegistrar delta_registrar{
    "delta",
    "repeating in-page delta chains (GemsFDTD-like)",
    withCommonKeys({"deltas"}),
    [](const WorkloadParams& p, std::uint64_t seed,
       const std::string& name) -> std::unique_ptr<Workload> {
        const auto deltas = p.getI32List("deltas", {1, 2, 1, 3});
        if (deltas.empty())
            badParam(p, "deltas", "a non-empty list (e.g. 1/2/1/3)");
        for (std::int32_t d : deltas)
            if (d <= 0)
                badParam(p, "deltas", "all > 0");
        return std::make_unique<DeltaChainGen>(name, seed, genParams(p),
                                               deltas);
    }};

[[maybe_unused]] const WorkloadRegistrar irregular_registrar{
    "irregular",
    "pointer chasing over a large footprint (mcf-like)",
    withCommonKeys({"stride_fraction"}),
    [](const WorkloadParams& p, std::uint64_t seed,
       const std::string& name) -> std::unique_ptr<Workload> {
        return std::make_unique<IrregularGen>(
            name, seed, genParams(p),
            unitFraction(p, "stride_fraction", 0.2));
    }};

[[maybe_unused]] const WorkloadRegistrar graph_registrar{
    "graph",
    "CSR frontier processing, bandwidth hungry (Ligra-like)",
    withCommonKeys({"degree", "irregularity"}),
    [](const WorkloadParams& p, std::uint64_t seed,
       const std::string& name) -> std::unique_ptr<Workload> {
        const std::uint32_t degree = p.getU32("degree", 8);
        if (degree == 0)
            badParam(p, "degree", "> 0");
        return std::make_unique<GraphGen>(
            name, seed, genParams(p), degree,
            unitFraction(p, "irregularity", 0.8));
    }};

[[maybe_unused]] const WorkloadRegistrar casestudy_registrar{
    "casestudy",
    "the paper's §6.5 +23/+11 companion-access pattern",
    withCommonKeys({}),
    [](const WorkloadParams& p, std::uint64_t seed,
       const std::string& name) -> std::unique_ptr<Workload> {
        return std::make_unique<CaseStudyGen>(name, seed, genParams(p));
    }};

} // namespace

} // namespace pythia::wl
