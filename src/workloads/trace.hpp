/**
 * @file
 * Trace record definition, the Workload streaming interface and binary
 * trace file I/O.
 *
 * The paper evaluates on ChampSim instruction traces from SPEC / PARSEC /
 * Ligra / Cloudsuite. We reproduce that substrate with synthetic workload
 * generators (see generators.hpp) that all speak this same Workload
 * interface; a trace can also be serialized to disk and replayed through
 * FileWorkload, mirroring the trace-driven methodology of the paper.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pythia::wl {

/**
 * One memory instruction of a workload trace.
 *
 * Non-memory instructions are run-length encoded in @ref gap: the number
 * of non-memory instructions the core executes before this memory access.
 * This keeps traces compact while preserving instruction counts (IPC is
 * computed over all instructions, as in ChampSim).
 */
struct TraceRecord
{
    Addr pc = 0;          ///< program counter of the memory instruction
    Addr addr = 0;        ///< byte address accessed
    std::uint32_t gap = 0;///< non-memory instructions preceding this access
    bool is_write = false;///< store (true) or load (false)
    /** True when this load's address depends on the previous load's data
     *  (pointer chase, loaded index). Dependent loads cannot issue before
     *  the previous load completes — the serialization that makes
     *  prefetching pay off in real programs. */
    bool depends_on_prev = false;
};

/**
 * An endless, replayable stream of trace records.
 *
 * Generators are deterministic functions of their seed; reset() rewinds to
 * the exact same stream, and clone(seed) produces an independent instance
 * (used to build multi-programmed mixes, §5.1 of the paper).
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next record of the stream. */
    virtual TraceRecord next() = 0;

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;

    /** Stable human-readable name (used in tables). */
    virtual const std::string& name() const = 0;

    /** Independent copy, optionally re-seeded (0 keeps the seed). */
    virtual std::unique_ptr<Workload> clone(std::uint64_t reseed = 0)
        const = 0;
};

/**
 * Write @p n records of @p w to a binary trace file.
 * @return false on I/O failure.
 */
bool writeTraceFile(const std::string& path, Workload& w, std::size_t n);

/**
 * Write an explicit record vector to a binary trace file (same format;
 * the service layer persists a tenant's streamed history this way on
 * eviction). @return false on I/O failure.
 */
bool writeTraceFile(const std::string& path,
                    const std::vector<TraceRecord>& records);

/**
 * Load a binary trace file as a record vector (an empty file — count
 * zero — is valid here, unlike FileWorkload which needs at least one
 * record to loop over). @throws std::runtime_error when unreadable,
 * truncated or not a trace file.
 */
std::vector<TraceRecord> readTraceFile(const std::string& path);

/**
 * A Workload that replays a binary trace file from memory, looping when it
 * reaches the end (ChampSim replays a trace until the simulation budget is
 * exhausted, §5 of the paper).
 */
class FileWorkload : public Workload
{
  public:
    /** Load a trace file; throws std::runtime_error when unreadable.
     *  @p display_name overrides name() (catalog aliases and registry
     *  specs pass theirs); empty keeps the path. */
    explicit FileWorkload(const std::string& path,
                          std::string display_name = "");

    /** Build from an in-memory record vector (test convenience). */
    FileWorkload(std::string name, std::vector<TraceRecord> records);

    TraceRecord next() override;
    void reset() override;
    const std::string& name() const override { return name_; }
    std::unique_ptr<Workload> clone(std::uint64_t reseed) const override;

    /** Number of records before the stream loops. */
    std::size_t size() const { return records_.size(); }

    /** The loaded records (service eviction persists these). */
    const std::vector<TraceRecord>& records() const { return records_; }

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

} // namespace pythia::wl
