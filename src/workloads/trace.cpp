#include "workloads/trace.hpp"

#include <fstream>
#include <stdexcept>

#include "workloads/registry.hpp"

namespace pythia::wl {

namespace {

/// Magic bytes identifying our binary trace format, version 2.
constexpr std::uint32_t kTraceMagic = 0x50595432; // "PYT2"

// "trace:file=<path>" replays a captured binary trace through the same
// Workload interface as the live generators — the ChampSim-style
// trace-driven path. Replay is deterministic, so the seed is unused and
// multi-core clones replay the identical stream.
[[maybe_unused]] const WorkloadRegistrar trace_registrar{
    "trace",
    "binary trace replay (tools/trace_capture output), loops at EOF",
    {"file"},
    [](const WorkloadParams& p, std::uint64_t /*seed*/,
       const std::string& name) -> std::unique_ptr<Workload> {
        const std::string path = p.getString("file");
        if (path.empty())
            throw std::invalid_argument(
                "trace: parameter 'file' is required "
                "(trace:file=<path>)");
        return std::make_unique<FileWorkload>(path, name);
    }};

struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint32_t gap;
    std::uint16_t is_write;
    std::uint16_t depends_on_prev;
};

} // namespace

bool
writeTraceFile(const std::string& path, Workload& w, std::size_t n)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    const std::uint32_t magic = kTraceMagic;
    const std::uint64_t count = n;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord r = w.next();
        const DiskRecord d{r.pc, r.addr, r.gap,
                           static_cast<std::uint16_t>(r.is_write ? 1 : 0),
                           static_cast<std::uint16_t>(
                               r.depends_on_prev ? 1 : 0)};
        out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    return static_cast<bool>(out);
}

bool
writeTraceFile(const std::string& path,
               const std::vector<TraceRecord>& records)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    const std::uint32_t magic = kTraceMagic;
    const std::uint64_t count = records.size();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const TraceRecord& r : records) {
        const DiskRecord d{r.pc, r.addr, r.gap,
                           static_cast<std::uint16_t>(r.is_write ? 1 : 0),
                           static_cast<std::uint16_t>(
                               r.depends_on_prev ? 1 : 0)};
        out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    return static_cast<bool>(out);
}

std::vector<TraceRecord>
readTraceFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);
    std::uint32_t magic = 0;
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!in || magic != kTraceMagic)
        throw std::runtime_error("bad trace file header: " + path);
    std::vector<TraceRecord> records(count);
    for (auto& r : records) {
        DiskRecord d{};
        in.read(reinterpret_cast<char*>(&d), sizeof(d));
        if (!in)
            throw std::runtime_error("truncated trace file: " + path);
        r = TraceRecord{d.pc, d.addr, d.gap, d.is_write != 0,
                        d.depends_on_prev != 0};
    }
    return records;
}

FileWorkload::FileWorkload(const std::string& path,
                           std::string display_name)
    : name_(display_name.empty() ? path : std::move(display_name)),
      records_(readTraceFile(path))
{
    if (records_.empty())
        throw std::runtime_error("empty trace file: " + path);
}

FileWorkload::FileWorkload(std::string name, std::vector<TraceRecord> records)
    : name_(std::move(name)), records_(std::move(records))
{
    if (records_.empty())
        throw std::runtime_error("empty in-memory trace: " + name_);
}

TraceRecord
FileWorkload::next()
{
    const TraceRecord r = records_[pos_];
    pos_ = (pos_ + 1) % records_.size();
    return r;
}

void
FileWorkload::reset()
{
    pos_ = 0;
}

std::unique_ptr<Workload>
FileWorkload::clone(std::uint64_t /*reseed*/) const
{
    auto copy = std::make_unique<FileWorkload>(name_, records_);
    return copy;
}

} // namespace pythia::wl
