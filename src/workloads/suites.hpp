/**
 * @file
 * Named workload catalog mirroring the paper's evaluation suites (§5.1,
 * Table 6): SPEC06, SPEC17, PARSEC, Ligra, Cloudsuite, plus the "unseen"
 * CVP-2-like suite of §6.4. Every entry maps a paper-style trace name to a
 * synthetic generator configuration (see DESIGN.md §4 for the substitution
 * rationale).
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/generators.hpp"

namespace pythia::wl {

/** Catalog entry: a named, suite-tagged workload factory. */
struct WorkloadSpec
{
    std::string name;   ///< trace-style name, e.g. "482.sphinx3-417B"
    std::string suite;  ///< SPEC06 | SPEC17 | PARSEC | Ligra | Cloudsuite
    std::function<std::unique_ptr<Workload>(std::uint64_t seed)> make;
};

/** All workloads of the five main suites, in stable order. */
const std::vector<WorkloadSpec>& allWorkloads();

/** The held-out "unseen traces" suite (crypto / INT / FP / server). */
const std::vector<WorkloadSpec>& unseenWorkloads();

/** Names of the five main suites, in paper order. */
const std::vector<std::string>& suiteNames();

/** Workloads belonging to @p suite (subset of allWorkloads()). */
std::vector<const WorkloadSpec*> suiteWorkloads(const std::string& suite);

/**
 * Instantiate a workload by catalog name (searches the main and unseen
 * catalogs). @p seed_override of 0 keeps the catalog's deterministic seed.
 * @throws std::invalid_argument for unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string& name,
                                       std::uint64_t seed_override = 0);

} // namespace pythia::wl
