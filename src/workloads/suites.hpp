/**
 * @file
 * Named workload catalog mirroring the paper's evaluation suites (§5.1,
 * Table 6): SPEC06, SPEC17, PARSEC, Ligra, Cloudsuite, plus the "unseen"
 * CVP-2-like suite of §6.4. Every entry is a thin alias: a paper-style
 * trace name mapped to a WorkloadRegistry spec string
 * (workloads/registry.hpp), so "482.sphinx3-417B" and raw specs like
 * "spatial:patterns=6,density=0.35" resolve through the same
 * construction path (see DESIGN.md §4 for the substitution rationale).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/registry.hpp"

namespace pythia::wl {

/** Catalog entry: a named, suite-tagged workload alias. */
struct WorkloadSpec
{
    std::string name;  ///< trace-style name, e.g. "482.sphinx3-417B"
    std::string suite; ///< SPEC06 | SPEC17 | PARSEC | Ligra | Cloudsuite
    /** Registry spec string the name resolves to (the full generator
     *  parameterization, with the catalog's intensity scaling baked
     *  in). Instantiate via makeWorkload(name), which adds the
     *  catalog's deterministic seed and paper-style display name. */
    std::string spec;
};

/** All workloads of the five main suites, in stable order. */
const std::vector<WorkloadSpec>& allWorkloads();

/** The held-out "unseen traces" suite (crypto / INT / FP / server). */
const std::vector<WorkloadSpec>& unseenWorkloads();

/** Names of the five main suites, in paper order. */
const std::vector<std::string>& suiteNames();

/** Workloads belonging to @p suite (subset of allWorkloads()). */
std::vector<const WorkloadSpec*> suiteWorkloads(const std::string& suite);

/** Catalog entry for @p name (main + unseen), or nullptr. */
const WorkloadSpec* findWorkload(const std::string& name);

/**
 * Instantiate a workload by catalog name or registry spec string
 * ("482.sphinx3-417B", "stream:footprint=256M,mem_ratio=0.4",
 * "trace:file=foo.bin", "phase:stream@40+graph@60"). @p seed_override
 * of 0 keeps the deterministic default seed (derived from the catalog
 * name, or from the canonical spec spelling for raw specs).
 * @throws std::invalid_argument for unknown names, with "did you mean"
 * hints over catalog names and registry families.
 */
std::unique_ptr<Workload> makeWorkload(const std::string& name,
                                       std::uint64_t seed_override = 0);

/**
 * Canonical spelling of a workload name: catalog names map to
 * themselves, valid registry specs to their canonical form (sorted
 * key=value order), anything else to the input unchanged (it will fail
 * at makeWorkload time anyway). Total — never throws. Used by
 * Runner::baselineKey so parameter spelling order cannot split the
 * baseline cache.
 */
std::string canonicalWorkloadSpec(const std::string& name);

} // namespace pythia::wl
