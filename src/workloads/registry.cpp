#include "workloads/registry.hpp"

#include <algorithm>
#include <cctype>
#include <mutex>
#include <stdexcept>

#include "common/hashing.hpp"
#include "common/spec.hpp"
#include "workloads/generators.hpp"

namespace pythia::wl {

namespace {

/** Records each phase child emits before the rotation moves on when no
 *  "@<records>" suffix is given (the MixedPhaseGen default). */
constexpr std::size_t kDefaultPhaseLen = 20000;

std::string
trimCopy(const std::string& s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** True when @p spec's (lowercased) family token is "phase". */
bool
isPhaseSpec(const std::string& spec)
{
    const std::string head =
        trimCopy(spec.substr(0, spec.find(':')));
    if (head.size() != 5)
        return false;
    std::string low = head;
    std::transform(low.begin(), low.end(), low.begin(), [](unsigned char c) {
        return std::tolower(c);
    });
    return low == "phase";
}

/** Split on '+' (phase children); parseSpecList cannot be used because
 *  it would treat the children as a prefetcher-style composition. */
std::vector<std::string>
splitPlus(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == '+') {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

} // namespace

struct WorkloadRegistry::PhasePart
{
    std::string spec;     ///< child workload spec (single part)
    std::size_t len = kDefaultPhaseLen; ///< records per phase
};

WorkloadRegistry&
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::add(WorkloadFamily family)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (family.name == "phase")
        throw std::logic_error(
            "'phase' is reserved for the composite workload form");
    if (!entries_.emplace(family.name, family).second)
        throw std::logic_error("duplicate workload family registration: " +
                               family.name);
}

std::vector<std::string>
WorkloadRegistry::namesLocked() const
{
    std::vector<std::string> out;
    for (const auto& [name, family] : entries_)
        out.push_back(name);
    out.push_back("phase");
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return namesLocked();
}

const WorkloadFamily*
WorkloadRegistry::findLocked(const std::string& family) const
{
    const auto it = entries_.find(family);
    return it == entries_.end() ? nullptr : &it->second;
}

const WorkloadFamily*
WorkloadRegistry::find(const std::string& family) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return findLocked(family);
}

std::vector<WorkloadRegistry::PhasePart>
WorkloadRegistry::parsePhase(const std::string& spec) const
{
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos ||
        trimCopy(spec.substr(colon + 1)).empty())
        throw std::invalid_argument(
            "bad workload spec '" + spec +
            "': phase needs children, e.g. phase:stream@40+graph@60");

    std::vector<PhasePart> parts;
    for (const std::string& raw : splitPlus(spec.substr(colon + 1))) {
        PhasePart part;
        part.spec = trimCopy(raw);
        // An "@<records>" suffix sets this child's phase length. '@' is
        // reserved in phase children (a trace file path containing '@'
        // cannot be composed this way).
        const std::size_t at = part.spec.rfind('@');
        if (at != std::string::npos) {
            const std::string digits = trimCopy(part.spec.substr(at + 1));
            if (digits.empty() ||
                !std::all_of(digits.begin(), digits.end(),
                             [](unsigned char c) {
                                 return std::isdigit(c);
                             }))
                throw std::invalid_argument(
                    "bad workload spec '" + spec + "': '@" + digits +
                    "' is not a phase length (expected digits, e.g. "
                    "stream@40)");
            try {
                part.len = std::stoull(digits);
            } catch (const std::out_of_range&) {
                throw std::invalid_argument(
                    "bad workload spec '" + spec + "': phase length '" +
                    digits + "' is out of range");
            }
            if (part.len == 0)
                throw std::invalid_argument(
                    "bad workload spec '" + spec +
                    "': phase length must be > 0");
            part.spec = trimCopy(part.spec.substr(0, at));
        }
        if (part.spec.empty())
            throw std::invalid_argument("bad workload spec '" + spec +
                                        "': empty phase child");
        if (isPhaseSpec(part.spec))
            throw std::invalid_argument(
                "bad workload spec '" + spec +
                "': phase children cannot nest another phase");
        parts.push_back(std::move(part));
    }
    return parts;
}

WorkloadRegistry::Resolved
WorkloadRegistry::resolveOne(const std::string& spec) const
{
    const std::vector<ParsedSpec> parts = parseSpecList(spec);
    if (parts.size() != 1)
        throw std::invalid_argument(
            "bad workload spec '" + spec +
            "': workloads do not compose with '+'; use the "
            "phase:child@len+child@len form");
    const ParsedSpec& part = parts[0];

    Resolved out;
    out.family = find(part.name);
    if (!out.family)
        throw std::invalid_argument(
            "unknown workload family '" + part.name + "'" +
            didYouMean(part.name, names()) +
            " (families: " + joinKeys(names()) + ")");

    // Last assignment wins; the map also gives canonical() its sorted
    // key order.
    for (const auto& [key, value] : part.params) {
        const bool known =
            std::find(out.family->param_keys.begin(),
                      out.family->param_keys.end(),
                      key) != out.family->param_keys.end();
        if (!known)
            throw std::invalid_argument(
                out.family->name + ": unknown parameter '" + key + "'" +
                didYouMean(key, out.family->param_keys) +
                " (accepted: " +
                joinKeys(out.family->param_keys, "(no parameters)") +
                ")");
        out.kv[key] = value;
    }
    return out;
}

std::unique_ptr<Workload>
WorkloadRegistry::makeOne(const std::string& spec, std::uint64_t seed,
                          const std::string& name) const
{
    const Resolved r = resolveOne(spec);
    auto built = r.family->factory(WorkloadParams(r.family->name, r.kv),
                                   seed, name);
    if (!built)
        throw std::logic_error("factory for workload family '" +
                               r.family->name + "' returned null");
    return built;
}

std::unique_ptr<Workload>
WorkloadRegistry::make(const std::string& spec, std::uint64_t seed,
                       const std::string& name_override) const
{
    const std::string name =
        name_override.empty() ? canonical(spec) : name_override;
    if (!isPhaseSpec(spec))
        return makeOne(spec, seed, name);

    // Phase composite: child i is seeded mix64(seed ^ (i+1)), matching
    // the catalog's historical Cloudsuite-style mix construction so
    // catalog aliases replay bit-identically through this path.
    std::vector<std::unique_ptr<Workload>> children;
    std::vector<std::size_t> lens;
    std::size_t i = 0;
    for (const PhasePart& part : parsePhase(spec)) {
        children.push_back(makeOne(part.spec,
                                   mix64(seed ^ (i + 1)),
                                   name + "." + std::to_string(i)));
        lens.push_back(part.len);
        ++i;
    }
    return std::make_unique<MixedPhaseGen>(name, seed,
                                           std::move(children),
                                           std::move(lens));
}

std::string
WorkloadRegistry::canonicalOne(const std::string& spec) const
{
    const Resolved r = resolveOne(spec);
    std::string out = r.family->name;
    bool first = true;
    for (const auto& [key, value] : r.kv) {
        out += first ? ":" : ",";
        out += key + "=" + value;
        first = false;
    }
    return out;
}

std::string
WorkloadRegistry::canonical(const std::string& spec) const
{
    if (!isPhaseSpec(spec))
        return canonicalOne(spec);
    std::string out = "phase:";
    bool first = true;
    for (const PhasePart& part : parsePhase(spec)) {
        if (!first)
            out += "+";
        // Phase lengths are always explicit in the canonical form so
        // "a" and "a@20000" (the default) spell the same key.
        out += canonicalOne(part.spec) + "@" + std::to_string(part.len);
        first = false;
    }
    return out;
}

std::vector<std::string>
workloadFamilyNames()
{
    return WorkloadRegistry::instance().names();
}

} // namespace pythia::wl
