/**
 * @file
 * Self-registering workload construction API, mirroring
 * sim::PrefetcherRegistry: every generator family's translation unit
 * drops a static WorkloadRegistrar into the registry at load time,
 * declaring its family name, its tunable parameter keys and a factory
 * from (params, seed, name). Construction goes through parameterized
 * spec strings (common/spec.hpp grammar, single part):
 *
 *     wl::WorkloadRegistry::instance().make("stream", seed)
 *     ... make("stream:footprint=256M,mem_ratio=0.4", seed)
 *     ... make("irregular:dep_ratio=0.9", seed)
 *     ... make("trace:file=foo.bin", seed)          // binary replay
 *     ... make("phase:stream@40+graph@60", seed)    // phase composite
 *
 * The phase-composite form rotates through its '+'-separated children,
 * each optionally suffixed with "@<records>" (records emitted per phase;
 * default 20000). Children are full single-part specs — parameters
 * compose ("phase:stream:streams=2@40+graph@60") — and child i derives
 * its seed as mix64(seed ^ (i+1)), exactly like the catalog's
 * Cloudsuite-style mixes, so catalog aliases resolve bit-identically.
 *
 * Catalog names ("482.sphinx3-417B") are resolved by wl::makeWorkload
 * (workloads/suites.hpp), which first consults the catalog's alias
 * table and then falls back to this registry, so paper-style names and
 * raw specs coexist everywhere a workload is named. Errors carry
 * "did you mean" hints for misspelled family or parameter names.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/params.hpp"
#include "workloads/trace.hpp"

namespace pythia::wl {

/** Typed view over a workload spec's key=value parameters — the shared
 *  pythia::SpecParams (common/params.hpp). */
using WorkloadParams = SpecParams;

/**
 * Factory from parsed parameters to a live workload. @p seed is the
 * construction seed (never 0-means-default at this layer; resolution
 * happens in wl::makeWorkload) and @p name the display name the
 * instance must report — catalog aliases pass their paper-style name,
 * raw specs their canonical spelling.
 */
using WorkloadFactory = std::function<std::unique_ptr<Workload>(
    const WorkloadParams&, std::uint64_t seed, const std::string& name)>;

/** One registry entry: a generator family. */
struct WorkloadFamily
{
    std::string name;        ///< family name (lowercase), e.g. "stream"
    std::string description; ///< one-line help text
    /** Parameter keys the factory accepts; anything else is rejected
     *  with a did-you-mean hint before the factory runs. */
    std::vector<std::string> param_keys;
    WorkloadFactory factory;
};

/**
 * Process-wide workload registry. Populated by static registrars; the
 * "phase" composite form is resolved by make() itself (it is grammar,
 * not a family), re-entering make() per child.
 *
 * Thread-safe with the same discipline as PrefetcherRegistry:
 * registration happens during static initialization, but make() /
 * names() / find() are called from sweep worker threads and take a
 * shared lock. No lock is held across factory calls. Pointers returned
 * by find() stay valid for the process lifetime — entries are never
 * removed.
 */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry& instance();

    /** Register a family. @throws std::logic_error on duplicates. */
    void add(WorkloadFamily family);

    /**
     * Resolve @p spec into a workload seeded with @p seed. When
     * @p name_override is non-empty the instance reports it as its
     * name() (catalog aliases keep their paper-style spelling);
     * otherwise the canonical spec string is used.
     * @throws std::invalid_argument for unknown families, unknown or
     * ill-typed parameters and malformed specs, with actionable
     * messages ("did you mean").
     */
    std::unique_ptr<Workload> make(const std::string& spec,
                                   std::uint64_t seed,
                                   const std::string& name_override =
                                       "") const;

    /**
     * Canonical spelling of @p spec: lowercase family, parameters in
     * sorted key order, whitespace dropped; phase children canonicalize
     * recursively (child order and phase lengths are semantic and kept).
     * Validates the spec (unknown families / parameters throw), so two
     * strings canonicalizing equal construct identical workloads for
     * equal seeds. Used by Runner::baselineKey so spec spelling cannot
     * split the baseline cache.
     */
    std::string canonical(const std::string& spec) const;

    /** All registered family names, sorted, plus "phase". */
    std::vector<std::string> names() const;

    /** Entry for @p family, or nullptr when unknown. */
    const WorkloadFamily* find(const std::string& family) const;

  private:
    WorkloadRegistry() = default;

    struct PhasePart; // parsed phase child (spec + phase length)

    /** A parsed, validated single-part spec: its family entry and its
     *  key=value map (sorted, last assignment wins). Shared by make()
     *  and canonical() so the two can never diverge on what they
     *  accept. */
    struct Resolved
    {
        const WorkloadFamily* family = nullptr;
        std::map<std::string, std::string> kv;
    };

    const WorkloadFamily* findLocked(const std::string& family) const;
    std::vector<std::string> namesLocked() const;

    /** Single-part resolution (no phase form). */
    Resolved resolveOne(const std::string& spec) const;
    std::unique_ptr<Workload> makeOne(const std::string& spec,
                                      std::uint64_t seed,
                                      const std::string& name) const;
    std::string canonicalOne(const std::string& spec) const;
    std::vector<PhasePart> parsePhase(const std::string& spec) const;

    mutable std::shared_mutex mutex_;
    std::map<std::string, WorkloadFamily> entries_;
};

/** Static registrar: file-scope instances self-register a family. */
struct WorkloadRegistrar
{
    WorkloadRegistrar(std::string name, std::string description,
                      std::vector<std::string> param_keys,
                      WorkloadFactory factory)
    {
        WorkloadRegistry::instance().add(
            {std::move(name), std::move(description),
             std::move(param_keys), std::move(factory)});
    }
};

/** All registered family names, sorted (includes "phase"). */
std::vector<std::string> workloadFamilyNames();

} // namespace pythia::wl
