/**
 * @file
 * The Pythia prefetcher: an online reinforcement-learning agent that maps
 * multi-feature program state to prefetch-offset actions with a
 * bandwidth-aware reward scheme, implementing Algorithm 1 of the paper on
 * top of the QVStore / EvaluationQueue substrates.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/eq.hpp"
#include "core/feature.hpp"
#include "core/qvstore.hpp"
#include "prefetchers/prefetcher.hpp"

namespace pythia::rl {

/** The seven reward levels of §3.1. */
struct RewardConfig
{
    double r_at = 20.0;    ///< accurate and timely
    double r_al = 12.0;    ///< accurate but late
    double r_cl = -12.0;   ///< loss of coverage (out-of-page action)
    double r_in_high = -14.0; ///< inaccurate, high bandwidth usage
    double r_in_low = -8.0;   ///< inaccurate, low bandwidth usage
    double r_np_high = -2.0;  ///< no-prefetch, high bandwidth usage
    double r_np_low = -4.0;   ///< no-prefetch, low bandwidth usage
};

/** Full Pythia configuration (paper Table 2 defaults). */
struct PythiaConfig
{
    std::string name = "pythia";
    std::vector<FeatureSpec> features = basicFeatureSpecs();
    /** Pruned prefetch-offset action list; 0 = no prefetch. */
    std::vector<std::int32_t> actions = {-6, -3, -1, 0, 1, 3, 4, 5,
                                         10, 11, 12, 16, 22, 23, 30, 32};
    RewardConfig rewards;
    double alpha = 0.0065;
    double gamma = 0.556;
    double epsilon = 0.002;
    std::size_t eq_size = 256;
    /**
     * Multi-action degree (extension beyond the paper's one-action-per-
     * demand formulation): the agent takes the @c degree highest-Q
     * actions per demand, each tracked and rewarded independently in the
     * EQ. Degree 1 reproduces Algorithm 1 exactly. The harness's scaled
     * configurations raise it to compensate for the much shorter
     * learning windows of this reproduction (DESIGN.md §4).
     */
    std::uint32_t degree = 1;
    std::uint32_t planes = 3;
    std::uint32_t plane_index_bits = 7; ///< 128 rows per plane
    std::uint64_t seed = 0xDE1F1ull;    ///< exploration RNG seed
};

/**
 * Pythia agent (paper §4, Algorithm 1).
 *
 * Per demand request: (1) reward any EQ entry whose prefetch address the
 * demand matches (R_AT / R_AL by fill status); (2) extract the state
 * vector; (3) epsilon-greedily pick the action with the highest Q-value;
 * (4) issue the prefetch (or not) and push the decision into the EQ,
 * immediately rewarding no-prefetch / out-of-page actions; (5) on EQ
 * eviction, default-reward unresolved entries (R_IN by bandwidth) and run
 * the SARSA update against the EQ head.
 */
class PythiaPrefetcher : public pf::PrefetcherBase
{
  public:
    explicit PythiaPrefetcher(const PythiaConfig& cfg = PythiaConfig{});

    // Non-copyable: the counter slots point into this object's stats_.
    PythiaPrefetcher(const PythiaPrefetcher&) = delete;
    PythiaPrefetcher& operator=(const PythiaPrefetcher&) = delete;

    void train(const sim::PrefetchAccess& access,
               std::vector<sim::PrefetchRequest>& out) override;
    void onFill(Addr block, Cycle at) override;

    /** Serialize the QVStore, EQ, feature histories, exploration RNG
     *  and agent counters (snapshot subsystem). */
    void saveState(snap::Writer& w) const override;
    void loadState(snap::Reader& r) override;

    /** Live configuration-register updates (paper §6.6): swap the reward
     *  levels without touching learned state. */
    void setRewards(const RewardConfig& rewards) { cfg_.rewards = rewards; }

    /** The underlying Q-value store (introspection / Fig. 13). */
    const QVStore& qvstore() const { return qv_; }

    /** The evaluation queue (introspection / tests). */
    const EvaluationQueue& eq() const { return eq_; }

    /** The feature extractor (introspection / tests). */
    const FeatureExtractor& extractor() const { return extractor_; }

    /** Agent-side counters (actions taken, per-reward-level counts). */
    const StatGroup& agentStats() const { return stats_; }

    /** Action list index of offset @p offset (SIZE_MAX when absent). */
    std::size_t actionIndexOf(std::int32_t offset) const;

    const PythiaConfig& config() const { return cfg_; }

  private:
    double inaccurateReward() const;
    double noPrefetchReward() const;

    /** Assign the eviction-time reward if missing, then SARSA-update. */
    void retireEntry(EqEntry&& entry);

    PythiaConfig cfg_;
    QVStore qv_;
    EvaluationQueue eq_;
    FeatureExtractor extractor_;
    Rng rng_;
    StatGroup stats_;

    /** Per-action counter slots, indexed by action (the per-offset stat
     *  names are built once here instead of concatenated per event). */
    struct ActionSlots
    {
        std::uint64_t* selected;      ///< sel_offset_<o>
        std::uint64_t* accurate_timely; ///< off_at_<o>
        std::uint64_t* accurate_late;   ///< off_al_<o>
        std::uint64_t* inaccurate;      ///< off_in_<o>
    };
    std::vector<ActionSlots> action_slots_;
    std::uint64_t* c_reward_inaccurate_;
    std::uint64_t* c_reward_accurate_timely_;
    std::uint64_t* c_reward_accurate_late_;
    std::uint64_t* c_sarsa_updates_;
    std::uint64_t* c_explored_actions_;
    std::uint64_t* c_actions_taken_;
    std::uint64_t* c_action_no_prefetch_;
    std::uint64_t* c_action_out_of_page_;
    std::uint64_t* c_action_prefetch_;

    // Per-demand scratch (train() is single-threaded per agent).
    std::vector<std::uint64_t> state_scratch_;
    std::vector<std::uint32_t> actions_scratch_;
};

} // namespace pythia::rl
