/**
 * @file
 * Program feature definition and extraction for Pythia's state vector.
 *
 * A feature is the concatenation of one *control-flow* component and one
 * *data-flow* component (paper §3.1, Table 3): 4 control kinds x 8 data
 * kinds = the 32-feature exploration space of §4.3.1. The extractor keeps
 * the rolling PC/delta/offset histories those components need.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia::rl {

/** Control-flow feature components (paper Table 3). */
enum class ControlKind : std::uint8_t {
    None,        ///< no control-flow component
    Pc,          ///< PC of the load request
    PcPath3,     ///< XOR of the last 3 load PCs
    PcXorPrevPc, ///< PC XOR-ed with the preceding PC (stands in for the
                 ///< branch-PC component; traces carry no branch PCs)
};

/** Data-flow feature components (paper Table 3). */
enum class DataKind : std::uint8_t {
    None,          ///< no data-flow component
    CachelineAddr, ///< load cacheline address
    PageNum,       ///< physical page number
    PageOffset,    ///< cacheline offset within the page
    Delta,         ///< delta to the previous access in the same page
    Last4Offsets,  ///< packed sequence of the last 4 page offsets
    Last4Deltas,   ///< packed sequence of the last 4 deltas
    OffsetXorDelta,///< page offset XOR-ed with the delta
};

/** One program feature: control + data component. */
struct FeatureSpec
{
    ControlKind control = ControlKind::None;
    DataKind data = DataKind::None;

    bool operator==(const FeatureSpec&) const = default;
};

/** Human-readable feature name, e.g. "PC+Delta". */
std::string featureName(const FeatureSpec& spec);

/** All 32 feature combinations of the §4.3.1 exploration space, excluding
 *  the degenerate None+None. */
std::vector<FeatureSpec> allFeatureSpecs();

/** The basic configuration's winning state-vector:
 *  { PC+Delta, Sequence of last-4 deltas } (paper Table 2). */
std::vector<FeatureSpec> basicFeatureSpecs();

/**
 * Rolling observation state + feature evaluation.
 *
 * observe() must be called once per demand request (before extraction)
 * with the request's PC and cacheline address; extract() then evaluates
 * any FeatureSpec against the updated histories.
 */
class FeatureExtractor
{
  public:
    FeatureExtractor();

    /** Ingest one demand request. */
    void observe(Addr pc, Addr block);

    /** Evaluate @p spec against the current histories. */
    std::uint64_t extract(const FeatureSpec& spec) const;

    /** Evaluate a whole state vector. */
    std::vector<std::uint64_t>
    extractAll(const std::vector<FeatureSpec>& specs) const;

    /** Evaluate a whole state vector into @p out (cleared first), so a
     *  per-demand caller can reuse one buffer instead of allocating. */
    void extractAllInto(const std::vector<FeatureSpec>& specs,
                        std::vector<std::uint64_t>& out) const;

    /** Delta (in cachelines) of the most recent access within its page;
     *  0 for page-first accesses. */
    std::int32_t lastDelta() const { return deltas_[0]; }

    /** Most recent page offset. */
    std::uint32_t lastOffset() const { return offsets_[0]; }

    /** Reset all histories. */
    void reset();

    /** Serialize the rolling histories (snapshot subsystem). */
    void saveState(snap::Writer& w) const;

    /** Restore a saveState() image. */
    void loadState(snap::Reader& r);

  private:
    std::uint64_t controlValue(ControlKind kind) const;
    std::uint64_t dataValue(DataKind kind) const;

    /** Recompute the packed/derived caches from the raw histories
     *  (constructor, reset, loadState). */
    void rebuildDerived();

    // Histories, most recent first. These remain the serialized
    // representation (the snapshot wire format predates the caches).
    Addr pcs_[3];
    std::int32_t deltas_[4];
    std::uint32_t offsets_[4];
    Addr last_block_ = 0;
    Addr last_page_ = ~0ull;
    bool has_last_ = false;

    // Derived values maintained incrementally by observe() so extract()
    // is table lookups instead of history walks (DESIGN.md §10): the
    // packed last-4 sequences shift one element per observation, and
    // the control-flow combinations fold in the new PC once.
    std::uint64_t packed_offsets_ = 0; ///< 4 x 6-bit, newest on top
    std::uint64_t packed_deltas_ = 0;  ///< 4 x 7-bit, newest on top
    std::uint32_t packed_delta0_ = 0;  ///< packDelta(deltas_[0])
    std::uint64_t pc_path3_ = 0;       ///< pcs0 ^ pcs1<<1 ^ pcs2<<2
    std::uint64_t pc_xor_prev_ = 0;    ///< pcs0 ^ pcs1
};

} // namespace pythia::rl
