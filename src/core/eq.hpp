/**
 * @file
 * EQ — Pythia's Evaluation Queue (paper §4, Fig. 4): a FIFO of the
 * recently-taken actions with their state vectors, prefetch addresses,
 * fill status and (once known) rewards. Reward assignment happens at
 * insertion (no-prefetch / cross-page), during residency (demand match =>
 * R_AT / R_AL) or at eviction (R_IN); the evicted entry drives the SARSA
 * update together with the entry at the head of the queue.
 *
 * Data layout (DESIGN.md §10): the queue is a fixed-capacity flat ring
 * (power-of-two backing store, head index + count) of EqEntry values
 * whose state vectors live inline in the entry (StateVec) — inserting,
 * evicting and scanning the EQ performs zero heap allocations. The
 * pending-block index in front of the scans is an open-addressed linear
 * probe table over flat slots, replacing the node-based unordered_map.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia::rl {

/** Inline state-vector capacity of an EqEntry. The paper's Pythia uses
 *  2 features (PC+Delta, Sequence of offsets); 8 slots leave room for
 *  every configurable feature set without per-entry heap storage. */
inline constexpr std::size_t kEqStateSlots = 8;

/**
 * A fixed-capacity inline vector of feature values. Replaces the
 * std::vector<uint64_t> an EqEntry used to carry: entries are copied on
 * every insert/evict/retire, and with inline storage those copies are
 * flat memcpys instead of allocate+copy+free round trips.
 */
class StateVec
{
  public:
    StateVec() = default;
    StateVec(std::initializer_list<std::uint64_t> il)
    {
        assign(il.begin(), il.size());
    }
    StateVec& operator=(std::initializer_list<std::uint64_t> il)
    {
        assign(il.begin(), il.size());
        return *this;
    }
    StateVec& operator=(const std::vector<std::uint64_t>& v)
    {
        assign(v.data(), v.size());
        return *this;
    }

    void assign(const std::uint64_t* p, std::size_t n)
    {
        assert(n <= kEqStateSlots);
        n_ = static_cast<std::uint32_t>(n);
        for (std::size_t i = 0; i < n; ++i)
            v_[i] = p[i];
    }

    std::size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }
    const std::uint64_t* data() const { return v_; }
    std::uint64_t* data() { return v_; }
    std::uint64_t operator[](std::size_t i) const { return v_[i]; }
    std::uint64_t& operator[](std::size_t i) { return v_[i]; }
    const std::uint64_t* begin() const { return v_; }
    const std::uint64_t* end() const { return v_ + n_; }

    bool operator==(const StateVec& o) const
    {
        if (n_ != o.n_)
            return false;
        for (std::uint32_t i = 0; i < n_; ++i)
            if (v_[i] != o.v_[i])
                return false;
        return true;
    }

  private:
    std::uint64_t v_[kEqStateSlots] = {};
    std::uint32_t n_ = 0;
};

/** Inline QVStore row-cache capacity of an EqEntry: one slot per
 *  (vault, plane) pair. Pythia's shipping configs use 2x3; larger
 *  feature sets fall back to re-hashing at retirement. */
inline constexpr std::size_t kEqRowSlots = 16;

/** One Evaluation Queue entry. */
struct EqEntry
{
    StateVec state;                   ///< feature values at action time
    std::uint32_t action = 0;         ///< action index
    Addr prefetch_block = 0;          ///< 0 when no prefetch was issued
    bool has_prefetch = false;
    Cycle fill_time = 0;              ///< prefetch fill completion cycle
    bool fill_known = false;
    bool has_reward = false;
    double reward = 0.0;
    /** QVStore plane-row offsets of `state`, cached at insertion so the
     *  retirement-time SARSA update never re-hashes (DESIGN.md §10).
     *  Pure derived data: not serialized (snapshots restore with
     *  qrows_n = 0 and the update path re-hashes — identical rows, so
     *  restore→advance stays bit-exact). */
    std::uint32_t qrows[kEqRowSlots] = {};
    std::uint32_t qrows_n = 0;        ///< 0 = no cached rows
};

/** Fixed-capacity FIFO of EqEntry. */
class EvaluationQueue
{
  public:
    explicit EvaluationQueue(std::size_t capacity = 256);

    /**
     * Insert @p entry; when the queue is full the oldest entry is evicted
     * and returned (Algorithm 1 line 23).
     */
    std::optional<EqEntry> insert(EqEntry entry);

    /**
     * Find the most recent un-rewarded entry whose prefetch address
     * matches @p block (Algorithm 1 line 6). Returns nullptr on miss.
     */
    EqEntry* search(Addr block);

    /**
     * Collect every un-rewarded entry whose prefetch address matches
     * @p block. A demand can match several queued actions (different
     * offsets from different trigger addresses can target the same line);
     * each of them generated a useful prefetch and earns a reward.
     *
     * Mutating has_reward through the returned pointers bypasses the
     * pending-block index, losing that block's O(1) early exit (never
     * correctness); reward through rewardAll() on hot paths.
     */
    std::vector<EqEntry*> searchAll(Addr block);

    /**
     * The index-maintaining form of searchAll: invoke @p assign on
     * every un-rewarded entry matching @p block (queue order), then
     * mark it rewarded. @p assign sets the entry's reward value; the
     * queue sets has_reward and keeps the pending-block index exact.
     * A template (not std::function) so the per-demand call — which
     * almost always exits after one index probe — pays no type-erasure
     * setup. @return number of entries rewarded.
     */
    template <typename AssignFn>
    std::size_t rewardAll(Addr block, AssignFn&& assign)
    {
        const std::size_t pi = pendingFind(block);
        if (pi == kNpos || pending_[pi].pc.unrewarded == 0)
            return 0;
        std::size_t rewarded = 0;
        for (std::size_t i = 0; i < count_; ++i) {
            EqEntry& e = ring_[(head_ + i) & mask_];
            if (e.has_prefetch && e.prefetch_block == block &&
                !e.has_reward) {
                assign(e);
                e.has_reward = true;
                ++rewarded;
                if (pending_[pi].pc.unrewarded > 0)
                    --pending_[pi].pc.unrewarded;
            }
        }
        if (pending_[pi].pc.unrewarded == 0 &&
            pending_[pi].pc.fill_unknown == 0)
            pendingErase(pi);
        return rewarded;
    }

    /** Record a prefetch fill for a matching entry (Algorithm 1 line 31).
     *  @return true when an entry was marked. */
    bool markFill(Addr block, Cycle at);

    /** Entry at the head (oldest); @pre !empty(). Provides (S2, A2) for
     *  the SARSA update of the just-evicted entry. */
    const EqEntry& head() const;

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return capacity_; }

    /** Drop all entries (Algorithm 1 line 3). */
    void clear();

    /** Serialize entries (queue order) + the pending-block index, the
     *  latter sorted by address for byte-stable output (snapshot
     *  subsystem). Byte-identical to the PR 6 deque-backed stream: the
     *  ring is walked oldest-first and states write as length-prefixed
     *  u64 runs, so the in-memory layout never leaks into the wire. */
    void saveState(snap::Writer& w) const;

    /** Restore a saveState() image into a queue of equal capacity.
     *  @throws snap::CorruptError on capacity/occupancy/state-width
     *  mismatch. */
    void loadState(snap::Reader& r);

  private:
    /**
     * Per-block occupancy counts for the O(1) early exit in front of
     * the queue scans. A 256-entry EQ is scanned on *every* demand
     * access, and almost every scan matches nothing; one hash probe
     * answers "nothing here" without walking the ring.
     *
     * Counts are conservative: they decrement only when the queue
     * itself observes the transition (rewardAll / markFill / eviction),
     * so external mutation through search()/searchAll() pointers can
     * leave them too high — which only costs the shortcut, never
     * correctness. A key whose counts never both reach zero stays in
     * the table until clear(); the table grows to accommodate them.
     */
    struct PendingCounts
    {
        std::uint32_t unrewarded = 0;  ///< has_prefetch && !has_reward
        std::uint32_t fill_unknown = 0; ///< has_prefetch && !fill_known
    };

    /** One open-addressed pending-index slot (linear probing). The
     *  occupancy flag is separate from the key because block 0 is a
     *  valid address. */
    struct PendingSlot
    {
        Addr key = 0;
        PendingCounts pc;
        bool used = false;
    };

    static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

    std::size_t pendingHome(Addr key) const;
    /** Linear-probe lookup; kNpos when absent. */
    std::size_t pendingFind(Addr key) const;
    /** Lookup-or-insert; grows the table at 3/4 load. */
    PendingCounts& pendingRef(Addr key);
    /** Backward-shift deletion keeping every probe chain contiguous. */
    void pendingErase(std::size_t i);
    void pendingGrow();

    std::size_t capacity_;  ///< logical FIFO capacity (any value >= 1)
    std::size_t mask_;      ///< ring_.size() - 1 (power-of-two backing)
    std::size_t head_ = 0;  ///< ring index of the oldest entry
    std::size_t count_ = 0; ///< live entries
    std::vector<EqEntry> ring_;
    std::vector<PendingSlot> pending_;
    std::size_t pending_mask_;
    std::size_t pending_size_ = 0;
};

} // namespace pythia::rl
