/**
 * @file
 * EQ — Pythia's Evaluation Queue (paper §4, Fig. 4): a FIFO of the
 * recently-taken actions with their state vectors, prefetch addresses,
 * fill status and (once known) rewards. Reward assignment happens at
 * insertion (no-prefetch / cross-page), during residency (demand match =>
 * R_AT / R_AL) or at eviction (R_IN); the evicted entry drives the SARSA
 * update together with the entry at the head of the queue.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia::rl {

/** One Evaluation Queue entry. */
struct EqEntry
{
    std::vector<std::uint64_t> state; ///< feature values at action time
    std::uint32_t action = 0;         ///< action index
    Addr prefetch_block = 0;          ///< 0 when no prefetch was issued
    bool has_prefetch = false;
    Cycle fill_time = 0;              ///< prefetch fill completion cycle
    bool fill_known = false;
    bool has_reward = false;
    double reward = 0.0;
};

/** Fixed-capacity FIFO of EqEntry. */
class EvaluationQueue
{
  public:
    explicit EvaluationQueue(std::size_t capacity = 256);

    /**
     * Insert @p entry; when the queue is full the oldest entry is evicted
     * and returned (Algorithm 1 line 23).
     */
    std::optional<EqEntry> insert(EqEntry entry);

    /**
     * Find the most recent un-rewarded entry whose prefetch address
     * matches @p block (Algorithm 1 line 6). Returns nullptr on miss.
     */
    EqEntry* search(Addr block);

    /**
     * Collect every un-rewarded entry whose prefetch address matches
     * @p block. A demand can match several queued actions (different
     * offsets from different trigger addresses can target the same line);
     * each of them generated a useful prefetch and earns a reward.
     *
     * Mutating has_reward through the returned pointers bypasses the
     * pending-block index, losing that block's O(1) early exit (never
     * correctness); reward through rewardAll() on hot paths.
     */
    std::vector<EqEntry*> searchAll(Addr block);

    /**
     * The index-maintaining form of searchAll: invoke @p assign on
     * every un-rewarded entry matching @p block (queue order), then
     * mark it rewarded. @p assign sets the entry's reward value; the
     * queue sets has_reward and keeps the pending-block index exact.
     * A template (not std::function) so the per-demand call — which
     * almost always exits after one index probe — pays no type-erasure
     * setup. @return number of entries rewarded.
     */
    template <typename AssignFn>
    std::size_t rewardAll(Addr block, AssignFn&& assign)
    {
        const auto it = pending_.find(block);
        if (it == pending_.end() || it->second.unrewarded == 0)
            return 0;
        std::size_t rewarded = 0;
        for (auto& e : entries_) {
            if (e.has_prefetch && e.prefetch_block == block &&
                !e.has_reward) {
                assign(e);
                e.has_reward = true;
                ++rewarded;
                if (it->second.unrewarded > 0)
                    --it->second.unrewarded;
            }
        }
        if (it->second.unrewarded == 0 && it->second.fill_unknown == 0)
            pending_.erase(it);
        return rewarded;
    }

    /** Record a prefetch fill for a matching entry (Algorithm 1 line 31).
     *  @return true when an entry was marked. */
    bool markFill(Addr block, Cycle at);

    /** Entry at the head (oldest); @pre !empty(). Provides (S2, A2) for
     *  the SARSA update of the just-evicted entry. */
    const EqEntry& head() const;

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Drop all entries (Algorithm 1 line 3). */
    void clear()
    {
        entries_.clear();
        pending_.clear();
    }

    /** Serialize entries (queue order) + the pending-block index, the
     *  latter sorted by address for byte-stable output (snapshot
     *  subsystem). */
    void saveState(snap::Writer& w) const;

    /** Restore a saveState() image into a queue of equal capacity.
     *  @throws snap::CorruptError on capacity/occupancy mismatch. */
    void loadState(snap::Reader& r);

  private:
    /**
     * Per-block occupancy counts for the O(1) early exit in front of
     * the queue scans. A 256-entry EQ is scanned on *every* demand
     * access, and almost every scan matches nothing; one hash probe
     * answers "nothing here" without walking the deque.
     *
     * Counts are conservative: they decrement only when the queue
     * itself observes the transition (rewardAll / markFill / eviction),
     * so external mutation through search()/searchAll() pointers can
     * leave them too high — which only costs the shortcut, never
     * correctness.
     */
    struct PendingCounts
    {
        std::uint32_t unrewarded = 0;  ///< has_prefetch && !has_reward
        std::uint32_t fill_unknown = 0; ///< has_prefetch && !fill_known
    };

    std::size_t capacity_;
    std::deque<EqEntry> entries_;
    std::unordered_map<Addr, PendingCounts> pending_;
};

} // namespace pythia::rl
