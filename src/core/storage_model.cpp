#include "core/storage_model.hpp"

#include <cmath>

namespace pythia::rl {

namespace {

/// Synthesis anchor point from the paper (§6.7): the 25.5KB basic Pythia
/// occupies 0.33 mm^2 and draws 55.11 mW per core in GF 14nm.
constexpr double kAnchorBytes = 26112.0;
constexpr double kAnchorAreaMm2 = 0.33;
constexpr double kAnchorPowerMw = 55.11;

/// Die parameters back-computed from Table 8's published overheads.
const ReferenceProcessor kReferences[] = {
    {"4-core Skylake D-2123IT (60W TDP)", 4, 128.2, 60.0},
    {"18-core Skylake 6150 (165W TDP)", 18, 479.0, 165.0},
    {"28-core Skylake 8180M (205W TDP)", 28, 694.7, 205.0},
};

} // namespace

StorageBreakdown
computeStorage(const PythiaConfig& cfg)
{
    StorageBreakdown s;
    const std::uint64_t rows = 1ull << cfg.plane_index_bits;
    const std::uint64_t actions = cfg.actions.size();

    // QVStore: vaults x planes x (rows x actions) entries of 16b each.
    s.qv_entry_bits = 16;
    s.qvstore_bytes = cfg.features.size() * cfg.planes * rows * actions *
                      s.qv_entry_bits / 8;

    // EQ entry (Table 4): state (21b) + action index (5b) + reward (5b)
    // + filled bit (1b) + address (16b) = 48b.
    const std::uint32_t state_bits = 21;
    const std::uint32_t action_bits = 5;
    const std::uint32_t reward_bits = 5;
    const std::uint32_t filled_bits = 1;
    const std::uint32_t addr_bits = 16;
    s.eq_entry_bits =
        state_bits + action_bits + reward_bits + filled_bits + addr_bits;
    s.eq_bytes = cfg.eq_size * s.eq_entry_bits / 8;

    s.total_bytes = s.qvstore_bytes + s.eq_bytes;
    return s;
}

double
OverheadEstimate::area_overhead(double die_area_mm2) const
{
    return area_mm2 / die_area_mm2;
}

double
OverheadEstimate::power_overhead(double tdp_w) const
{
    return power_mw / (tdp_w * 1000.0);
}

OverheadEstimate
estimateOverhead(const StorageBreakdown& storage)
{
    OverheadEstimate e;
    const double scale = storage.total_bytes / kAnchorBytes;
    e.area_mm2 = kAnchorAreaMm2 * scale;
    e.power_mw = kAnchorPowerMw * scale;
    return e;
}

const ReferenceProcessor*
referenceProcessors(std::size_t* count)
{
    *count = std::size(kReferences);
    return kReferences;
}

} // namespace pythia::rl
