/**
 * @file
 * ScalarQVStore — the PR 3 row-cached scalar QVStore, retained verbatim
 * as a reference implementation. The production QVStore (qvstore.hpp)
 * replaced the per-action qFromRows loop with the data-oriented
 * scanActions kernel; this class keeps the old algorithm so that
 *
 *  - tests/test_data_layout.cpp can assert the kernel is bit-exact
 *    against the straightforward evaluation across randomized configs
 *    and traffic, and
 *  - bench_micro_qvstore can sweep the SoA scan layout against the
 *    row-cached per-action layout and show the delta in the artifact.
 *
 * Header-only and deliberately unoptimized beyond the PR 3 state; not
 * used anywhere on a simulation path.
 */
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hashing.hpp"
#include "core/qvstore.hpp"

namespace pythia::rl {

class ScalarQVStore
{
  public:
    explicit ScalarQVStore(const QVStoreConfig& cfg) : cfg_(cfg)
    {
        assert(cfg_.num_features > 0 && cfg_.num_planes > 0);
        assert(cfg_.num_planes <= std::size(kShift));
        assert(cfg_.num_actions > 0);
        rows_per_plane_ = 1u << cfg_.plane_index_bits;
        table_.assign(static_cast<std::size_t>(cfg_.num_features) *
                          cfg_.num_planes * rows_per_plane_ *
                          cfg_.num_actions,
                      0.0f);
        rows_.assign(static_cast<std::size_t>(cfg_.num_features) *
                         cfg_.num_planes,
                     0);
        scored_.reserve(cfg_.num_actions);
        resetToOptimistic();
    }

    void resetToOptimistic()
    {
        const float init =
            static_cast<float>(cfg_.q_init / cfg_.num_planes);
        for (auto& v : table_)
            v = init;
        updates_ = 0;
    }

    double q(const std::vector<std::uint64_t>& state,
             std::uint32_t action) const
    {
        computeRows(state);
        return qFromRows(action);
    }

    std::uint32_t maxAction(const std::vector<std::uint64_t>& state) const
    {
        computeRows(state);
        std::uint32_t best = 0;
        double best_q = qFromRows(0);
        for (std::uint32_t a = 1; a < cfg_.num_actions; ++a) {
            const double qa = qFromRows(a);
            if (qa > best_q) {
                best_q = qa;
                best = a;
            }
        }
        return best;
    }

    std::vector<std::uint32_t>
    topActions(const std::vector<std::uint64_t>& state,
               std::uint32_t k) const
    {
        computeRows(state);
        scored_.clear();
        for (std::uint32_t a = 0; a < cfg_.num_actions; ++a)
            scored_.emplace_back(qFromRows(a), a);
        std::sort(scored_.begin(), scored_.end(),
                  [](const auto& x, const auto& y) {
                      return x.first != y.first ? x.first > y.first
                                                : x.second < y.second;
                  });
        std::vector<std::uint32_t> out;
        for (std::uint32_t i = 0; i < k && i < scored_.size(); ++i)
            out.push_back(scored_[i].second);
        return out;
    }

    double maxQ(const std::vector<std::uint64_t>& state) const
    {
        computeRows(state);
        double best_q = qFromRows(0);
        for (std::uint32_t a = 1; a < cfg_.num_actions; ++a) {
            const double qa = qFromRows(a);
            if (qa > best_q)
                best_q = qa;
        }
        return best_q;
    }

    void update(const std::vector<std::uint64_t>& s1, std::uint32_t a1,
                double reward, const std::vector<std::uint64_t>& s2,
                std::uint32_t a2)
    {
        assert(a1 < cfg_.num_actions && a2 < cfg_.num_actions);
        const double q_s2a2 = q(s2, a2);
        const double q_sa = q(s1, a1);
        const double target = reward + cfg_.gamma * q_s2a2;
        const double err = target - q_sa;
        const float step =
            static_cast<float>(cfg_.alpha * err / cfg_.num_planes);
        const std::uint32_t* r = rows_.data();
        for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
            for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
                cell(v, p, r[p], a1) += step;
            r += cfg_.num_planes;
        }
        ++updates_;
    }

    std::uint64_t updates() const { return updates_; }
    const QVStoreConfig& config() const { return cfg_; }
    const std::vector<float>& table() const { return table_; }

  private:
    // Same constants as qvstore.cpp — the reference must hash
    // identically or the comparison is meaningless.
    static constexpr unsigned kShift[] = {3, 11, 19, 27, 5, 13, 21, 29};

    std::uint32_t planeRow(std::uint32_t plane,
                           std::uint64_t feature_value) const
    {
        return planeIndex(feature_value, kShift[plane],
                          cfg_.plane_index_bits);
    }

    float& cell(std::uint32_t vault, std::uint32_t plane,
                std::uint32_t row, std::uint32_t action)
    {
        const std::size_t idx =
            ((static_cast<std::size_t>(vault) * cfg_.num_planes + plane) *
                 rows_per_plane_ + row) * cfg_.num_actions + action;
        return table_[idx];
    }

    float cellValue(std::uint32_t vault, std::uint32_t plane,
                    std::uint32_t row, std::uint32_t action) const
    {
        return const_cast<ScalarQVStore*>(this)->cell(vault, plane, row,
                                                      action);
    }

    void computeRows(const std::vector<std::uint64_t>& state) const
    {
        assert(state.size() == cfg_.num_features);
        std::uint32_t* r = rows_.data();
        for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
            const std::uint64_t fv = state[v];
            for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
                *r++ = planeRow(p, fv);
        }
    }

    double qFromRows(std::uint32_t action) const
    {
        const std::uint32_t* r = rows_.data();
        double best = -1e300;
        for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
            double sum = 0.0;
            for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
                sum += cellValue(v, p, r[p], action);
            r += cfg_.num_planes;
            if (sum > best)
                best = sum;
        }
        return best;
    }

    QVStoreConfig cfg_;
    std::uint32_t rows_per_plane_;
    std::vector<float> table_;
    std::uint64_t updates_ = 0;
    mutable std::vector<std::uint32_t> rows_;
    mutable std::vector<std::pair<double, std::uint32_t>> scored_;
};

} // namespace pythia::rl
