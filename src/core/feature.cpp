#include "core/feature.hpp"

#include <cstring>

#include "common/hashing.hpp"
#include "snapshot/codec.hpp"

namespace pythia::rl {

namespace {

const char*
controlName(ControlKind kind)
{
    switch (kind) {
      case ControlKind::None: return "None";
      case ControlKind::Pc: return "PC";
      case ControlKind::PcPath3: return "PCPath3";
      case ControlKind::PcXorPrevPc: return "PCxPrevPC";
    }
    return "?";
}

const char*
dataName(DataKind kind)
{
    switch (kind) {
      case DataKind::None: return "None";
      case DataKind::CachelineAddr: return "Addr";
      case DataKind::PageNum: return "PageNum";
      case DataKind::PageOffset: return "Offset";
      case DataKind::Delta: return "Delta";
      case DataKind::Last4Offsets: return "Last4Offsets";
      case DataKind::Last4Deltas: return "Last4Deltas";
      case DataKind::OffsetXorDelta: return "OffsetXorDelta";
    }
    return "?";
}

/// Deltas are sign+magnitude packed into 7 bits for history encoding.
std::uint32_t
packDelta(std::int32_t delta)
{
    const std::uint32_t mag =
        static_cast<std::uint32_t>(delta < 0 ? -delta : delta) & 0x3F;
    return (delta < 0 ? 0x40u : 0u) | mag;
}

} // namespace

std::string
featureName(const FeatureSpec& spec)
{
    if (spec.control == ControlKind::None)
        return dataName(spec.data);
    if (spec.data == DataKind::None)
        return controlName(spec.control);
    return std::string(controlName(spec.control)) + "+" +
           dataName(spec.data);
}

std::vector<FeatureSpec>
allFeatureSpecs()
{
    std::vector<FeatureSpec> specs;
    const ControlKind controls[] = {ControlKind::Pc, ControlKind::PcPath3,
                                    ControlKind::PcXorPrevPc,
                                    ControlKind::None};
    const DataKind datas[] = {
        DataKind::CachelineAddr, DataKind::PageNum, DataKind::PageOffset,
        DataKind::Delta, DataKind::Last4Offsets, DataKind::Last4Deltas,
        DataKind::OffsetXorDelta, DataKind::None};
    for (auto c : controls)
        for (auto d : datas)
            if (!(c == ControlKind::None && d == DataKind::None))
                specs.push_back(FeatureSpec{c, d});
    return specs;
}

std::vector<FeatureSpec>
basicFeatureSpecs()
{
    return {FeatureSpec{ControlKind::Pc, DataKind::Delta},
            FeatureSpec{ControlKind::None, DataKind::Last4Deltas}};
}

FeatureExtractor::FeatureExtractor()
{
    reset();
}

void
FeatureExtractor::reset()
{
    std::memset(pcs_, 0, sizeof(pcs_));
    std::memset(deltas_, 0, sizeof(deltas_));
    std::memset(offsets_, 0, sizeof(offsets_));
    last_block_ = 0;
    last_page_ = ~0ull;
    has_last_ = false;
    rebuildDerived();
}

void
FeatureExtractor::rebuildDerived()
{
    packed_offsets_ = 0;
    for (int i = 0; i < 4; ++i)
        packed_offsets_ = (packed_offsets_ << 6) | (offsets_[i] & 0x3F);
    packed_deltas_ = 0;
    for (int i = 0; i < 4; ++i)
        packed_deltas_ = (packed_deltas_ << 7) | packDelta(deltas_[i]);
    packed_delta0_ = packDelta(deltas_[0]);
    pc_path3_ = pcs_[0] ^ (pcs_[1] << 1) ^ (pcs_[2] << 2);
    pc_xor_prev_ = pcs_[0] ^ pcs_[1];
}

void
FeatureExtractor::saveState(snap::Writer& w) const
{
    for (Addr pc : pcs_)
        w.u64(pc);
    for (std::int32_t d : deltas_)
        w.i32(d);
    for (std::uint32_t o : offsets_)
        w.u32(o);
    w.u64(last_block_);
    w.u64(last_page_);
    w.boolean(has_last_);
}

void
FeatureExtractor::loadState(snap::Reader& r)
{
    for (Addr& pc : pcs_)
        pc = r.u64();
    for (std::int32_t& d : deltas_)
        d = r.i32();
    for (std::uint32_t& o : offsets_)
        o = r.u32();
    last_block_ = r.u64();
    last_page_ = r.u64();
    has_last_ = r.boolean();
    rebuildDerived();
}

void
FeatureExtractor::observe(Addr pc, Addr block)
{
    const Addr page = pageIdOfBlock(block);
    const auto offset =
        static_cast<std::uint32_t>(block & (kBlocksPerPage - 1));

    std::int32_t delta = 0;
    if (has_last_ && page == last_page_)
        delta = static_cast<std::int32_t>(
            static_cast<std::int64_t>(block) -
            static_cast<std::int64_t>(last_block_));

    // Fold the new PC into the control-flow caches before it enters the
    // history, then shift the raw histories (still the snapshot format).
    pc_path3_ = pc ^ (pcs_[0] << 1) ^ (pcs_[1] << 2);
    pc_xor_prev_ = pc ^ pcs_[0];
    for (int i = 2; i > 0; --i)
        pcs_[i] = pcs_[i - 1];
    pcs_[0] = pc;
    for (int i = 3; i > 0; --i) {
        deltas_[i] = deltas_[i - 1];
        offsets_[i] = offsets_[i - 1];
    }
    deltas_[0] = delta;
    offsets_[0] = offset;

    // Shift one element into the packed last-4 sequences: the previous
    // oldest falls off the bottom, the new value lands on top. Identical
    // to re-packing the shifted arrays.
    packed_offsets_ = ((static_cast<std::uint64_t>(offset) & 0x3F) << 18) |
                      (packed_offsets_ >> 6);
    packed_delta0_ = packDelta(delta);
    packed_deltas_ =
        (static_cast<std::uint64_t>(packed_delta0_) << 21) |
        (packed_deltas_ >> 7);

    last_block_ = block;
    last_page_ = page;
    has_last_ = true;
}

std::uint64_t
FeatureExtractor::controlValue(ControlKind kind) const
{
    switch (kind) {
      case ControlKind::None:
        return 0;
      case ControlKind::Pc:
        return pcs_[0];
      case ControlKind::PcPath3:
        return pc_path3_;
      case ControlKind::PcXorPrevPc:
        return pc_xor_prev_;
    }
    return 0;
}

std::uint64_t
FeatureExtractor::dataValue(DataKind kind) const
{
    switch (kind) {
      case DataKind::None:
        return 0;
      case DataKind::CachelineAddr:
        return last_block_;
      case DataKind::PageNum:
        return last_page_;
      case DataKind::PageOffset:
        return offsets_[0];
      case DataKind::Delta:
        return packed_delta0_;
      case DataKind::Last4Offsets:
        return packed_offsets_;
      case DataKind::Last4Deltas:
        return packed_deltas_;
      case DataKind::OffsetXorDelta:
        return offsets_[0] ^ packed_delta0_;
    }
    return 0;
}

std::uint64_t
FeatureExtractor::extract(const FeatureSpec& spec) const
{
    const std::uint64_t c = controlValue(spec.control);
    const std::uint64_t d = dataValue(spec.data);
    if (spec.control == ControlKind::None)
        return d;
    if (spec.data == DataKind::None)
        return c;
    // "Concatenation": fold the control part above the data part.
    return (c << 28) ^ d ^ (c >> 17);
}

std::vector<std::uint64_t>
FeatureExtractor::extractAll(const std::vector<FeatureSpec>& specs) const
{
    std::vector<std::uint64_t> out;
    extractAllInto(specs, out);
    return out;
}

void
FeatureExtractor::extractAllInto(const std::vector<FeatureSpec>& specs,
                                 std::vector<std::uint64_t>& out) const
{
    out.clear();
    out.reserve(specs.size());
    for (const auto& s : specs)
        out.push_back(extract(s));
}

} // namespace pythia::rl
