/**
 * @file
 * Named Pythia configurations used across the evaluation: the basic
 * configuration of Table 2, the "strict" Ligra customization of §6.6.1
 * and the bandwidth-oblivious ablation of §6.3.3.
 */
#pragma once

#include "core/agent.hpp"

namespace pythia::rl {

/** Basic Pythia (paper Table 2). */
PythiaConfig basicPythiaConfig();

/**
 * Strict Pythia for graph suites (§6.6.1): harsher inaccuracy penalties
 * (R_IN^H=-22, R_IN^L=-20) and neutral no-prefetch rewards (R_NP=0),
 * trading coverage for accuracy.
 */
PythiaConfig strictPythiaConfig();

/**
 * Bandwidth-oblivious Pythia (§6.3.3): both R_IN levels set to -8 and
 * both R_NP levels to -4, erasing the bandwidth distinction.
 */
PythiaConfig bandwidthObliviousConfig();

/** Basic Pythia with a custom feature pair (Fig. 16 / Fig. 19 sweeps). */
PythiaConfig withFeatures(PythiaConfig base,
                          std::vector<FeatureSpec> features);

/**
 * Rescale the learning-rate / exploration hyperparameters for
 * scaled-down simulation windows.
 *
 * The paper tunes alpha=0.0065 / epsilon=0.002 on 500M-instruction runs;
 * at this repository's default 100K-warmup / 300K-measure windows the
 * agent would see ~1000x fewer Q-updates and never leave its first
 * positive action. Scaling both rates keeps the *per-window* learning
 * progress comparable (see DESIGN.md §4). All harness "pythia*"
 * prefetchers use scaled configurations.
 */
PythiaConfig scaledForSimLength(PythiaConfig cfg);

} // namespace pythia::rl
