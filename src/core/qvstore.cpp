#include "core/qvstore.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/hashing.hpp"
#include "snapshot/codec.hpp"

namespace pythia::rl {

namespace {

/// Per-plane shift constants "randomly selected at design time" (§4.2.1).
constexpr unsigned kPlaneShift[] = {3, 11, 19, 27, 5, 13, 21, 29};

} // namespace

QVStore::QVStore(const QVStoreConfig& cfg) : cfg_(cfg)
{
    assert(cfg_.num_features > 0 && cfg_.num_planes > 0);
    assert(cfg_.num_planes <= std::size(kPlaneShift));
    assert(cfg_.num_actions > 0);
    rows_per_plane_ = 1u << cfg_.plane_index_bits;
    table_.assign(static_cast<std::size_t>(cfg_.num_features) *
                      cfg_.num_planes * rows_per_plane_ * cfg_.num_actions,
                  0.0f);
    rows_.assign(static_cast<std::size_t>(cfg_.num_features) *
                     cfg_.num_planes,
                 0);
    scored_.reserve(cfg_.num_actions);
    resetToOptimistic();
}

void
QVStore::resetToOptimistic()
{
    // Q(S,A) is the sum of num_planes partial values; split the optimistic
    // initial value evenly so the summed Q matches.
    const float init = static_cast<float>(cfg_.q_init / cfg_.num_planes);
    for (auto& v : table_)
        v = init;
    updates_ = 0;
}

std::uint32_t
QVStore::planeRow(std::uint32_t plane, std::uint64_t feature_value) const
{
    return planeIndex(feature_value, kPlaneShift[plane],
                      cfg_.plane_index_bits);
}

float&
QVStore::cell(std::uint32_t vault, std::uint32_t plane, std::uint32_t row,
              std::uint32_t action)
{
    const std::size_t idx =
        ((static_cast<std::size_t>(vault) * cfg_.num_planes + plane) *
             rows_per_plane_ + row) * cfg_.num_actions + action;
    return table_[idx];
}

float
QVStore::cellValue(std::uint32_t vault, std::uint32_t plane,
                   std::uint32_t row, std::uint32_t action) const
{
    return const_cast<QVStore*>(this)->cell(vault, plane, row, action);
}

double
QVStore::vaultQ(std::uint32_t vault, std::uint64_t feature_value,
                std::uint32_t action) const
{
    double sum = 0.0;
    for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
        sum += cellValue(vault, p, planeRow(p, feature_value), action);
    return sum;
}

void
QVStore::computeRows(const std::vector<std::uint64_t>& state) const
{
    assert(state.size() == cfg_.num_features);
    std::uint32_t* r = rows_.data();
    for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
        const std::uint64_t fv = state[v];
        for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
            *r++ = planeRow(p, fv);
    }
}

double
QVStore::qFromRows(std::uint32_t action) const
{
    // Same evaluation order as summing vaultQ per vault: plane partials
    // accumulate into a double per vault, max over vaults.
    const std::uint32_t* r = rows_.data();
    double best = -1e300;
    for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
        double sum = 0.0;
        for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
            sum += cellValue(v, p, r[p], action);
        r += cfg_.num_planes;
        if (sum > best)
            best = sum;
    }
    return best;
}

double
QVStore::q(const std::vector<std::uint64_t>& state,
           std::uint32_t action) const
{
    computeRows(state);
    return qFromRows(action);
}

std::uint32_t
QVStore::maxAction(const std::vector<std::uint64_t>& state) const
{
    computeRows(state);
    std::uint32_t best = 0;
    double best_q = qFromRows(0);
    for (std::uint32_t a = 1; a < cfg_.num_actions; ++a) {
        const double qa = qFromRows(a);
        if (qa > best_q) {
            best_q = qa;
            best = a;
        }
    }
    return best;
}

std::vector<std::uint32_t>
QVStore::topActions(const std::vector<std::uint64_t>& state,
                    std::uint32_t k) const
{
    std::vector<std::uint32_t> out;
    topActionsInto(state, k, out);
    return out;
}

void
QVStore::topActionsInto(const std::vector<std::uint64_t>& state,
                        std::uint32_t k,
                        std::vector<std::uint32_t>& out) const
{
    computeRows(state);
    scored_.clear();
    for (std::uint32_t a = 0; a < cfg_.num_actions; ++a)
        scored_.emplace_back(qFromRows(a), a);
    std::sort(scored_.begin(), scored_.end(), [](const auto& x,
                                                 const auto& y) {
        return x.first != y.first ? x.first > y.first
                                  : x.second < y.second;
    });
    out.clear();
    for (std::uint32_t i = 0; i < k && i < scored_.size(); ++i)
        out.push_back(scored_[i].second);
}

double
QVStore::maxQ(const std::vector<std::uint64_t>& state) const
{
    // Same argmax scan as maxAction (lowest index wins ties), returning
    // the winning Q directly instead of re-deriving it.
    computeRows(state);
    double best_q = qFromRows(0);
    for (std::uint32_t a = 1; a < cfg_.num_actions; ++a) {
        const double qa = qFromRows(a);
        if (qa > best_q)
            best_q = qa;
    }
    return best_q;
}

void
QVStore::update(const std::vector<std::uint64_t>& s1, std::uint32_t a1,
                double reward, const std::vector<std::uint64_t>& s2,
                std::uint32_t a2)
{
    assert(a1 < cfg_.num_actions && a2 < cfg_.num_actions);
    // q(s2, a2) second so rows_ holds s1's rows for the write loop.
    const double q_s2a2 = q(s2, a2);
    const double q_sa = q(s1, a1);
    const double target = reward + cfg_.gamma * q_s2a2;
    const double err = target - q_sa;
    const float step = static_cast<float>(
        cfg_.alpha * err / cfg_.num_planes);
    const std::uint32_t* r = rows_.data();
    for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
        for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
            cell(v, p, r[p], a1) += step;
        r += cfg_.num_planes;
    }
    ++updates_;
}

void
QVStore::saveState(snap::Writer& w) const
{
    w.vecF32(table_);
    w.u64(updates_);
}

void
QVStore::loadState(snap::Reader& r)
{
    std::vector<float> table = r.vecF32();
    if (table.size() != table_.size())
        throw snap::CorruptError(
            "snapshot corrupt: qvstore table has " +
            std::to_string(table.size()) +
            " cells but this configuration has " +
            std::to_string(table_.size()));
    table_ = std::move(table);
    updates_ = r.u64();
}

} // namespace pythia::rl
