#include "core/qvstore.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/hashing.hpp"

namespace pythia::rl {

namespace {

/// Per-plane shift constants "randomly selected at design time" (§4.2.1).
constexpr unsigned kPlaneShift[] = {3, 11, 19, 27, 5, 13, 21, 29};

} // namespace

QVStore::QVStore(const QVStoreConfig& cfg) : cfg_(cfg)
{
    assert(cfg_.num_features > 0 && cfg_.num_planes > 0);
    assert(cfg_.num_planes <= std::size(kPlaneShift));
    assert(cfg_.num_actions > 0);
    rows_per_plane_ = 1u << cfg_.plane_index_bits;
    table_.assign(static_cast<std::size_t>(cfg_.num_features) *
                      cfg_.num_planes * rows_per_plane_ * cfg_.num_actions,
                  0.0f);
    resetToOptimistic();
}

void
QVStore::resetToOptimistic()
{
    // Q(S,A) is the sum of num_planes partial values; split the optimistic
    // initial value evenly so the summed Q matches.
    const float init = static_cast<float>(cfg_.q_init / cfg_.num_planes);
    for (auto& v : table_)
        v = init;
    updates_ = 0;
}

std::uint32_t
QVStore::planeRow(std::uint32_t plane, std::uint64_t feature_value) const
{
    return planeIndex(feature_value, kPlaneShift[plane],
                      cfg_.plane_index_bits);
}

float&
QVStore::cell(std::uint32_t vault, std::uint32_t plane, std::uint32_t row,
              std::uint32_t action)
{
    const std::size_t idx =
        ((static_cast<std::size_t>(vault) * cfg_.num_planes + plane) *
             rows_per_plane_ + row) * cfg_.num_actions + action;
    return table_[idx];
}

float
QVStore::cellValue(std::uint32_t vault, std::uint32_t plane,
                   std::uint32_t row, std::uint32_t action) const
{
    return const_cast<QVStore*>(this)->cell(vault, plane, row, action);
}

double
QVStore::vaultQ(std::uint32_t vault, std::uint64_t feature_value,
                std::uint32_t action) const
{
    double sum = 0.0;
    for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
        sum += cellValue(vault, p, planeRow(p, feature_value), action);
    return sum;
}

double
QVStore::q(const std::vector<std::uint64_t>& state,
           std::uint32_t action) const
{
    assert(state.size() == cfg_.num_features);
    double best = -1e300;
    for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
        const double qv = vaultQ(v, state[v], action);
        if (qv > best)
            best = qv;
    }
    return best;
}

std::uint32_t
QVStore::maxAction(const std::vector<std::uint64_t>& state) const
{
    std::uint32_t best = 0;
    double best_q = q(state, 0);
    for (std::uint32_t a = 1; a < cfg_.num_actions; ++a) {
        const double qa = q(state, a);
        if (qa > best_q) {
            best_q = qa;
            best = a;
        }
    }
    return best;
}

std::vector<std::uint32_t>
QVStore::topActions(const std::vector<std::uint64_t>& state,
                    std::uint32_t k) const
{
    std::vector<std::pair<double, std::uint32_t>> scored;
    scored.reserve(cfg_.num_actions);
    for (std::uint32_t a = 0; a < cfg_.num_actions; ++a)
        scored.emplace_back(q(state, a), a);
    std::sort(scored.begin(), scored.end(), [](const auto& x,
                                               const auto& y) {
        return x.first != y.first ? x.first > y.first
                                  : x.second < y.second;
    });
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < k && i < scored.size(); ++i)
        out.push_back(scored[i].second);
    return out;
}

double
QVStore::maxQ(const std::vector<std::uint64_t>& state) const
{
    return q(state, maxAction(state));
}

void
QVStore::update(const std::vector<std::uint64_t>& s1, std::uint32_t a1,
                double reward, const std::vector<std::uint64_t>& s2,
                std::uint32_t a2)
{
    assert(a1 < cfg_.num_actions && a2 < cfg_.num_actions);
    const double q_sa = q(s1, a1);
    const double target = reward + cfg_.gamma * q(s2, a2);
    const double err = target - q_sa;
    const float step = static_cast<float>(
        cfg_.alpha * err / cfg_.num_planes);
    for (std::uint32_t v = 0; v < cfg_.num_features; ++v)
        for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
            cell(v, p, planeRow(p, s1[v]), a1) += step;
    ++updates_;
}

} // namespace pythia::rl
