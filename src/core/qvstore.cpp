#include "core/qvstore.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/hashing.hpp"
#include "snapshot/codec.hpp"

namespace pythia::rl {

namespace {

/// Per-plane shift constants "randomly selected at design time" (§4.2.1).
constexpr unsigned kPlaneShift[] = {3, 11, 19, 27, 5, 13, 21, 29};

} // namespace

QVStore::QVStore(const QVStoreConfig& cfg) : cfg_(cfg)
{
    assert(cfg_.num_features > 0 && cfg_.num_planes > 0);
    assert(cfg_.num_planes <= std::size(kPlaneShift));
    assert(cfg_.num_actions > 0);
    rows_per_plane_ = 1u << cfg_.plane_index_bits;
    table_.assign(static_cast<std::size_t>(cfg_.num_features) *
                      cfg_.num_planes * rows_per_plane_ * cfg_.num_actions,
                  0.0f);
    row_bases_.assign(static_cast<std::size_t>(cfg_.num_features) *
                          cfg_.num_planes,
                      0);
    qa_.assign(cfg_.num_actions, 0.0);
    vault_acc_.assign(cfg_.num_actions, 0.0);
    taken_.assign(cfg_.num_actions, 0);
    resetToOptimistic();
}

void
QVStore::resetToOptimistic()
{
    // Q(S,A) is the sum of num_planes partial values; split the optimistic
    // initial value evenly so the summed Q matches.
    const float init = static_cast<float>(cfg_.q_init / cfg_.num_planes);
    for (auto& v : table_)
        v = init;
    updates_ = 0;
    scan_valid_ = false;
}

std::uint32_t
QVStore::planeRow(std::uint32_t plane, std::uint64_t feature_value) const
{
    return planeIndex(feature_value, kPlaneShift[plane],
                      cfg_.plane_index_bits);
}

float&
QVStore::cell(std::uint32_t vault, std::uint32_t plane, std::uint32_t row,
              std::uint32_t action)
{
    const std::size_t idx =
        ((static_cast<std::size_t>(vault) * cfg_.num_planes + plane) *
             rows_per_plane_ + row) * cfg_.num_actions + action;
    return table_[idx];
}

float
QVStore::cellValue(std::uint32_t vault, std::uint32_t plane,
                   std::uint32_t row, std::uint32_t action) const
{
    return const_cast<QVStore*>(this)->cell(vault, plane, row, action);
}

double
QVStore::vaultQ(std::uint32_t vault, std::uint64_t feature_value,
                std::uint32_t action) const
{
    double sum = 0.0;
    for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
        sum += cellValue(vault, p, planeRow(p, feature_value), action);
    return sum;
}

void
QVStore::computeRows(const std::uint64_t* state, std::size_t n) const
{
    assert(n == cfg_.num_features);
    (void)n;
    const std::size_t plane_stride =
        static_cast<std::size_t>(rows_per_plane_) * cfg_.num_actions;
    std::size_t* b = row_bases_.data();
    std::size_t vault_base = 0;
    for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
        const std::uint64_t fv = state[v];
        std::size_t base = vault_base;
        for (std::uint32_t p = 0; p < cfg_.num_planes; ++p) {
            *b++ = base + static_cast<std::size_t>(planeRow(p, fv)) *
                              cfg_.num_actions;
            base += plane_stride;
        }
        vault_base += static_cast<std::size_t>(cfg_.num_planes) *
                      plane_stride;
    }
    scan_valid_ = false;
}

double
QVStore::qFromRows(std::uint32_t action) const
{
    // Same evaluation order as summing vaultQ per vault: plane partials
    // accumulate into a double per vault, max over vaults.
    const std::size_t* b = row_bases_.data();
    const float* table = table_.data();
    double best = -1e300;
    for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
        double sum = 0.0;
        for (std::uint32_t p = 0; p < cfg_.num_planes; ++p)
            sum += table[b[p] + action];
        b += cfg_.num_planes;
        if (sum > best)
            best = sum;
    }
    return best;
}

void
QVStore::scanActions() const
{
    const std::uint32_t A = cfg_.num_actions;
    const float* table = table_.data();
    const std::size_t* b = row_bases_.data();
    double* acc = vault_acc_.data();
    double* qa = qa_.data();
    for (std::uint32_t a = 0; a < A; ++a)
        qa[a] = -1e300;
    for (std::uint32_t v = 0; v < cfg_.num_features; ++v) {
        for (std::uint32_t a = 0; a < A; ++a)
            acc[a] = 0.0;
        // Each plane row is one contiguous A-float run; accumulating it
        // element-wise keeps one independent addition chain per action
        // (the same order qFromRows uses), so this loop vectorizes
        // across actions without any floating-point reassociation.
        for (std::uint32_t p = 0; p < cfg_.num_planes; ++p) {
            const float* row = table + b[p];
            for (std::uint32_t a = 0; a < A; ++a)
                acc[a] += static_cast<double>(row[a]);
        }
        b += cfg_.num_planes;
        for (std::uint32_t a = 0; a < A; ++a) {
            if (acc[a] > qa[a])
                qa[a] = acc[a];
        }
    }
    scan_valid_ = true;
}

double
QVStore::q(const std::uint64_t* state, std::size_t n,
           std::uint32_t action) const
{
    computeRows(state, n);
    return qFromRows(action);
}

std::uint32_t
QVStore::maxAction(const std::uint64_t* state, std::size_t n) const
{
    computeRows(state, n);
    scanActions();
    const double* qa = qa_.data();
    std::uint32_t best = 0;
    double best_q = qa[0];
    for (std::uint32_t a = 1; a < cfg_.num_actions; ++a) {
        if (qa[a] > best_q) {
            best_q = qa[a];
            best = a;
        }
    }
    return best;
}

std::vector<std::uint32_t>
QVStore::topActions(const std::vector<std::uint64_t>& state,
                    std::uint32_t k) const
{
    std::vector<std::uint32_t> out;
    topActionsInto(state, k, out);
    return out;
}

void
QVStore::topActionsInto(const std::uint64_t* state, std::size_t n,
                        std::uint32_t k,
                        std::vector<std::uint32_t>& out) const
{
    computeRows(state, n);
    scanActions();
    // Repeated strict-> argmax over the scanned scores with a taken mask:
    // identical selection (and order) to sorting all (q, action) pairs by
    // (q desc, action asc) and keeping the first k — lower index wins
    // every tie — without the sort or the pair buffer.
    const std::uint32_t A = cfg_.num_actions;
    const double* qa = qa_.data();
    std::uint8_t* taken = taken_.data();
    std::fill_n(taken, A, std::uint8_t{0});
    out.clear();
    const std::uint32_t take = k < A ? k : A;
    for (std::uint32_t i = 0; i < take; ++i) {
        std::uint32_t best = A;
        double best_q = 0.0;
        for (std::uint32_t a = 0; a < A; ++a) {
            if (taken[a])
                continue;
            if (best == A || qa[a] > best_q) {
                best_q = qa[a];
                best = a;
            }
        }
        taken[best] = 1;
        out.push_back(best);
    }
}

double
QVStore::maxQ(const std::uint64_t* state, std::size_t n) const
{
    // Same argmax scan as maxAction (lowest index wins ties), returning
    // the winning Q directly instead of re-deriving it.
    computeRows(state, n);
    scanActions();
    const double* qa = qa_.data();
    double best_q = qa[0];
    for (std::uint32_t a = 1; a < cfg_.num_actions; ++a) {
        if (qa[a] > best_q)
            best_q = qa[a];
    }
    return best_q;
}

void
QVStore::update(const std::uint64_t* s1, std::size_t n1, std::uint32_t a1,
                double reward, const std::uint64_t* s2, std::size_t n2,
                std::uint32_t a2)
{
    assert(a1 < cfg_.num_actions && a2 < cfg_.num_actions);
    // q(s2, a2) first so row_bases_ holds s1's rows for the write loop.
    const double q_s2a2 = q(s2, n2, a2);
    const double q_sa = q(s1, n1, a1);
    const double target = reward + cfg_.gamma * q_s2a2;
    const double err = target - q_sa;
    const float step = static_cast<float>(
        cfg_.alpha * err / cfg_.num_planes);
    float* table = table_.data();
    const std::size_t* b = row_bases_.data();
    const std::size_t n_rows =
        static_cast<std::size_t>(cfg_.num_features) * cfg_.num_planes;
    for (std::size_t i = 0; i < n_rows; ++i)
        table[b[i] + a1] += step;
    scan_valid_ = false;
    ++updates_;
}

void
QVStore::updateCached(const std::uint64_t* s1, std::size_t n1,
                      const std::uint32_t* rows1, std::uint32_t a1,
                      double reward, const std::uint64_t* s2,
                      std::size_t n2, const std::uint32_t* rows2,
                      std::uint32_t a2)
{
    assert(a1 < cfg_.num_actions && a2 < cfg_.num_actions);
    const std::size_t n_rows = row_bases_.size();
    // s2 first, s1 second, exactly like update(): row_bases_ must hold
    // s1's rows when the write loop runs.
    if (rows2) {
        for (std::size_t i = 0; i < n_rows; ++i)
            row_bases_[i] = rows2[i];
        scan_valid_ = false;
    } else {
        computeRows(s2, n2);
    }
    const double q_s2a2 = qFromRows(a2);
    if (rows1) {
        for (std::size_t i = 0; i < n_rows; ++i)
            row_bases_[i] = rows1[i];
    } else {
        computeRows(s1, n1);
    }
    const double q_sa = qFromRows(a1);
    const double target = reward + cfg_.gamma * q_s2a2;
    const double err = target - q_sa;
    const float step = static_cast<float>(
        cfg_.alpha * err / cfg_.num_planes);
    float* table = table_.data();
    const std::size_t* b = row_bases_.data();
    for (std::size_t i = 0; i < n_rows; ++i)
        table[b[i] + a1] += step;
    scan_valid_ = false;
    ++updates_;
}

void
QVStore::saveState(snap::Writer& w) const
{
    w.vecF32(table_);
    w.u64(updates_);
}

void
QVStore::loadState(snap::Reader& r)
{
    std::vector<float> table = r.vecF32();
    if (table.size() != table_.size())
        throw snap::CorruptError(
            "snapshot corrupt: qvstore table has " +
            std::to_string(table.size()) +
            " cells but this configuration has " +
            std::to_string(table_.size()));
    table_ = std::move(table);
    updates_ = r.u64();
    scan_valid_ = false;
}

} // namespace pythia::rl
