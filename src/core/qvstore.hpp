/**
 * @file
 * QVStore — Pythia's hierarchical Q-value storage (paper §4.2.1).
 *
 * One *vault* per state-vector feature; each vault is a set of tile-coded
 * *planes* (small 2-D tables indexed by hashed feature value x action).
 * A feature-action Q-value is the sum of its partial plane values
 * (Fig. 5(b)); the state-action Q-value is the max over vaults (Eqn. 3).
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia::rl {

/** QVStore geometry and learning parameters (paper Table 2 / Table 4). */
struct QVStoreConfig
{
    std::uint32_t num_features = 2;   ///< vaults
    std::uint32_t num_planes = 3;     ///< planes per vault
    std::uint32_t plane_index_bits = 7; ///< 128 feature rows per plane
    std::uint32_t num_actions = 16;
    double alpha = 0.0065;            ///< learning rate
    double gamma = 0.556;             ///< discount factor
    /** Optimistic initial Q-value. The paper initializes to the highest
     *  possible cumulative reward (Algorithm 1 line 2 writes it as
     *  1/(1-gamma) for unit-scale rewards); with reward levels up to
     *  R_AT this is R_max/(1-gamma). Optimism drives systematic
     *  exploration of every action. */
    double q_init = 20.0 / (1.0 - 0.556);
};

/**
 * The Q-value store. Values are kept in float; the hardware realization
 * quantizes to 16-bit fixed point (storage modelled in storage_model.*).
 */
class QVStore
{
  public:
    explicit QVStore(const QVStoreConfig& cfg);

    /** Q(S, A): max over vaults of the summed partial values. */
    double q(const std::vector<std::uint64_t>& state,
             std::uint32_t action) const;

    /** argmax_a Q(S, a); ties resolve to the lowest action index. */
    std::uint32_t maxAction(const std::vector<std::uint64_t>& state) const;

    /** The @p k actions with the highest Q-values, best first (the
     *  multi-action degree extension; k=1 gives [maxAction]). */
    std::vector<std::uint32_t>
    topActions(const std::vector<std::uint64_t>& state,
               std::uint32_t k) const;

    /** topActions into @p out (cleared first), for per-demand callers
     *  that reuse one buffer. */
    void topActionsInto(const std::vector<std::uint64_t>& state,
                        std::uint32_t k,
                        std::vector<std::uint32_t>& out) const;

    /**
     * Q(S, A) for the state of the most recent q() / maxAction() /
     * topActions() / maxQ() call on this object, without re-hashing the
     * plane rows. Per-demand callers that probe several actions of one
     * state (the agent's secondary-action filter) use this; identical
     * to q(same_state, action).
     */
    double qAtLastState(std::uint32_t action) const
    {
        return qFromRows(action);
    }

    /** Q(S, argmax_a Q(S, a)). */
    double maxQ(const std::vector<std::uint64_t>& state) const;

    /**
     * SARSA update (paper Eqn. 1 / Algorithm 1 line 29):
     * Q(S1,A1) += alpha * (R + gamma * Q(S2,A2) - Q(S1,A1)).
     * The TD error is distributed equally over every plane of every vault,
     * as in the original artifact.
     */
    void update(const std::vector<std::uint64_t>& s1, std::uint32_t a1,
                double reward, const std::vector<std::uint64_t>& s2,
                std::uint32_t a2);

    /** Reset all entries to the optimistic initial value 1/(1-gamma)
     *  (Algorithm 1 line 2). */
    void resetToOptimistic();

    /** Per-feature (vault) Q-value, exposed for the Fig. 13 case study. */
    double vaultQ(std::uint32_t vault, std::uint64_t feature_value,
                  std::uint32_t action) const;

    /** Number of Q-value updates performed so far. */
    std::uint64_t updates() const { return updates_; }

    const QVStoreConfig& config() const { return cfg_; }

    /** Serialize the full Q table + update count (snapshot subsystem).
     *  The rows_/scored_ scratch is recomputed per lookup and excluded. */
    void saveState(snap::Writer& w) const;

    /** Restore a saveState() image of identical geometry.
     *  @throws snap::CorruptError on table-size mismatch. */
    void loadState(snap::Reader& r);

  private:
    std::uint32_t planeRow(std::uint32_t plane,
                           std::uint64_t feature_value) const;
    float& cell(std::uint32_t vault, std::uint32_t plane,
                std::uint32_t row, std::uint32_t action);
    float cellValue(std::uint32_t vault, std::uint32_t plane,
                    std::uint32_t row, std::uint32_t action) const;

    /**
     * Hash the state's plane rows into @p rows_ once per state. The
     * rows depend only on (plane, feature value) — never on the action
     * — so every per-action Q evaluation afterwards is pure table
     * reads; without this, maxAction()/topActions() redo
     * vaults x planes hashes per action.
     */
    void computeRows(const std::vector<std::uint64_t>& state) const;

    /** Q(S, A) from the rows of the last computeRows() call: max over
     *  vaults of the plane-partial sums, in the same order as the
     *  direct evaluation (bit-identical results). */
    double qFromRows(std::uint32_t action) const;

    QVStoreConfig cfg_;
    std::uint32_t rows_per_plane_;
    /** [vault][plane][row * actions + action] flattened. */
    std::vector<float> table_;
    std::uint64_t updates_ = 0;
    /** computeRows() scratch: [vault * num_planes + plane] -> row.
     *  Mutable because Q evaluation is logically const; a QVStore is
     *  owned by one single-threaded simulation (DESIGN.md §6). */
    mutable std::vector<std::uint32_t> rows_;
    /** topActions() scratch (same single-thread reasoning). */
    mutable std::vector<std::pair<double, std::uint32_t>> scored_;
};

} // namespace pythia::rl
