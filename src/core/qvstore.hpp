/**
 * @file
 * QVStore — Pythia's hierarchical Q-value storage (paper §4.2.1).
 *
 * One *vault* per state-vector feature; each vault is a set of tile-coded
 * *planes* (small 2-D tables indexed by hashed feature value x action).
 * A feature-action Q-value is the sum of its partial plane values
 * (Fig. 5(b)); the state-action Q-value is the max over vaults (Eqn. 3).
 *
 * Data layout (DESIGN.md §10): the whole store is one flat float array
 * in [vault][plane][row][action] order — a structure-of-arrays whose
 * innermost dimension is the action, so every hashed plane row is one
 * contiguous `num_actions`-float run (exactly one 64-byte cache line at
 * the paper's 16 actions). Action scoring is a single linear pass over
 * those rows with one independent accumulator per action (scanActions),
 * which auto-vectorizes without reassociating any floating-point sum:
 * each action's partial-value chain keeps its scalar evaluation order,
 * so vectorized and scalar builds produce bit-identical Q-values.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pythia::snap {
class Writer;
class Reader;
} // namespace pythia::snap

namespace pythia::rl {

/** QVStore geometry and learning parameters (paper Table 2 / Table 4). */
struct QVStoreConfig
{
    std::uint32_t num_features = 2;   ///< vaults
    std::uint32_t num_planes = 3;     ///< planes per vault
    std::uint32_t plane_index_bits = 7; ///< 128 feature rows per plane
    std::uint32_t num_actions = 16;
    double alpha = 0.0065;            ///< learning rate
    double gamma = 0.556;             ///< discount factor
    /** Optimistic initial Q-value. The paper initializes to the highest
     *  possible cumulative reward (Algorithm 1 line 2 writes it as
     *  1/(1-gamma) for unit-scale rewards); with reward levels up to
     *  R_AT this is R_max/(1-gamma). Optimism drives systematic
     *  exploration of every action. */
    double q_init = 20.0 / (1.0 - 0.556);
};

/**
 * The Q-value store. Values are kept in float; the hardware realization
 * quantizes to 16-bit fixed point (storage modelled in storage_model.*).
 *
 * The primary lookup/update entry points take the state vector as
 * pointer + length so per-demand callers (agent, EQ retirement) never
 * materialize a std::vector; the vector overloads remain for tests and
 * introspection and delegate to the span forms.
 */
class QVStore
{
  public:
    explicit QVStore(const QVStoreConfig& cfg);

    /** Q(S, A): max over vaults of the summed partial values. */
    double q(const std::uint64_t* state, std::size_t n,
             std::uint32_t action) const;
    double q(const std::vector<std::uint64_t>& state,
             std::uint32_t action) const
    {
        return q(state.data(), state.size(), action);
    }

    /** argmax_a Q(S, a); ties resolve to the lowest action index. */
    std::uint32_t maxAction(const std::uint64_t* state,
                            std::size_t n) const;
    std::uint32_t maxAction(const std::vector<std::uint64_t>& state) const
    {
        return maxAction(state.data(), state.size());
    }

    /** The @p k actions with the highest Q-values, best first (the
     *  multi-action degree extension; k=1 gives [maxAction]). */
    std::vector<std::uint32_t>
    topActions(const std::vector<std::uint64_t>& state,
               std::uint32_t k) const;

    /** topActions into @p out (cleared first), for per-demand callers
     *  that reuse one buffer. */
    void topActionsInto(const std::uint64_t* state, std::size_t n,
                        std::uint32_t k,
                        std::vector<std::uint32_t>& out) const;
    void topActionsInto(const std::vector<std::uint64_t>& state,
                        std::uint32_t k,
                        std::vector<std::uint32_t>& out) const
    {
        topActionsInto(state.data(), state.size(), k, out);
    }

    /**
     * Q(S, A) for the state of the most recent q() / maxAction() /
     * topActions() / maxQ() call on this object, without re-hashing the
     * plane rows. Per-demand callers that probe several actions of one
     * state (the agent's secondary-action filter) use this; identical
     * to q(same_state, action). After a full-scan call (maxAction /
     * topActions / maxQ) this is a single read of the cached action
     * scores; after q() it re-sums the cached rows.
     */
    double qAtLastState(std::uint32_t action) const
    {
        return scan_valid_ ? qa_[action] : qFromRows(action);
    }

    /** Q(S, argmax_a Q(S, a)). */
    double maxQ(const std::uint64_t* state, std::size_t n) const;
    double maxQ(const std::vector<std::uint64_t>& state) const
    {
        return maxQ(state.data(), state.size());
    }

    /**
     * SARSA update (paper Eqn. 1 / Algorithm 1 line 29):
     * Q(S1,A1) += alpha * (R + gamma * Q(S2,A2) - Q(S1,A1)).
     * The TD error is distributed equally over every plane of every vault,
     * as in the original artifact.
     */
    void update(const std::uint64_t* s1, std::size_t n1, std::uint32_t a1,
                double reward, const std::uint64_t* s2, std::size_t n2,
                std::uint32_t a2);
    void update(const std::vector<std::uint64_t>& s1, std::uint32_t a1,
                double reward, const std::vector<std::uint64_t>& s2,
                std::uint32_t a2)
    {
        update(s1.data(), s1.size(), a1, reward, s2.data(), s2.size(),
               a2);
    }

    /**
     * update() with cached plane rows. @p rows1 / @p rows2 are flat
     * table offsets previously exported by lastRowsInto() for s1 / s2
     * (pass nullptr to hash the corresponding state instead). Rows are
     * a pure function of the state and this store's geometry, so the
     * result is bit-identical to the hashing form; callers that hold a
     * state across time (the EQ) skip the 2x re-hash per retirement.
     */
    void updateCached(const std::uint64_t* s1, std::size_t n1,
                      const std::uint32_t* rows1, std::uint32_t a1,
                      double reward, const std::uint64_t* s2,
                      std::size_t n2, const std::uint32_t* rows2,
                      std::uint32_t a2);

    /**
     * Export the plane-row offsets of the state hashed by the most
     * recent lookup as u32 flat offsets. Returns the row count, or 0
     * when it exceeds @p max (caller falls back to re-hashing).
     */
    std::uint32_t lastRowsInto(std::uint32_t* out, std::uint32_t max) const
    {
        const std::uint32_t n =
            static_cast<std::uint32_t>(row_bases_.size());
        if (n > max)
            return 0;
        for (std::uint32_t i = 0; i < n; ++i)
            out[i] = static_cast<std::uint32_t>(row_bases_[i]);
        return n;
    }

    /** Reset all entries to the optimistic initial value 1/(1-gamma)
     *  (Algorithm 1 line 2). */
    void resetToOptimistic();

    /** Per-feature (vault) Q-value, exposed for the Fig. 13 case study. */
    double vaultQ(std::uint32_t vault, std::uint64_t feature_value,
                  std::uint32_t action) const;

    /** Number of Q-value updates performed so far. */
    std::uint64_t updates() const { return updates_; }

    const QVStoreConfig& config() const { return cfg_; }

    /** Serialize the full Q table + update count (snapshot subsystem).
     *  The wire layout is the PR 6 v1 stream — logical cell values in
     *  [vault][plane][row][action] order — independent of the in-memory
     *  layout, so old snapshots restore into the scan-kernel store
     *  unchanged. Lookup scratch is recomputed and excluded. */
    void saveState(snap::Writer& w) const;

    /** Restore a saveState() image of identical geometry.
     *  @throws snap::CorruptError on table-size mismatch. */
    void loadState(snap::Reader& r);

  private:
    std::uint32_t planeRow(std::uint32_t plane,
                           std::uint64_t feature_value) const;
    float& cell(std::uint32_t vault, std::uint32_t plane,
                std::uint32_t row, std::uint32_t action);
    float cellValue(std::uint32_t vault, std::uint32_t plane,
                    std::uint32_t row, std::uint32_t action) const;

    /**
     * Hash the state's plane rows once per state, caching each row's
     * flat byte offset into @p table_ in @p row_bases_. The rows depend
     * only on (plane, feature value) — never on the action — so every
     * per-action evaluation afterwards is pure table reads.
     */
    void computeRows(const std::uint64_t* state, std::size_t n) const;

    /** Q(S, A) for one action from the rows of the last computeRows()
     *  call: max over vaults of the plane-partial sums, in the same
     *  order as the direct evaluation (bit-identical results). */
    double qFromRows(std::uint32_t action) const;

    /**
     * The data-oriented kernel: score ALL actions of the last
     * computeRows() state in one linear pass. Per vault, each plane row
     * (contiguous floats) is accumulated element-wise into one double
     * accumulator per action — independent chains, so the compiler may
     * vectorize across actions without changing any addition order —
     * then folded into @p qa_ with an element-wise max over vaults.
     * Bit-identical to calling qFromRows() per action.
     */
    void scanActions() const;

    QVStoreConfig cfg_;
    std::uint32_t rows_per_plane_;
    /** [vault][plane][row * actions + action] flattened; each (vault,
     *  plane, row) is one contiguous num_actions-float run. */
    std::vector<float> table_;
    std::uint64_t updates_ = 0;
    /** computeRows() scratch: [vault * num_planes + plane] -> flat
     *  offset of the row's first action in table_. Mutable because Q
     *  evaluation is logically const; a QVStore is owned by one
     *  single-threaded simulation (DESIGN.md §6). */
    mutable std::vector<std::size_t> row_bases_;
    /** scanActions() output: Q of the last state per action. */
    mutable std::vector<double> qa_;
    /** scanActions() per-vault accumulators (one per action). */
    mutable std::vector<double> vault_acc_;
    /** topActionsInto() selection scratch (taken-action marks). */
    mutable std::vector<std::uint8_t> taken_;
    /** Whether qa_ reflects the state of the last computeRows(). */
    mutable bool scan_valid_ = false;
};

} // namespace pythia::rl
