#include "core/configs.hpp"

#include <utility>

#include "sim/prefetcher_registry.hpp"

namespace pythia::rl {

namespace {

/** The spec-string tunables of every Pythia variant: the Table 2
 *  hyperparameters plus the seven reward levels of §3.1 — the paper's
 *  "configuration registers", settable per run without recompiling. */
const std::vector<std::string> kPythiaParamKeys = {
    "alpha",     "gamma",     "epsilon",  "degree",    "eq_size",
    "planes",    "plane_index_bits",      "seed",      "r_at",
    "r_al",      "r_cl",      "r_in_high", "r_in_low", "r_np_high",
    "r_np_low"};

PythiaConfig
applyParams(PythiaConfig cfg, const sim::PrefetcherParams& p)
{
    cfg.alpha = p.getDouble("alpha", cfg.alpha);
    cfg.gamma = p.getDouble("gamma", cfg.gamma);
    cfg.epsilon = p.getDouble("epsilon", cfg.epsilon);
    cfg.degree = p.getU32("degree", cfg.degree);
    cfg.eq_size = p.getU64("eq_size", cfg.eq_size);
    cfg.planes = p.getU32("planes", cfg.planes);
    cfg.plane_index_bits =
        p.getU32("plane_index_bits", cfg.plane_index_bits);
    cfg.seed = p.getU64("seed", cfg.seed);
    cfg.rewards.r_at = p.getDouble("r_at", cfg.rewards.r_at);
    cfg.rewards.r_al = p.getDouble("r_al", cfg.rewards.r_al);
    cfg.rewards.r_cl = p.getDouble("r_cl", cfg.rewards.r_cl);
    cfg.rewards.r_in_high =
        p.getDouble("r_in_high", cfg.rewards.r_in_high);
    cfg.rewards.r_in_low = p.getDouble("r_in_low", cfg.rewards.r_in_low);
    cfg.rewards.r_np_high =
        p.getDouble("r_np_high", cfg.rewards.r_np_high);
    cfg.rewards.r_np_low = p.getDouble("r_np_low", cfg.rewards.r_np_low);
    return cfg;
}

sim::PrefetcherEntry
pythiaEntry(std::string name, std::string description,
            PythiaConfig (*base)())
{
    return {std::move(name), std::move(description), kPythiaParamKeys,
            [base](const sim::PrefetcherParams& p) {
                // Parameters override the scaled defaults, so e.g.
                // "pythia:alpha=0.0065" pins the paper's raw value.
                return std::make_unique<PythiaPrefetcher>(
                    applyParams(scaledForSimLength(base()), p));
            }};
}

struct PythiaRegistrar
{
    PythiaRegistrar()
    {
        auto& registry = sim::PrefetcherRegistry::instance();
        registry.add(pythiaEntry(
            "pythia", "Pythia RL prefetcher, basic config (Table 2)",
            &basicPythiaConfig));
        registry.add(pythiaEntry(
            "pythia_strict",
            "Pythia with the strict graph-suite rewards (paper §6.6.1)",
            &strictPythiaConfig));
        registry.add(pythiaEntry(
            "pythia_bwobl",
            "bandwidth-oblivious Pythia ablation (paper §6.3.3)",
            &bandwidthObliviousConfig));
    }
};

[[maybe_unused]] const PythiaRegistrar pythia_registrar;

} // namespace

PythiaConfig
basicPythiaConfig()
{
    return PythiaConfig{};
}

PythiaConfig
strictPythiaConfig()
{
    PythiaConfig cfg;
    cfg.name = "pythia_strict";
    cfg.rewards.r_in_high = -22.0;
    cfg.rewards.r_in_low = -20.0;
    cfg.rewards.r_np_high = 0.0;
    cfg.rewards.r_np_low = 0.0;
    return cfg;
}

PythiaConfig
bandwidthObliviousConfig()
{
    PythiaConfig cfg;
    cfg.name = "pythia_bwobl";
    cfg.rewards.r_in_high = -8.0;
    cfg.rewards.r_in_low = -8.0;
    cfg.rewards.r_np_high = -4.0;
    cfg.rewards.r_np_low = -4.0;
    return cfg;
}

PythiaConfig
scaledForSimLength(PythiaConfig cfg)
{
    cfg.alpha = 0.20;
    cfg.epsilon = 0.05;
    cfg.degree = 3;
    return cfg;
}

PythiaConfig
withFeatures(PythiaConfig base, std::vector<FeatureSpec> features)
{
    base.features = std::move(features);
    base.name = "pythia[";
    for (std::size_t i = 0; i < base.features.size(); ++i) {
        if (i)
            base.name += ",";
        base.name += featureName(base.features[i]);
    }
    base.name += "]";
    return base;
}

} // namespace pythia::rl
