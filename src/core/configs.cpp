#include "core/configs.hpp"

#include <utility>

namespace pythia::rl {

PythiaConfig
basicPythiaConfig()
{
    return PythiaConfig{};
}

PythiaConfig
strictPythiaConfig()
{
    PythiaConfig cfg;
    cfg.name = "pythia_strict";
    cfg.rewards.r_in_high = -22.0;
    cfg.rewards.r_in_low = -20.0;
    cfg.rewards.r_np_high = 0.0;
    cfg.rewards.r_np_low = 0.0;
    return cfg;
}

PythiaConfig
bandwidthObliviousConfig()
{
    PythiaConfig cfg;
    cfg.name = "pythia_bwobl";
    cfg.rewards.r_in_high = -8.0;
    cfg.rewards.r_in_low = -8.0;
    cfg.rewards.r_np_high = -4.0;
    cfg.rewards.r_np_low = -4.0;
    return cfg;
}

PythiaConfig
scaledForSimLength(PythiaConfig cfg)
{
    cfg.alpha = 0.20;
    cfg.epsilon = 0.05;
    cfg.degree = 3;
    return cfg;
}

PythiaConfig
withFeatures(PythiaConfig base, std::vector<FeatureSpec> features)
{
    base.features = std::move(features);
    base.name = "pythia[";
    for (std::size_t i = 0; i < base.features.size(); ++i) {
        if (i)
            base.name += ",";
        base.name += featureName(base.features[i]);
    }
    base.name += "]";
    return base;
}

} // namespace pythia::rl
