/**
 * @file
 * Analytical storage / area / power model for Pythia (paper Table 4 and
 * Table 8). Storage is exact accounting of the hardware structures; area
 * and power are scaled from the paper's published synthesis results
 * (0.33 mm^2 and 55.11 mW per core at the 25.5KB basic configuration,
 * GlobalFoundries 14nm) — see DESIGN.md §4 on this substitution.
 */
#pragma once

#include <cstdint>

#include "core/agent.hpp"

namespace pythia::rl {

/** Storage breakdown of a Pythia configuration, in bytes and bits. */
struct StorageBreakdown
{
    std::uint64_t qvstore_bytes = 0;
    std::uint64_t eq_bytes = 0;
    std::uint64_t total_bytes = 0;

    std::uint32_t eq_entry_bits = 0;   ///< per-entry bit cost
    std::uint32_t qv_entry_bits = 16;  ///< Q-value width (16b fixed point)
};

/** Modelled area/power estimates for one core's Pythia instance. */
struct OverheadEstimate
{
    double area_mm2 = 0.0;
    double power_mw = 0.0;
    /** Overhead relative to a processor with @c die_area_mm2 / tdp_w. */
    double area_overhead(double die_area_mm2) const;
    double power_overhead(double tdp_w) const;
};

/** Exact storage accounting of @p cfg (Table 4 reproduces at defaults). */
StorageBreakdown computeStorage(const PythiaConfig& cfg);

/** Area/power scaled linearly in storage from the paper's synthesis
 *  anchor point (Table 8). */
OverheadEstimate estimateOverhead(const StorageBreakdown& storage);

/** Reference die parameters of the processors in Table 8. */
struct ReferenceProcessor
{
    const char* name;
    std::uint32_t cores;
    double die_area_mm2;
    double tdp_w;
};

/** The three Skylake reference points of Table 8. */
const ReferenceProcessor* referenceProcessors(std::size_t* count);

} // namespace pythia::rl
