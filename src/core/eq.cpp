#include "core/eq.hpp"

#include <cassert>
#include <utility>

namespace pythia::rl {

EvaluationQueue::EvaluationQueue(std::size_t capacity) : capacity_(capacity)
{
    assert(capacity_ > 0);
}

std::optional<EqEntry>
EvaluationQueue::insert(EqEntry entry)
{
    std::optional<EqEntry> evicted;
    if (entries_.size() >= capacity_) {
        evicted = std::move(entries_.front());
        entries_.pop_front();
    }
    entries_.push_back(std::move(entry));
    return evicted;
}

EqEntry*
EvaluationQueue::search(Addr block)
{
    // Most recent first: a fresh prefetch should absorb the demand match.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (it->has_prefetch && it->prefetch_block == block &&
            !it->has_reward)
            return &*it;
    }
    return nullptr;
}

std::vector<EqEntry*>
EvaluationQueue::searchAll(Addr block)
{
    std::vector<EqEntry*> matches;
    for (auto& e : entries_) {
        if (e.has_prefetch && e.prefetch_block == block && !e.has_reward)
            matches.push_back(&e);
    }
    return matches;
}

bool
EvaluationQueue::markFill(Addr block, Cycle at)
{
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (it->has_prefetch && it->prefetch_block == block &&
            !it->fill_known) {
            it->fill_time = at;
            it->fill_known = true;
            return true;
        }
    }
    return false;
}

const EqEntry&
EvaluationQueue::head() const
{
    assert(!entries_.empty());
    return entries_.front();
}

} // namespace pythia::rl
