#include "core/eq.hpp"

#include <algorithm>
#include <utility>

#include "common/hashing.hpp"
#include "snapshot/codec.hpp"

namespace pythia::rl {

namespace {

std::size_t
nextPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

EvaluationQueue::EvaluationQueue(std::size_t capacity) : capacity_(capacity)
{
    assert(capacity_ > 0);
    const std::size_t backing = nextPow2(capacity_);
    mask_ = backing - 1;
    ring_.resize(backing);
    // Distinct pending blocks never exceed the live entry count, but
    // immortal keys (see PendingCounts) can push past it; start at 2x
    // capacity rounded up and grow on demand.
    const std::size_t pcap = nextPow2(std::max<std::size_t>(16, 2 * backing));
    pending_.assign(pcap, PendingSlot{});
    pending_mask_ = pcap - 1;
}

std::size_t
EvaluationQueue::pendingHome(Addr key) const
{
    return static_cast<std::size_t>(mix64(key)) & pending_mask_;
}

std::size_t
EvaluationQueue::pendingFind(Addr key) const
{
    std::size_t i = pendingHome(key);
    while (pending_[i].used) {
        if (pending_[i].key == key)
            return i;
        i = (i + 1) & pending_mask_;
    }
    return kNpos;
}

EvaluationQueue::PendingCounts&
EvaluationQueue::pendingRef(Addr key)
{
    std::size_t i = pendingHome(key);
    while (pending_[i].used) {
        if (pending_[i].key == key)
            return pending_[i].pc;
        i = (i + 1) & pending_mask_;
    }
    if ((pending_size_ + 1) * 4 > pending_.size() * 3) {
        pendingGrow();
        i = pendingHome(key);
        while (pending_[i].used)
            i = (i + 1) & pending_mask_;
    }
    pending_[i].used = true;
    pending_[i].key = key;
    pending_[i].pc = PendingCounts{};
    ++pending_size_;
    return pending_[i].pc;
}

void
EvaluationQueue::pendingGrow()
{
    std::vector<PendingSlot> old = std::move(pending_);
    pending_.assign(old.size() * 2, PendingSlot{});
    pending_mask_ = pending_.size() - 1;
    for (const PendingSlot& s : old) {
        if (!s.used)
            continue;
        std::size_t i = pendingHome(s.key);
        while (pending_[i].used)
            i = (i + 1) & pending_mask_;
        pending_[i] = s;
    }
}

void
EvaluationQueue::pendingErase(std::size_t i)
{
    // Backward-shift deletion: pull every displaced follower of the
    // probe chain one slot back so linear probing never crosses a hole.
    pending_[i].used = false;
    --pending_size_;
    std::size_t j = i;
    while (true) {
        j = (j + 1) & pending_mask_;
        if (!pending_[j].used)
            return;
        const std::size_t home = pendingHome(pending_[j].key);
        // Move j back to i iff j's probe distance from its home spans
        // the vacated slot; otherwise j is already at/past its home.
        if (((j - home) & pending_mask_) >= ((j - i) & pending_mask_)) {
            pending_[i] = pending_[j];
            pending_[j].used = false;
            i = j;
        }
    }
}

std::optional<EqEntry>
EvaluationQueue::insert(EqEntry entry)
{
    std::optional<EqEntry> evicted;
    if (count_ >= capacity_) {
        evicted = std::move(ring_[head_]);
        head_ = (head_ + 1) & mask_;
        --count_;
        if (evicted->has_prefetch) {
            const std::size_t pi = pendingFind(evicted->prefetch_block);
            if (pi != kNpos) {
                // Decrement only for transitions this entry still
                // carries; an externally rewarded entry was never
                // decremented, and stays accounted (see PendingCounts).
                PendingCounts& pc = pending_[pi].pc;
                if (!evicted->has_reward && pc.unrewarded > 0)
                    --pc.unrewarded;
                if (!evicted->fill_known && pc.fill_unknown > 0)
                    --pc.fill_unknown;
                if (pc.unrewarded == 0 && pc.fill_unknown == 0)
                    pendingErase(pi);
            }
        }
    }
    if (entry.has_prefetch) {
        PendingCounts& pc = pendingRef(entry.prefetch_block);
        if (!entry.has_reward)
            ++pc.unrewarded;
        if (!entry.fill_known)
            ++pc.fill_unknown;
    }
    ring_[(head_ + count_) & mask_] = std::move(entry);
    ++count_;
    return evicted;
}

EqEntry*
EvaluationQueue::search(Addr block)
{
    const std::size_t pi = pendingFind(block);
    if (pi == kNpos || pending_[pi].pc.unrewarded == 0)
        return nullptr;
    // Most recent first: a fresh prefetch should absorb the demand match.
    for (std::size_t i = count_; i-- > 0;) {
        EqEntry& e = ring_[(head_ + i) & mask_];
        if (e.has_prefetch && e.prefetch_block == block && !e.has_reward)
            return &e;
    }
    return nullptr;
}

std::vector<EqEntry*>
EvaluationQueue::searchAll(Addr block)
{
    std::vector<EqEntry*> matches;
    const std::size_t pi = pendingFind(block);
    if (pi == kNpos || pending_[pi].pc.unrewarded == 0)
        return matches;
    for (std::size_t i = 0; i < count_; ++i) {
        EqEntry& e = ring_[(head_ + i) & mask_];
        if (e.has_prefetch && e.prefetch_block == block && !e.has_reward)
            matches.push_back(&e);
    }
    return matches;
}

bool
EvaluationQueue::markFill(Addr block, Cycle at)
{
    const std::size_t pi = pendingFind(block);
    if (pi == kNpos || pending_[pi].pc.fill_unknown == 0)
        return false;
    for (std::size_t i = count_; i-- > 0;) {
        EqEntry& e = ring_[(head_ + i) & mask_];
        if (e.has_prefetch && e.prefetch_block == block &&
            !e.fill_known) {
            e.fill_time = at;
            e.fill_known = true;
            PendingCounts& pc = pending_[pi].pc;
            if (pc.fill_unknown > 0)
                --pc.fill_unknown;
            if (pc.unrewarded == 0 && pc.fill_unknown == 0)
                pendingErase(pi);
            return true;
        }
    }
    return false;
}

const EqEntry&
EvaluationQueue::head() const
{
    assert(count_ > 0);
    return ring_[head_];
}

void
EvaluationQueue::clear()
{
    head_ = 0;
    count_ = 0;
    std::fill(pending_.begin(), pending_.end(), PendingSlot{});
    pending_size_ = 0;
}

void
EvaluationQueue::saveState(snap::Writer& w) const
{
    w.u64(capacity_);
    w.u64(count_);
    for (std::size_t i = 0; i < count_; ++i) {
        const EqEntry& e = ring_[(head_ + i) & mask_];
        // Same bytes as Writer::vecU64 of the old heap state vector.
        w.u64(e.state.size());
        for (const std::uint64_t fv : e.state)
            w.u64(fv);
        w.u32(e.action);
        w.u64(e.prefetch_block);
        w.boolean(e.has_prefetch);
        w.u64(e.fill_time);
        w.boolean(e.fill_known);
        w.boolean(e.has_reward);
        w.f64(e.reward);
    }
    // The pending index iterates in table order; sort by address so
    // identical logical state always produces identical bytes.
    std::vector<std::pair<Addr, PendingCounts>> pending;
    pending.reserve(pending_size_);
    for (const PendingSlot& s : pending_) {
        if (s.used)
            pending.emplace_back(s.key, s.pc);
    }
    std::sort(pending.begin(), pending.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(pending.size());
    for (const auto& [addr, pc] : pending) {
        w.u64(addr);
        w.u32(pc.unrewarded);
        w.u32(pc.fill_unknown);
    }
}

void
EvaluationQueue::loadState(snap::Reader& r)
{
    const std::uint64_t capacity = r.u64();
    if (capacity != capacity_)
        throw snap::CorruptError(
            "snapshot corrupt: eq capacity " + std::to_string(capacity) +
            " does not match this configuration (" +
            std::to_string(capacity_) + ")");
    const std::uint64_t n = r.u64();
    if (n > capacity_)
        throw snap::CorruptError(
            "snapshot corrupt: eq holds " + std::to_string(n) +
            " entries, above its capacity " + std::to_string(capacity_));
    head_ = 0;
    count_ = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        EqEntry e;
        const std::vector<std::uint64_t> state = r.vecU64();
        if (state.size() > kEqStateSlots)
            throw snap::CorruptError(
                "snapshot corrupt: eq entry state has " +
                std::to_string(state.size()) +
                " features, above the inline capacity " +
                std::to_string(kEqStateSlots));
        e.state = state;
        e.action = r.u32();
        e.prefetch_block = r.u64();
        e.has_prefetch = r.boolean();
        e.fill_time = r.u64();
        e.fill_known = r.boolean();
        e.has_reward = r.boolean();
        e.reward = r.f64();
        ring_[count_++] = std::move(e);
    }
    std::fill(pending_.begin(), pending_.end(), PendingSlot{});
    pending_size_ = 0;
    const std::uint64_t n_pending = r.u64();
    for (std::uint64_t i = 0; i < n_pending; ++i) {
        const Addr addr = r.u64();
        PendingCounts pc;
        pc.unrewarded = r.u32();
        pc.fill_unknown = r.u32();
        pendingRef(addr) = pc;
    }
}

} // namespace pythia::rl
