#include "core/eq.hpp"

#include <cassert>
#include <utility>

namespace pythia::rl {

EvaluationQueue::EvaluationQueue(std::size_t capacity) : capacity_(capacity)
{
    assert(capacity_ > 0);
}

std::optional<EqEntry>
EvaluationQueue::insert(EqEntry entry)
{
    std::optional<EqEntry> evicted;
    if (entries_.size() >= capacity_) {
        evicted = std::move(entries_.front());
        entries_.pop_front();
        if (evicted->has_prefetch) {
            const auto it = pending_.find(evicted->prefetch_block);
            if (it != pending_.end()) {
                // Decrement only for transitions this entry still
                // carries; an externally rewarded entry was never
                // decremented, and stays accounted (see PendingCounts).
                if (!evicted->has_reward && it->second.unrewarded > 0)
                    --it->second.unrewarded;
                if (!evicted->fill_known && it->second.fill_unknown > 0)
                    --it->second.fill_unknown;
                if (it->second.unrewarded == 0 &&
                    it->second.fill_unknown == 0)
                    pending_.erase(it);
            }
        }
    }
    if (entry.has_prefetch) {
        PendingCounts& pc = pending_[entry.prefetch_block];
        if (!entry.has_reward)
            ++pc.unrewarded;
        if (!entry.fill_known)
            ++pc.fill_unknown;
    }
    entries_.push_back(std::move(entry));
    return evicted;
}

EqEntry*
EvaluationQueue::search(Addr block)
{
    const auto it = pending_.find(block);
    if (it == pending_.end() || it->second.unrewarded == 0)
        return nullptr;
    // Most recent first: a fresh prefetch should absorb the demand match.
    for (auto rit = entries_.rbegin(); rit != entries_.rend(); ++rit) {
        if (rit->has_prefetch && rit->prefetch_block == block &&
            !rit->has_reward)
            return &*rit;
    }
    return nullptr;
}

std::vector<EqEntry*>
EvaluationQueue::searchAll(Addr block)
{
    std::vector<EqEntry*> matches;
    const auto it = pending_.find(block);
    if (it == pending_.end() || it->second.unrewarded == 0)
        return matches;
    for (auto& e : entries_) {
        if (e.has_prefetch && e.prefetch_block == block && !e.has_reward)
            matches.push_back(&e);
    }
    return matches;
}

bool
EvaluationQueue::markFill(Addr block, Cycle at)
{
    const auto it = pending_.find(block);
    if (it == pending_.end() || it->second.fill_unknown == 0)
        return false;
    for (auto rit = entries_.rbegin(); rit != entries_.rend(); ++rit) {
        if (rit->has_prefetch && rit->prefetch_block == block &&
            !rit->fill_known) {
            rit->fill_time = at;
            rit->fill_known = true;
            if (it->second.fill_unknown > 0)
                --it->second.fill_unknown;
            if (it->second.unrewarded == 0 &&
                it->second.fill_unknown == 0)
                pending_.erase(it);
            return true;
        }
    }
    return false;
}

const EqEntry&
EvaluationQueue::head() const
{
    assert(!entries_.empty());
    return entries_.front();
}

} // namespace pythia::rl
