#include "core/eq.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "snapshot/codec.hpp"

namespace pythia::rl {

EvaluationQueue::EvaluationQueue(std::size_t capacity) : capacity_(capacity)
{
    assert(capacity_ > 0);
}

std::optional<EqEntry>
EvaluationQueue::insert(EqEntry entry)
{
    std::optional<EqEntry> evicted;
    if (entries_.size() >= capacity_) {
        evicted = std::move(entries_.front());
        entries_.pop_front();
        if (evicted->has_prefetch) {
            const auto it = pending_.find(evicted->prefetch_block);
            if (it != pending_.end()) {
                // Decrement only for transitions this entry still
                // carries; an externally rewarded entry was never
                // decremented, and stays accounted (see PendingCounts).
                if (!evicted->has_reward && it->second.unrewarded > 0)
                    --it->second.unrewarded;
                if (!evicted->fill_known && it->second.fill_unknown > 0)
                    --it->second.fill_unknown;
                if (it->second.unrewarded == 0 &&
                    it->second.fill_unknown == 0)
                    pending_.erase(it);
            }
        }
    }
    if (entry.has_prefetch) {
        PendingCounts& pc = pending_[entry.prefetch_block];
        if (!entry.has_reward)
            ++pc.unrewarded;
        if (!entry.fill_known)
            ++pc.fill_unknown;
    }
    entries_.push_back(std::move(entry));
    return evicted;
}

EqEntry*
EvaluationQueue::search(Addr block)
{
    const auto it = pending_.find(block);
    if (it == pending_.end() || it->second.unrewarded == 0)
        return nullptr;
    // Most recent first: a fresh prefetch should absorb the demand match.
    for (auto rit = entries_.rbegin(); rit != entries_.rend(); ++rit) {
        if (rit->has_prefetch && rit->prefetch_block == block &&
            !rit->has_reward)
            return &*rit;
    }
    return nullptr;
}

std::vector<EqEntry*>
EvaluationQueue::searchAll(Addr block)
{
    std::vector<EqEntry*> matches;
    const auto it = pending_.find(block);
    if (it == pending_.end() || it->second.unrewarded == 0)
        return matches;
    for (auto& e : entries_) {
        if (e.has_prefetch && e.prefetch_block == block && !e.has_reward)
            matches.push_back(&e);
    }
    return matches;
}

bool
EvaluationQueue::markFill(Addr block, Cycle at)
{
    const auto it = pending_.find(block);
    if (it == pending_.end() || it->second.fill_unknown == 0)
        return false;
    for (auto rit = entries_.rbegin(); rit != entries_.rend(); ++rit) {
        if (rit->has_prefetch && rit->prefetch_block == block &&
            !rit->fill_known) {
            rit->fill_time = at;
            rit->fill_known = true;
            if (it->second.fill_unknown > 0)
                --it->second.fill_unknown;
            if (it->second.unrewarded == 0 &&
                it->second.fill_unknown == 0)
                pending_.erase(it);
            return true;
        }
    }
    return false;
}

const EqEntry&
EvaluationQueue::head() const
{
    assert(!entries_.empty());
    return entries_.front();
}

void
EvaluationQueue::saveState(snap::Writer& w) const
{
    w.u64(capacity_);
    w.u64(entries_.size());
    for (const EqEntry& e : entries_) {
        w.vecU64(e.state);
        w.u32(e.action);
        w.u64(e.prefetch_block);
        w.boolean(e.has_prefetch);
        w.u64(e.fill_time);
        w.boolean(e.fill_known);
        w.boolean(e.has_reward);
        w.f64(e.reward);
    }
    // The pending index iterates in unordered_map order; sort by address
    // so identical logical state always produces identical bytes.
    std::vector<std::pair<Addr, PendingCounts>> pending(pending_.begin(),
                                                        pending_.end());
    std::sort(pending.begin(), pending.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(pending.size());
    for (const auto& [addr, pc] : pending) {
        w.u64(addr);
        w.u32(pc.unrewarded);
        w.u32(pc.fill_unknown);
    }
}

void
EvaluationQueue::loadState(snap::Reader& r)
{
    const std::uint64_t capacity = r.u64();
    if (capacity != capacity_)
        throw snap::CorruptError(
            "snapshot corrupt: eq capacity " + std::to_string(capacity) +
            " does not match this configuration (" +
            std::to_string(capacity_) + ")");
    const std::uint64_t n = r.u64();
    if (n > capacity_)
        throw snap::CorruptError(
            "snapshot corrupt: eq holds " + std::to_string(n) +
            " entries, above its capacity " + std::to_string(capacity_));
    entries_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        EqEntry e;
        e.state = r.vecU64();
        e.action = r.u32();
        e.prefetch_block = r.u64();
        e.has_prefetch = r.boolean();
        e.fill_time = r.u64();
        e.fill_known = r.boolean();
        e.has_reward = r.boolean();
        e.reward = r.f64();
        entries_.push_back(std::move(e));
    }
    pending_.clear();
    const std::uint64_t n_pending = r.u64();
    for (std::uint64_t i = 0; i < n_pending; ++i) {
        const Addr addr = r.u64();
        PendingCounts pc;
        pc.unrewarded = r.u32();
        pc.fill_unknown = r.u32();
        pending_.emplace(addr, pc);
    }
}

} // namespace pythia::rl
