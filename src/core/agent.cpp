#include "core/agent.hpp"

#include <cassert>

namespace pythia::rl {

namespace {

QVStoreConfig
qvConfigOf(const PythiaConfig& cfg)
{
    QVStoreConfig qc;
    qc.num_features = static_cast<std::uint32_t>(cfg.features.size());
    qc.num_planes = cfg.planes;
    qc.plane_index_bits = cfg.plane_index_bits;
    qc.num_actions = static_cast<std::uint32_t>(cfg.actions.size());
    qc.alpha = cfg.alpha;
    qc.gamma = cfg.gamma;
    // Optimistic initialization at the highest achievable return.
    qc.q_init = cfg.rewards.r_at / (1.0 - cfg.gamma);
    return qc;
}

} // namespace

PythiaPrefetcher::PythiaPrefetcher(const PythiaConfig& cfg)
    : PrefetcherBase(cfg.name, 26112 /* 25.5KB, Table 4 */), cfg_(cfg),
      qv_(qvConfigOf(cfg)), eq_(cfg.eq_size), rng_(cfg.seed),
      stats_("pythia")
{
    assert(!cfg_.features.empty());
    assert(!cfg_.actions.empty());
}

std::size_t
PythiaPrefetcher::actionIndexOf(std::int32_t offset) const
{
    for (std::size_t i = 0; i < cfg_.actions.size(); ++i)
        if (cfg_.actions[i] == offset)
            return i;
    return static_cast<std::size_t>(-1);
}

double
PythiaPrefetcher::inaccurateReward() const
{
    return highBandwidth() ? cfg_.rewards.r_in_high : cfg_.rewards.r_in_low;
}

double
PythiaPrefetcher::noPrefetchReward() const
{
    return highBandwidth() ? cfg_.rewards.r_np_high : cfg_.rewards.r_np_low;
}

void
PythiaPrefetcher::retireEntry(EqEntry&& entry)
{
    if (!entry.has_reward) {
        // Never demanded during EQ residency: inaccurate (Alg. 1 line 25).
        entry.reward = inaccurateReward();
        entry.has_reward = true;
        stats_.inc("reward_inaccurate");
        stats_.inc("off_in_" + std::to_string(cfg_.actions[entry.action]));
    }
    if (eq_.empty())
        return;
    const EqEntry& next = eq_.head();
    qv_.update(entry.state, entry.action, entry.reward, next.state,
               next.action);
    stats_.inc("sarsa_updates");
}

void
PythiaPrefetcher::train(const sim::PrefetchAccess& access,
                        std::vector<sim::PrefetchRequest>& out)
{
    // (1) Reward every matching in-flight action: R_AT when the demand
    // came after the prefetch fill, R_AL otherwise (Alg. 1 lines 6-11).
    for (EqEntry* hit : eq_.searchAll(access.block)) {
        const bool filled = hit->fill_known &&
                            hit->fill_time <= access.cycle;
        hit->reward = filled ? cfg_.rewards.r_at : cfg_.rewards.r_al;
        hit->has_reward = true;
        stats_.inc(filled ? "reward_accurate_timely"
                          : "reward_accurate_late");
        stats_.inc((filled ? "off_at_" : "off_al_") +
                   std::to_string(cfg_.actions[hit->action]));
    }

    // (2) Extract the state vector (Alg. 1 line 12).
    extractor_.observe(access.pc, access.block);
    std::vector<std::uint64_t> state =
        extractor_.extractAll(cfg_.features);

    // (3) Epsilon-greedy action selection (Alg. 1 lines 13-16). With the
    // multi-action degree extension, the top-k actions are taken; an
    // exploration draw replaces the primary action with a random one.
    std::vector<std::uint32_t> actions =
        qv_.topActions(state, cfg_.degree);
    // Secondary actions only issue while their Q-value beats the
    // no-prefetch action's Q: the agent's own estimate says they are
    // net-beneficial. This keeps the extension conservative on patterns
    // where the agent has learned to stay quiet.
    if (actions.size() > 1) {
        const std::size_t np = actionIndexOf(0);
        // Secondary actions must also clear the accurate-but-late return
        // floor: a learned-useful action sits near R_AL/(1-gamma), while
        // aliased or decayed rows drift below it.
        double floor = cfg_.rewards.r_al;
        if (np != static_cast<std::size_t>(-1))
            floor = std::max(
                floor, qv_.q(state, static_cast<std::uint32_t>(np)));
        std::size_t keep = 1;
        while (keep < actions.size() &&
               qv_.q(state, actions[keep]) > floor)
            ++keep;
        actions.resize(keep);
    }
    if (rng_.nextBool(cfg_.epsilon)) {
        actions[0] = static_cast<std::uint32_t>(
            rng_.nextBounded(cfg_.actions.size()));
        stats_.inc("explored_actions");
    }

    // (4) Generate the prefetches and EQ entries (Alg. 1 lines 17-22).
    for (std::uint32_t action : actions) {
        stats_.inc("actions_taken");
        stats_.inc("sel_offset_" +
                   std::to_string(cfg_.actions[action]));
        const std::int32_t offset = cfg_.actions[action];
        EqEntry entry;
        entry.state = state;
        entry.action = action;

        if (offset == 0) {
            entry.reward = noPrefetchReward();
            entry.has_reward = true;
            stats_.inc("action_no_prefetch");
        } else if (!sameePageAfterOffset(access.block, offset)) {
            entry.reward = cfg_.rewards.r_cl;
            entry.has_reward = true;
            stats_.inc("action_out_of_page");
        } else {
            entry.prefetch_block = static_cast<Addr>(
                static_cast<std::int64_t>(access.block) + offset);
            entry.has_prefetch = true;
            sim::PrefetchRequest pr;
            pr.block = entry.prefetch_block;
            pr.fill_level = 2;
            out.push_back(pr);
            stats_.inc("action_prefetch");
        }

        // (5) Insert; retire the evicted entry via SARSA (lines 23-29).
        if (auto evicted = eq_.insert(std::move(entry)))
            retireEntry(std::move(*evicted));
    }
}

void
PythiaPrefetcher::onFill(Addr block, Cycle at)
{
    eq_.markFill(block, at);
}

} // namespace pythia::rl
