#include "core/agent.hpp"

#include <cassert>

#include "snapshot/codec.hpp"

namespace pythia::rl {

namespace {

QVStoreConfig
qvConfigOf(const PythiaConfig& cfg)
{
    QVStoreConfig qc;
    qc.num_features = static_cast<std::uint32_t>(cfg.features.size());
    qc.num_planes = cfg.planes;
    qc.plane_index_bits = cfg.plane_index_bits;
    qc.num_actions = static_cast<std::uint32_t>(cfg.actions.size());
    qc.alpha = cfg.alpha;
    qc.gamma = cfg.gamma;
    // Optimistic initialization at the highest achievable return.
    qc.q_init = cfg.rewards.r_at / (1.0 - cfg.gamma);
    return qc;
}

} // namespace

PythiaPrefetcher::PythiaPrefetcher(const PythiaConfig& cfg)
    : PrefetcherBase(cfg.name, 26112 /* 25.5KB, Table 4 */), cfg_(cfg),
      qv_(qvConfigOf(cfg)), eq_(cfg.eq_size), rng_(cfg.seed),
      stats_("pythia")
{
    assert(!cfg_.features.empty());
    assert(!cfg_.actions.empty());

    action_slots_.reserve(cfg_.actions.size());
    for (const std::int32_t offset : cfg_.actions) {
        const std::string o = std::to_string(offset);
        action_slots_.push_back(
            {stats_.counterSlot("sel_offset_" + o),
             stats_.counterSlot("off_at_" + o),
             stats_.counterSlot("off_al_" + o),
             stats_.counterSlot("off_in_" + o)});
    }
    c_reward_inaccurate_ = stats_.counterSlot("reward_inaccurate");
    c_reward_accurate_timely_ =
        stats_.counterSlot("reward_accurate_timely");
    c_reward_accurate_late_ = stats_.counterSlot("reward_accurate_late");
    c_sarsa_updates_ = stats_.counterSlot("sarsa_updates");
    c_explored_actions_ = stats_.counterSlot("explored_actions");
    c_actions_taken_ = stats_.counterSlot("actions_taken");
    c_action_no_prefetch_ = stats_.counterSlot("action_no_prefetch");
    c_action_out_of_page_ = stats_.counterSlot("action_out_of_page");
    c_action_prefetch_ = stats_.counterSlot("action_prefetch");

    state_scratch_.reserve(cfg_.features.size());
    actions_scratch_.reserve(cfg_.degree);
}

std::size_t
PythiaPrefetcher::actionIndexOf(std::int32_t offset) const
{
    for (std::size_t i = 0; i < cfg_.actions.size(); ++i)
        if (cfg_.actions[i] == offset)
            return i;
    return static_cast<std::size_t>(-1);
}

double
PythiaPrefetcher::inaccurateReward() const
{
    return highBandwidth() ? cfg_.rewards.r_in_high : cfg_.rewards.r_in_low;
}

double
PythiaPrefetcher::noPrefetchReward() const
{
    return highBandwidth() ? cfg_.rewards.r_np_high : cfg_.rewards.r_np_low;
}

void
PythiaPrefetcher::retireEntry(EqEntry&& entry)
{
    if (!entry.has_reward) {
        // Never demanded during EQ residency: inaccurate (Alg. 1 line 25).
        entry.reward = inaccurateReward();
        entry.has_reward = true;
        ++*c_reward_inaccurate_;
        ++*action_slots_[entry.action].inaccurate;
    }
    if (eq_.empty())
        return;
    const EqEntry& next = eq_.head();
    // Both entries cached their plane rows at insertion; a snapshot
    // restore clears the cache (qrows_n = 0) and re-hashes here.
    qv_.updateCached(entry.state.data(), entry.state.size(),
                     entry.qrows_n ? entry.qrows : nullptr, entry.action,
                     entry.reward, next.state.data(), next.state.size(),
                     next.qrows_n ? next.qrows : nullptr, next.action);
    ++*c_sarsa_updates_;
}

void
PythiaPrefetcher::train(const sim::PrefetchAccess& access,
                        std::vector<sim::PrefetchRequest>& out)
{
    // (1) Reward every matching in-flight action: R_AT when the demand
    // came after the prefetch fill, R_AL otherwise (Alg. 1 lines 6-11).
    // rewardAll marks the entries rewarded and keeps the EQ's
    // pending-block index exact; most demands match nothing and return
    // after one hash probe instead of a 256-entry scan.
    eq_.rewardAll(access.block, [&](EqEntry& hit) {
        const bool filled = hit.fill_known &&
                            hit.fill_time <= access.cycle;
        hit.reward = filled ? cfg_.rewards.r_at : cfg_.rewards.r_al;
        ++*(filled ? c_reward_accurate_timely_
                   : c_reward_accurate_late_);
        ++*(filled ? action_slots_[hit.action].accurate_timely
                   : action_slots_[hit.action].accurate_late);
    });

    // (2) Extract the state vector (Alg. 1 line 12).
    extractor_.observe(access.pc, access.block);
    extractor_.extractAllInto(cfg_.features, state_scratch_);
    std::vector<std::uint64_t>& state = state_scratch_;

    // (3) Epsilon-greedy action selection (Alg. 1 lines 13-16). With the
    // multi-action degree extension, the top-k actions are taken; an
    // exploration draw replaces the primary action with a random one.
    qv_.topActionsInto(state, cfg_.degree, actions_scratch_);
    std::vector<std::uint32_t>& actions = actions_scratch_;
    // topActionsInto just hashed this state's plane rows; export them
    // once so every EQ entry of this demand carries its rows to the
    // retirement-time SARSA update (no re-hash there).
    std::uint32_t qrows[kEqRowSlots];
    const std::uint32_t qrows_n = qv_.lastRowsInto(qrows, kEqRowSlots);
    // Secondary actions only issue while their Q-value beats the
    // no-prefetch action's Q: the agent's own estimate says they are
    // net-beneficial. This keeps the extension conservative on patterns
    // where the agent has learned to stay quiet.
    if (actions.size() > 1) {
        const std::size_t np = actionIndexOf(0);
        // Secondary actions must also clear the accurate-but-late return
        // floor: a learned-useful action sits near R_AL/(1-gamma), while
        // aliased or decayed rows drift below it.
        // topActionsInto just hashed this state's rows; probe the extra
        // actions without re-hashing (identical to qv_.q(state, a)).
        double floor = cfg_.rewards.r_al;
        if (np != static_cast<std::size_t>(-1))
            floor = std::max(
                floor, qv_.qAtLastState(static_cast<std::uint32_t>(np)));
        std::size_t keep = 1;
        while (keep < actions.size() &&
               qv_.qAtLastState(actions[keep]) > floor)
            ++keep;
        actions.resize(keep);
    }
    if (rng_.nextBool(cfg_.epsilon)) {
        actions[0] = static_cast<std::uint32_t>(
            rng_.nextBounded(cfg_.actions.size()));
        ++*c_explored_actions_;
    }

    // (4) Generate the prefetches and EQ entries (Alg. 1 lines 17-22).
    for (std::size_t ai = 0; ai < actions.size(); ++ai) {
        const std::uint32_t action = actions[ai];
        ++*c_actions_taken_;
        ++*action_slots_[action].selected;
        const std::int32_t offset = cfg_.actions[action];
        EqEntry entry;
        // Inline StateVec: every entry takes a flat copy of the state
        // buffer — no heap traffic either way (DESIGN.md §10).
        entry.state = state;
        entry.action = action;
        entry.qrows_n = qrows_n;
        for (std::uint32_t ri = 0; ri < qrows_n; ++ri)
            entry.qrows[ri] = qrows[ri];

        if (offset == 0) {
            entry.reward = noPrefetchReward();
            entry.has_reward = true;
            ++*c_action_no_prefetch_;
        } else if (!sameePageAfterOffset(access.block, offset)) {
            entry.reward = cfg_.rewards.r_cl;
            entry.has_reward = true;
            ++*c_action_out_of_page_;
        } else {
            entry.prefetch_block = static_cast<Addr>(
                static_cast<std::int64_t>(access.block) + offset);
            entry.has_prefetch = true;
            sim::PrefetchRequest pr;
            pr.block = entry.prefetch_block;
            pr.fill_level = 2;
            out.push_back(pr);
            ++*c_action_prefetch_;
        }

        // (5) Insert; retire the evicted entry via SARSA (lines 23-29).
        if (auto evicted = eq_.insert(std::move(entry)))
            retireEntry(std::move(*evicted));
    }
}

void
PythiaPrefetcher::onFill(Addr block, Cycle at)
{
    eq_.markFill(block, at);
}

void
PythiaPrefetcher::saveState(snap::Writer& w) const
{
    qv_.saveState(w);
    eq_.saveState(w);
    extractor_.saveState(w);
    const RngState rs = rng_.state();
    w.u64(rs.s0);
    w.u64(rs.s1);
    stats_.saveState(w);
}

void
PythiaPrefetcher::loadState(snap::Reader& r)
{
    qv_.loadState(r);
    eq_.loadState(r);
    extractor_.loadState(r);
    RngState rs;
    rs.s0 = r.u64();
    rs.s1 = r.u64();
    if (rs.s0 == 0 && rs.s1 == 0)
        throw snap::CorruptError(
            "snapshot corrupt: all-zero exploration RNG state");
    rng_.setState(rs);
    stats_.loadState(r);
}

} // namespace pythia::rl
