/**
 * @file
 * ExperimentSpec — everything that defines one simulation run.
 *
 * Lives in its own header so the streaming session layer
 * (harness/session.hpp) and the batch runner (harness/runner.hpp) can
 * both depend on it without a cycle. Field-by-field documentation,
 * including the zero-means-default conventions, is in the README's
 * "ExperimentSpec reference" table.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/configs.hpp"

namespace pythia::harness {

/**
 * Everything that defines one simulation run. Prefetchers are named by
 * registry spec strings (sim/prefetcher_registry.hpp) — parameterized
 * ("spp:max_lookahead=4", "pythia:gamma=0.5") and composed
 * ("stride+spp+bingo") specs included. Workloads (and mix entries) are
 * workload specs too (workloads/suites.hpp): catalog names
 * ("482.sphinx3-417B") or registry spec strings
 * ("stream:footprint=256M,mem_ratio=0.4", "trace:file=foo.bin",
 * "phase:stream@40+graph@60"). Usually built through the fluent
 * ExperimentBuilder (harness/experiment.hpp).
 */
struct ExperimentSpec
{
    std::string workload;            ///< workload spec (ignored if mix set)
    std::vector<std::string> mix;    ///< heterogeneous multi-core mix
    std::string prefetcher = "none"; ///< L2 prefetcher spec
    std::string l1_prefetcher = "none"; ///< L1 prefetcher spec (multi-level)
    std::uint32_t num_cores = 1;
    std::uint32_t mtps = 2400;
    std::uint64_t llc_bytes_per_core = 2ull << 20;
    std::uint64_t warmup_instrs = 100'000;
    std::uint64_t sim_instrs = 300'000;
    std::uint64_t workload_seed = 0;  ///< 0 = catalog default
    /** Optional explicit Pythia configuration; used when prefetcher is
     *  "pythia_custom". */
    std::optional<rl::PythiaConfig> pythia_cfg;
};

} // namespace pythia::harness
