/**
 * @file
 * SimSession — the streaming run API.
 *
 * The batch entry point harness::simulate(spec) runs a machine to
 * completion and hands back one aggregate RunResult. A SimSession
 * exposes the same run as a stepped process:
 *
 *     harness::SimSession session(spec);      // builds the machine
 *     session.advance(25'000);                // warmup runs implicitly,
 *     session.advance(25'000);                // then measured windows
 *     auto snap = session.snapshot();         // cumulative + last delta
 *     auto final = session.runToCompletion(); // spend the rest of the
 *                                             // sim_instrs budget
 *
 * Lifecycle: open (construct) → warmup (implicit before the first
 * window, or explicit via runWarmup()) → advance() windows until the
 * spec's sim_instrs budget is spent → run end. Typed observers
 * (SessionObserver) receive onWarmupEnd / onWindowEnd / onRunEnd hooks;
 * harness::TimeSeries (harness/timeseries.hpp) is the stock observer
 * that records every WindowSample for CSV/JSON emission.
 *
 * Determinism rule (DESIGN.md §8): a session that spends its whole
 * budget in ONE advance() is bit-identical to the pre-session batch
 * path — simulate() is literally implemented that way, which is what
 * keeps the golden-metrics grid pinned. Single-core execution is
 * window-invariant, so any window split yields the same cumulative
 * result. Multi-core window splits are deterministic but constitute a
 * different (still valid) core interleaving than one big window, and
 * each boundary excludes the cycles a finished core spends waiting for
 * the others — exactly as the batch loop excluded its final tail.
 *
 * Delta-snapshot semantics: every window's delta is a counter-snapshot
 * difference of cumulative RunResults, carrying raw per-core cycle and
 * DRAM-epoch counts. composeDeltas() over any window partition
 * therefore reproduces the cumulative aggregate bit-exactly (the
 * window-algebra property pinned by tests/test_session.cpp). The one
 * field that is not a counter is dram_utilization — an EWMA sampled at
 * window end; a delta carries the value at its own end, so composition
 * takes the last window's reading.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/spec.hpp"
#include "sim/system.hpp"
#include "snapshot/codec.hpp"

namespace pythia::snap {
struct SnapshotFile;
}

namespace pythia::harness {

class SimSession;

/**
 * Canonical "key=value;" configuration fingerprint of @p spec, embedded
 * in every snapshot file and re-checked on restore. Covers every field
 * that shapes machine state — workload/mix (canonicalized through the
 * workload registry), both prefetcher specs (warmup trains them),
 * cores, mtps, LLC size, warmup/sim budgets, seed, and a hash of the
 * explicit PythiaConfig when present — so a snapshot can never be
 * restored into a different experiment silently.
 */
std::string fingerprintFor(const ExperimentSpec& spec);

/** One measured window of a streamed session. */
struct WindowSample
{
    std::size_t index = 0;           ///< 0-based window number
    std::uint64_t instrs_begin = 0;  ///< cumulative measured instrs before
    std::uint64_t instrs_end = 0;    ///< cumulative measured instrs after
    sim::RunResult delta;            ///< this window only
    sim::RunResult cumulative;       ///< since measurement start
};

/**
 * Result codec shared by every wire/journal/snapshot consumer
 * (snapshot files, the pythia-shard-v1 frames, the pythia-serve-v1
 * service protocol): fixed-width little-endian via the snap codec,
 * floats as IEEE-754 bit patterns — a round trip is bit-exact.
 */
void writeRunResult(snap::Writer& w, const sim::RunResult& r);
sim::RunResult readRunResult(snap::Reader& r);
void writeWindowSample(snap::Writer& w, const WindowSample& s);
WindowSample readWindowSample(snap::Reader& r);

/**
 * Observer hooks for a streamed session. Register per-session
 * (SimSession::addObserver) or per-experiment
 * (ExperimentBuilder::observe). Hooks run synchronously on the thread
 * driving the session, in registration order, and may introspect the
 * live machine through session.system().
 */
class SessionObserver
{
  public:
    virtual ~SessionObserver() = default;

    /** Warmup finished. Fires exactly once, before the first window —
     *  also for warmup_instrs == 0 (a zero-length warmup still marks
     *  the boundary between construction and measurement). */
    virtual void onWarmupEnd(SimSession& session) { (void)session; }

    /** One advance() window completed. */
    virtual void onWindowEnd(SimSession& session, const WindowSample& w)
    {
        (void)session;
        (void)w;
    }

    /** The sim_instrs budget is spent; @p final_result is the cumulative
     *  RunResult (bit-identical to what simulate() returns). */
    virtual void onRunEnd(SimSession& session,
                          const sim::RunResult& final_result)
    {
        (void)session;
        (void)final_result;
    }
};

/**
 * Window algebra over RunResults.
 *
 * windowDelta(now, prev) subtracts two cumulative snapshots of the same
 * measurement (prev may be empty ≙ all zero) and recomputes the derived
 * fields (per-core IPC, geomean, bucket fractions) from the subtracted
 * raw counts. accumulateDelta folds one delta into an accumulator;
 * composeDeltas folds a whole partition. Composing the deltas of any
 * window partition of a session reproduces its cumulative RunResult
 * bit-exactly.
 */
sim::RunResult windowDelta(const sim::RunResult& now,
                           const sim::RunResult& prev);
void accumulateDelta(sim::RunResult& acc, const sim::RunResult& delta);
sim::RunResult composeDeltas(const std::vector<sim::RunResult>& deltas);

/**
 * A resumable simulation run. Move-only; owns the sim::System.
 *
 * The spec's sim_instrs field is the session's measurement budget:
 * advance() clamps to what remains and the run ends (onRunEnd) when the
 * budget is spent. warmup_instrs runs implicitly before the first
 * window.
 */
class SimSession
{
  public:
    /** Build the machine and attach the spec's prefetchers. Throws
     *  std::invalid_argument on unknown workload/prefetcher specs. */
    explicit SimSession(ExperimentSpec spec);

    /**
     * Same, but drive the cores from @p workloads instead of resolving
     * the spec's workload/mix through the registry (the service layer
     * injects client-streamed workloads this way). An empty vector
     * falls back to workloadsFor(spec); otherwise the size must equal
     * spec.num_cores (std::invalid_argument). The spec's workload
     * fields still define the fingerprint — callers that inject a
     * different stream own that equivalence.
     */
    SimSession(ExperimentSpec spec,
               std::vector<std::unique_ptr<wl::Workload>> workloads);

    SimSession(SimSession&&) = default;
    SimSession& operator=(SimSession&&) = default;
    SimSession(const SimSession&) = delete;
    SimSession& operator=(const SimSession&) = delete;

    /** Open a session for @p spec (fluent alternative to the ctor). */
    static SimSession open(ExperimentSpec spec)
    {
        return SimSession(std::move(spec));
    }

    /**
     * Write the full session state — lifecycle flags, cumulative/last
     * window results, and the complete machine (caches, cores, DRAM,
     * prefetchers, RNG streams) — to @p path as a pythia-snap-v1 file
     * stamped with fingerprintFor(spec()). Atomic: the file appears
     * complete or not at all. @throws snap::UnsupportedError when an
     * attached prefetcher cannot serialize; snap::IoError on I/O
     * failure.
     */
    void snapshotTo(const std::string& path) const;

    /** The same pythia-snap-v1 image snapshotTo() writes, returned as
     *  bytes instead of a file — the unit the service layer's shared
     *  warm-snapshot pool stores and restores from. */
    std::vector<std::uint8_t> snapshotBytes() const;

    /**
     * Open a session for @p spec and restore the state saved by
     * snapshotTo(). The snapshot's fingerprint must match
     * fingerprintFor(spec) exactly (snap::FingerprintError otherwise,
     * with a field-by-field diff). A session resumed from a
     * post-warmup snapshot and then advanced is bit-identical to a
     * cold session running straight through. Observers are not part of
     * the snapshot — re-register them on the resumed session.
     */
    static SimSession resumeFrom(ExperimentSpec spec,
                                 const std::string& path);

    /** resumeFrom with injected workloads (see the two-arg ctor). The
     *  injected streams must replay the same records the snapshotted
     *  session consumed — restore re-derives workload position by
     *  replaying them from the start. */
    static SimSession
    resumeFrom(ExperimentSpec spec, const std::string& path,
               std::vector<std::unique_ptr<wl::Workload>> workloads);

    /** resumeFrom over an in-memory snapshot image (snapshotBytes()).
     *  Same validation and bit-exactness guarantees as the file path;
     *  diagnostics name @p label instead of a filename. */
    static SimSession
    resumeFromBytes(ExperimentSpec spec,
                    std::vector<std::uint8_t> bytes,
                    std::vector<std::unique_ptr<wl::Workload>> workloads,
                    const std::string& label = "<memory>");

    /** Register a non-owning observer (must outlive the session). */
    void addObserver(SessionObserver* observer);

    /** Register a shared observer (kept alive by the session). */
    void addObserver(std::shared_ptr<SessionObserver> observer);

    /** Run the spec's warmup if it has not run yet (idempotent; fires
     *  onWarmupEnd exactly once, even for warmup_instrs == 0). */
    void runWarmup();

    /**
     * Step one measured window of up to @p n_instrs instructions per
     * core (clamped to the remaining sim_instrs budget; warmup runs
     * first if pending). Fires onWindowEnd, and onRunEnd when this
     * window exhausts the budget.
     * @return instructions actually advanced (0 when already done).
     */
    std::uint64_t advance(std::uint64_t n_instrs);

    /** Spend the remaining budget in one window and return the final
     *  cumulative RunResult. A fresh session finished this way is
     *  bit-identical to the batch simulate() path. */
    sim::RunResult runToCompletion();

    /** Cumulative result + most recent window (empty before the first
     *  advance()). */
    struct Snapshot
    {
        sim::RunResult cumulative;
        WindowSample last_window;
        std::size_t windows = 0;
    };

    Snapshot snapshot() const;

    /** Cumulative RunResult since measurement start (empty-initialized
     *  before the first advance()). */
    const sim::RunResult& cumulative() const { return cumulative_; }

    /** Most recent WindowSample; throws std::logic_error before the
     *  first advance(). */
    const WindowSample& lastWindow() const;

    bool warmupDone() const { return warmup_done_; }
    bool done() const { return advanced_ >= spec_.sim_instrs; }
    std::uint64_t instrsAdvanced() const { return advanced_; }
    std::uint64_t instrsRemaining() const
    {
        return spec_.sim_instrs - advanced_;
    }
    std::size_t windowsCompleted() const { return windows_completed_; }

    /** The live machine, for introspection from observers or the
     *  driving loop (examples/live_introspection.cpp). */
    sim::System& system() { return *system_; }
    const sim::System& system() const { return *system_; }

    const ExperimentSpec& spec() const { return spec_; }

  private:
    void notifyRunEndOnce();
    void writeSessionBody(snap::Writer& w) const;
    void restoreSessionBody(const snap::SnapshotFile& file);

    ExperimentSpec spec_;
    std::unique_ptr<sim::System> system_;
    std::vector<SessionObserver*> observers_;
    std::vector<std::shared_ptr<SessionObserver>> owned_observers_;
    bool warmup_done_ = false;
    bool run_ended_ = false;
    std::uint64_t advanced_ = 0;
    std::size_t windows_completed_ = 0;
    sim::RunResult cumulative_;
    WindowSample last_;
    bool has_window_ = false;
};

} // namespace pythia::harness
