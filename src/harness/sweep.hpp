/**
 * @file
 * Declarative sweep execution engine.
 *
 * A Sweep is an ordered list of ExperimentSpecs — typically the cartesian
 * product of workloads x prefetcher specs x machine-config axes that one
 * paper figure reports — plus, per job, an optional completion callback.
 * A ParallelRunner executes the job list on a fixed pool of worker
 * threads (each sim::System is self-contained, so experiments are
 * embarrassingly parallel), then invokes every callback *on the calling
 * thread, in declaration order*, so a bench's table-building code needs
 * no locking and produces byte-identical output for jobs=1 and jobs=16.
 *
 *     harness::Runner runner;
 *     harness::Sweep sweep;
 *     for (const auto& w : workloads)
 *         for (const auto& pf : prefetchers)
 *             sweep.add(harness::Experiment(w).l2(pf),
 *                       [&](const harness::Runner::Outcome& o) {
 *                           table.addRow({w, pf,
 *                                         Table::fmt(o.metrics.speedup)});
 *                       });
 *     harness::ParallelRunner(jobs).run(runner, sweep);
 *
 * Interleave Sweep::then() actions between adds to aggregate groups of
 * jobs (suite geomeans, per-row rollups): they run in the same ordered
 * replay as the job callbacks. Baseline de-duplication is inherited from
 * Runner, whose cache computes each no-prefetching baseline exactly once
 * no matter how many workers request it concurrently.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {

/**
 * An ordered list of experiments with per-job completion callbacks.
 *
 * Declaration order is the contract: ParallelRunner::run returns outcomes
 * indexed by JobId (the value add() returned) and replays callbacks and
 * then() actions in exactly the order they were added, regardless of
 * which worker finished which job first.
 */
class Sweep
{
  public:
    /** Index of a job within this sweep (also its slot in the results). */
    using JobId = std::size_t;
    /** Invoked with the job's outcome during the ordered replay. */
    using JobCallback = std::function<void(const Runner::Outcome&)>;
    /** A custom job body, executed on a worker thread. */
    using TaskFn = std::function<Runner::Outcome(Runner&)>;

    /** Append one experiment; @p on_done may be empty. */
    JobId add(ExperimentSpec spec, JobCallback on_done = {});

    /**
     * Append a custom job: @p task runs on a worker thread with the
     * shared Runner and its returned Outcome lands in the results slot
     * like any other job's. This is how session-shaped work (e.g.
     * Runner::evaluateWindowed streaming one cell of bench_fig23) rides
     * the same pool, ordered replay and perf accounting as plain spec
     * jobs. The task must confine side effects to state the callback
     * reads afterwards (the replay is ordered; the execution is not).
     */
    JobId addTask(TaskFn task, JobCallback on_done = {});

    /** Append the builder's accumulated spec; @p on_done may be empty. */
    JobId add(const ExperimentBuilder& exp, JobCallback on_done = {})
    {
        return add(exp.build(), std::move(on_done));
    }

    /**
     * Append an ordered action with no job of its own: it runs after the
     * callbacks of every job added before it (and before those of every
     * job added after). Use it to emit a table row that aggregates the
     * preceding group of jobs.
     */
    void then(std::function<void()> action);

    /**
     * Cartesian-product helper for the common two-axis grid: adds one
     * job per (workload, prefetcher) pair in row-major order.
     * @p make builds the experiment for a pair; @p done (optional)
     * receives the pair and its outcome during the ordered replay.
     */
    void grid(const std::vector<std::string>& workloads,
              const std::vector<std::string>& prefetchers,
              const std::function<ExperimentBuilder(
                  const std::string& workload,
                  const std::string& prefetcher)>& make,
              const std::function<void(const std::string& workload,
                                       const std::string& prefetcher,
                                       const Runner::Outcome&)>& done = {});

    /** Number of jobs added so far. */
    std::size_t size() const { return specs_.size(); }

    bool empty() const { return specs_.empty(); }

    /** Spec of job @p id (declaration order; a default-constructed spec
     *  for addTask() jobs, which carry their work in the task body). */
    const ExperimentSpec& spec(JobId id) const { return specs_.at(id); }

    /** True when job @p id was added via addTask(): its work is a
     *  closure, so it cannot cross a process boundary (the shard
     *  coordinator runs such jobs locally and never journals them). */
    bool isTask(JobId id) const
    {
        return static_cast<bool>(tasks_.at(id));
    }

  private:
    friend class ParallelRunner;
    friend class ShardCoordinator;

    /** One step of the ordered replay: a job's callback or a then(). */
    struct Action
    {
        bool is_job = false;
        JobId job = 0;                ///< valid when is_job
        JobCallback on_job;           ///< may be empty
        std::function<void()> plain;  ///< valid when !is_job
    };

    std::vector<ExperimentSpec> specs_;
    std::vector<TaskFn> tasks_; ///< parallel to specs_; empty = spec job
    std::vector<Action> actions_;
};

/** Wall-clock accounting for one executed sweep. */
struct SweepReport
{
    std::size_t experiments = 0; ///< jobs executed
    unsigned jobs = 1;           ///< worker threads used
    double seconds = 0.0;        ///< wall-clock of the parallel phase
    /** Per-job wall time, indexed by JobId (evaluate() call only, not
     *  queueing) — the raw samples behind the p50/p95 a PerfReport
     *  publishes. */
    std::vector<double> job_seconds;

    /** Throughput; 0 when nothing ran. */
    double experimentsPerSecond() const
    {
        return seconds > 0.0 ? experiments / seconds : 0.0;
    }
};

/**
 * Fixed-thread-pool executor for Sweeps.
 *
 * Workers pull jobs from a shared atomic cursor and evaluate them
 * through one shared (thread-safe) Runner; results land in a
 * declaration-order vector. jobs=1 executes inline on the calling
 * thread with no pool, which is also the reference order the parallel
 * path must reproduce byte-for-byte.
 *
 * The throughput line goes to stderr, never stdout, so the tables and
 * CSVs a bench prints are identical whatever the worker count.
 */
class ParallelRunner
{
  public:
    /** Worker count used for jobs=0: hardware_concurrency, at least 1. */
    static unsigned defaultJobs();

    /** @param jobs Worker threads; 0 means defaultJobs(). */
    explicit ParallelRunner(unsigned jobs = 0);

    /** Resolved worker count. */
    unsigned jobs() const { return jobs_; }

    /** Where the per-sweep throughput line goes (default std::cerr);
     *  pass nullptr to silence it. */
    ParallelRunner& reportTo(std::ostream* os)
    {
        report_os_ = os;
        return *this;
    }

    /**
     * Execute every job of @p sweep, replay callbacks and then() actions
     * in declaration order on the calling thread, print the throughput
     * line, and return the outcomes indexed by JobId. The first job
     * exception (in job order) is rethrown after the pool drains; no
     * callbacks run in that case.
     */
    std::vector<Runner::Outcome> run(Runner& runner, const Sweep& sweep);

    /** Accounting for the most recent run(). */
    const SweepReport& lastReport() const { return report_; }

  private:
    unsigned jobs_;
    std::ostream* report_os_;
    SweepReport report_;
};

} // namespace pythia::harness
