#include "harness/shard.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/session.hpp"
#include "snapshot/snapshot.hpp"

namespace pythia::harness {

namespace {

/** Upper bound on any wire frame or journal record payload: a Result
 *  carries two RunResults plus metrics — kilobytes, not megabytes — so
 *  anything near this limit is corruption, not data. */
constexpr std::uint32_t kMaxPayload = 64u << 20;

// ------------------------------------------------------------ raw I/O

/** write() the whole buffer, retrying EINTR. False on EPIPE/any error. */
bool
writeFull(int fd, const void* data, std::size_t n)
{
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/** read() exactly @p n bytes. 1 = ok, 0 = clean EOF before any byte,
 *  -1 = error or EOF mid-read. */
int
readFull(int fd, void* data, std::size_t n)
{
    auto* p = static_cast<std::uint8_t*>(data);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            return got == 0 ? 0 : -1;
        got += static_cast<std::size_t>(r);
    }
    return 1;
}

/** Frame = u32 little-endian payload length + payload bytes. */
bool
writeFrame(int fd, const std::vector<std::uint8_t>& payload)
{
    std::uint8_t hdr[4];
    const auto len = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        hdr[i] = static_cast<std::uint8_t>(len >> (8 * i));
    return writeFull(fd, hdr, 4) &&
           writeFull(fd, payload.data(), payload.size());
}

/** Blocking frame read (worker side). 1 = frame in @p payload,
 *  0 = clean EOF at a frame boundary, -1 = error / truncated frame. */
int
readFrame(int fd, std::vector<std::uint8_t>& payload)
{
    std::uint8_t hdr[4];
    const int r = readFull(fd, hdr, 4);
    if (r <= 0)
        return r;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
    if (len > kMaxPayload)
        return -1;
    payload.resize(len);
    return readFull(fd, payload.data(), len) == 1 ? 1 : -1;
}

// ------------------------------------------------------- frame types

enum : std::uint8_t
{
    kFrameHello = 1,    ///< coordinator -> worker, once per spawn
    kFrameHelloAck = 2, ///< worker -> coordinator
    kFrameJob = 3,      ///< coordinator -> worker
    kFrameResult = 4,   ///< worker -> coordinator
};

enum : std::uint8_t
{
    kErrInvalidArgument = 1,
    kErrRuntime = 2,
    kErrOther = 3,
};

// --------------------------------------------------- spec (de)coding

void
writePythiaConfig(snap::Writer& w, const rl::PythiaConfig& cfg)
{
    w.str(cfg.name);
    w.u64(cfg.features.size());
    for (const auto& f : cfg.features) {
        w.u8(static_cast<std::uint8_t>(f.control));
        w.u8(static_cast<std::uint8_t>(f.data));
    }
    w.u64(cfg.actions.size());
    for (std::int32_t a : cfg.actions)
        w.i32(a);
    w.f64(cfg.rewards.r_at);
    w.f64(cfg.rewards.r_al);
    w.f64(cfg.rewards.r_cl);
    w.f64(cfg.rewards.r_in_high);
    w.f64(cfg.rewards.r_in_low);
    w.f64(cfg.rewards.r_np_high);
    w.f64(cfg.rewards.r_np_low);
    w.f64(cfg.alpha);
    w.f64(cfg.gamma);
    w.f64(cfg.epsilon);
    w.u64(cfg.eq_size);
    w.u32(cfg.degree);
    w.u32(cfg.planes);
    w.u32(cfg.plane_index_bits);
    w.u64(cfg.seed);
}

rl::PythiaConfig
readPythiaConfig(snap::Reader& r)
{
    rl::PythiaConfig cfg;
    cfg.name = r.str();
    cfg.features.clear();
    const std::uint64_t nf = r.u64();
    cfg.features.reserve(static_cast<std::size_t>(nf));
    for (std::uint64_t i = 0; i < nf; ++i) {
        rl::FeatureSpec f;
        f.control = static_cast<rl::ControlKind>(r.u8());
        f.data = static_cast<rl::DataKind>(r.u8());
        cfg.features.push_back(f);
    }
    cfg.actions.clear();
    const std::uint64_t na = r.u64();
    cfg.actions.reserve(static_cast<std::size_t>(na));
    for (std::uint64_t i = 0; i < na; ++i)
        cfg.actions.push_back(r.i32());
    cfg.rewards.r_at = r.f64();
    cfg.rewards.r_al = r.f64();
    cfg.rewards.r_cl = r.f64();
    cfg.rewards.r_in_high = r.f64();
    cfg.rewards.r_in_low = r.f64();
    cfg.rewards.r_np_high = r.f64();
    cfg.rewards.r_np_low = r.f64();
    cfg.alpha = r.f64();
    cfg.gamma = r.f64();
    cfg.epsilon = r.f64();
    cfg.eq_size = static_cast<std::size_t>(r.u64());
    cfg.degree = r.u32();
    cfg.planes = r.u32();
    cfg.plane_index_bits = r.u32();
    cfg.seed = r.u64();
    return cfg;
}

// RunResult framing reuses the public session-layer codec
// (harness::writeRunResult / readRunResult in session.hpp) — one
// definition shared by snapshot files, shard frames and the service
// protocol.

// -------------------------------------------------- journal encoding

/** Serialized journal header: magic + version + fingerprint + FNV of
 *  the preceding bytes, written in one write() so a crash leaves
 *  either nothing or a truncated (recoverable) prefix. */
std::vector<std::uint8_t>
encodeJournalHeader(const std::string& fingerprint)
{
    snap::Writer w;
    w.bytes(kJournalMagic, sizeof kJournalMagic);
    w.u32(kJournalVersion);
    w.str(fingerprint);
    const std::uint64_t sum = snap::fnv1a(w.buffer().data(), w.size());
    w.u64(sum);
    return w.buffer();
}

/** One journal record: u32 payload length + payload + u64 FNV-1a of
 *  the payload. Payload = kind(u8=1) + job id + outcome + seconds. */
std::vector<std::uint8_t>
encodeJournalRecord(std::size_t job, const Runner::Outcome& o,
                    double seconds)
{
    snap::Writer p;
    p.u8(1);
    p.u64(job);
    writeOutcome(p, o);
    p.f64(seconds);

    snap::Writer rec;
    rec.u32(static_cast<std::uint32_t>(p.size()));
    rec.bytes(p.buffer().data(), p.size());
    rec.u64(snap::fnv1a(p.buffer().data(), p.size()));
    return rec.buffer();
}

// ------------------------------------------------------- test hooks

/** Coordinator crash hook (tests/CI): PYTHIA_SHARD_TEST_CRASH=
 *  <pre_flush|post_flush>:<k> — _exit(137) when the k-th worker
 *  result arrives, before/after the journal append+flush. */
struct CrashHook
{
    bool pre_flush = false;
    bool post_flush = false;
    std::size_t at_result = 0; ///< 1-based arrival count; 0 = disabled

    static CrashHook fromEnv()
    {
        CrashHook h;
        const char* v = std::getenv("PYTHIA_SHARD_TEST_CRASH");
        if (!v || !*v)
            return h;
        const std::string s = v;
        const auto colon = s.find(':');
        const std::string point = s.substr(0, colon);
        if (point == "pre_flush")
            h.pre_flush = true;
        else if (point == "post_flush")
            h.post_flush = true;
        else
            throw ShardError("PYTHIA_SHARD_TEST_CRASH: unknown point '" +
                             point + "' (want pre_flush|post_flush)");
        h.at_result = colon == std::string::npos
                          ? 1
                          : static_cast<std::size_t>(
                                std::stoull(s.substr(colon + 1)));
        return h;
    }
};

/** Restore the previous SIGPIPE disposition on scope exit: a worker
 *  dying mid-dispatch must surface as EPIPE, not kill the
 *  coordinator. */
class ScopedSigpipeIgnore
{
  public:
    ScopedSigpipeIgnore() { prev_ = ::signal(SIGPIPE, SIG_IGN); }
    ~ScopedSigpipeIgnore() { ::signal(SIGPIPE, prev_); }

  private:
    using Handler = void (*)(int);
    Handler prev_;
};

} // namespace

// --------------------------------------------------- public payloads

void
writeSpec(snap::Writer& w, const ExperimentSpec& spec)
{
    w.str(spec.workload);
    w.u64(spec.mix.size());
    for (const auto& m : spec.mix)
        w.str(m);
    w.str(spec.prefetcher);
    w.str(spec.l1_prefetcher);
    w.u32(spec.num_cores);
    w.u32(spec.mtps);
    w.u64(spec.llc_bytes_per_core);
    w.u64(spec.warmup_instrs);
    w.u64(spec.sim_instrs);
    w.u64(spec.workload_seed);
    w.boolean(spec.pythia_cfg.has_value());
    if (spec.pythia_cfg)
        writePythiaConfig(w, *spec.pythia_cfg);
}

ExperimentSpec
readSpec(snap::Reader& r)
{
    ExperimentSpec spec;
    spec.workload = r.str();
    const std::uint64_t nm = r.u64();
    spec.mix.clear();
    spec.mix.reserve(static_cast<std::size_t>(nm));
    for (std::uint64_t i = 0; i < nm; ++i)
        spec.mix.push_back(r.str());
    spec.prefetcher = r.str();
    spec.l1_prefetcher = r.str();
    spec.num_cores = r.u32();
    spec.mtps = r.u32();
    spec.llc_bytes_per_core = r.u64();
    spec.warmup_instrs = r.u64();
    spec.sim_instrs = r.u64();
    spec.workload_seed = r.u64();
    if (r.boolean())
        spec.pythia_cfg = readPythiaConfig(r);
    else
        spec.pythia_cfg.reset();
    return spec;
}

void
writeOutcome(snap::Writer& w, const Runner::Outcome& o)
{
    writeRunResult(w, o.run);
    writeRunResult(w, o.baseline);
    w.f64(o.metrics.speedup);
    w.f64(o.metrics.coverage);
    w.f64(o.metrics.overprediction);
    w.f64(o.metrics.accuracy);
}

Runner::Outcome
readOutcome(snap::Reader& r)
{
    Runner::Outcome o;
    o.run = readRunResult(r);
    o.baseline = readRunResult(r);
    o.metrics.speedup = r.f64();
    o.metrics.coverage = r.f64();
    o.metrics.overprediction = r.f64();
    o.metrics.accuracy = r.f64();
    return o;
}

std::string
sweepFingerprint(const Sweep& sweep)
{
    std::ostringstream fp;
    fp << "format=" << kJournalSchemaName << ';' << "jobs="
       << sweep.size() << ';';
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        fp << "job" << i << '=';
        if (sweep.isTask(i)) {
            fp << "task";
        } else {
            std::ostringstream hex;
            hex << std::hex
                << snap::fnv1a(fingerprintFor(sweep.spec(i)));
            fp << hex.str();
        }
        fp << ';';
    }
    return fp.str();
}

// ------------------------------------------------------ journal scan

JournalScan
scanJournal(const std::string& path,
            const std::string& expected_fingerprint, std::size_t n_jobs)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw snap::IoError("cannot read journal: " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    f.close();

    JournalScan scan;

    // Header. A file shorter than a complete header is a crash during
    // the very first write: the whole file is a discardable tail.
    const auto truncated_header = [&]() -> JournalScan {
        scan.discarded_tail_bytes = bytes.size();
        scan.valid_bytes = 0;
        return scan;
    };
    if (bytes.size() < sizeof kJournalMagic) {
        if (std::memcmp(bytes.data(), kJournalMagic, bytes.size()) == 0)
            return truncated_header();
        throw JournalCorruptError("journal corrupt: " + path +
                                  " is not a " + kJournalSchemaName +
                                  " file (bad magic)");
    }
    if (std::memcmp(bytes.data(), kJournalMagic,
                    sizeof kJournalMagic) != 0)
        throw JournalCorruptError("journal corrupt: " + path +
                                  " is not a " + kJournalSchemaName +
                                  " file (bad magic)");

    std::size_t header_end = 0;
    try {
        snap::Reader r(bytes.data(), bytes.size());
        r.skip(sizeof kJournalMagic);
        const std::uint32_t version = r.u32();
        if (version != kJournalVersion)
            throw JournalError(
                "journal version " + std::to_string(version) +
                " unsupported (this build reads version " +
                std::to_string(kJournalVersion) + ")");
        scan.fingerprint = r.str();
        const std::size_t sum_at = r.position();
        const std::uint64_t stored = r.u64();
        const std::uint64_t computed = snap::fnv1a(bytes.data(), sum_at);
        if (stored != computed)
            throw JournalCorruptError(
                "journal corrupt: header checksum mismatch in " + path);
        header_end = r.position();
    } catch (const snap::CorruptError&) {
        // The header itself ends mid-field: crash during the first
        // write. Recoverable, like any truncated tail.
        return truncated_header();
    }

    if (!expected_fingerprint.empty() &&
        scan.fingerprint != expected_fingerprint) {
        throw JournalFingerprintError(
            "journal fingerprint mismatch (journal written by a "
            "different sweep?) — " +
            snap::diffFingerprints(scan.fingerprint,
                                   expected_fingerprint));
    }

    // Records.
    std::size_t p = header_end;
    scan.valid_bytes = p;
    std::size_t index = 0;
    while (p < bytes.size()) {
        const std::size_t rem = bytes.size() - p;
        if (rem < 4) {
            scan.discarded_tail_bytes = rem;
            break;
        }
        std::uint32_t len = 0;
        for (int i = 0; i < 4; ++i)
            len |= static_cast<std::uint32_t>(bytes[p + i]) << (8 * i);
        if (len > kMaxPayload)
            throw JournalCorruptError(
                "journal corrupt: record " + std::to_string(index) +
                " at byte offset " + std::to_string(p) +
                ": implausible length " + std::to_string(len));
        if (rem < 4ull + len + 8) {
            // Crash mid-append: the tail record never completed.
            scan.discarded_tail_bytes = rem;
            break;
        }
        const std::uint8_t* payload = bytes.data() + p + 4;
        std::uint64_t stored = 0;
        for (int i = 0; i < 8; ++i)
            stored |= static_cast<std::uint64_t>(payload[len + i])
                      << (8 * i);
        const std::uint64_t computed = snap::fnv1a(payload, len);
        if (stored != computed)
            throw JournalCorruptError(
                "journal corrupt: record " + std::to_string(index) +
                " at byte offset " + std::to_string(p) +
                ": checksum mismatch (stored " + std::to_string(stored) +
                ", computed " + std::to_string(computed) + ")");
        try {
            snap::Reader r(payload, len);
            const std::uint8_t kind = r.u8();
            if (kind != 1)
                throw JournalCorruptError(
                    "journal corrupt: record " + std::to_string(index) +
                    ": unknown kind " + std::to_string(kind));
            JournalEntry e;
            e.job = static_cast<std::size_t>(r.u64());
            if (e.job >= n_jobs)
                throw JournalCorruptError(
                    "journal corrupt: record " + std::to_string(index) +
                    ": job id " + std::to_string(e.job) +
                    " out of range (sweep has " + std::to_string(n_jobs) +
                    " jobs)");
            e.outcome = readOutcome(r);
            e.seconds = r.f64();
            if (!r.atEnd())
                throw JournalCorruptError(
                    "journal corrupt: record " + std::to_string(index) +
                    ": " + std::to_string(r.remaining()) +
                    " trailing bytes");
            scan.entries.push_back(std::move(e));
        } catch (const snap::CorruptError& e) {
            throw JournalCorruptError(
                "journal corrupt: record " + std::to_string(index) +
                ": " + e.what());
        }
        p += 4ull + len + 8;
        scan.valid_bytes = p;
        ++index;
    }
    return scan;
}

// ------------------------------------------------------- worker main

int
shardWorkerMain(int argc, char** argv)
{
    if (argc != 5) {
        std::fprintf(stderr,
                     "usage: sweep_worker <in_fd> <out_fd> <index> "
                     "<generation>\n"
                     "Shard worker of the %s protocol; spawned by "
                     "harness::ShardCoordinator, not run by hand.\n",
                     kWireSchemaName);
        return 2;
    }
    const int in_fd = std::atoi(argv[1]);
    const int out_fd = std::atoi(argv[2]);
    const unsigned index = static_cast<unsigned>(std::atoi(argv[3]));
    const unsigned generation =
        static_cast<unsigned>(std::atoi(argv[4]));
    ::signal(SIGPIPE, SIG_IGN);

    // Fault-injection hooks (tests + CI). Kill hooks apply only to the
    // first spawn (generation 0) so the respawned worker makes
    // progress; the slow hook applies to every generation.
    const char* kw = std::getenv("PYTHIA_SHARD_KILL_WORKER");
    const bool kill_me = kw && generation == 0 &&
                         static_cast<unsigned>(std::atoi(kw)) == index;
    const char* kp = std::getenv("PYTHIA_SHARD_KILL_POINT");
    const std::string kill_point = kp ? kp : "recv";
    const char* ka = std::getenv("PYTHIA_SHARD_KILL_AFTER");
    const std::size_t kill_after =
        ka ? static_cast<std::size_t>(std::atoll(ka)) : 1;
    const char* sw = std::getenv("PYTHIA_SHARD_SLOW_WORKER");
    const bool slow_me =
        sw && static_cast<unsigned>(std::atoi(sw)) == index;
    const char* sm = std::getenv("PYTHIA_SHARD_SLOW_MS");
    const int slow_ms = sm ? std::atoi(sm) : 200;

    if (kill_me && kill_point == "start")
        ::raise(SIGKILL);

    // Handshake.
    std::vector<std::uint8_t> payload;
    if (readFrame(in_fd, payload) != 1)
        return 1;
    std::string snapshot_dir;
    try {
        snap::Reader r(payload.data(), payload.size());
        if (r.u8() != kFrameHello)
            throw WireError("worker: first frame is not Hello");
        const std::string schema = r.str();
        const std::uint32_t version = r.u32();
        if (schema != kWireSchemaName || version != kWireVersion)
            throw WireError("worker: wire schema mismatch (got " +
                            schema + " v" + std::to_string(version) +
                            ", want " + kWireSchemaName + " v" +
                            std::to_string(kWireVersion) + ")");
        (void)r.u32(); // worker index, informational (argv is binding)
        snapshot_dir = r.str();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[sweep_worker %u] %s\n", index, e.what());
        return 1;
    }
    {
        snap::Writer w;
        w.u8(kFrameHelloAck);
        w.str(kWireSchemaName);
        w.u32(kWireVersion);
        if (!writeFrame(out_fd, w.buffer()))
            return 1;
    }

    Runner runner;
    if (!snapshot_dir.empty() &&
        std::filesystem::is_directory(snapshot_dir))
        runner.setSnapshotDir(snapshot_dir);

    std::size_t jobs_seen = 0;
    for (;;) {
        const int r = readFrame(in_fd, payload);
        if (r == 0)
            return 0; // coordinator closed the pipe: clean shutdown
        if (r < 0)
            return 1;
        std::uint64_t job = 0;
        ExperimentSpec spec;
        try {
            snap::Reader rd(payload.data(), payload.size());
            if (rd.u8() != kFrameJob)
                return 1;
            job = rd.u64();
            spec = readSpec(rd);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "[sweep_worker %u] bad job frame: %s\n",
                         index, e.what());
            return 1;
        }

        ++jobs_seen;
        if (kill_me && kill_point == "recv" && jobs_seen == kill_after)
            ::raise(SIGKILL);
        if (slow_me)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slow_ms));

        snap::Writer w;
        w.u8(kFrameResult);
        w.u64(job);
        try {
            const auto t0 = std::chrono::steady_clock::now();
            const Runner::Outcome outcome = runner.evaluate(spec);
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            w.u8(1);
            writeOutcome(w, outcome);
            w.f64(seconds);
        } catch (const std::invalid_argument& e) {
            w.u8(0);
            w.u8(kErrInvalidArgument);
            w.str(e.what());
        } catch (const std::runtime_error& e) {
            w.u8(0);
            w.u8(kErrRuntime);
            w.str(e.what());
        } catch (const std::exception& e) {
            w.u8(0);
            w.u8(kErrOther);
            w.str(e.what());
        }
        if (kill_me && kill_point == "pre_send" &&
            jobs_seen == kill_after)
            ::raise(SIGKILL);
        if (!writeFrame(out_fd, w.buffer()))
            return 1;
    }
}

// ------------------------------------------------------- coordinator

namespace {

/** Resolve the worker binary: explicit option, then the
 *  PYTHIA_SWEEP_WORKER env var, then a sweep_worker sibling of the
 *  running executable (the build-tree layout). */
std::string
resolveWorkerPath(const std::string& explicit_path)
{
    if (!explicit_path.empty())
        return explicit_path;
    if (const char* env = std::getenv("PYTHIA_SWEEP_WORKER");
        env && *env)
        return env;
    std::error_code ec;
    const auto self =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec)
        return (self.parent_path() / "sweep_worker").string();
    return "sweep_worker";
}

/** One worker subprocess and its coordinator-side state. */
struct WorkerSlot
{
    unsigned index = 0;
    unsigned generation = 0;
    pid_t pid = -1;
    int to_fd = -1;   ///< coordinator writes Job frames here
    int from_fd = -1; ///< coordinator reads Result frames here
    bool alive = false;
    bool acked = false;
    std::optional<std::size_t> job; ///< currently dispatched job
    std::chrono::steady_clock::time_point dispatched_at{};
    std::vector<std::uint8_t> buf;  ///< partial-frame accumulator
};

/** Mutable run state shared by the coordinator loop helpers. */
struct RunState
{
    std::size_t n = 0;
    std::vector<Runner::Outcome> results;
    std::vector<char> have;
    std::vector<double> job_seconds;
    std::deque<std::size_t> pending; ///< spec jobs awaiting dispatch
    std::vector<unsigned> inflight;  ///< concurrent dispatches per job
    std::vector<unsigned> restarts;  ///< worker deaths charged per job
    /** First error per job: wire kind + what (workers) or the live
     *  exception (in-coordinator task jobs). */
    struct JobError
    {
        std::uint8_t kind = 0;
        std::string what;
        std::exception_ptr eptr;
    };
    std::map<std::size_t, JobError> errors;
    std::size_t spec_total = 0;
    std::size_t spec_done = 0;
    std::size_t arrivals = 0; ///< results received over the wire
};

[[noreturn]] void
rethrowJobError(const RunState::JobError& e)
{
    if (e.eptr)
        std::rethrow_exception(e.eptr);
    switch (e.kind) {
    case kErrInvalidArgument:
        throw std::invalid_argument(e.what);
    default:
        throw std::runtime_error(e.what);
    }
}

} // namespace

ShardCoordinator::ShardCoordinator(ShardOptions opt)
    : opt_(std::move(opt))
{
    if (opt_.workers == 0)
        opt_.workers = 1;
}

std::vector<Runner::Outcome>
ShardCoordinator::run(Runner& runner, const Sweep& sweep)
{
    report_ = ShardReport{};
    RunState st;
    st.n = sweep.size();
    st.results.resize(st.n);
    st.have.assign(st.n, 0);
    st.job_seconds.assign(st.n, 0.0);
    st.inflight.assign(st.n, 0);
    st.restarts.assign(st.n, 0);
    if (st.n == 0)
        return {};

    const CrashHook crash = CrashHook::fromEnv();
    const std::string fingerprint = sweepFingerprint(sweep);

    // ---- journal pre-scan: recover completed jobs, drop a torn tail.
    int journal_fd = -1;
    if (!opt_.journal_path.empty()) {
        std::error_code ec;
        const bool exists =
            std::filesystem::exists(opt_.journal_path, ec) && !ec &&
            std::filesystem::file_size(opt_.journal_path, ec) > 0 && !ec;
        bool need_header = true;
        if (exists) {
            const JournalScan scan =
                scanJournal(opt_.journal_path, fingerprint, st.n);
            for (const auto& e : scan.entries) {
                if (e.job < st.n && !st.have[e.job] &&
                    !sweep.tasks_[e.job]) {
                    st.results[e.job] = e.outcome;
                    st.job_seconds[e.job] = e.seconds;
                    st.have[e.job] = 1;
                    ++report_.resumed_jobs;
                }
            }
            if (scan.discarded_tail_bytes > 0) {
                std::cerr << "[shard] journal " << opt_.journal_path
                          << ": discarding " << scan.discarded_tail_bytes
                          << " trailing bytes (truncated record from an "
                             "interrupted append); its job will re-run\n";
                report_.discarded_tail_bytes = scan.discarded_tail_bytes;
                std::filesystem::resize_file(opt_.journal_path,
                                             scan.valid_bytes, ec);
                if (ec)
                    throw snap::IoError("cannot truncate journal " +
                                        opt_.journal_path + ": " +
                                        ec.message());
            }
            need_header = scan.valid_bytes == 0;
        }
        journal_fd = ::open(opt_.journal_path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (journal_fd < 0)
            throw snap::IoError("cannot open journal " +
                                opt_.journal_path + ": " +
                                std::strerror(errno));
        if (need_header) {
            const auto hdr = encodeJournalHeader(fingerprint);
            if (!writeFull(journal_fd, hdr.data(), hdr.size())) {
                ::close(journal_fd);
                throw snap::IoError("cannot write journal header to " +
                                    opt_.journal_path);
            }
            ::fdatasync(journal_fd);
        }
    }
    // Close the journal fd on every exit path.
    struct FdCloser
    {
        int fd;
        ~FdCloser()
        {
            if (fd >= 0)
                ::close(fd);
        }
    } journal_closer{journal_fd};

    // ---- classify jobs.
    for (std::size_t i = 0; i < st.n; ++i) {
        if (sweep.tasks_[i])
            continue; // task jobs run in-coordinator below
        ++st.spec_total;
        if (st.have[i])
            ++st.spec_done;
        else
            st.pending.push_back(i);
    }

    const auto t0 = std::chrono::steady_clock::now();
    ScopedSigpipeIgnore sigpipe_guard;

    // ---- workers.
    const std::string worker_path = resolveWorkerPath(opt_.worker_path);
    if (!opt_.snapshot_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt_.snapshot_dir, ec);
    }
    std::vector<WorkerSlot> workers;
    std::size_t total_spawns = 0;
    const std::size_t spawn_cap =
        static_cast<std::size_t>(opt_.workers) *
            (opt_.max_job_restarts + 2) +
        8;

    const auto spawn = [&](WorkerSlot& wk) {
        if (++total_spawns > spawn_cap)
            throw ShardError(
                "shard: worker respawn cap exceeded (" +
                std::to_string(total_spawns - 1) +
                " spawns) — workers are dying faster than jobs finish");
        int to_pipe[2], from_pipe[2];
        if (::pipe2(to_pipe, O_CLOEXEC) != 0 ||
            ::pipe2(from_pipe, O_CLOEXEC) != 0)
            throw ShardError(std::string("shard: pipe2 failed: ") +
                             std::strerror(errno));
        // argv strings must be ready before fork(): only
        // async-signal-safe calls are allowed in the child.
        const std::string a_in = std::to_string(to_pipe[0]);
        const std::string a_out = std::to_string(from_pipe[1]);
        const std::string a_idx = std::to_string(wk.index);
        const std::string a_gen = std::to_string(wk.generation);
        const pid_t pid = ::fork();
        if (pid < 0)
            throw ShardError(std::string("shard: fork failed: ") +
                             std::strerror(errno));
        if (pid == 0) {
            // Child: keep only this worker's two pipe ends across
            // exec (everything else is O_CLOEXEC, so a sibling's
            // death is observable as EOF).
            ::fcntl(to_pipe[0], F_SETFD, 0);
            ::fcntl(from_pipe[1], F_SETFD, 0);
            char* cargv[] = {const_cast<char*>(worker_path.c_str()),
                             const_cast<char*>(a_in.c_str()),
                             const_cast<char*>(a_out.c_str()),
                             const_cast<char*>(a_idx.c_str()),
                             const_cast<char*>(a_gen.c_str()), nullptr};
            ::execv(worker_path.c_str(), cargv);
            ::_exit(127);
        }
        ::close(to_pipe[0]);
        ::close(from_pipe[1]);
        // Non-blocking reads: the poll loop drains whatever is buffered
        // and must not hang when a read() lands between two frames.
        ::fcntl(from_pipe[0], F_SETFL, O_NONBLOCK);
        wk.pid = pid;
        wk.to_fd = to_pipe[1];
        wk.from_fd = from_pipe[0];
        wk.alive = true;
        wk.acked = false;
        wk.job.reset();
        wk.buf.clear();

        snap::Writer hello;
        hello.u8(kFrameHello);
        hello.str(kWireSchemaName);
        hello.u32(kWireVersion);
        hello.u32(wk.index);
        hello.str(opt_.snapshot_dir);
        (void)writeFrame(wk.to_fd, hello.buffer());
    };

    const auto teardown = [&] {
        for (auto& wk : workers) {
            if (!wk.alive)
                continue;
            ::close(wk.to_fd);
            ::close(wk.from_fd);
            ::kill(wk.pid, SIGKILL);
            int status = 0;
            ::waitpid(wk.pid, &status, 0);
            wk.alive = false;
        }
    };

    const auto appendJournal = [&](std::size_t job) {
        ++st.arrivals;
        if (crash.at_result && crash.pre_flush &&
            st.arrivals == crash.at_result)
            ::_exit(137); // simulated SIGKILL before the flush
        if (journal_fd >= 0) {
            const auto rec = encodeJournalRecord(
                job, st.results[job], st.job_seconds[job]);
            if (!writeFull(journal_fd, rec.data(), rec.size()))
                throw snap::IoError("cannot append to journal " +
                                    opt_.journal_path);
            ::fdatasync(journal_fd);
        }
        if (crash.at_result && crash.post_flush &&
            st.arrivals == crash.at_result)
            ::_exit(137); // simulated SIGKILL after the flush
    };

    const auto dispatch = [&](WorkerSlot& wk) {
        while (!st.pending.empty()) {
            const std::size_t job = st.pending.front();
            st.pending.pop_front();
            if (st.have[job] || st.errors.count(job))
                continue; // completed by a stolen duplicate meanwhile
            snap::Writer w;
            w.u8(kFrameJob);
            w.u64(job);
            writeSpec(w, sweep.specs_[job]);
            if (!writeFrame(wk.to_fd, w.buffer())) {
                // Worker died between poll rounds; the death handler
                // will requeue and respawn. Put the job back first.
                st.pending.push_front(job);
                return;
            }
            wk.job = job;
            wk.dispatched_at = std::chrono::steady_clock::now();
            ++st.inflight[job];
            return;
        }
        if (!opt_.steal)
            return;
        // Work stealing: the pending queue is dry but stragglers still
        // hold jobs — speculatively re-dispatch the longest-in-flight
        // incomplete job (at most one duplicate per job; first result
        // wins, bit-identical by the determinism rule).
        std::size_t victim = st.n;
        auto oldest = std::chrono::steady_clock::time_point::max();
        for (const auto& other : workers) {
            if (&other == &wk || !other.alive || !other.job)
                continue;
            const std::size_t job = *other.job;
            if (st.have[job] || st.errors.count(job))
                continue;
            if (st.inflight[job] >= 2)
                continue;
            if (other.dispatched_at < oldest) {
                oldest = other.dispatched_at;
                victim = job;
            }
        }
        if (victim == st.n)
            return;
        snap::Writer w;
        w.u8(kFrameJob);
        w.u64(victim);
        writeSpec(w, sweep.specs_[victim]);
        if (!writeFrame(wk.to_fd, w.buffer()))
            return;
        wk.job = victim;
        wk.dispatched_at = std::chrono::steady_clock::now();
        ++st.inflight[victim];
        ++report_.stolen_jobs;
    };

    // Parse every complete frame in a worker's accumulator.
    const auto drainFrames = [&](WorkerSlot& wk) {
        std::size_t off = 0;
        while (wk.buf.size() - off >= 4) {
            std::uint32_t len = 0;
            for (int i = 0; i < 4; ++i)
                len |= static_cast<std::uint32_t>(wk.buf[off + i])
                       << (8 * i);
            if (len > kMaxPayload)
                throw WireError("shard: oversized frame from worker " +
                                std::to_string(wk.index));
            if (wk.buf.size() - off - 4 < len)
                break;
            snap::Reader r(wk.buf.data() + off + 4, len);
            const std::uint8_t type = r.u8();
            if (type == kFrameHelloAck) {
                const std::string schema = r.str();
                const std::uint32_t version = r.u32();
                if (schema != kWireSchemaName || version != kWireVersion)
                    throw WireError(
                        "shard: wire schema mismatch from worker (got " +
                        schema + " v" + std::to_string(version) + ")");
                wk.acked = true;
            } else if (type == kFrameResult) {
                const auto job = static_cast<std::size_t>(r.u64());
                if (job >= st.n)
                    throw WireError("shard: result for unknown job " +
                                    std::to_string(job));
                const bool ok = r.u8() != 0;
                if (wk.job && *wk.job == job)
                    wk.job.reset();
                if (st.inflight[job] > 0)
                    --st.inflight[job];
                if (ok) {
                    Runner::Outcome outcome = readOutcome(r);
                    const double seconds = r.f64();
                    if (!st.have[job] && !st.errors.count(job)) {
                        st.results[job] = std::move(outcome);
                        st.job_seconds[job] = seconds;
                        st.have[job] = 1;
                        ++st.spec_done;
                        appendJournal(job);
                    }
                } else {
                    const std::uint8_t kind = r.u8();
                    const std::string what = r.str();
                    if (!st.have[job] && !st.errors.count(job)) {
                        st.errors[job] = {kind, what, nullptr};
                        ++st.spec_done;
                        // Errors are deliberately not journaled: a
                        // resumed sweep re-runs the job and reproduces
                        // the same (deterministic) failure.
                    }
                }
                dispatch(wk);
            } else {
                throw WireError("shard: unexpected frame type " +
                                std::to_string(type) + " from worker " +
                                std::to_string(wk.index));
            }
            off += 4ull + len;
        }
        if (off > 0)
            wk.buf.erase(wk.buf.begin(),
                         wk.buf.begin() +
                             static_cast<std::ptrdiff_t>(off));
    };

    const auto onWorkerDeath = [&](WorkerSlot& wk) {
        drainFrames(wk); // results already buffered still count
        ::close(wk.to_fd);
        ::close(wk.from_fd);
        int status = 0;
        ::waitpid(wk.pid, &status, 0);
        wk.alive = false;
        const bool exec_failed = !wk.acked && WIFEXITED(status) &&
                                 WEXITSTATUS(status) == 127;
        if (exec_failed)
            throw ShardError("shard: cannot exec worker binary '" +
                             worker_path +
                             "' (set ShardOptions::worker_path or "
                             "PYTHIA_SWEEP_WORKER)");
        if (wk.job) {
            const std::size_t job = *wk.job;
            wk.job.reset();
            if (st.inflight[job] > 0)
                --st.inflight[job];
            if (!st.have[job] && !st.errors.count(job) &&
                st.inflight[job] == 0) {
                if (++st.restarts[job] > opt_.max_job_restarts)
                    throw ShardError(
                        "shard: job " + std::to_string(job) +
                        " lost its worker " +
                        std::to_string(st.restarts[job]) +
                        " times (max_job_restarts=" +
                        std::to_string(opt_.max_job_restarts) + ")");
                st.pending.push_front(job);
            }
        }
        if (st.spec_done < st.spec_total) {
            wk.generation += 1;
            spawn(wk);
            ++report_.worker_restarts;
        }
    };

    unsigned n_workers = 0;
    try {
        n_workers = static_cast<unsigned>(std::min<std::size_t>(
            opt_.workers, st.pending.size()));
        workers.resize(n_workers);
        for (unsigned i = 0; i < n_workers; ++i) {
            workers[i].index = i;
            spawn(workers[i]);
        }
        for (auto& wk : workers)
            dispatch(wk);

        // Task jobs carry closures, which cannot cross the process
        // boundary: run them here while the fleet crunches spec jobs.
        // Declaration-order execution keeps them deterministic; they
        // are never journaled (re-running re-applies side effects the
        // callbacks rely on).
        for (std::size_t i = 0; i < st.n; ++i) {
            if (!sweep.tasks_[i])
                continue;
            try {
                const auto js = std::chrono::steady_clock::now();
                st.results[i] = sweep.tasks_[i](runner);
                st.job_seconds[i] =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - js)
                        .count();
                st.have[i] = 1;
            } catch (...) {
                st.errors[i] = {0, "", std::current_exception()};
            }
        }

        // Event loop: drain results, feed idle workers, survive deaths.
        while (st.spec_done < st.spec_total) {
            std::vector<pollfd> fds;
            std::vector<std::size_t> slot_of;
            for (std::size_t i = 0; i < workers.size(); ++i) {
                if (!workers[i].alive)
                    continue;
                fds.push_back({workers[i].from_fd, POLLIN, 0});
                slot_of.push_back(i);
            }
            if (fds.empty())
                throw ShardError("shard: no live workers but " +
                                 std::to_string(st.spec_total -
                                                st.spec_done) +
                                 " jobs incomplete");
            const int pr = ::poll(fds.data(),
                                  static_cast<nfds_t>(fds.size()), -1);
            if (pr < 0) {
                if (errno == EINTR)
                    continue;
                throw ShardError(std::string("shard: poll failed: ") +
                                 std::strerror(errno));
            }
            for (std::size_t k = 0; k < fds.size(); ++k) {
                if (fds[k].revents == 0)
                    continue;
                WorkerSlot& wk = workers[slot_of[k]];
                if (!wk.alive)
                    continue;
                bool dead = false;
                if (fds[k].revents & (POLLIN | POLLHUP)) {
                    std::uint8_t tmp[65536];
                    for (;;) {
                        const ssize_t r =
                            ::read(wk.from_fd, tmp, sizeof tmp);
                        if (r > 0) {
                            wk.buf.insert(
                                wk.buf.end(), tmp,
                                tmp + static_cast<std::size_t>(r));
                            continue;
                        }
                        if (r == 0) {
                            dead = true;
                            break;
                        }
                        if (errno == EINTR)
                            continue;
                        if (errno == EAGAIN || errno == EWOULDBLOCK)
                            break;
                        dead = true;
                        break;
                    }
                    if (!dead)
                        drainFrames(wk);
                } else if (fds[k].revents & (POLLERR | POLLNVAL)) {
                    dead = true;
                }
                if (dead)
                    onWorkerDeath(wk);
                else if (!wk.job)
                    dispatch(wk); // idle worker: try to steal
            }
        }
    } catch (...) {
        teardown();
        throw;
    }
    teardown();

    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;

    if (!st.errors.empty()) {
        // First error by job index — deterministic whatever the
        // worker count or completion order (no callbacks replay).
        rethrowJobError(st.errors.begin()->second);
    }

    report_.sweep.experiments = st.n;
    report_.sweep.jobs = n_workers;
    report_.sweep.seconds = elapsed.count();
    report_.sweep.job_seconds = st.job_seconds;
    if (opt_.report_os) {
        char line[192];
        std::snprintf(line, sizeof line,
                      "[shard] %zu experiments in %.3f s — %.2f exp/s "
                      "(workers=%u, resumed=%zu, stolen=%zu, "
                      "restarts=%zu)\n",
                      st.n, report_.sweep.seconds,
                      report_.sweep.experimentsPerSecond(), n_workers,
                      report_.resumed_jobs, report_.stolen_jobs,
                      report_.worker_restarts);
        *opt_.report_os << line << std::flush;
    }

    // Ordered replay: declaration order, coordinator thread — the same
    // contract as ParallelRunner, so tables and CSVs are byte-identical
    // whatever the topology.
    for (const Sweep::Action& a : sweep.actions_) {
        if (a.is_job) {
            if (a.on_job)
                a.on_job(st.results[a.job]);
        } else if (a.plain) {
            a.plain();
        }
    }
    return st.results;
}

} // namespace pythia::harness
