#include "harness/runner.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "common/hashing.hpp"
#include "sim/prefetcher_registry.hpp"
#include "workloads/suites.hpp"

namespace pythia::harness {

namespace {

/** Resolve a spec through the registry, plus the one construction the
 *  registry cannot express: "pythia_custom" with an explicit config
 *  object (features and action lists are not spec-string encodable). */
std::unique_ptr<sim::PrefetcherApi>
buildPrefetcher(const std::string& spec,
                const std::optional<rl::PythiaConfig>& custom)
{
    if (spec == "pythia_custom") {
        if (!custom)
            throw std::invalid_argument(
                "pythia_custom requires an explicit PythiaConfig");
        return std::make_unique<rl::PythiaPrefetcher>(*custom);
    }
    return sim::makePrefetcher(spec);
}

} // namespace

std::vector<std::string>
harnessPrefetcherNames()
{
    return sim::prefetcherNames();
}

sim::SystemConfig
systemConfigFor(const ExperimentSpec& spec)
{
    sim::SystemConfig cfg;
    cfg.num_cores = spec.num_cores;
    cfg.applyPaperChannelScaling();
    cfg.dram.mtps = spec.mtps;
    cfg.llc_bytes_per_core = spec.llc_bytes_per_core;
    return cfg;
}

std::vector<std::unique_ptr<wl::Workload>>
workloadsFor(const ExperimentSpec& spec)
{
    std::vector<std::unique_ptr<wl::Workload>> out;
    if (!spec.mix.empty()) {
        if (spec.mix.size() != spec.num_cores)
            throw std::invalid_argument(
                "mix size must equal num_cores");
        for (std::size_t i = 0; i < spec.mix.size(); ++i)
            out.push_back(wl::makeWorkload(
                spec.mix[i],
                spec.workload_seed ? mix64(spec.workload_seed + i) : 0));
        return out;
    }
    for (std::uint32_t c = 0; c < spec.num_cores; ++c) {
        // Homogeneous mixes run n copies with distinct seeds, standing in
        // for the distinct physical pages n trace copies would touch.
        const std::uint64_t reseed =
            spec.workload_seed
                ? mix64(spec.workload_seed + c)
                : (c == 0 ? 0 : mix64(0x5EEDull + c));
        out.push_back(wl::makeWorkload(spec.workload, reseed));
    }
    return out;
}

sim::RunResult
simulate(const ExperimentSpec& spec)
{
    sim::System system(systemConfigFor(spec), workloadsFor(spec));
    for (std::uint32_t c = 0; c < spec.num_cores; ++c) {
        if (auto l2 = buildPrefetcher(spec.prefetcher, spec.pythia_cfg))
            system.attachL2Prefetcher(c, std::move(l2));
        if (auto l1 = buildPrefetcher(spec.l1_prefetcher, std::nullopt))
            system.attachL1Prefetcher(c, std::move(l1));
    }
    system.warmup(spec.warmup_instrs);
    return system.run(spec.sim_instrs);
}

std::string
Runner::baselineKey(const ExperimentSpec& spec) const
{
    std::ostringstream key;
    key << spec.workload << "|";
    for (const auto& m : spec.mix)
        key << m << ",";
    key << "|" << spec.num_cores << "|" << spec.mtps << "|"
        << spec.llc_bytes_per_core << "|" << spec.warmup_instrs << "|"
        << spec.sim_instrs << "|" << spec.workload_seed;
    return key.str();
}

Runner::Outcome
Runner::evaluate(const ExperimentSpec& spec)
{
    const std::string key = baselineKey(spec);
    auto it = baselines_.find(key);
    if (it == baselines_.end()) {
        ExperimentSpec base = spec;
        base.prefetcher = "none";
        base.l1_prefetcher = "none";
        base.pythia_cfg.reset();
        it = baselines_.emplace(key, simulate(base)).first;
    }

    Outcome out;
    out.baseline = it->second;
    out.run = (spec.prefetcher == "none" && spec.l1_prefetcher == "none")
                  ? out.baseline
                  : simulate(spec);
    out.metrics = computeMetrics(out.run, out.baseline);
    return out;
}

} // namespace pythia::harness
