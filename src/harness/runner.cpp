#include "harness/runner.hpp"

#include <cassert>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "common/hashing.hpp"
#include "harness/session.hpp"
#include "sim/prefetcher_registry.hpp"
#include "snapshot/snapshot.hpp"
#include "workloads/suites.hpp"

namespace pythia::harness {

namespace {

/** Stream an already-warmed session over @p window_ends, recording
 *  every window. */
TimeSeries
streamSeries(SimSession session,
             const std::vector<std::uint64_t>& window_ends)
{
    TimeSeries series;
    session.addObserver(&series);
    for (std::uint64_t end : window_ends)
        session.advance(end - session.instrsAdvanced());
    return series;
}

/** Cache file for a fingerprint: warm-<fnv1a hex>.snap in @p dir. */
std::string
warmCachePath(const std::string& dir, const std::string& fingerprint)
{
    std::ostringstream os;
    os << dir << "/warm-" << std::hex << std::setw(16)
       << std::setfill('0') << snap::fnv1a(fingerprint) << ".snap";
    return os.str();
}

} // namespace

std::vector<std::string>
harnessPrefetcherNames()
{
    return sim::prefetcherNames();
}

sim::SystemConfig
systemConfigFor(const ExperimentSpec& spec)
{
    sim::SystemConfig cfg;
    cfg.num_cores = spec.num_cores;
    cfg.applyPaperChannelScaling();
    cfg.dram.mtps = spec.mtps;
    cfg.llc_bytes_per_core = spec.llc_bytes_per_core;
    return cfg;
}

std::vector<std::unique_ptr<wl::Workload>>
workloadsFor(const ExperimentSpec& spec)
{
    std::vector<std::unique_ptr<wl::Workload>> out;
    if (!spec.mix.empty()) {
        if (spec.mix.size() != spec.num_cores)
            throw std::invalid_argument(
                "mix size must equal num_cores");
        for (std::size_t i = 0; i < spec.mix.size(); ++i)
            out.push_back(wl::makeWorkload(
                spec.mix[i],
                spec.workload_seed ? mix64(spec.workload_seed + i) : 0));
        return out;
    }
    for (std::uint32_t c = 0; c < spec.num_cores; ++c) {
        // Homogeneous mixes run n copies with distinct seeds, standing in
        // for the distinct physical pages n trace copies would touch.
        const std::uint64_t reseed =
            spec.workload_seed
                ? mix64(spec.workload_seed + c)
                : (c == 0 ? 0 : mix64(0x5EEDull + c));
        out.push_back(wl::makeWorkload(spec.workload, reseed));
    }
    return out;
}

sim::RunResult
simulate(const ExperimentSpec& spec)
{
    return SimSession(spec).runToCompletion();
}

std::string
Runner::baselineKey(const ExperimentSpec& spec)
{
    // Every field that changes the no-prefetching run participates; the
    // prefetcher fields and pythia_cfg do not (the baseline resets
    // them). Field separators are control characters that cannot occur
    // in catalog names or registry specs, and the mix is
    // length-prefixed, so distinct specs can never collide on one key.
    // A mix overrides the workload name in workloadsFor(), so a set mix
    // also canonicalizes away the (ignored) workload field here.
    // Workload names canonicalize through the registry
    // (wl::canonicalWorkloadSpec): two spellings of one parameterized
    // spec — key order, whitespace, an explicit default phase length —
    // construct the same stream and must share one cached baseline.
    std::ostringstream key;
    if (spec.mix.empty()) {
        key << "w:" << wl::canonicalWorkloadSpec(spec.workload);
    } else {
        key << "m:" << spec.mix.size();
        for (const auto& m : spec.mix)
            key << '\x1e' << wl::canonicalWorkloadSpec(m);
    }
    key << '\x1f' << spec.num_cores << '\x1f' << spec.mtps << '\x1f'
        << spec.llc_bytes_per_core << '\x1f' << spec.warmup_instrs
        << '\x1f' << spec.sim_instrs << '\x1f' << spec.workload_seed;
    return key.str();
}

void
Runner::setSnapshotDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_dir_ = std::move(dir);
}

std::string
Runner::snapshotDir() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_dir_;
}

SimSession
Runner::openWarmSession(const ExperimentSpec& spec)
{
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dir = snapshot_dir_;
    }
    if (dir.empty()) {
        SimSession session(spec);
        session.runWarmup();
        return session;
    }

    const std::string path = warmCachePath(dir, fingerprintFor(spec));
    try {
        SimSession session = SimSession::resumeFrom(spec, path);
        std::lock_guard<std::mutex> lock(mutex_);
        ++warm_hits_;
        return session;
    } catch (const snap::IoError&) {
        // No cache entry yet — the ordinary cold path, not a fault.
    } catch (const snap::SnapshotError& e) {
        // Stale fingerprint, corruption, unsupported version: never
        // restore silently-wrong state. Warn loudly and re-warm cold.
        std::cerr << "pythia: ignoring warm-state cache entry " << path
                  << ":\n  " << e.what() << "\n";
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++warm_misses_;
    }

    SimSession session(spec);
    session.runWarmup();
    try {
        session.snapshotTo(path);
    } catch (const snap::UnsupportedError&) {
        // A prefetcher without snapshot support runs cold, silently —
        // the cache is an optimization, not a requirement.
    } catch (const snap::SnapshotError& e) {
        std::cerr << "pythia: cannot persist warm state to " << path
                  << ":\n  " << e.what() << "\n";
    }
    return session;
}

Runner::Outcome
Runner::evaluate(const ExperimentSpec& spec)
{
    const std::string key = baselineKey(spec);

    // Per-key once-semantics: exactly one thread claims the key and
    // simulates the baseline outside the lock; everyone else waits on
    // the shared future. A failed baseline propagates its exception to
    // every waiter (the spec is deterministic, so a retry would throw
    // the same way).
    std::shared_future<sim::RunResult> future;
    std::promise<sim::RunResult> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = baselines_.find(key);
        if (it == baselines_.end()) {
            future = promise.get_future().share();
            baselines_.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        try {
            ExperimentSpec base = spec;
            base.prefetcher = "none";
            base.l1_prefetcher = "none";
            base.pythia_cfg.reset();
            promise.set_value(openWarmSession(base).runToCompletion());
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }

    Outcome out;
    out.baseline = future.get();
    out.run = (spec.prefetcher == "none" && spec.l1_prefetcher == "none")
                  ? out.baseline
                  : openWarmSession(spec).runToCompletion();
    out.metrics = computeMetrics(out.run, out.baseline);
    return out;
}

Runner::WindowedOutcome
Runner::evaluateWindowed(const ExperimentSpec& spec,
                         const std::vector<std::uint64_t>& window_ends)
{
    if (window_ends.empty())
        throw std::invalid_argument(
            "evaluateWindowed: window_ends must not be empty");
    std::uint64_t prev = 0;
    for (std::uint64_t end : window_ends) {
        if (end <= prev)
            throw std::invalid_argument(
                "evaluateWindowed: window_ends must be strictly "
                "increasing and non-zero");
        prev = end;
    }
    if (window_ends.back() != spec.sim_instrs)
        throw std::invalid_argument(
            "evaluateWindowed: last window end (" +
            std::to_string(window_ends.back()) +
            ") must equal spec.sim_instrs (" +
            std::to_string(spec.sim_instrs) + ")");

    // Windowed-baseline cache key: the batch baseline key plus the
    // boundary list (a different window split is a different series).
    std::ostringstream key_os;
    key_os << baselineKey(spec);
    for (std::uint64_t end : window_ends)
        key_os << '\x1f' << end;
    const std::string key = key_os.str();

    // Same per-key once-semantics as the batch baseline cache.
    std::shared_future<TimeSeries> future;
    std::promise<TimeSeries> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = windowed_baselines_.find(key);
        if (it == windowed_baselines_.end()) {
            future = promise.get_future().share();
            windowed_baselines_.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        try {
            ExperimentSpec base = spec;
            base.prefetcher = "none";
            base.l1_prefetcher = "none";
            base.pythia_cfg.reset();
            promise.set_value(
                streamSeries(openWarmSession(base), window_ends));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }

    WindowedOutcome out;
    out.baseline = future.get();
    out.run = (spec.prefetcher == "none" && spec.l1_prefetcher == "none")
                  ? out.baseline
                  : streamSeries(openWarmSession(spec), window_ends);
    out.final.run = out.run.finalResult();
    out.final.baseline = out.baseline.finalResult();
    out.final.metrics = computeMetrics(out.final.run, out.final.baseline);
    return out;
}

} // namespace pythia::harness
