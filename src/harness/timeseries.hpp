/**
 * @file
 * TimeSeries — the stock SessionObserver that records every
 * WindowSample a streamed session emits, with CSV and JSON emission.
 *
 *     harness::TimeSeries series;
 *     harness::SimSession session(spec);
 *     session.addObserver(&series);
 *     while (!session.done())
 *         session.advance(window_instrs);
 *     series.writeCsv("run_series.csv");
 *
 * Each row/record is one window: per-window (delta) IPC, miss and
 * prefetch counters, accuracy and the DRAM utilization EWMA at window
 * end, plus the cumulative IPC/accuracy trajectory. composeRange()
 * re-aggregates any boundary-aligned span of windows into a single
 * RunResult — bit-exactly equal to what a run measured over exactly
 * that span would report for its counters (the window algebra of
 * harness/session.hpp), which is how bench_fig23_warmup derives every
 * warmup point from ONE streamed session.
 *
 * JSON schema "pythia-timeseries-v1":
 *
 *     {
 *       "schema": "pythia-timeseries-v1",
 *       "windows": [
 *         {"window": 0, "instrs_begin": 0, "instrs_end": 25000,
 *          "ipc_geomean": 1.23, "cum_ipc_geomean": 1.23,
 *          "llc_demand_load_misses": 410, "llc_read_misses": 520,
 *          "prefetch_issued": 300, "prefetch_useful": 210,
 *          "prefetch_useless": 40, "prefetch_late": 12,
 *          "accuracy": 0.7, "cum_accuracy": 0.7,
 *          "dram_utilization": 0.18},
 *         ...
 *       ]
 *     }
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/session.hpp"

namespace pythia::harness {

/** Recorded per-window samples of one streamed session. */
class TimeSeries : public SessionObserver
{
  public:
    // SessionObserver: record every window.
    void onWindowEnd(SimSession& session, const WindowSample& w) override;

    /** Append a sample directly (for series built without a session). */
    void append(WindowSample sample);

    const std::vector<WindowSample>& samples() const { return samples_; }
    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    const WindowSample& operator[](std::size_t i) const
    {
        return samples_[i];
    }

    void clear() { samples_.clear(); }

    /** Cumulative RunResult of the last recorded window; throws
     *  std::logic_error when empty. */
    const sim::RunResult& finalResult() const;

    /**
     * Compose the deltas of the windows spanning exactly
     * [@p instrs_begin, @p instrs_end) measured instructions into one
     * RunResult. Throws std::invalid_argument unless both bounds lie on
     * recorded window boundaries with a contiguous chain between them.
     */
    sim::RunResult composeRange(std::uint64_t instrs_begin,
                                std::uint64_t instrs_end) const;

    /** The CSV column list (no trailing newline). */
    static const char* csvHeader();

    /** One sample as a CSV row (no trailing newline). */
    static std::string csvRow(const WindowSample& w);

    void writeCsv(std::ostream& os) const;
    /** @return false on I/O failure. */
    bool writeCsv(const std::string& path) const;

    void writeJson(std::ostream& os) const;
    /** @return false on I/O failure. */
    bool writeJson(const std::string& path) const;

  private:
    std::vector<WindowSample> samples_;
};

} // namespace pythia::harness
