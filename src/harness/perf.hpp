/**
 * @file
 * PerfReport — machine-readable performance accounting for benches.
 *
 * Every bench binary can be asked (via --perf-out=<path> or
 * perf_out=<path>) to write a BENCH_<name>.json artifact describing how
 * fast its sweeps executed: wall time, worker count, simulations per
 * second and the p50/p95 of per-job wall times. The artifact is the
 * per-PR perf trajectory the ROADMAP asks for: comparing the same
 * bench's JSON across commits shows whether the simulator core got
 * faster or slower.
 *
 * Schema ("pythia-perf-v1", documented in DESIGN.md §7):
 *
 *     {
 *       "schema": "pythia-perf-v1",
 *       "bench": "bench_fig01_motivation",
 *       "jobs": 4,
 *       "sweeps": [
 *         {"experiments": 18, "jobs": 4, "seconds": 1.234,
 *          "sims_per_sec": 14.58, "job_p50_s": 0.041,
 *          "job_p95_s": 0.102}
 *       ],
 *       "total": {"experiments": 18, "seconds": 1.234,
 *                 "sims_per_sec": 14.58},
 *       "components": {
 *         "qvstore_max": {"ns_per_op": 102.4, "ops": 1000000},
 *         "eq_insert": {"ns_per_op": 18.7, "ops": 5000000}
 *       }
 *     }
 *
 * "Simulation" counts sweep jobs (each job is one measured simulation;
 * the no-prefetching baselines Runner computes on demand are part of
 * the wall time but amortized by its cache).
 *
 * "components" (optional; still pythia-perf-v1 — consumers ignore
 * unknown keys) carries per-component microbench timings so the CI perf
 * gate can pin individual hot-path kernels, not just aggregate
 * sims/sec. Keys are component names, values ns per operation plus the
 * operation count the timing averaged over.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

namespace pythia::harness {

/**
 * Nearest-rank percentile of @p samples (p in [0,100]); 0 when empty.
 * Takes a copy because it must sort.
 */
double percentile(std::vector<double> samples, double p);

/**
 * Nearest-rank percentile over an ALREADY ASCENDING-SORTED @p sorted
 * (0 when empty) — the allocation-free core percentile() wraps.
 * Callers extracting several percentiles from one sample set (e.g.
 * serve_client's p50/p95/p99 latency block) sort once and call this.
 */
double percentileSorted(const std::vector<double>& sorted, double p);

/** Accumulated perf accounting of one bench process (all its sweeps). */
class PerfReport
{
  public:
    /** One executed sweep's timing summary. */
    struct SweepPerf
    {
        std::size_t experiments = 0; ///< jobs (simulations) executed
        unsigned jobs = 1;           ///< workers that actually ran (the
                                     ///< pool caps at the job count)
        double seconds = 0.0;        ///< wall-clock of the parallel phase
        double sims_per_sec = 0.0;   ///< experiments / seconds
        double job_p50_s = 0.0;      ///< median per-job wall time
        double job_p95_s = 0.0;      ///< p95 per-job wall time
    };

    /** @param bench Bench name stamped into the JSON ("bench" field). */
    explicit PerfReport(std::string bench = "") : bench_(std::move(bench))
    {
    }

    const std::string& bench() const { return bench_; }
    void setBench(std::string bench) { bench_ = std::move(bench); }

    /** Configured pool size, stamped into the JSON's top-level "jobs"
     *  field (individual sweeps record the capped count they ran on). */
    void setJobs(unsigned jobs) { jobs_ = jobs; }
    unsigned jobs() const { return jobs_; }

    /** Worker *processes* the bench sharded over (workers= knob;
     *  DESIGN.md §11). Stamped as a top-level "workers" field — only
     *  when nonzero, so in-process runs keep the exact historical
     *  artifact shape. Still pythia-perf-v1: consumers ignore unknown
     *  keys. */
    void setWorkers(unsigned workers) { workers_ = workers; }
    unsigned workers() const { return workers_; }

    /** Fold one executed sweep's report into the accumulated totals. */
    void addSweep(const SweepReport& report);

    /** One per-component microbench timing ("components" in the JSON). */
    struct ComponentPerf
    {
        std::string name;      ///< e.g. "qvstore_max"
        double ns_per_op = 0.0;
        std::uint64_t ops = 0; ///< operations the timing averaged over
    };

    /** Record (or overwrite) a component timing. Emission order follows
     *  first insertion, keeping the artifact diff-stable. */
    void setComponent(const std::string& name, double ns_per_op,
                      std::uint64_t ops);

    const std::vector<ComponentPerf>& components() const
    {
        return components_;
    }

    const std::vector<SweepPerf>& sweeps() const { return sweeps_; }

    std::size_t totalExperiments() const;
    double totalSeconds() const;

    /** Aggregate throughput over every sweep; 0 when nothing ran. */
    double totalSimsPerSecond() const;

    /** Render the pythia-perf-v1 JSON document. */
    std::string toJson() const;

    /**
     * Write toJson() to @p path (truncating). Safe to call after every
     * sweep: the last write always holds the complete picture.
     * @return false on I/O failure.
     */
    bool writeTo(const std::string& path) const;

  private:
    std::string bench_;
    unsigned jobs_ = 0;
    unsigned workers_ = 0;
    std::vector<SweepPerf> sweeps_;
    std::vector<ComponentPerf> components_;
};

} // namespace pythia::harness
