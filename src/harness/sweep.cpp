#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

namespace pythia::harness {

// ------------------------------------------------------------------ Sweep

Sweep::JobId
Sweep::add(ExperimentSpec spec, JobCallback on_done)
{
    const JobId id = specs_.size();
    specs_.push_back(std::move(spec));
    tasks_.emplace_back();
    Action a;
    a.is_job = true;
    a.job = id;
    a.on_job = std::move(on_done);
    actions_.push_back(std::move(a));
    return id;
}

Sweep::JobId
Sweep::addTask(TaskFn task, JobCallback on_done)
{
    const JobId id = specs_.size();
    specs_.emplace_back();
    tasks_.push_back(std::move(task));
    Action a;
    a.is_job = true;
    a.job = id;
    a.on_job = std::move(on_done);
    actions_.push_back(std::move(a));
    return id;
}

void
Sweep::then(std::function<void()> action)
{
    Action a;
    a.is_job = false;
    a.plain = std::move(action);
    actions_.push_back(std::move(a));
}

void
Sweep::grid(const std::vector<std::string>& workloads,
            const std::vector<std::string>& prefetchers,
            const std::function<ExperimentBuilder(
                const std::string&, const std::string&)>& make,
            const std::function<void(const std::string&,
                                     const std::string&,
                                     const Runner::Outcome&)>& done)
{
    for (const auto& w : workloads) {
        for (const auto& pf : prefetchers) {
            JobCallback cb;
            if (done)
                // Copy @p done: the caller's functor is often a
                // temporary that dies before the replay runs.
                cb = [done, w, pf](const Runner::Outcome& o) {
                    done(w, pf, o);
                };
            add(make(w, pf), std::move(cb));
        }
    }
}

// --------------------------------------------------------- ParallelRunner

unsigned
ParallelRunner::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs), report_os_(&std::cerr)
{
}

std::vector<Runner::Outcome>
ParallelRunner::run(Runner& runner, const Sweep& sweep)
{
    const std::size_t n = sweep.specs_.size();
    std::vector<Runner::Outcome> results(n);
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, n == 0 ? 1 : n));

    // Per-job wall times; each slot is written by exactly one worker.
    std::vector<double> job_seconds(n, 0.0);
    const auto timed_evaluate = [&](std::size_t i) {
        const auto js = std::chrono::steady_clock::now();
        results[i] = sweep.tasks_[i] ? sweep.tasks_[i](runner)
                                     : runner.evaluate(sweep.specs_[i]);
        job_seconds[i] = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - js)
                             .count();
    };

    const auto t0 = std::chrono::steady_clock::now();
    if (workers <= 1) {
        // Inline reference path: also the order the pool must match.
        for (std::size_t i = 0; i < n; ++i)
            timed_evaluate(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        // First failure *by job index*, so the rethrown error does not
        // depend on worker scheduling.
        std::mutex error_mutex;
        std::size_t error_job = n;
        std::exception_ptr error;

        auto work = [&] {
            while (!failed.load(std::memory_order_relaxed)) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    timed_evaluate(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (i < error_job) {
                        error_job = i;
                        error = std::current_exception();
                    }
                    failed.store(true, std::memory_order_relaxed);
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(work);
        for (auto& t : pool)
            t.join();
        if (error)
            std::rethrow_exception(error);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;

    report_.experiments = n;
    report_.jobs = workers;
    report_.seconds = elapsed.count();
    report_.job_seconds = std::move(job_seconds);
    if (report_os_ && n > 0) {
        char line[128];
        std::snprintf(line, sizeof line,
                      "[sweep] %zu experiments in %.3f s — %.2f exp/s "
                      "(jobs=%u)\n",
                      n, report_.seconds,
                      report_.experimentsPerSecond(), workers);
        *report_os_ << line << std::flush;
    }

    // Ordered replay: declaration order, calling thread, no locking.
    for (const Sweep::Action& a : sweep.actions_) {
        if (a.is_job) {
            if (a.on_job)
                a.on_job(results[a.job]);
        } else if (a.plain) {
            a.plain();
        }
    }
    return results;
}

} // namespace pythia::harness
