/**
 * @file
 * Metric definitions of the paper's artifact appendix (§A.6):
 *   Perf_X          = IPC_X / IPC_nopref
 *   Coverage_X      = (LLCloadmiss_nopref - LLCloadmiss_X)
 *                     / LLCloadmiss_nopref
 *   Overprediction_X = (LLCreadmiss_X - LLCreadmiss_nopref)
 *                     / LLCreadmiss_nopref
 * all measured at the LLC - main-memory boundary.
 *
 * Zero-denominator conventions (pinned by tests/test_session.cpp):
 *   - speedup: 1.0 when the baseline geomean IPC is 0 (an empty or
 *     degenerate baseline neither speeds up nor slows down a run).
 *   - coverage: 0.0 when the baseline had no demand load misses —
 *     there was nothing to cover.
 *   - overprediction: 0.0 when the baseline had no read misses, and
 *     clamped to 0.0 from below when prefetching *reduced* total reads
 *     (negative overprediction is reported as coverage, not here).
 *   - accuracy: RunResult::accuracy() — 1.0 when nothing was issued,
 *     clamped to 1.0 from above (warmup-issued prefetches can turn
 *     useful inside the measured window).
 */
#pragma once

#include "harness/timeseries.hpp"
#include "sim/system.hpp"

namespace pythia::harness {

/** Derived per-run metrics relative to the no-prefetching baseline. */
struct Metrics
{
    double speedup = 1.0;        ///< geomean IPC ratio vs baseline
    double coverage = 0.0;       ///< fraction of baseline misses removed
    double overprediction = 0.0; ///< extra memory reads vs baseline
    double accuracy = 1.0;       ///< useful / issued prefetches
};

/** Compute the paper's metrics from a prefetched and a baseline run. */
Metrics computeMetrics(const sim::RunResult& with_pf,
                       const sim::RunResult& baseline) noexcept;

/**
 * Windowed overload: the paper's metrics for ONE streamed window,
 * computed delta-against-delta from a prefetched and a baseline sample
 * taken over the same instruction window (see
 * Runner::evaluateWindowed, which aligns the two series). The
 * zero-denominator conventions above apply per window — e.g. a window
 * in which the baseline happened to miss nothing reports coverage 0.
 */
Metrics computeMetrics(const WindowSample& with_pf,
                       const WindowSample& baseline) noexcept;

/**
 * Per-window metric trajectory of a full streamed run: element i is
 * computeMetrics(run[i], baseline[i]). Throws std::invalid_argument
 * when the two series' window boundaries do not align.
 */
std::vector<Metrics> computeWindowedMetrics(const TimeSeries& with_pf,
                                            const TimeSeries& baseline);

} // namespace pythia::harness
