/**
 * @file
 * Metric definitions of the paper's artifact appendix (§A.6):
 *   Perf_X          = IPC_X / IPC_nopref
 *   Coverage_X      = (LLCloadmiss_nopref - LLCloadmiss_X)
 *                     / LLCloadmiss_nopref
 *   Overprediction_X = (LLCreadmiss_X - LLCreadmiss_nopref)
 *                     / LLCreadmiss_nopref
 * all measured at the LLC - main-memory boundary.
 */
#pragma once

#include "sim/system.hpp"

namespace pythia::harness {

/** Derived per-run metrics relative to the no-prefetching baseline. */
struct Metrics
{
    double speedup = 1.0;        ///< geomean IPC ratio vs baseline
    double coverage = 0.0;       ///< fraction of baseline misses removed
    double overprediction = 0.0; ///< extra memory reads vs baseline
    double accuracy = 1.0;       ///< useful / issued prefetches
};

/** Compute the paper's metrics from a prefetched and a baseline run. */
Metrics computeMetrics(const sim::RunResult& with_pf,
                       const sim::RunResult& baseline) noexcept;

} // namespace pythia::harness
