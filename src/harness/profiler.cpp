#include "harness/profiler.hpp"

#include <chrono>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

// gperftools CPU-profiler entry points, declared weak: resolved when
// libprofiler is linked or LD_PRELOADed, null otherwise. Signatures
// from <gperftools/profiler.h>, which is deliberately not included —
// the header need not exist in the build environment.
extern "C" {
int ProfilerStart(const char* fname) __attribute__((weak));
void ProfilerStop(void) __attribute__((weak));
void ProfilerFlush(void) __attribute__((weak));
}

namespace pythia::harness {

namespace {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

long
pidOfSelf()
{
#if defined(__unix__) || defined(__APPLE__)
    return static_cast<long>(::getpid());
#else
    return 0;
#endif
}

} // namespace

bool
ScopedProfiler::cpuProfilerLinked()
{
    return &ProfilerStart != nullptr && &ProfilerStop != nullptr;
}

ScopedProfiler::ScopedProfiler(const std::string& label, bool enabled)
    : enabled_(enabled), label_(label)
{
    if (!enabled_)
        return;
    start_ns_ = nowNs();
    if (cpuProfilerLinked()) {
        const std::string out = label_ + ".prof";
        cpu_profiler_ = ProfilerStart(out.c_str()) != 0;
        if (cpu_profiler_)
            std::fprintf(stderr, "[profile] gperftools CPU profile -> %s\n",
                         out.c_str());
        else
            std::fprintf(stderr,
                         "[profile] ProfilerStart(%s) failed; "
                         "falling back to perf markers\n",
                         out.c_str());
    }
    if (!cpu_profiler_)
        std::fprintf(stderr, "[perf-marker] begin %s pid=%ld t=%llu\n",
                     label_.c_str(), pidOfSelf(),
                     static_cast<unsigned long long>(start_ns_));
}

ScopedProfiler::~ScopedProfiler()
{
    if (!enabled_)
        return;
    const std::uint64_t end_ns = nowNs();
    if (cpu_profiler_) {
        if (&ProfilerFlush != nullptr)
            ProfilerFlush();
        ProfilerStop();
        std::fprintf(stderr, "[profile] %s: %.3f s profiled\n",
                     label_.c_str(),
                     static_cast<double>(end_ns - start_ns_) * 1e-9);
    } else {
        std::fprintf(stderr,
                     "[perf-marker] end %s pid=%ld t=%llu dur_s=%.3f\n",
                     label_.c_str(), pidOfSelf(),
                     static_cast<unsigned long long>(end_ns),
                     static_cast<double>(end_ns - start_ns_) * 1e-9);
    }
}

} // namespace pythia::harness
