#include "harness/session.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"
#include "harness/runner.hpp"
#include "sim/prefetcher_registry.hpp"
#include "snapshot/snapshot.hpp"
#include "workloads/suites.hpp"

namespace pythia::harness {

namespace {

/** Resolve a spec through the registry, plus the one construction the
 *  registry cannot express: "pythia_custom" with an explicit config
 *  object (features and action lists are not spec-string encodable). */
std::unique_ptr<sim::PrefetcherApi>
buildPrefetcher(const std::string& spec,
                const std::optional<rl::PythiaConfig>& custom)
{
    if (spec == "pythia_custom") {
        if (!custom)
            throw std::invalid_argument(
                "pythia_custom requires an explicit PythiaConfig");
        return std::make_unique<rl::PythiaPrefetcher>(*custom);
    }
    return sim::makePrefetcher(spec);
}

std::uint64_t
at(const std::vector<std::uint64_t>& v, std::size_t i)
{
    return i < v.size() ? v[i] : 0;
}

/** Stable hash of an explicit PythiaConfig: every field that changes
 *  learned-state evolution participates. */
std::string
hashPythiaConfig(const rl::PythiaConfig& cfg)
{
    std::ostringstream os;
    os << cfg.name;
    for (const auto& f : cfg.features)
        os << '|' << rl::featureName(f);
    for (std::int32_t a : cfg.actions)
        os << '|' << a;
    os << '|' << cfg.rewards.r_at << '|' << cfg.rewards.r_al << '|'
       << cfg.rewards.r_cl << '|' << cfg.rewards.r_in_high << '|'
       << cfg.rewards.r_in_low << '|' << cfg.rewards.r_np_high << '|'
       << cfg.rewards.r_np_low << '|' << cfg.alpha << '|' << cfg.gamma
       << '|' << cfg.epsilon << '|' << cfg.eq_size << '|' << cfg.degree
       << '|' << cfg.planes << '|' << cfg.plane_index_bits << '|'
       << cfg.seed;
    std::ostringstream hex;
    hex << std::hex << std::setw(16) << std::setfill('0')
        << snap::fnv1a(os.str());
    return hex.str();
}

} // namespace

// --------------------------------------------------- result wire codec

void
writeRunResult(snap::Writer& w, const sim::RunResult& r)
{
    w.vecF64(r.ipc);
    w.f64(r.ipc_geomean);
    w.u64(r.instructions);
    w.u64(r.llc_demand_load_misses);
    w.u64(r.llc_read_misses);
    w.u64(r.prefetch_issued);
    w.u64(r.prefetch_useful);
    w.u64(r.prefetch_useless);
    w.u64(r.prefetch_late);
    w.vecF64(r.dram_buckets);
    w.f64(r.dram_utilization);
    w.vecU64(r.core_cycles);
    w.vecU64(r.dram_bucket_epochs);
}

sim::RunResult
readRunResult(snap::Reader& r)
{
    sim::RunResult res;
    res.ipc = r.vecF64();
    res.ipc_geomean = r.f64();
    res.instructions = r.u64();
    res.llc_demand_load_misses = r.u64();
    res.llc_read_misses = r.u64();
    res.prefetch_issued = r.u64();
    res.prefetch_useful = r.u64();
    res.prefetch_useless = r.u64();
    res.prefetch_late = r.u64();
    res.dram_buckets = r.vecF64();
    res.dram_utilization = r.f64();
    res.core_cycles = r.vecU64();
    res.dram_bucket_epochs = r.vecU64();
    return res;
}

void
writeWindowSample(snap::Writer& w, const WindowSample& s)
{
    w.u64(s.index);
    w.u64(s.instrs_begin);
    w.u64(s.instrs_end);
    writeRunResult(w, s.delta);
    writeRunResult(w, s.cumulative);
}

WindowSample
readWindowSample(snap::Reader& r)
{
    WindowSample s;
    s.index = static_cast<std::size_t>(r.u64());
    s.instrs_begin = r.u64();
    s.instrs_end = r.u64();
    s.delta = readRunResult(r);
    s.cumulative = readRunResult(r);
    return s;
}

std::string
fingerprintFor(const ExperimentSpec& spec)
{
    std::ostringstream fp;
    fp << "format=" << snap::kSchemaName << ';';
    if (spec.mix.empty()) {
        fp << "workload=" << wl::canonicalWorkloadSpec(spec.workload)
           << ';';
    } else {
        fp << "mix_size=" << spec.mix.size() << ';';
        for (std::size_t i = 0; i < spec.mix.size(); ++i)
            fp << "mix" << i << '='
               << wl::canonicalWorkloadSpec(spec.mix[i]) << ';';
    }
    fp << "prefetcher=" << spec.prefetcher << ';'
       << "l1_prefetcher=" << spec.l1_prefetcher << ';'
       << "cores=" << spec.num_cores << ';'
       << "mtps=" << spec.mtps << ';'
       << "llc_bytes_per_core=" << spec.llc_bytes_per_core << ';'
       << "warmup_instrs=" << spec.warmup_instrs << ';'
       << "sim_instrs=" << spec.sim_instrs << ';'
       << "workload_seed=" << spec.workload_seed << ';'
       << "pythia_cfg="
       << (spec.pythia_cfg ? hashPythiaConfig(*spec.pythia_cfg) : "-")
       << ';';
    return fp.str();
}

// -------------------------------------------------------- window algebra

sim::RunResult
windowDelta(const sim::RunResult& now, const sim::RunResult& prev)
{
    sim::RunResult d;
    d.instructions = now.instructions - prev.instructions;
    d.llc_demand_load_misses =
        now.llc_demand_load_misses - prev.llc_demand_load_misses;
    d.llc_read_misses = now.llc_read_misses - prev.llc_read_misses;
    d.prefetch_issued = now.prefetch_issued - prev.prefetch_issued;
    d.prefetch_useful = now.prefetch_useful - prev.prefetch_useful;
    d.prefetch_useless = now.prefetch_useless - prev.prefetch_useless;
    d.prefetch_late = now.prefetch_late - prev.prefetch_late;

    const std::size_t cores = now.core_cycles.size();
    d.core_cycles.resize(cores);
    d.ipc.resize(cores);
    std::vector<double> ipcs;
    ipcs.reserve(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        d.core_cycles[c] = now.core_cycles[c] - at(prev.core_cycles, c);
        const double cycles = static_cast<double>(d.core_cycles[c]);
        const double ipc =
            cycles > 0 ? static_cast<double>(d.instructions) / cycles
                       : 0.0;
        d.ipc[c] = ipc;
        ipcs.push_back(std::max(ipc, 1e-9));
    }
    d.ipc_geomean = cores > 0 ? geomean(ipcs) : 0.0;

    const std::size_t buckets = now.dram_bucket_epochs.size();
    d.dram_bucket_epochs.resize(buckets);
    std::uint64_t total_epochs = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
        d.dram_bucket_epochs[b] =
            now.dram_bucket_epochs[b] - at(prev.dram_bucket_epochs, b);
        total_epochs += d.dram_bucket_epochs[b];
    }
    d.dram_buckets.assign(buckets, 0.0);
    if (total_epochs > 0)
        for (std::size_t b = 0; b < buckets; ++b)
            d.dram_buckets[b] =
                static_cast<double>(d.dram_bucket_epochs[b]) /
                static_cast<double>(total_epochs);
    // The utilization EWMA is a point sample, not a counter: a delta
    // carries the reading at its own window end.
    d.dram_utilization = now.dram_utilization;
    return d;
}

void
accumulateDelta(sim::RunResult& acc, const sim::RunResult& delta)
{
    acc.instructions += delta.instructions;
    acc.llc_demand_load_misses += delta.llc_demand_load_misses;
    acc.llc_read_misses += delta.llc_read_misses;
    acc.prefetch_issued += delta.prefetch_issued;
    acc.prefetch_useful += delta.prefetch_useful;
    acc.prefetch_useless += delta.prefetch_useless;
    acc.prefetch_late += delta.prefetch_late;

    const std::size_t cores = delta.core_cycles.size();
    acc.core_cycles.resize(std::max(acc.core_cycles.size(), cores), 0);
    for (std::size_t c = 0; c < cores; ++c)
        acc.core_cycles[c] += delta.core_cycles[c];
    acc.ipc.assign(acc.core_cycles.size(), 0.0);
    std::vector<double> ipcs;
    ipcs.reserve(acc.core_cycles.size());
    for (std::size_t c = 0; c < acc.core_cycles.size(); ++c) {
        const double cycles = static_cast<double>(acc.core_cycles[c]);
        const double ipc =
            cycles > 0 ? static_cast<double>(acc.instructions) / cycles
                       : 0.0;
        acc.ipc[c] = ipc;
        ipcs.push_back(std::max(ipc, 1e-9));
    }
    acc.ipc_geomean = acc.core_cycles.empty() ? 0.0 : geomean(ipcs);

    const std::size_t buckets = delta.dram_bucket_epochs.size();
    acc.dram_bucket_epochs.resize(
        std::max(acc.dram_bucket_epochs.size(), buckets), 0);
    std::uint64_t total_epochs = 0;
    for (std::size_t b = 0; b < acc.dram_bucket_epochs.size(); ++b) {
        if (b < buckets)
            acc.dram_bucket_epochs[b] += delta.dram_bucket_epochs[b];
        total_epochs += acc.dram_bucket_epochs[b];
    }
    acc.dram_buckets.assign(acc.dram_bucket_epochs.size(), 0.0);
    if (total_epochs > 0)
        for (std::size_t b = 0; b < acc.dram_bucket_epochs.size(); ++b)
            acc.dram_buckets[b] =
                static_cast<double>(acc.dram_bucket_epochs[b]) /
                static_cast<double>(total_epochs);
    acc.dram_utilization = delta.dram_utilization;
}

sim::RunResult
composeDeltas(const std::vector<sim::RunResult>& deltas)
{
    sim::RunResult acc;
    for (const sim::RunResult& d : deltas)
        accumulateDelta(acc, d);
    return acc;
}

// ------------------------------------------------------------ SimSession

SimSession::SimSession(ExperimentSpec spec)
    : SimSession(std::move(spec),
                 std::vector<std::unique_ptr<wl::Workload>>{})
{
}

SimSession::SimSession(ExperimentSpec spec,
                       std::vector<std::unique_ptr<wl::Workload>> workloads)
    : spec_(std::move(spec))
{
    if (workloads.empty())
        workloads = workloadsFor(spec_);
    if (workloads.size() != spec_.num_cores)
        throw std::invalid_argument(
            "SimSession: " + std::to_string(workloads.size()) +
            " injected workloads for " + std::to_string(spec_.num_cores) +
            " cores");
    system_ = std::make_unique<sim::System>(systemConfigFor(spec_),
                                            std::move(workloads));
    for (std::uint32_t c = 0; c < spec_.num_cores; ++c) {
        if (auto l2 = buildPrefetcher(spec_.prefetcher, spec_.pythia_cfg))
            system_->attachL2Prefetcher(c, std::move(l2));
        if (auto l1 = buildPrefetcher(spec_.l1_prefetcher, std::nullopt))
            system_->attachL1Prefetcher(c, std::move(l1));
    }
}

void
SimSession::snapshotTo(const std::string& path) const
{
    snap::writeSnapshotFile(
        path, fingerprintFor(spec_),
        [this](snap::Writer& w) { writeSessionBody(w); });
}

std::vector<std::uint8_t>
SimSession::snapshotBytes() const
{
    return snap::writeSnapshotBytes(
        fingerprintFor(spec_),
        [this](snap::Writer& w) { writeSessionBody(w); });
}

void
SimSession::writeSessionBody(snap::Writer& w) const
{
    w.beginSection("session");
    w.boolean(warmup_done_);
    w.boolean(run_ended_);
    w.u64(advanced_);
    w.u64(windows_completed_);
    w.boolean(has_window_);
    writeRunResult(w, cumulative_);
    writeWindowSample(w, last_);
    w.endSection();
    system_->saveState(w);
}

SimSession
SimSession::resumeFrom(ExperimentSpec spec, const std::string& path)
{
    return resumeFrom(std::move(spec), path,
                      std::vector<std::unique_ptr<wl::Workload>>{});
}

SimSession
SimSession::resumeFrom(ExperimentSpec spec, const std::string& path,
                       std::vector<std::unique_ptr<wl::Workload>> workloads)
{
    SimSession session(std::move(spec), std::move(workloads));
    const snap::SnapshotFile file =
        snap::readSnapshotFile(path, fingerprintFor(session.spec_));
    session.restoreSessionBody(file);
    return session;
}

SimSession
SimSession::resumeFromBytes(ExperimentSpec spec,
                            std::vector<std::uint8_t> bytes,
                            std::vector<std::unique_ptr<wl::Workload>>
                                workloads,
                            const std::string& label)
{
    SimSession session(std::move(spec), std::move(workloads));
    const snap::SnapshotFile file = snap::readSnapshotBytes(
        std::move(bytes), fingerprintFor(session.spec_), label);
    session.restoreSessionBody(file);
    return session;
}

void
SimSession::restoreSessionBody(const snap::SnapshotFile& file)
{
    SimSession& session = *this;
    snap::Reader r = file.body();
    r.enterSection("session");
    session.warmup_done_ = r.boolean();
    session.run_ended_ = r.boolean();
    session.advanced_ = r.u64();
    session.windows_completed_ = r.u64();
    session.has_window_ = r.boolean();
    session.cumulative_ = readRunResult(r);
    session.last_ = readWindowSample(r);
    r.leaveSection();
    session.system_->loadState(r);
    if (!r.atEnd())
        throw snap::CorruptError(
            "snapshot corrupt: " + std::to_string(r.remaining()) +
            " unconsumed bytes after machine state");
}

void
SimSession::addObserver(SessionObserver* observer)
{
    if (observer)
        observers_.push_back(observer);
}

void
SimSession::addObserver(std::shared_ptr<SessionObserver> observer)
{
    if (!observer)
        return;
    observers_.push_back(observer.get());
    owned_observers_.push_back(std::move(observer));
}

void
SimSession::runWarmup()
{
    if (warmup_done_)
        return;
    system_->warmup(spec_.warmup_instrs);
    warmup_done_ = true;
    for (SessionObserver* o : observers_)
        o->onWarmupEnd(*this);
}

std::uint64_t
SimSession::advance(std::uint64_t n_instrs)
{
    if (!warmup_done_)
        runWarmup();
    const std::uint64_t step = std::min(n_instrs, instrsRemaining());
    if (step == 0)
        return 0;
    if (advanced_ == 0)
        system_->beginMeasurement();

    WindowSample sample;
    sample.index = windows_completed_;
    sample.instrs_begin = advanced_;
    advanced_ += step;
    sample.instrs_end = advanced_;
    system_->stepMeasuredTo(advanced_);
    sample.cumulative = system_->collectResult();
    sample.delta = windowDelta(sample.cumulative, cumulative_);

    cumulative_ = sample.cumulative;
    last_ = sample;
    has_window_ = true;
    ++windows_completed_;

    for (SessionObserver* o : observers_)
        o->onWindowEnd(*this, last_);
    if (done())
        notifyRunEndOnce();
    return step;
}

sim::RunResult
SimSession::runToCompletion()
{
    if (!warmup_done_)
        runWarmup();
    if (!done())
        advance(instrsRemaining());
    else
        notifyRunEndOnce(); // zero-budget or already-finished session
    return cumulative_;
}

SimSession::Snapshot
SimSession::snapshot() const
{
    Snapshot snap;
    snap.cumulative = cumulative_;
    snap.last_window = last_;
    snap.windows = windows_completed_;
    return snap;
}

const WindowSample&
SimSession::lastWindow() const
{
    if (!has_window_)
        throw std::logic_error(
            "SimSession::lastWindow(): no window advanced yet");
    return last_;
}

void
SimSession::notifyRunEndOnce()
{
    if (run_ended_)
        return;
    run_ended_ = true;
    for (SessionObserver* o : observers_)
        o->onRunEnd(*this, cumulative_);
}

} // namespace pythia::harness
