#include "harness/metrics.hpp"

#include <stdexcept>
#include <string>

namespace pythia::harness {

Metrics
computeMetrics(const sim::RunResult& with_pf,
               const sim::RunResult& baseline) noexcept
{
    // Straight-line arithmetic; the only branches guard the
    // division-by-zero degenerate cases (empty baseline runs). Keeps
    // the exact operation order the golden-metrics suite pins.
    Metrics m;
    if (baseline.ipc_geomean > 0.0)
        m.speedup = with_pf.ipc_geomean / baseline.ipc_geomean;

    if (baseline.llc_demand_load_misses > 0) {
        const double base =
            static_cast<double>(baseline.llc_demand_load_misses);
        m.coverage =
            (base - static_cast<double>(with_pf.llc_demand_load_misses)) /
            base;
    }
    if (baseline.llc_read_misses > 0) {
        const double base =
            static_cast<double>(baseline.llc_read_misses);
        const double extra =
            static_cast<double>(with_pf.llc_read_misses) - base;
        m.overprediction = extra > 0.0 ? extra / base : 0.0;
    }
    m.accuracy = with_pf.accuracy();
    return m;
}

Metrics
computeMetrics(const WindowSample& with_pf,
               const WindowSample& baseline) noexcept
{
    return computeMetrics(with_pf.delta, baseline.delta);
}

std::vector<Metrics>
computeWindowedMetrics(const TimeSeries& with_pf,
                       const TimeSeries& baseline)
{
    if (with_pf.size() != baseline.size())
        throw std::invalid_argument(
            "computeWindowedMetrics: series lengths differ (" +
            std::to_string(with_pf.size()) + " vs " +
            std::to_string(baseline.size()) + ")");
    std::vector<Metrics> out;
    out.reserve(with_pf.size());
    for (std::size_t i = 0; i < with_pf.size(); ++i) {
        if (with_pf[i].instrs_begin != baseline[i].instrs_begin ||
            with_pf[i].instrs_end != baseline[i].instrs_end)
            throw std::invalid_argument(
                "computeWindowedMetrics: window " + std::to_string(i) +
                " boundaries differ between run and baseline");
        out.push_back(computeMetrics(with_pf[i], baseline[i]));
    }
    return out;
}

} // namespace pythia::harness
