#include "harness/metrics.hpp"

namespace pythia::harness {

Metrics
computeMetrics(const sim::RunResult& with_pf,
               const sim::RunResult& baseline) noexcept
{
    // Straight-line arithmetic; the only branches guard the
    // division-by-zero degenerate cases (empty baseline runs). Keeps
    // the exact operation order the golden-metrics suite pins.
    Metrics m;
    if (baseline.ipc_geomean > 0.0)
        m.speedup = with_pf.ipc_geomean / baseline.ipc_geomean;

    if (baseline.llc_demand_load_misses > 0) {
        const double base =
            static_cast<double>(baseline.llc_demand_load_misses);
        m.coverage =
            (base - static_cast<double>(with_pf.llc_demand_load_misses)) /
            base;
    }
    if (baseline.llc_read_misses > 0) {
        const double base =
            static_cast<double>(baseline.llc_read_misses);
        const double extra =
            static_cast<double>(with_pf.llc_read_misses) - base;
        m.overprediction = extra > 0.0 ? extra / base : 0.0;
    }
    m.accuracy = with_pf.accuracy();
    return m;
}

} // namespace pythia::harness
