#include "harness/timeseries.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace pythia::harness {

void
TimeSeries::onWindowEnd(SimSession& session, const WindowSample& w)
{
    (void)session;
    samples_.push_back(w);
}

void
TimeSeries::append(WindowSample sample)
{
    samples_.push_back(std::move(sample));
}

const sim::RunResult&
TimeSeries::finalResult() const
{
    if (samples_.empty())
        throw std::logic_error("TimeSeries::finalResult(): no samples");
    return samples_.back().cumulative;
}

sim::RunResult
TimeSeries::composeRange(std::uint64_t instrs_begin,
                         std::uint64_t instrs_end) const
{
    if (instrs_end <= instrs_begin)
        throw std::invalid_argument(
            "TimeSeries::composeRange: empty range");
    sim::RunResult acc;
    std::uint64_t cursor = instrs_begin;
    for (const WindowSample& w : samples_) {
        if (w.instrs_end <= instrs_begin)
            continue;
        if (w.instrs_begin != cursor)
            break; // misaligned start or gap — fall through to throw
        accumulateDelta(acc, w.delta);
        cursor = w.instrs_end;
        if (cursor == instrs_end)
            return acc;
        if (cursor > instrs_end)
            break; // range ends inside this window
    }
    throw std::invalid_argument(
        "TimeSeries::composeRange: [" + std::to_string(instrs_begin) +
        ", " + std::to_string(instrs_end) +
        ") does not align with recorded window boundaries");
}

const char*
TimeSeries::csvHeader()
{
    return "window,instrs_begin,instrs_end,ipc_geomean,cum_ipc_geomean,"
           "llc_demand_load_misses,llc_read_misses,prefetch_issued,"
           "prefetch_useful,prefetch_useless,prefetch_late,accuracy,"
           "cum_accuracy,dram_utilization";
}

std::string
TimeSeries::csvRow(const WindowSample& w)
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%zu,%" PRIu64 ",%" PRIu64 ",%.6g,%.6g,%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.6g,%.6g,%.6g",
        w.index, w.instrs_begin, w.instrs_end, w.delta.ipc_geomean,
        w.cumulative.ipc_geomean, w.delta.llc_demand_load_misses,
        w.delta.llc_read_misses, w.delta.prefetch_issued,
        w.delta.prefetch_useful, w.delta.prefetch_useless,
        w.delta.prefetch_late, w.delta.accuracy(),
        w.cumulative.accuracy(), w.delta.dram_utilization);
    return buf;
}

void
TimeSeries::writeCsv(std::ostream& os) const
{
    os << csvHeader() << "\n";
    for (const WindowSample& w : samples_)
        os << csvRow(w) << "\n";
}

bool
TimeSeries::writeCsv(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeCsv(f);
    return static_cast<bool>(f);
}

void
TimeSeries::writeJson(std::ostream& os) const
{
    os << "{\n  \"schema\": \"pythia-timeseries-v1\",\n  \"windows\": [";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const WindowSample& w = samples_[i];
        char buf[640];
        std::snprintf(
            buf, sizeof buf,
            "%s\n    {\"window\": %zu, \"instrs_begin\": %" PRIu64
            ", \"instrs_end\": %" PRIu64
            ", \"ipc_geomean\": %.9g, \"cum_ipc_geomean\": %.9g"
            ", \"llc_demand_load_misses\": %" PRIu64
            ", \"llc_read_misses\": %" PRIu64
            ", \"prefetch_issued\": %" PRIu64
            ", \"prefetch_useful\": %" PRIu64
            ", \"prefetch_useless\": %" PRIu64
            ", \"prefetch_late\": %" PRIu64
            ", \"accuracy\": %.9g, \"cum_accuracy\": %.9g"
            ", \"dram_utilization\": %.9g}",
            i > 0 ? "," : "", w.index, w.instrs_begin, w.instrs_end,
            w.delta.ipc_geomean, w.cumulative.ipc_geomean,
            w.delta.llc_demand_load_misses, w.delta.llc_read_misses,
            w.delta.prefetch_issued, w.delta.prefetch_useful,
            w.delta.prefetch_useless, w.delta.prefetch_late,
            w.delta.accuracy(), w.cumulative.accuracy(),
            w.delta.dram_utilization);
        os << buf;
    }
    os << "\n  ]\n}\n";
}

bool
TimeSeries::writeJson(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeJson(f);
    return static_cast<bool>(f);
}

} // namespace pythia::harness
