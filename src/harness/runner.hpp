/**
 * @file
 * Experiment runner: builds a System for a named workload + prefetcher +
 * machine configuration, performs the paper's warmup-then-measure
 * methodology, and caches no-prefetching baselines so suite-wide sweeps
 * pay for each baseline only once.
 *
 * Simulation lengths are scaled-down analogues of the paper's 100M-warmup
 * / 500M-measure windows, chosen so the full benchmark set completes on a
 * laptop; the relative comparisons the figures make are preserved (see
 * DESIGN.md §4).
 */
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/configs.hpp"
#include "harness/metrics.hpp"
#include "sim/system.hpp"

namespace pythia::harness {

/**
 * Everything that defines one simulation run. Prefetchers are named by
 * registry spec strings (sim/prefetcher_registry.hpp) — parameterized
 * ("spp:max_lookahead=4", "pythia:gamma=0.5") and composed
 * ("stride+spp+bingo") specs included. Usually built through the fluent
 * ExperimentBuilder (harness/experiment.hpp).
 */
struct ExperimentSpec
{
    std::string workload;            ///< catalog name (ignored if mix set)
    std::vector<std::string> mix;    ///< heterogeneous multi-core mix
    std::string prefetcher = "none"; ///< L2 prefetcher spec
    std::string l1_prefetcher = "none"; ///< L1 prefetcher spec (multi-level)
    std::uint32_t num_cores = 1;
    std::uint32_t mtps = 2400;
    std::uint64_t llc_bytes_per_core = 2ull << 20;
    std::uint64_t warmup_instrs = 100'000;
    std::uint64_t sim_instrs = 300'000;
    std::uint64_t workload_seed = 0;  ///< 0 = catalog default
    /** Optional explicit Pythia configuration; used when prefetcher is
     *  "pythia_custom". */
    std::optional<rl::PythiaConfig> pythia_cfg;
};

/**
 * All prefetcher names the harness accepts (excluding "none" and the
 * config-object-driven "pythia_custom"). Thin wrapper over
 * sim::prefetcherNames(); construction itself goes through
 * sim::makePrefetcher(spec).
 */
std::vector<std::string> harnessPrefetcherNames();

/** Translate an ExperimentSpec into a full SystemConfig. */
sim::SystemConfig systemConfigFor(const ExperimentSpec& spec);

/** Build the per-core workload list for @p spec (clones for homogeneous
 *  multi-core runs, catalog lookups for heterogeneous mixes). */
std::vector<std::unique_ptr<wl::Workload>>
workloadsFor(const ExperimentSpec& spec);

/** Run one experiment end to end (construct, warm up, measure). */
sim::RunResult simulate(const ExperimentSpec& spec);

/**
 * Runner with baseline caching: evaluate() returns the run, the matching
 * no-prefetching baseline (computed at most once per machine+workload
 * key) and the derived paper metrics.
 *
 * Thread-safe: any number of ParallelRunner workers may call evaluate()
 * on one shared Runner. The cache holds a shared_future per baseline
 * key; the first thread to need a key claims it under the lock and
 * simulates outside it, while every other thread requesting the same
 * key blocks on the future — each baseline is computed exactly once,
 * never raced and never duplicated.
 */
class Runner
{
  public:
    struct Outcome
    {
        sim::RunResult run;
        sim::RunResult baseline;
        Metrics metrics;
    };

    /** Evaluate @p spec against its cached no-prefetching baseline. */
    Outcome evaluate(const ExperimentSpec& spec);

    /** Number of baseline simulations performed (or claimed) so far. */
    std::size_t baselinesComputed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return baselines_.size();
    }

    /**
     * Cache key of the no-prefetching baseline @p spec evaluates
     * against: every ExperimentSpec field that can change the baseline
     * run, unambiguously encoded. Exposed for regression tests.
     */
    static std::string baselineKey(const ExperimentSpec& spec);

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<sim::RunResult>> baselines_;
};

} // namespace pythia::harness
