/**
 * @file
 * Experiment runner: builds a System for a named workload + prefetcher +
 * machine configuration, performs the paper's warmup-then-measure
 * methodology, and caches no-prefetching baselines so suite-wide sweeps
 * pay for each baseline only once.
 *
 * Simulation lengths are scaled-down analogues of the paper's 100M-warmup
 * / 500M-measure windows, chosen so the full benchmark set completes on a
 * laptop; the relative comparisons the figures make are preserved (see
 * DESIGN.md §4).
 */
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/configs.hpp"
#include "harness/metrics.hpp"
#include "harness/session.hpp"
#include "harness/spec.hpp"
#include "harness/timeseries.hpp"
#include "sim/system.hpp"

namespace pythia::harness {

/**
 * All prefetcher names the harness accepts (excluding "none" and the
 * config-object-driven "pythia_custom"). Thin wrapper over
 * sim::prefetcherNames(); construction itself goes through
 * sim::makePrefetcher(spec).
 */
std::vector<std::string> harnessPrefetcherNames();

/** Translate an ExperimentSpec into a full SystemConfig. */
sim::SystemConfig systemConfigFor(const ExperimentSpec& spec);

/** Build the per-core workload list for @p spec (clones for homogeneous
 *  multi-core runs, per-entry resolution for heterogeneous mixes).
 *  Accepts catalog names and registry workload specs alike. */
std::vector<std::unique_ptr<wl::Workload>>
workloadsFor(const ExperimentSpec& spec);

/**
 * Run one experiment end to end (construct, warm up, measure).
 *
 * Thin wrapper over the streaming API: opens a SimSession
 * (harness/session.hpp) and spends the whole sim_instrs budget in one
 * window, which is bit-identical to the historical batch loop — the
 * golden-metrics suite pins exactly this path.
 */
sim::RunResult simulate(const ExperimentSpec& spec);

/**
 * Runner with baseline caching: evaluate() returns the run, the matching
 * no-prefetching baseline (computed at most once per machine+workload
 * key) and the derived paper metrics.
 *
 * Thread-safe: any number of ParallelRunner workers may call evaluate()
 * on one shared Runner. The cache holds a shared_future per baseline
 * key; the first thread to need a key claims it under the lock and
 * simulates outside it, while every other thread requesting the same
 * key blocks on the future — each baseline is computed exactly once,
 * never raced and never duplicated.
 */
class Runner
{
  public:
    struct Outcome
    {
        sim::RunResult run;
        sim::RunResult baseline;
        Metrics metrics;
    };

    /**
     * Windowed evaluation: the prefetched run and its baseline both
     * execute as streamed sessions over the same window boundaries.
     */
    struct WindowedOutcome
    {
        TimeSeries run;      ///< per-window samples of the prefetched run
        TimeSeries baseline; ///< aligned samples of the no-pf baseline
        Outcome final;       ///< cumulative run/baseline + paper metrics
    };

    /** Evaluate @p spec against its cached no-prefetching baseline. */
    Outcome evaluate(const ExperimentSpec& spec);

    /**
     * Enable the warm-state cache: every session this runner opens
     * (runs and baselines alike) snapshots its post-warmup machine
     * state into @p dir as a pythia-snap-v1 file keyed by the spec's
     * configuration fingerprint, and later sessions with the same
     * fingerprint restore it instead of re-simulating the warmup. A
     * restored run is bit-identical to a cold one (DESIGN.md §9).
     * Stale or corrupt cache entries are ignored with a warning and
     * re-warmed cold; prefetchers that cannot serialize simply skip
     * persistence. Pass "" to disable. The directory must exist.
     */
    void setSnapshotDir(std::string dir);

    /** The warm-state cache directory ("" when disabled). */
    std::string snapshotDir() const;

    /** Sessions restored from the warm-state cache. */
    std::size_t warmHits() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return warm_hits_;
    }

    /** Sessions warmed cold while the cache was enabled. */
    std::size_t warmMisses() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return warm_misses_;
    }

    /**
     * Evaluate @p spec as a streamed session observed at
     * @p window_ends — strictly increasing cumulative measured-instr
     * boundaries whose last entry must equal spec.sim_instrs (throws
     * std::invalid_argument otherwise). The matching no-prefetching
     * baseline is streamed over the same boundaries and cached per
     * (baseline key, boundaries) with the same once-semantics as
     * evaluate()'s batch cache, so suite-wide windowed sweeps pay for
     * each baseline series exactly once. Thread-safe.
     *
     * With a single boundary {spec.sim_instrs} this degenerates to
     * evaluate(): final run/baseline/metrics are bit-identical.
     */
    WindowedOutcome evaluateWindowed(
        const ExperimentSpec& spec,
        const std::vector<std::uint64_t>& window_ends);

    /** Number of baseline simulations performed (or claimed) so far. */
    std::size_t baselinesComputed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return baselines_.size();
    }

    /** Number of windowed baseline series computed (or claimed). */
    std::size_t windowedBaselinesComputed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return windowed_baselines_.size();
    }

    /**
     * Cache key of the no-prefetching baseline @p spec evaluates
     * against: every ExperimentSpec field that can change the baseline
     * run, unambiguously encoded. Exposed for regression tests.
     */
    static std::string baselineKey(const ExperimentSpec& spec);

  private:
    /** Open a post-warmup session for @p spec, restoring from the
     *  warm-state cache when possible (and populating it when not). */
    SimSession openWarmSession(const ExperimentSpec& spec);

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<sim::RunResult>> baselines_;
    std::map<std::string, std::shared_future<TimeSeries>>
        windowed_baselines_;
    std::string snapshot_dir_;
    std::size_t warm_hits_ = 0;
    std::size_t warm_misses_ = 0;
};

} // namespace pythia::harness
