/**
 * @file
 * ScopedProfiler — optional CPU-profiler hook for the bench binaries
 * (the profile→optimize→golden-verify loop of DESIGN.md §10).
 *
 * Benches accept profile=1; while a ScopedProfiler is alive the bench's
 * measured region is profiled with whatever is available:
 *
 *  - When the process is linked (or LD_PRELOADed) against gperftools'
 *    libprofiler, its ProfilerStart/ProfilerStop are called with a
 *    <bench>.prof output file, ready for pprof. The symbols are
 *    declared weak, so the binary builds and runs without gperftools —
 *    no build-system dependency, matching the repo's no-new-deps rule.
 *  - Otherwise the fallback emits perf-marker lines on stderr
 *    ("[perf-marker] begin/end <label> pid=<pid> t=<ns>") that bracket
 *    the region, so an external sampler (`perf record -p <pid>`, or
 *    timestamp-correlated logs) can be aligned with the bench phase.
 *
 * Either way the region's wall time is reported on destruction, making
 * profile=1 harmless (and mildly useful) even with no profiler present.
 */
#pragma once

#include <cstdint>
#include <string>

namespace pythia::harness {

/** RAII profiling region: starts on construction when @p enabled,
 *  stops/reports on destruction. Non-copyable, non-movable. */
class ScopedProfiler
{
  public:
    /**
     * @param label   Region label; the CPU-profile output file (when
     *                gperftools is present) is "<label>.prof".
     * @param enabled Off = fully inert (the profile=0 default).
     */
    ScopedProfiler(const std::string& label, bool enabled);
    ~ScopedProfiler();

    ScopedProfiler(const ScopedProfiler&) = delete;
    ScopedProfiler& operator=(const ScopedProfiler&) = delete;

    /** Whether a real CPU profiler (gperftools) is linked into this
     *  process, as opposed to the perf-marker fallback. */
    static bool cpuProfilerLinked();

  private:
    bool enabled_ = false;
    bool cpu_profiler_ = false;
    std::string label_;
    std::uint64_t start_ns_ = 0;
};

} // namespace pythia::harness
