#include "harness/perf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace pythia::harness {

double
percentileSorted(const std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    p = std::min(100.0, std::max(0.0, p));
    // Nearest-rank: smallest index whose rank covers p percent.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
}

double
percentile(std::vector<double> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    return percentileSorted(samples, p);
}

void
PerfReport::addSweep(const SweepReport& report)
{
    SweepPerf s;
    s.experiments = report.experiments;
    s.jobs = report.jobs;
    s.seconds = report.seconds;
    s.sims_per_sec = report.experimentsPerSecond();
    s.job_p50_s = percentile(report.job_seconds, 50.0);
    s.job_p95_s = percentile(report.job_seconds, 95.0);
    sweeps_.push_back(s);
}

void
PerfReport::setComponent(const std::string& name, double ns_per_op,
                         std::uint64_t ops)
{
    for (auto& c : components_) {
        if (c.name == name) {
            c.ns_per_op = ns_per_op;
            c.ops = ops;
            return;
        }
    }
    components_.push_back(ComponentPerf{name, ns_per_op, ops});
}

std::size_t
PerfReport::totalExperiments() const
{
    std::size_t n = 0;
    for (const auto& s : sweeps_)
        n += s.experiments;
    return n;
}

double
PerfReport::totalSeconds() const
{
    double t = 0.0;
    for (const auto& s : sweeps_)
        t += s.seconds;
    return t;
}

double
PerfReport::totalSimsPerSecond() const
{
    const double t = totalSeconds();
    return t > 0.0 ? static_cast<double>(totalExperiments()) / t : 0.0;
}

namespace {

/// JSON-safe number: finite values as shortest round-trip decimal.
std::string
num(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

/// Minimal string escape (bench names are plain identifiers, but a
/// path-derived name could carry quotes or backslashes).
std::string
esc(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out += c;
    }
    return out;
}

} // namespace

std::string
PerfReport::toJson() const
{
    std::string json;
    json += "{\n";
    json += "  \"schema\": \"pythia-perf-v1\",\n";
    json += "  \"bench\": \"" + esc(bench_) + "\",\n";
    json += "  \"jobs\": " + std::to_string(jobs_) + ",\n";
    if (workers_ > 0)
        json += "  \"workers\": " + std::to_string(workers_) + ",\n";
    json += "  \"sweeps\": [";
    for (std::size_t i = 0; i < sweeps_.size(); ++i) {
        const SweepPerf& s = sweeps_[i];
        json += (i == 0 ? "\n" : ",\n");
        json += "    {\"experiments\": " + std::to_string(s.experiments) +
                ", \"jobs\": " + std::to_string(s.jobs) +
                ", \"seconds\": " + num(s.seconds) +
                ", \"sims_per_sec\": " + num(s.sims_per_sec) +
                ", \"job_p50_s\": " + num(s.job_p50_s) +
                ", \"job_p95_s\": " + num(s.job_p95_s) + "}";
    }
    json += sweeps_.empty() ? "],\n" : "\n  ],\n";
    json += "  \"total\": {\"experiments\": " +
            std::to_string(totalExperiments()) +
            ", \"seconds\": " + num(totalSeconds()) +
            ", \"sims_per_sec\": " + num(totalSimsPerSecond()) + "}";
    if (!components_.empty()) {
        json += ",\n  \"components\": {";
        for (std::size_t i = 0; i < components_.size(); ++i) {
            const ComponentPerf& c = components_[i];
            json += (i == 0 ? "\n" : ",\n");
            json += "    \"" + esc(c.name) +
                    "\": {\"ns_per_op\": " + num(c.ns_per_op) +
                    ", \"ops\": " + std::to_string(c.ops) + "}";
        }
        json += "\n  }";
    }
    json += "\n}\n";
    return json;
}

bool
PerfReport::writeTo(const std::string& path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

} // namespace pythia::harness
