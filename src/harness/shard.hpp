/**
 * @file
 * Sharded sweep execution service: a coordinator that partitions a
 * Sweep's job grid across local worker *processes* (the `sweep_worker`
 * tool target), promoting harness::Sweep from the in-process thread
 * pool of harness::ParallelRunner to a crash-tolerant multi-process
 * fleet (ROADMAP item 3, DESIGN.md §11).
 *
 * Three layers, each versioned and testable on its own:
 *
 *  1. **Wire format** (`pythia-shard-v1`): length-prefixed frames over
 *     anonymous pipes. The coordinator sends a Hello (schema name +
 *     version + worker index + shared snapshot dir) and then Job frames
 *     (job id + full ExperimentSpec); the worker answers each with a
 *     Result frame (job id + Runner::Outcome + wall seconds, or a typed
 *     error). All payloads ride the snap::Writer/Reader codec, so every
 *     value is fixed-width little-endian and floats travel as IEEE-754
 *     bit patterns — a Result deserializes bit-identically on the
 *     coordinator.
 *
 *  2. **Durable journal** (`pythia-journal-v1`): an append-only file of
 *     per-job result records, each length-prefixed and FNV-1a-64
 *     checksummed, under a header carrying a sweep fingerprint built
 *     from the same canonical spec fingerprints the snapshot subsystem
 *     uses. A coordinator killed mid-sweep resumes from its last
 *     *flushed* record: completed jobs replay from the journal
 *     bit-identically, only the missing ones re-execute. A truncated
 *     tail record (the crash landed mid-append) is discarded with a
 *     warning and its job re-runs; a corrupted checksum or a
 *     fingerprint mismatch fails loudly with a typed error naming the
 *     offending record (mirroring the snapshot subsystem's field-diff
 *     diagnostics).
 *
 *  3. **Scheduling**: workers pull — each Result frees the worker for
 *     the next pending job, so fast workers naturally take more of the
 *     grid. When the pending queue drains while stragglers still hold
 *     jobs, idle workers *steal*: the coordinator speculatively
 *     re-dispatches the longest-in-flight incomplete job and the first
 *     result wins (results are bit-identical by the determinism rule,
 *     so the race is benign). A worker that dies (SIGKILL, OOM, crash)
 *     is respawned and its job re-queued, up to a per-job restart
 *     budget.
 *
 * The determinism rule stays absolute: `jobs=1` inline, `jobs=N`
 * threads and `workers=N` processes produce bit-identical
 * Runner::Outcomes, and the ordered callback replay (declaration
 * order, coordinator thread) makes every bench table/CSV byte-identical
 * whatever the topology. tests/test_shard_service.cpp proves the crash
 * behavior adversarially: SIGKILLed workers, a killed coordinator,
 * truncated/corrupted journals and injected stragglers must all
 * converge to the same bytes.
 *
 * Task jobs (Sweep::addTask) carry closures, which cannot cross a
 * process boundary: they execute in the coordinator process and are
 * never journaled (re-running them on resume re-applies their side
 * effects, which spec-job replay must not skip).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "snapshot/codec.hpp"

namespace pythia::harness {

// ------------------------------------------------------------- errors

/** Base class of every sharded-execution failure. */
class ShardError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Wire-protocol violation: bad frame, schema/version mismatch,
 *  malformed payload. */
class WireError : public ShardError
{
  public:
    using ShardError::ShardError;
};

/** Base class of journal failures. */
class JournalError : public ShardError
{
  public:
    using ShardError::ShardError;
};

/** Structurally invalid journal: bad magic, corrupted checksum or
 *  undecodable record. The message names the offending record. */
class JournalCorruptError : public JournalError
{
  public:
    using JournalError::JournalError;
};

/** Journal belongs to a different sweep: the header fingerprint does
 *  not match, and the message diffs the two field by field. */
class JournalFingerprintError : public JournalError
{
  public:
    using JournalError::JournalError;
};

// ----------------------------------------------------- wire constants

/** Wire-protocol schema name, exchanged in the Hello frames. */
inline constexpr const char* kWireSchemaName = "pythia-shard-v1";

/** Current wire-protocol version. */
inline constexpr std::uint32_t kWireVersion = 1;

// -------------------------------------------------- journal constants

/** Magic bytes opening every journal file. */
inline constexpr char kJournalMagic[8] = {'P', 'Y', 'T', 'H',
                                          'J', 'R', 'N', 'L'};

/** Current journal format version. */
inline constexpr std::uint32_t kJournalVersion = 1;

/** Human-readable journal schema name (docs, error messages). */
inline constexpr const char* kJournalSchemaName = "pythia-journal-v1";

// ----------------------------------------------------- wire payloads

/** Serialize @p spec into the wire/journal codec (every field,
 *  including the optional explicit PythiaConfig). */
void writeSpec(snap::Writer& w, const ExperimentSpec& spec);

/** Inverse of writeSpec(). @throws snap::CorruptError on truncation. */
ExperimentSpec readSpec(snap::Reader& r);

/** Serialize a full Outcome (run + baseline + metrics), bit-exactly. */
void writeOutcome(snap::Writer& w, const Runner::Outcome& o);

/** Inverse of writeOutcome(). */
Runner::Outcome readOutcome(snap::Reader& r);

/**
 * Fingerprint of a sweep's job grid, embedded in the journal header:
 * "format=pythia-journal-v1;jobs=<n>;job<i>=<fnv64 of the spec's
 * snapshot fingerprint>;..." — task jobs appear as "job<i>=task".
 * Reusing snap::fingerprintFor per job means a journal can only resume
 * the exact grid that wrote it; snap::diffFingerprints renders the
 * mismatch diagnostics.
 */
std::string sweepFingerprint(const Sweep& sweep);

// ------------------------------------------------------ journal scan

/** One result record recovered from a journal. */
struct JournalEntry
{
    std::size_t job = 0;      ///< Sweep::JobId
    Runner::Outcome outcome;  ///< bit-exact as journaled
    double seconds = 0.0;     ///< worker-measured evaluate() wall time
};

/** Everything scanJournal() recovered from a journal file. */
struct JournalScan
{
    std::string fingerprint;  ///< header fingerprint (validated)
    std::vector<JournalEntry> entries;
    /** Bytes of a truncated tail record that were discarded (0 when the
     *  journal ended on a record boundary). The caller re-runs the
     *  affected job; appends must first truncate the file to
     *  valid_bytes. */
    std::size_t discarded_tail_bytes = 0;
    /** Prefix of the file that parsed cleanly (header + whole records). */
    std::size_t valid_bytes = 0;
};

/**
 * Scan @p path, validating header and every record.
 *
 * Failure taxonomy (each a distinct type, mirroring snapshot.hpp):
 *  - unreadable file                  — snap::IoError
 *  - bad magic / undecodable header or
 *    record / checksum mismatch       — JournalCorruptError (names the
 *                                       record index and byte offset)
 *  - unsupported version              — JournalError
 *  - fingerprint != expected          — JournalFingerprintError with a
 *                                       field-by-field diff
 *  - file ends mid-record             — NOT an error: the partial tail
 *                                       is reported via
 *                                       discarded_tail_bytes
 *
 * @p expected_fingerprint empty skips the fingerprint check (tools).
 * @p n_jobs bounds record job ids (records past it are corrupt);
 * pass SIZE_MAX to skip.
 */
JournalScan scanJournal(const std::string& path,
                        const std::string& expected_fingerprint,
                        std::size_t n_jobs = SIZE_MAX);

// -------------------------------------------------------- coordinator

/** Configuration of one sharded run. */
struct ShardOptions
{
    /** Worker subprocesses to spawn (clamped to the spec-job count). */
    unsigned workers = 2;

    /**
     * Path of the worker binary. Empty resolves, in order: the
     * PYTHIA_SWEEP_WORKER environment variable, then a `sweep_worker`
     * sibling of the running executable — which is where the build
     * tree puts it for every bench and test binary.
     */
    std::string worker_path;

    /**
     * Durable journal path; empty disables journaling. When the file
     * already exists its fingerprint must match the sweep
     * (JournalFingerprintError otherwise) and every recovered record
     * is trusted as that job's result — resume-to-bit-identical is
     * proven by tests/test_shard_service.cpp.
     */
    std::string journal_path;

    /** Warm-state snapshot cache directory forwarded to every worker
     *  (DESIGN.md §9); empty = cold runs. */
    std::string snapshot_dir;

    /** Speculatively re-dispatch in-flight stragglers to idle workers
     *  once the pending queue drains (first result wins). */
    bool steal = true;

    /** Times one job may see its worker die before the sweep fails. */
    unsigned max_job_restarts = 3;

    /** Destination of the per-sweep summary line (nullptr = silent). */
    std::ostream* report_os = nullptr;
};

/** Accounting of one sharded run, superset of SweepReport. */
struct ShardReport
{
    SweepReport sweep;            ///< feeds PerfReport like a pool run
    std::size_t resumed_jobs = 0; ///< satisfied from the journal
    std::size_t stolen_jobs = 0;  ///< speculative duplicate dispatches
    std::size_t worker_restarts = 0; ///< workers respawned after death
    std::size_t discarded_tail_bytes = 0; ///< journal tail dropped
};

/**
 * Multi-process executor for Sweeps; drop-in for ParallelRunner::run
 * (same outcome vector, same ordered callback replay, same first-error
 * semantics by job index).
 *
 * @p runner is used for task jobs (executed in-coordinator) only; spec
 * jobs evaluate in worker processes, each with its own Runner whose
 * baseline cache is per-process (bit-identical, merely recomputed —
 * share ShardOptions::snapshot_dir to amortize warmup instead).
 *
 * Test hooks (used by tests/test_shard_service.cpp and the CI
 * crash-resume job; ignored otherwise):
 *  - PYTHIA_SHARD_TEST_CRASH=<pre_flush|post_flush>:<k> makes the
 *    coordinator _exit(137) when the k-th worker result arrives,
 *    before/after the journal append — simulating SIGKILL at the
 *    worst instants of the durability window.
 *  - sweep_worker honors PYTHIA_SHARD_KILL_WORKER / _KILL_POINT /
 *    _KILL_AFTER and PYTHIA_SHARD_SLOW_WORKER / _SLOW_MS (see
 *    tools/sweep_worker.cpp); kill hooks apply only to generation-0
 *    spawns so a respawned worker makes progress.
 */
class ShardCoordinator
{
  public:
    explicit ShardCoordinator(ShardOptions opt = {});

    /** Execute @p sweep; see class comment. @throws ShardError /
     *  JournalError family, or the first job error by job index. */
    std::vector<Runner::Outcome> run(Runner& runner, const Sweep& sweep);

    const ShardReport& lastReport() const { return report_; }

    const ShardOptions& options() const { return opt_; }

  private:
    ShardOptions opt_;
    ShardReport report_;
};

/**
 * Worker-process entry point (the whole of tools/sweep_worker.cpp):
 * argv = {in_fd, out_fd, worker_index, generation}. Reads Job frames
 * from in_fd until EOF, evaluates each through a process-local Runner,
 * writes Result frames to out_fd. Returns the process exit code.
 */
int shardWorkerMain(int argc, char** argv);

} // namespace pythia::harness
