/**
 * @file
 * Fluent experiment definition over ExperimentSpec:
 *
 *     harness::Runner runner;
 *     auto outcome = harness::Experiment("Ligra-PageRank")
 *                        .cores(4)
 *                        .l2("pythia:gamma=0.5")
 *                        .run(runner);
 *
 * Every setter returns the builder, so sweeps read as one expression;
 * prefetcher setters take registry spec strings
 * (sim/prefetcher_registry.hpp), including parameterized and composed
 * specs. Terminal operations: spec() / build() yield the underlying
 * ExperimentSpec, simulate() performs one raw run, run(runner)
 * evaluates against the cached no-prefetching baseline, and
 * openSession() opens a streaming SimSession with any observers
 * registered through observe() already attached.
 */
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hpp"
#include "harness/session.hpp"

namespace pythia::harness {

/** Fluent builder for ExperimentSpec. Default-constructed state matches
 *  the ExperimentSpec defaults (1 core, no prefetching). */
class ExperimentBuilder
{
  public:
    ExperimentBuilder() = default;
    explicit ExperimentBuilder(std::string workload)
    {
        spec_.workload = std::move(workload);
    }

    /** Workload spec run on every core: a catalog name or a registry
     *  spec string like "stream:footprint=256M,mem_ratio=0.4",
     *  "trace:file=foo.bin" or "phase:stream@40+graph@60"
     *  (workloads/suites.hpp). */
    ExperimentBuilder& workload(std::string name)
    {
        spec_.workload = std::move(name);
        return *this;
    }

    /** Heterogeneous per-core workload mix (each entry a workload spec
     *  like workload()); size must equal cores(). */
    ExperimentBuilder& mix(std::vector<std::string> names)
    {
        spec_.mix = std::move(names);
        return *this;
    }

    ExperimentBuilder& cores(std::uint32_t n)
    {
        spec_.num_cores = n;
        return *this;
    }

    /** L2 prefetcher spec string (e.g. "spp:max_lookahead=4"). */
    ExperimentBuilder& l2(std::string spec)
    {
        spec_.prefetcher = std::move(spec);
        return *this;
    }

    /** L1 prefetcher spec string (multi-level configurations). */
    ExperimentBuilder& l1(std::string spec)
    {
        spec_.l1_prefetcher = std::move(spec);
        return *this;
    }

    /** L2 Pythia with an explicit config object (feature vectors and
     *  action lists are not expressible as spec strings). */
    ExperimentBuilder& l2Pythia(rl::PythiaConfig cfg)
    {
        spec_.prefetcher = "pythia_custom";
        spec_.pythia_cfg = std::move(cfg);
        return *this;
    }

    /** DRAM transfer rate in mega-transfers per second. */
    ExperimentBuilder& mtps(std::uint32_t mtps)
    {
        spec_.mtps = mtps;
        return *this;
    }

    ExperimentBuilder& llcBytesPerCore(std::uint64_t bytes)
    {
        spec_.llc_bytes_per_core = bytes;
        return *this;
    }

    ExperimentBuilder& warmup(std::uint64_t instrs)
    {
        spec_.warmup_instrs = instrs;
        return *this;
    }

    ExperimentBuilder& measure(std::uint64_t instrs)
    {
        spec_.sim_instrs = instrs;
        return *this;
    }

    /** Multiply both simulation windows (bounding multi-core sweeps). */
    ExperimentBuilder& scaleWindows(double factor)
    {
        spec_.warmup_instrs = static_cast<std::uint64_t>(
            static_cast<double>(spec_.warmup_instrs) * factor);
        spec_.sim_instrs = static_cast<std::uint64_t>(
            static_cast<double>(spec_.sim_instrs) * factor);
        return *this;
    }

    ExperimentBuilder& workloadSeed(std::uint64_t seed)
    {
        spec_.workload_seed = seed;
        return *this;
    }

    /**
     * Register a session observer: every session opened through
     * openSession() gets it attached (shared, so one TimeSeries can
     * also outlive the builder). Observers are not part of the spec —
     * build()/spec() stay pure data.
     */
    ExperimentBuilder& observe(std::shared_ptr<SessionObserver> observer)
    {
        observers_.push_back(std::move(observer));
        return *this;
    }

    /** The accumulated spec. */
    const ExperimentSpec& spec() const { return spec_; }

    /** The accumulated spec, by value (for storing / further tweaks). */
    ExperimentSpec build() const { return spec_; }

    /** One raw simulation (construct, warm up, measure). */
    sim::RunResult simulate() const { return harness::simulate(spec_); }

    /** Open a streaming session with the observe()d observers attached
     *  (the builder can be reused; each session gets its own machine). */
    SimSession openSession() const
    {
        SimSession session(spec_);
        for (const auto& o : observers_)
            session.addObserver(o);
        return session;
    }

    /** Evaluate against @p runner's cached no-prefetching baseline. */
    Runner::Outcome run(Runner& runner) const
    {
        return runner.evaluate(spec_);
    }

    /** Windowed evaluation through @p runner (streamed run + streamed,
     *  cached baseline over the same @p window_ends). */
    Runner::WindowedOutcome stream(
        Runner& runner, const std::vector<std::uint64_t>& window_ends) const
    {
        return runner.evaluateWindowed(spec_, window_ends);
    }

  private:
    ExperimentSpec spec_;
    std::vector<std::shared_ptr<SessionObserver>> observers_;
};

/** Entry points matching the fluent style:
 *  Experiment().workload("mix1").cores(4)... */
inline ExperimentBuilder
Experiment()
{
    return ExperimentBuilder{};
}

inline ExperimentBuilder
Experiment(std::string workload)
{
    return ExperimentBuilder{std::move(workload)};
}

} // namespace pythia::harness
