/**
 * @file
 * pythia-snap-v1 snapshot file container.
 *
 * File layout (all integers little-endian; see DESIGN.md §9):
 *
 *     8 bytes  magic "PYTHSNAP"
 *     u32      format version (currently 1)
 *     str      config fingerprint (u64 length + bytes)
 *     ...      body: named sections (str name + u64 length + payload)
 *     u64      FNV-1a 64 checksum of every preceding byte
 *
 * The fingerprint is a canonical "key=value;" rendering of every
 * ExperimentSpec field that can change simulated state. Loading a
 * snapshot under a different configuration throws FingerprintError
 * whose message diffs the two fingerprints field by field — the
 * did-you-mean diagnostic that makes a stale cache obvious instead of
 * silently mis-restoring.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "snapshot/codec.hpp"

namespace pythia::snap {

/** Magic bytes opening every snapshot file. */
inline constexpr char kMagic[8] = {'P', 'Y', 'T', 'H',
                                   'S', 'N', 'A', 'P'};

/** Current format version. */
inline constexpr std::uint32_t kFormatVersion = 1;

/** Human-readable schema name (tools, docs, BENCH artifacts). */
inline constexpr const char* kSchemaName = "pythia-snap-v1";

/**
 * Serialize a snapshot: header + fingerprint, then whatever sections
 * @p body writes, then the trailing checksum. The file is written
 * atomically (temp file + rename) so concurrent readers — e.g. sweep
 * workers sharing one warm-state cache directory — never observe a
 * partial snapshot. @throws IoError on any filesystem failure.
 */
void writeSnapshotFile(const std::string& path,
                       const std::string& fingerprint,
                       const std::function<void(Writer&)>& body);

/**
 * Serialize a snapshot into memory: the exact byte sequence
 * writeSnapshotFile() would put on disk (header + fingerprint + body
 * sections + trailing checksum), returned instead of written. The
 * daemon-side warm-snapshot pool (src/service/warm_pool.hpp) holds
 * these images so identical specs skip warmup without touching the
 * filesystem.
 */
std::vector<std::uint8_t>
writeSnapshotBytes(const std::string& fingerprint,
                   const std::function<void(Writer&)>& body);

/** A loaded, validated snapshot file. */
struct SnapshotFile
{
    std::vector<std::uint8_t> bytes; ///< whole file, kept for Reader
    std::uint32_t version = 0;
    std::string fingerprint;
    std::size_t body_offset = 0;     ///< first section byte
    std::size_t body_size = 0;       ///< bytes before the checksum

    /** Reader over the section body. */
    Reader body() const
    {
        return Reader(bytes.data() + body_offset, body_size);
    }
};

/**
 * Read and validate a snapshot file. Validation order (each failure
 * is a distinct typed error so callers can react precisely):
 *  1. readable file                 — IoError
 *  2. minimum size + magic bytes    — CorruptError
 *  3. format version               — VersionError
 *  4. trailing checksum            — CorruptError (truncation/bitrot)
 *  5. fingerprint (when @p expected_fingerprint is non-empty)
 *                                   — FingerprintError with field diff
 */
SnapshotFile readSnapshotFile(const std::string& path,
                              const std::string& expected_fingerprint);

/** Validate an in-memory snapshot image (same checks and typed errors
 *  as readSnapshotFile, diagnostics labelled @p label instead of a
 *  path). Takes ownership of @p bytes — SnapshotFile keeps them alive
 *  for its body() Reader. */
SnapshotFile readSnapshotBytes(std::vector<std::uint8_t> bytes,
                               const std::string& expected_fingerprint,
                               const std::string& label = "<memory>");

/**
 * Field-wise diff of two "key=value;" fingerprints, e.g.
 * "cores: snapshot '4' vs expected '1'". Empty when identical.
 */
std::string diffFingerprints(const std::string& got,
                             const std::string& expected);

/** Section metadata surfaced by inspectSnapshotFile(). */
struct SectionInfo
{
    std::string name;
    std::uint64_t offset = 0; ///< payload offset within the file
    std::uint64_t length = 0; ///< payload length in bytes
    std::uint64_t digest = 0; ///< FNV-1a 64 of the payload
};

/** Header + section layout of a snapshot file (tools/snapshot_inspect).
 *  Unlike readSnapshotFile this reports a bad checksum instead of
 *  throwing, so a corrupt file can still be dumped and diagnosed. */
struct SnapshotInfo
{
    std::uint32_t version = 0;
    std::string fingerprint;
    std::uint64_t file_bytes = 0;
    bool checksum_ok = false;
    std::uint64_t checksum_stored = 0;
    std::uint64_t checksum_computed = 0;
    std::vector<SectionInfo> sections;
};

/** Inspect @p path. @throws IoError / CorruptError / VersionError on
 *  files too malformed to walk (checksum mismatches do not throw). */
SnapshotInfo inspectSnapshotFile(const std::string& path);

} // namespace pythia::snap
