/**
 * @file
 * Binary codec substrate of the pythia-snap-v1 snapshot format: a
 * little-endian fixed-width Writer/Reader pair with named, length-
 * prefixed sections, plus the typed error taxonomy every snapshot
 * consumer matches on.
 *
 * Design rules (DESIGN.md §9):
 *  - Fixed-width little-endian integers only; floating-point values
 *    travel as their IEEE-754 bit patterns, so a round trip is
 *    bit-exact on every supported platform.
 *  - Every component writes into its own named section whose byte
 *    length is recorded in the stream. Readers must consume a section
 *    exactly — a component that reads too little or too much corrupts
 *    silently otherwise, and leaveSection() turns that bug into a
 *    loud CorruptError.
 *  - All structural violations throw; no snapshot API returns a
 *    half-restored object.
 */
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace pythia::snap {

// ------------------------------------------------------------- errors

/** Base class of every snapshot failure. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** File could not be read or written. */
class IoError : public SnapshotError
{
  public:
    using SnapshotError::SnapshotError;
};

/** Structurally invalid snapshot: bad magic, truncation, checksum
 *  mismatch, section under/over-consumption, impossible sizes. */
class CorruptError : public SnapshotError
{
  public:
    using SnapshotError::SnapshotError;
};

/** Snapshot was written by an unsupported format version. */
class VersionError : public SnapshotError
{
  public:
    using SnapshotError::SnapshotError;
};

/** Snapshot belongs to a different experiment configuration. */
class FingerprintError : public SnapshotError
{
  public:
    using SnapshotError::SnapshotError;
};

/** The simulated configuration contains a component (typically a
 *  prefetcher) that does not implement state serialization. */
class UnsupportedError : public SnapshotError
{
  public:
    using SnapshotError::SnapshotError;
};

// ----------------------------------------------------------- checksum

/** FNV-1a 64-bit offset basis. */
inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;

/** FNV-1a 64-bit over @p n bytes, continuing from @p seed. */
inline std::uint64_t
fnv1a(const void* data, std::size_t n, std::uint64_t seed = kFnvOffset)
{
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

/** FNV-1a 64-bit of a string (fingerprint hashing, cache file names). */
inline std::uint64_t
fnv1a(const std::string& s, std::uint64_t seed = kFnvOffset)
{
    return fnv1a(s.data(), s.size(), seed);
}

// ------------------------------------------------------------- Writer

/**
 * Append-only byte-buffer writer. Integers are emitted little-endian
 * at fixed width; strings and vectors carry a u64 length prefix.
 * Sections nest: beginSection(name) writes the name and reserves a
 * u64 length slot that endSection() patches.
 */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u16(std::uint16_t v) { putLe(v, 2); }
    void u32(std::uint32_t v) { putLe(v, 4); }
    void u64(std::uint64_t v) { putLe(v, 8); }

    void i32(std::int32_t v) { putLe(static_cast<std::uint32_t>(v), 4); }
    void i64(std::int64_t v) { putLe(static_cast<std::uint64_t>(v), 8); }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void f32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u32(bits);
    }

    void f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void bytes(const void* data, std::size_t n)
    {
        const auto* p = static_cast<const std::uint8_t*>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    void str(const std::string& s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    void vecU8(const std::vector<std::uint8_t>& v)
    {
        u64(v.size());
        bytes(v.data(), v.size());
    }

    void vecU32(const std::vector<std::uint32_t>& v)
    {
        u64(v.size());
        for (std::uint32_t x : v)
            u32(x);
    }

    void vecU64(const std::vector<std::uint64_t>& v)
    {
        u64(v.size());
        for (std::uint64_t x : v)
            u64(x);
    }

    void vecF32(const std::vector<float>& v)
    {
        u64(v.size());
        for (float x : v)
            f32(x);
    }

    void vecF64(const std::vector<double>& v)
    {
        u64(v.size());
        for (double x : v)
            f64(x);
    }

    /** Open a named section; must be balanced by endSection(). */
    void beginSection(const std::string& name)
    {
        str(name);
        open_.push_back(buf_.size());
        u64(0); // length placeholder, patched by endSection()
    }

    /** Close the innermost open section, patching its length. */
    void endSection()
    {
        if (open_.empty())
            throw std::logic_error("snap::Writer: endSection underflow");
        const std::size_t at = open_.back();
        open_.pop_back();
        const std::uint64_t len =
            static_cast<std::uint64_t>(buf_.size() - at - 8);
        for (int i = 0; i < 8; ++i)
            buf_[at + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(len >> (8 * i));
    }

    /** The accumulated bytes; sections must all be closed. */
    const std::vector<std::uint8_t>& buffer() const
    {
        if (!open_.empty())
            throw std::logic_error("snap::Writer: unclosed section");
        return buf_;
    }

    std::size_t size() const { return buf_.size(); }

  private:
    void putLe(std::uint64_t v, int width)
    {
        for (int i = 0; i < width; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf_;
    std::vector<std::size_t> open_;
};

// ------------------------------------------------------------- Reader

/**
 * Bounds-checked reader over a byte span. Any read past the end of
 * the buffer — or past the end of the innermost entered section —
 * throws CorruptError; leaveSection() additionally requires the
 * section to be consumed exactly.
 */
class Reader
{
  public:
    Reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t u16() { return static_cast<std::uint16_t>(getLe(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(getLe(4)); }
    std::uint64_t u64() { return getLe(8); }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    bool boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw CorruptError("snapshot corrupt: invalid bool encoding");
        return v != 0;
    }

    float f32()
    {
        const std::uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    std::vector<std::uint8_t> vecU8()
    {
        const std::uint64_t n = u64();
        need(n);
        std::vector<std::uint8_t> v(data_ + pos_, data_ + pos_ + n);
        pos_ += static_cast<std::size_t>(n);
        return v;
    }

    std::vector<std::uint32_t> vecU32()
    {
        const std::uint64_t n = u64();
        need(n * 4);
        std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
        for (auto& x : v)
            x = u32();
        return v;
    }

    std::vector<std::uint64_t> vecU64()
    {
        const std::uint64_t n = u64();
        need(n * 8);
        std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
        for (auto& x : v)
            x = u64();
        return v;
    }

    std::vector<float> vecF32()
    {
        const std::uint64_t n = u64();
        need(n * 4);
        std::vector<float> v(static_cast<std::size_t>(n));
        for (auto& x : v)
            x = f32();
        return v;
    }

    std::vector<double> vecF64()
    {
        const std::uint64_t n = u64();
        need(n * 8);
        std::vector<double> v(static_cast<std::size_t>(n));
        for (auto& x : v)
            x = f64();
        return v;
    }

    /**
     * Enter the next section, validating its name against @p expected.
     * Reads inside the section are bounded by its recorded length.
     */
    void enterSection(const std::string& expected)
    {
        const std::string name = str();
        if (name != expected)
            throw CorruptError("snapshot corrupt: expected section '" +
                               expected + "', found '" + name + "'");
        const std::uint64_t len = u64();
        need(len);
        section_end_.push_back(pos_ + static_cast<std::size_t>(len));
    }

    /** Leave the innermost section; it must be consumed exactly. */
    void leaveSection()
    {
        if (section_end_.empty())
            throw std::logic_error("snap::Reader: leaveSection underflow");
        const std::size_t end = section_end_.back();
        section_end_.pop_back();
        if (pos_ != end)
            throw CorruptError(
                "snapshot corrupt: section length mismatch (" +
                std::to_string(end - pos_) + " bytes unconsumed)");
    }

    /** Advance @p n bytes without decoding (tools walking sections). */
    void skip(std::uint64_t n)
    {
        need(n);
        pos_ += static_cast<std::size_t>(n);
    }

    /** Bytes left in the current section (or the whole buffer). */
    std::size_t remaining() const
    {
        const std::size_t end =
            section_end_.empty() ? size_ : section_end_.back();
        return end - pos_;
    }

    bool atEnd() const { return remaining() == 0; }

    std::size_t position() const { return pos_; }

  private:
    void need(std::uint64_t n) const
    {
        const std::size_t end =
            section_end_.empty() ? size_ : section_end_.back();
        if (n > end - pos_)
            throw CorruptError(
                "snapshot corrupt: truncated (wanted " +
                std::to_string(n) + " bytes, " +
                std::to_string(end - pos_) + " available)");
    }

    std::uint64_t getLe(int width)
    {
        need(static_cast<std::uint64_t>(width));
        std::uint64_t v = 0;
        for (int i = 0; i < width; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += static_cast<std::size_t>(width);
        return v;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::vector<std::size_t> section_end_;
};

} // namespace pythia::snap
