#include "snapshot/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace pythia::snap {

namespace {

std::vector<std::uint8_t>
readAll(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw IoError("cannot open snapshot file: " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    if (f.bad())
        throw IoError("error reading snapshot file: " + path);
    return bytes;
}

/** Parse "k=v;k=v;..." preserving key order. */
std::vector<std::pair<std::string, std::string>>
parseFingerprint(const std::string& fp)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::size_t start = 0;
    while (start < fp.size()) {
        std::size_t end = fp.find(';', start);
        if (end == std::string::npos)
            end = fp.size();
        const std::string field = fp.substr(start, end - start);
        const std::size_t eq = field.find('=');
        if (eq != std::string::npos)
            out.emplace_back(field.substr(0, eq), field.substr(eq + 1));
        else if (!field.empty())
            out.emplace_back(field, "");
        start = end + 1;
    }
    return out;
}

/** Header bytes before the fingerprint's length prefix. */
constexpr std::size_t kPreFingerprint = sizeof(kMagic) + 4;

} // namespace

std::vector<std::uint8_t>
writeSnapshotBytes(const std::string& fingerprint,
                   const std::function<void(Writer&)>& body)
{
    Writer w;
    w.bytes(kMagic, sizeof(kMagic));
    w.u32(kFormatVersion);
    w.str(fingerprint);
    body(w);
    const std::uint64_t checksum =
        fnv1a(w.buffer().data(), w.buffer().size());
    w.u64(checksum);
    return w.buffer();
}

void
writeSnapshotFile(const std::string& path, const std::string& fingerprint,
                  const std::function<void(Writer&)>& body)
{
    const std::vector<std::uint8_t> image =
        writeSnapshotBytes(fingerprint, body);

    // Atomic publish: write a sibling temp file, then rename over the
    // target. Readers racing a writer see either the old complete file
    // or the new one, never a torn write.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            throw IoError("cannot create snapshot file: " + tmp);
        f.write(reinterpret_cast<const char*>(image.data()),
                static_cast<std::streamsize>(image.size()));
        f.flush();
        if (!f)
            throw IoError("error writing snapshot file: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw IoError("cannot rename snapshot file into place: " + path);
    }
}

SnapshotFile
readSnapshotFile(const std::string& path,
                 const std::string& expected_fingerprint)
{
    return readSnapshotBytes(readAll(path), expected_fingerprint, path);
}

SnapshotFile
readSnapshotBytes(std::vector<std::uint8_t> bytes,
                  const std::string& expected_fingerprint,
                  const std::string& label)
{
    const std::string& path = label; // diagnostics name the source
    SnapshotFile sf;
    sf.bytes = std::move(bytes);

    // 2. Minimum size + magic. The smallest valid file is header +
    //    empty fingerprint + checksum.
    if (sf.bytes.size() < kPreFingerprint + 8 + 8)
        throw CorruptError("snapshot corrupt: file too small (" +
                           std::to_string(sf.bytes.size()) +
                           " bytes): " + path);
    if (std::memcmp(sf.bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw CorruptError("not a pythia snapshot (bad magic): " + path);

    Reader header(sf.bytes.data(), sf.bytes.size());
    std::uint8_t skip_magic[sizeof(kMagic)];
    for (auto& b : skip_magic)
        b = header.u8();
    (void)skip_magic;

    // 3. Format version.
    sf.version = header.u32();
    if (sf.version != kFormatVersion)
        throw VersionError(
            "snapshot format version " + std::to_string(sf.version) +
            " is not supported (this build reads version " +
            std::to_string(kFormatVersion) + "): " + path);

    // 4. Trailing checksum over everything before the final 8 bytes.
    const std::size_t payload = sf.bytes.size() - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(sf.bytes[payload + i])
                  << (8 * i);
    const std::uint64_t computed = fnv1a(sf.bytes.data(), payload);
    if (stored != computed)
        throw CorruptError(
            "snapshot corrupt: checksum mismatch (file is truncated or "
            "bit-rotted; delete it and re-warm): " + path);

    // 5. Fingerprint.
    sf.fingerprint = header.str();
    if (!expected_fingerprint.empty() &&
        sf.fingerprint != expected_fingerprint) {
        const std::string diff =
            diffFingerprints(sf.fingerprint, expected_fingerprint);
        throw FingerprintError(
            "snapshot fingerprint mismatch (stale or foreign snapshot, "
            "refusing to restore): " + path +
            (diff.empty() ? "" : "\n  " + diff));
    }

    sf.body_offset = header.position();
    if (payload < sf.body_offset)
        throw CorruptError("snapshot corrupt: header past checksum: " +
                           path);
    sf.body_size = payload - sf.body_offset;
    return sf;
}

std::string
diffFingerprints(const std::string& got, const std::string& expected)
{
    const auto a = parseFingerprint(got);
    const auto b = parseFingerprint(expected);
    std::map<std::string, std::string> am, bm;
    for (const auto& [k, v] : a)
        am[k] = v;
    for (const auto& [k, v] : b)
        bm[k] = v;

    std::ostringstream os;
    bool first = true;
    auto emit = [&](const std::string& line) {
        if (!first)
            os << "\n  ";
        first = false;
        os << line;
    };
    // Walk the expected key order first so the diff reads in spec order.
    for (const auto& [k, want] : b) {
        const auto it = am.find(k);
        if (it == am.end())
            emit(k + ": missing from snapshot (expected '" + want + "')");
        else if (it->second != want)
            emit(k + ": snapshot has '" + it->second +
                 "', this run expects '" + want + "'");
    }
    for (const auto& [k, v] : a)
        if (bm.find(k) == bm.end())
            emit(k + ": snapshot-only field ('" + v + "')");
    return os.str();
}

SnapshotInfo
inspectSnapshotFile(const std::string& path)
{
    SnapshotInfo info;
    const std::vector<std::uint8_t> bytes = readAll(path);
    info.file_bytes = bytes.size();

    if (bytes.size() < kPreFingerprint + 8 + 8)
        throw CorruptError("snapshot corrupt: file too small: " + path);
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw CorruptError("not a pythia snapshot (bad magic): " + path);

    Reader r(bytes.data(), bytes.size());
    for (std::size_t i = 0; i < sizeof(kMagic); ++i)
        (void)r.u8();
    info.version = r.u32();
    if (info.version != kFormatVersion)
        throw VersionError("snapshot format version " +
                           std::to_string(info.version) +
                           " is not supported: " + path);
    info.fingerprint = r.str();

    const std::size_t payload = bytes.size() - 8;
    for (int i = 0; i < 8; ++i)
        info.checksum_stored |=
            static_cast<std::uint64_t>(bytes[payload + i]) << (8 * i);
    info.checksum_computed = fnv1a(bytes.data(), payload);
    info.checksum_ok = info.checksum_stored == info.checksum_computed;

    // Walk the section body without decoding payloads.
    while (r.position() < payload) {
        SectionInfo s;
        s.name = r.str();
        s.length = r.u64();
        s.offset = r.position();
        if (s.length > payload - r.position())
            throw CorruptError(
                "snapshot corrupt: section '" + s.name +
                "' overruns the file: " + path);
        s.digest = fnv1a(bytes.data() + s.offset,
                         static_cast<std::size_t>(s.length));
        r.skip(s.length);
        info.sections.push_back(std::move(s));
    }
    return info;
}

} // namespace pythia::snap
