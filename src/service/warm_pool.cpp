#include "service/warm_pool.hpp"

namespace pythia::service {

WarmPool::WarmPool(std::size_t byte_budget) : budget_(byte_budget) {}

std::size_t
warmSnapshotBytes(const WarmPool::Snapshot& snap)
{
    std::size_t n = 0;
    if (snap.image)
        n += snap.image->size();
    if (snap.prefix)
        n += snap.prefix->size() * sizeof(wl::TraceRecord);
    return n;
}

WarmPool::Role
WarmPool::acquire(const std::string& fingerprint, Snapshot* out,
                  std::function<void()> on_settled)
{
    if (!enabled())
        return Role::kLeader; // pool off: everyone warms themselves

    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
        Entry& e = it->second;
        if (e.ready) {
            e.last_use = ++clock_;
            ++stats_.hits;
            if (out)
                *out = e.snap;
            return Role::kHit;
        }
        ++stats_.waits;
        e.waiters.push_back(std::move(on_settled));
        return Role::kWaiter;
    }
    // First in: pin a pending entry; this caller owns settling it.
    entries_.emplace(fingerprint, Entry{});
    ++stats_.misses;
    return Role::kLeader;
}

void
WarmPool::publish(const std::string& fingerprint, Snapshot snap)
{
    if (!enabled())
        return;

    std::vector<std::function<void()>> waiters;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Entry& e = entries_[fingerprint]; // pending, or fresh if the
                                          // entry was abandoned/raced
        waiters.swap(e.waiters);
        e.snap = std::move(snap);
        e.bytes = warmSnapshotBytes(e.snap);
        e.ready = true;
        e.last_use = ++clock_;
        bytes_ += e.bytes;
        ++stats_.inserts;
        enforceBudget();
    }
    // Callbacks run unlocked: they re-schedule openTask, which
    // re-acquires (normally a hit — unless the budget already evicted
    // an oversized entry, in which case one waiter leads again).
    for (auto& fn : waiters)
        if (fn)
            fn();
}

void
WarmPool::abandon(const std::string& fingerprint)
{
    if (!enabled())
        return;

    std::vector<std::function<void()>> waiters;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(fingerprint);
        if (it == entries_.end() || it->second.ready)
            return; // nothing pending to abandon
        waiters.swap(it->second.waiters);
        entries_.erase(it);
    }
    for (auto& fn : waiters)
        if (fn)
            fn();
}

void
WarmPool::enforceBudget()
{
    while (bytes_ > budget_) {
        // Find the least-recently-used ready entry. Pending entries
        // are pinned (a leader is warming for their waiters).
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.ready)
                continue;
            if (victim == entries_.end() ||
                it->second.last_use < victim->second.last_use)
                victim = it;
        }
        if (victim == entries_.end())
            return;
        bytes_ -= victim->second.bytes;
        entries_.erase(victim);
        ++stats_.evictions;
    }
}

WarmPool::Stats
WarmPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s = stats_;
    s.bytes = bytes_;
    s.entries = entries_.size();
    return s;
}

} // namespace pythia::service
