/**
 * @file
 * EventLoop — readiness notification behind one interface — and
 * OutboxRing, the per-connection vectored-write staging buffer. The
 * two halves of the daemon's scale-out I/O path (DESIGN.md §12):
 *
 *  - EventLoop replaces the rebuild-the-pollfd-set-every-tick loop
 *    with persistent per-fd registrations. Two backends, selected at
 *    runtime (ServeOptions::io / `io=` knob): epoll on Linux —
 *    O(ready) dispatch, the kernel holds the interest set — and a
 *    portable poll() fallback that keeps a persistent pollfd vector
 *    and mutates single entries on add/mod/del. Both are
 *    level-triggered, so the server logic is backend-independent:
 *    "writable" fires until the outbox drains, "readable" until the
 *    buffer empties.
 *
 *  - OutboxRing turns the old one-::send-per-frame outbox into an
 *    iovec gather list: frames are staged as (4-byte LE length
 *    header, payload) slot pairs and flushed with a single
 *    sendmsg(), so one pump pass over a tenant emits one syscall for
 *    its whole batch of Window/Ack frames. Partial writes are
 *    resumed from a byte offset into the front slot; byte accounting
 *    (bytes()) is exact, which is what the outbox backpressure cap
 *    relies on (tests/test_service.cpp partial-write harness).
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

struct iovec; // <sys/uio.h>

namespace pythia::service {

/** Readiness backend. kAuto resolves to epoll on Linux, poll
 *  elsewhere; forcing kEpoll on a non-Linux build throws. */
enum class IoBackend
{
    kAuto,
    kPoll,
    kEpoll,
};

/** One ready fd, as reported by EventLoop::wait(). */
struct IoEvent
{
    int fd = -1;
    void* ud = nullptr; ///< user data from add()
    bool in = false;    ///< readable (or incoming connection)
    bool out = false;   ///< writable
    bool err = false;   ///< error/hangup — the fd needs attention even
                        ///< if in/out were not requested
};

/**
 * Level-triggered readiness notification over a persistent interest
 * set. Not thread-safe: the owning loop thread is the only caller —
 * exactly the daemon's threading model, where workers never touch
 * sockets and wake the loop through its self-pipe instead.
 */
class EventLoop
{
  public:
    virtual ~EventLoop() = default;

    /** Register @p fd with initial interest; @p ud is returned
     *  verbatim in every IoEvent for this fd. */
    virtual void add(int fd, void* ud, bool want_in, bool want_out) = 0;

    /** Change interest for a registered fd. Callers are expected to
     *  skip the call when nothing changed — see updateEvents() in
     *  server.cpp — so every mod() reaching a backend is a real
     *  transition. */
    virtual void mod(int fd, bool want_in, bool want_out) = 0;

    /** Remove @p fd from the interest set (before closing it). */
    virtual void del(int fd) = 0;

    /**
     * Block up to @p timeout_ms (-1 = forever) and append one IoEvent
     * per ready fd to @p out (cleared first).
     * @return number of ready fds (0 on timeout).
     */
    virtual std::size_t wait(std::vector<IoEvent>& out,
                             int timeout_ms) = 0;

    /** Backend name for stats/tests: "epoll" or "poll". */
    virtual const char* name() const = 0;
};

/** Instantiate the selected backend. @throws ServeError when kEpoll
 *  is requested on a platform without epoll. */
std::unique_ptr<EventLoop> makeEventLoop(IoBackend backend);

/** Parse an `io=` knob value ("auto" | "poll" | "epoll").
 *  @throws ServeError on anything else. */
IoBackend parseIoBackend(const std::string& name);

/**
 * Per-connection outbound frame queue, staged for vectored writes.
 *
 * push() takes a wire payload and stores it alongside its 4-byte LE
 * length header as one slot; gather() exposes up to max_iov iovecs
 * (header, payload, header, payload, ...) starting at the current
 * partial-write offset; consume() advances past n bytes written.
 * bytes() counts every unsent byte including headers — the number the
 * server's max_outbox_bytes backpressure compares against, so a
 * throttled tenant resumes at exactly the documented watermark.
 */
class OutboxRing
{
  public:
    /** Stage one frame (length header derived from payload size). */
    void push(std::vector<std::uint8_t> payload);

    /**
     * Fill @p iov with up to @p max_iov segments of unsent bytes, in
     * order. The first segment starts at the partial-write offset.
     * @return segments filled (0 when empty).
     */
    std::size_t gather(struct iovec* iov, std::size_t max_iov) const;

    /** Drop @p n bytes from the front (the writev/sendmsg return). */
    void consume(std::size_t n);

    bool empty() const { return slots_.empty(); }

    /** Unsent bytes, headers included. */
    std::size_t bytes() const { return bytes_; }

    /** Frames not yet fully written. */
    std::size_t frames() const { return slots_.size(); }

  private:
    struct Slot
    {
        std::array<std::uint8_t, 4> header; ///< LE payload length
        std::vector<std::uint8_t> payload;
    };

    std::deque<Slot> slots_;
    std::size_t head_off_ = 0; ///< bytes of slots_.front() already sent
    std::size_t bytes_ = 0;    ///< total unsent (headers + payloads)
};

/** Outcome of one flush attempt against a socket. */
enum class FlushResult
{
    kDrained, ///< ring is now empty
    kBlocked, ///< kernel buffer full (EAGAIN / partial write)
    kDead,    ///< peer gone (EPIPE/ECONNRESET/...) — close the fd
};

/** Write as much of @p ring to @p fd as the kernel accepts, in
 *  sendmsg() batches of up to IOV_MAX segments. Never blocks (the
 *  daemon's sockets are non-blocking) and never raises SIGPIPE. */
FlushResult flushOutbox(int fd, OutboxRing& ring);

} // namespace pythia::service
