#include "service/wire.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace pythia::service {

namespace {

snap::Writer
beginPayload(FrameType type)
{
    snap::Writer w;
    w.u8(static_cast<std::uint8_t>(type));
    return w;
}

/** Reader over the payload with the type byte already consumed. */
snap::Reader
bodyReader(const std::vector<std::uint8_t>& payload, FrameType expected)
{
    if (frameType(payload) != expected)
        throw ServeWireError("serve wire: unexpected frame type " +
                             std::to_string(payload.empty() ? 0
                                                            : payload[0]));
    snap::Reader r(payload.data(), payload.size());
    r.u8(); // type
    return r;
}

/** Decode bodies under one catch: a malformed payload surfaces as a
 *  ServeWireError naming the frame, never a bare snap error. */
template <typename Fn>
auto
decodeGuard(const char* what, Fn&& fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const snap::SnapshotError& e) {
        throw ServeWireError(std::string("serve wire: malformed ") +
                             what + " frame: " + e.what());
    }
}

/** Require the body to be consumed exactly (trailing bytes = corrupt). */
void
requireEnd(snap::Reader& r, const char* what)
{
    if (!r.atEnd())
        throw ServeWireError(std::string("serve wire: ") + what +
                             " frame has " +
                             std::to_string(r.remaining()) +
                             " trailing bytes");
}

constexpr std::uint8_t kFlagWrite = 1u << 0;
constexpr std::uint8_t kFlagDependsOnPrev = 1u << 1;

} // namespace

// ------------------------------------------------------------- encode

std::vector<std::uint8_t>
encodeHello(const HelloMsg& m)
{
    snap::Writer w = beginPayload(FrameType::kHello);
    w.str(kServeSchemaName);
    w.u32(kServeVersion);
    w.str(m.tenant);
    harness::writeSpec(w, m.spec);
    w.u64(m.window_instrs);
    return w.buffer();
}

std::vector<std::uint8_t>
encodeHelloAck(const HelloAckMsg& m)
{
    snap::Writer w = beginPayload(FrameType::kHelloAck);
    w.str(kServeSchemaName);
    w.u32(kServeVersion);
    w.boolean(m.resumed);
    w.boolean(m.warm);
    w.u64(m.instrs_advanced);
    w.u64(m.windows_completed);
    w.u64(m.records_received);
    w.u64(m.records_consumed);
    return w.buffer();
}

std::vector<std::uint8_t>
encodeAccess(const wl::TraceRecord* records, std::size_t n)
{
    snap::Writer w = beginPayload(FrameType::kAccess);
    w.u64(n);
    for (std::size_t i = 0; i < n; ++i) {
        const wl::TraceRecord& r = records[i];
        w.u64(r.pc);
        w.u64(r.addr);
        w.u32(r.gap);
        std::uint8_t flags = 0;
        if (r.is_write)
            flags |= kFlagWrite;
        if (r.depends_on_prev)
            flags |= kFlagDependsOnPrev;
        w.u8(flags);
    }
    return w.buffer();
}

std::vector<std::uint8_t>
encodeWindow(const WindowMsg& m)
{
    snap::Writer w = beginPayload(FrameType::kWindow);
    harness::writeWindowSample(w, m.window);
    w.u64(m.records_consumed);
    return w.buffer();
}

std::vector<std::uint8_t>
encodeRunEnd(const RunEndMsg& m)
{
    snap::Writer w = beginPayload(FrameType::kRunEnd);
    harness::writeRunResult(w, m.final_result);
    w.u64(m.windows_completed);
    w.u64(m.records_consumed);
    return w.buffer();
}

std::vector<std::uint8_t>
encodeDetach()
{
    return beginPayload(FrameType::kDetach).buffer();
}

std::vector<std::uint8_t>
encodeDetachAck(const DetachAckMsg& m)
{
    snap::Writer w = beginPayload(FrameType::kDetachAck);
    w.u64(m.records_received);
    w.u64(m.instrs_advanced);
    w.u64(m.windows_completed);
    return w.buffer();
}

std::vector<std::uint8_t>
encodeStats()
{
    return beginPayload(FrameType::kStats).buffer();
}

std::vector<std::uint8_t>
encodeStatsAck(const std::string& json)
{
    snap::Writer w = beginPayload(FrameType::kStatsAck);
    w.str(json);
    return w.buffer();
}

std::vector<std::uint8_t>
encodeError(std::uint32_t kind, const std::string& message)
{
    snap::Writer w = beginPayload(FrameType::kError);
    w.u32(kind);
    w.str(message);
    return w.buffer();
}

// ------------------------------------------------------------- decode

FrameType
frameType(const std::vector<std::uint8_t>& payload)
{
    if (payload.empty())
        throw ServeWireError("serve wire: empty frame payload");
    const std::uint8_t t = payload[0];
    if (t < static_cast<std::uint8_t>(FrameType::kHello) ||
        t > static_cast<std::uint8_t>(FrameType::kError))
        throw ServeWireError("serve wire: unknown frame type " +
                             std::to_string(t));
    return static_cast<FrameType>(t);
}

HelloMsg
decodeHello(const std::vector<std::uint8_t>& payload)
{
    return decodeGuard("hello", [&] {
        snap::Reader r = bodyReader(payload, FrameType::kHello);
        const std::string schema = r.str();
        if (schema != kServeSchemaName)
            throw ServeWireError("serve wire: schema mismatch: got '" +
                                 schema + "', want '" + kServeSchemaName +
                                 "'");
        const std::uint32_t version = r.u32();
        if (version != kServeVersion)
            throw ServeWireError("serve wire: unsupported version " +
                                 std::to_string(version));
        HelloMsg m;
        m.tenant = r.str();
        m.spec = harness::readSpec(r);
        m.window_instrs = r.u64();
        requireEnd(r, "hello");
        if (m.tenant.empty())
            throw ServeWireError("serve wire: hello with empty tenant id");
        if (m.window_instrs == 0)
            throw ServeWireError(
                "serve wire: hello with window_instrs=0");
        return m;
    });
}

HelloAckMsg
decodeHelloAck(const std::vector<std::uint8_t>& payload)
{
    return decodeGuard("hello-ack", [&] {
        snap::Reader r = bodyReader(payload, FrameType::kHelloAck);
        const std::string schema = r.str();
        if (schema != kServeSchemaName)
            throw ServeWireError("serve wire: schema mismatch: got '" +
                                 schema + "'");
        const std::uint32_t version = r.u32();
        if (version != kServeVersion)
            throw ServeWireError("serve wire: unsupported version " +
                                 std::to_string(version));
        HelloAckMsg m;
        m.resumed = r.boolean();
        m.warm = r.boolean();
        m.instrs_advanced = r.u64();
        m.windows_completed = r.u64();
        m.records_received = r.u64();
        m.records_consumed = r.u64();
        requireEnd(r, "hello-ack");
        return m;
    });
}

std::vector<wl::TraceRecord>
decodeAccess(const std::vector<std::uint8_t>& payload)
{
    return decodeGuard("access", [&] {
        snap::Reader r = bodyReader(payload, FrameType::kAccess);
        const std::uint64_t n = r.u64();
        // Each record is 21 payload bytes; an impossible count is a
        // malformed frame, not an allocation request.
        if (n * 21 != r.remaining())
            throw ServeWireError(
                "serve wire: access frame count/size mismatch (" +
                std::to_string(n) + " records, " +
                std::to_string(r.remaining()) + " body bytes)");
        std::vector<wl::TraceRecord> records(
            static_cast<std::size_t>(n));
        for (auto& rec : records) {
            rec.pc = r.u64();
            rec.addr = r.u64();
            rec.gap = r.u32();
            const std::uint8_t flags = r.u8();
            if (flags & ~(kFlagWrite | kFlagDependsOnPrev))
                throw ServeWireError(
                    "serve wire: access record with unknown flags " +
                    std::to_string(flags));
            rec.is_write = (flags & kFlagWrite) != 0;
            rec.depends_on_prev = (flags & kFlagDependsOnPrev) != 0;
        }
        requireEnd(r, "access");
        return records;
    });
}

WindowMsg
decodeWindow(const std::vector<std::uint8_t>& payload)
{
    return decodeGuard("window", [&] {
        snap::Reader r = bodyReader(payload, FrameType::kWindow);
        WindowMsg m;
        m.window = harness::readWindowSample(r);
        m.records_consumed = r.u64();
        requireEnd(r, "window");
        return m;
    });
}

RunEndMsg
decodeRunEnd(const std::vector<std::uint8_t>& payload)
{
    return decodeGuard("run-end", [&] {
        snap::Reader r = bodyReader(payload, FrameType::kRunEnd);
        RunEndMsg m;
        m.final_result = harness::readRunResult(r);
        m.windows_completed = r.u64();
        m.records_consumed = r.u64();
        requireEnd(r, "run-end");
        return m;
    });
}

DetachAckMsg
decodeDetachAck(const std::vector<std::uint8_t>& payload)
{
    return decodeGuard("detach-ack", [&] {
        snap::Reader r = bodyReader(payload, FrameType::kDetachAck);
        DetachAckMsg m;
        m.records_received = r.u64();
        m.instrs_advanced = r.u64();
        m.windows_completed = r.u64();
        requireEnd(r, "detach-ack");
        return m;
    });
}

std::string
decodeStatsAck(const std::vector<std::uint8_t>& payload)
{
    return decodeGuard("stats-ack", [&] {
        snap::Reader r = bodyReader(payload, FrameType::kStatsAck);
        std::string json = r.str();
        requireEnd(r, "stats-ack");
        return json;
    });
}

ErrorMsg
decodeError(const std::vector<std::uint8_t>& payload)
{
    return decodeGuard("error", [&] {
        snap::Reader r = bodyReader(payload, FrameType::kError);
        ErrorMsg m;
        m.kind = r.u32();
        m.message = r.str();
        requireEnd(r, "error");
        return m;
    });
}

// ----------------------------------------------------------- frame I/O

namespace {

void
writeFull(int fd, const void* data, std::size_t n)
{
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw ServeWireError(std::string("serve wire: write: ") +
                                 std::strerror(errno));
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
}

/** @return bytes read; short only at EOF. */
std::size_t
readFull(int fd, void* data, std::size_t n)
{
    auto* p = static_cast<std::uint8_t*>(data);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw ServeWireError(std::string("serve wire: read: ") +
                                 std::strerror(errno));
        }
        if (r == 0)
            break;
        got += static_cast<std::size_t>(r);
    }
    return got;
}

} // namespace

void
writeFrame(int fd, const std::vector<std::uint8_t>& payload)
{
    if (payload.empty() || payload.size() > kMaxFramePayload)
        throw ServeWireError("serve wire: invalid frame payload size " +
                             std::to_string(payload.size()));
    std::uint8_t len[4];
    const auto n = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        len[i] = static_cast<std::uint8_t>(n >> (8 * i));
    writeFull(fd, len, sizeof len);
    writeFull(fd, payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>>
readFrame(int fd)
{
    std::uint8_t len[4];
    const std::size_t got = readFull(fd, len, sizeof len);
    if (got == 0)
        return std::nullopt; // clean EOF at a frame boundary
    if (got < sizeof len)
        throw ServeWireError("serve wire: truncated frame header");
    std::uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<std::uint32_t>(len[i]) << (8 * i);
    if (n == 0 || n > kMaxFramePayload)
        throw ServeWireError("serve wire: bad frame length " +
                             std::to_string(n));
    std::vector<std::uint8_t> payload(n);
    if (readFull(fd, payload.data(), n) < n)
        throw ServeWireError("serve wire: truncated frame payload");
    return payload;
}

std::optional<std::vector<std::uint8_t>>
extractFrame(std::vector<std::uint8_t>& buf)
{
    if (buf.size() < 4)
        return std::nullopt;
    std::uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<std::uint32_t>(buf[static_cast<std::size_t>(i)])
             << (8 * i);
    if (n == 0 || n > kMaxFramePayload)
        throw ServeWireError("serve wire: bad frame length " +
                             std::to_string(n));
    if (buf.size() < 4 + static_cast<std::size_t>(n))
        return std::nullopt;
    std::vector<std::uint8_t> payload(buf.begin() + 4,
                                      buf.begin() + 4 + n);
    buf.erase(buf.begin(), buf.begin() + 4 + n);
    return payload;
}

} // namespace pythia::service
