#include "service/event_loop.hpp"

#include <cerrno>
#include <cstring>
#include <limits>
#include <unordered_map>

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "service/wire.hpp"

namespace pythia::service {

namespace {

// ---------------------------------------------------------------- poll

/**
 * Portable fallback: a persistent pollfd vector plus an fd→slot map.
 * add/mod/del touch single entries, so the per-tick cost over the old
 * rebuild-everything loop drops to the poll() call itself. Removal
 * swaps the last entry into the vacated slot to stay dense.
 */
class PollEventLoop final : public EventLoop
{
  public:
    void add(int fd, void* ud, bool want_in, bool want_out) override
    {
        index_[fd] = pfds_.size();
        pollfd p{};
        p.fd = fd;
        p.events = eventsFor(want_in, want_out);
        pfds_.push_back(p);
        uds_.push_back(ud);
    }

    void mod(int fd, bool want_in, bool want_out) override
    {
        pfds_[index_.at(fd)].events = eventsFor(want_in, want_out);
    }

    void del(int fd) override
    {
        const auto it = index_.find(fd);
        if (it == index_.end())
            return;
        const std::size_t slot = it->second;
        const std::size_t last = pfds_.size() - 1;
        if (slot != last) {
            pfds_[slot] = pfds_[last];
            uds_[slot] = uds_[last];
            index_[pfds_[slot].fd] = slot;
        }
        pfds_.pop_back();
        uds_.pop_back();
        index_.erase(it);
    }

    std::size_t wait(std::vector<IoEvent>& out, int timeout_ms) override
    {
        out.clear();
        const int rc =
            ::poll(pfds_.data(), static_cast<nfds_t>(pfds_.size()),
                   timeout_ms);
        if (rc <= 0)
            return 0; // timeout, or EINTR — caller just loops
        out.reserve(static_cast<std::size_t>(rc));
        for (std::size_t i = 0; i < pfds_.size(); ++i) {
            const short re = pfds_[i].revents;
            if (re == 0)
                continue;
            IoEvent ev;
            ev.fd = pfds_[i].fd;
            ev.ud = uds_[i];
            // HUP counts as readable: a half-closed peer may still
            // have final frames queued, which read() drains to EOF.
            ev.in = (re & (POLLIN | POLLHUP)) != 0;
            ev.out = (re & POLLOUT) != 0;
            ev.err = (re & (POLLERR | POLLNVAL)) != 0;
            out.push_back(ev);
            if (out.size() == static_cast<std::size_t>(rc))
                break;
        }
        return out.size();
    }

    const char* name() const override { return "poll"; }

  private:
    static short eventsFor(bool want_in, bool want_out)
    {
        short e = 0;
        if (want_in)
            e |= POLLIN;
        if (want_out)
            e |= POLLOUT;
        return e;
    }

    std::vector<pollfd> pfds_;
    std::vector<void*> uds_; ///< parallel to pfds_
    std::unordered_map<int, std::size_t> index_;
};

// --------------------------------------------------------------- epoll

#ifdef __linux__

/** Linux backend: the kernel owns the interest set, wait() returns
 *  only ready fds — O(ready) dispatch regardless of tenant count.
 *  Level-triggered on purpose: identical semantics to poll(), so the
 *  server never needs backend-specific drain logic. */
class EpollEventLoop final : public EventLoop
{
  public:
    EpollEventLoop()
    {
        ep_ = ::epoll_create1(EPOLL_CLOEXEC);
        if (ep_ < 0)
            throw ServeError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }

    ~EpollEventLoop() override { ::close(ep_); }

    void add(int fd, void* ud, bool want_in, bool want_out) override
    {
        uds_[fd] = ud;
        epoll_event ev = eventFor(fd, want_in, want_out);
        if (::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) != 0)
            throw ServeError(std::string("epoll_ctl(ADD): ") +
                             std::strerror(errno));
    }

    void mod(int fd, bool want_in, bool want_out) override
    {
        epoll_event ev = eventFor(fd, want_in, want_out);
        if (::epoll_ctl(ep_, EPOLL_CTL_MOD, fd, &ev) != 0)
            throw ServeError(std::string("epoll_ctl(MOD): ") +
                             std::strerror(errno));
    }

    void del(int fd) override
    {
        ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
        uds_.erase(fd);
    }

    std::size_t wait(std::vector<IoEvent>& out, int timeout_ms) override
    {
        out.clear();
        epoll_event evs[256];
        const int rc = ::epoll_wait(ep_, evs, 256, timeout_ms);
        if (rc <= 0)
            return 0;
        out.reserve(static_cast<std::size_t>(rc));
        for (int i = 0; i < rc; ++i) {
            IoEvent ev;
            ev.fd = static_cast<int>(evs[i].data.u64 & 0xffffffffu);
            const auto it = uds_.find(ev.fd);
            ev.ud = it == uds_.end() ? nullptr : it->second;
            // HUP → readable, matching the poll backend: drain the
            // peer's final frames down to EOF before closing.
            ev.in = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
            ev.out = (evs[i].events & EPOLLOUT) != 0;
            ev.err = (evs[i].events & EPOLLERR) != 0;
            out.push_back(ev);
        }
        return out.size();
    }

    const char* name() const override { return "epoll"; }

  private:
    static epoll_event eventFor(int fd, bool want_in, bool want_out)
    {
        epoll_event ev{};
        ev.events = 0;
        if (want_in)
            ev.events |= EPOLLIN;
        if (want_out)
            ev.events |= EPOLLOUT;
        ev.data.u64 = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(fd));
        return ev;
    }

    int ep_ = -1;
    std::unordered_map<int, void*> uds_;
};

#endif // __linux__

} // namespace

std::unique_ptr<EventLoop>
makeEventLoop(IoBackend backend)
{
#ifdef __linux__
    if (backend == IoBackend::kAuto || backend == IoBackend::kEpoll)
        return std::make_unique<EpollEventLoop>();
#else
    if (backend == IoBackend::kEpoll)
        throw ServeError("io=epoll requested but this platform has no "
                         "epoll; use io=poll or io=auto");
#endif
    return std::make_unique<PollEventLoop>();
}

IoBackend
parseIoBackend(const std::string& name)
{
    if (name == "auto")
        return IoBackend::kAuto;
    if (name == "poll")
        return IoBackend::kPoll;
    if (name == "epoll")
        return IoBackend::kEpoll;
    throw ServeError("unknown io backend '" + name +
                     "' (expected auto|poll|epoll)");
}

// ---------------------------------------------------------- OutboxRing

void
OutboxRing::push(std::vector<std::uint8_t> payload)
{
    Slot s;
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    s.header = {static_cast<std::uint8_t>(n & 0xff),
                static_cast<std::uint8_t>((n >> 8) & 0xff),
                static_cast<std::uint8_t>((n >> 16) & 0xff),
                static_cast<std::uint8_t>((n >> 24) & 0xff)};
    s.payload = std::move(payload);
    bytes_ += s.header.size() + s.payload.size();
    slots_.push_back(std::move(s));
}

std::size_t
OutboxRing::gather(struct iovec* iov, std::size_t max_iov) const
{
    std::size_t n = 0;
    std::size_t off = head_off_;
    for (const Slot& s : slots_) {
        if (n == max_iov)
            break;
        // Header segment (may be partially sent).
        if (off < s.header.size()) {
            iov[n].iov_base =
                const_cast<std::uint8_t*>(s.header.data()) + off;
            iov[n].iov_len = s.header.size() - off;
            ++n;
            off = 0;
        } else {
            off -= s.header.size();
        }
        if (n == max_iov)
            break;
        // Payload segment. A zero-length payload contributes nothing.
        if (off < s.payload.size()) {
            iov[n].iov_base =
                const_cast<std::uint8_t*>(s.payload.data()) + off;
            iov[n].iov_len = s.payload.size() - off;
            ++n;
        }
        off = 0;
    }
    return n;
}

void
OutboxRing::consume(std::size_t n)
{
    bytes_ -= n;
    head_off_ += n;
    while (!slots_.empty()) {
        const std::size_t front =
            slots_.front().header.size() + slots_.front().payload.size();
        if (head_off_ < front)
            break;
        head_off_ -= front;
        slots_.pop_front();
    }
}

FlushResult
flushOutbox(int fd, OutboxRing& ring)
{
    // Batch size: IOV_MAX is at least 16 by POSIX; 64 segments (32
    // frames) per sendmsg is far below any real limit and keeps the
    // stack array small.
    constexpr std::size_t kMaxIov = 64;
    while (!ring.empty()) {
        struct iovec iov[kMaxIov];
        const std::size_t n = ring.gather(iov, kMaxIov);
        std::size_t batch = 0;
        for (std::size_t i = 0; i < n; ++i)
            batch += iov[i].iov_len;
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = n;
        // sendmsg instead of writev: writev has no MSG_NOSIGNAL, and
        // the daemon must not die on SIGPIPE when a client vanishes.
        const ssize_t wrote = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return FlushResult::kBlocked;
            if (errno == EINTR)
                continue;
            return FlushResult::kDead;
        }
        ring.consume(static_cast<std::size_t>(wrote));
        // A short write means the kernel buffer is full; poll for
        // writability instead of spinning on EAGAIN.
        if (!ring.empty() && static_cast<std::size_t>(wrote) < batch)
            return FlushResult::kBlocked;
    }
    return FlushResult::kDrained;
}

} // namespace pythia::service
