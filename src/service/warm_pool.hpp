/**
 * @file
 * WarmPool — the daemon's fingerprint-keyed shared warm-snapshot
 * cache (DESIGN.md §12). The first tenant to finish warmup for a spec
 * publishes its post-warmup SimSession snapshot (pythia-snap-v1
 * bytes, PR 6 codec) together with the warmup record prefix it
 * consumed; every later Open with the same fingerprint restores from
 * the pool and skips warmup bit-exactly — restore replays the stored
 * prefix through a fresh StreamWorkload, so the machine lands in the
 * identical post-warmup state a cold session would reach.
 *
 * Concurrency contract (single-flight): when N identical Opens race,
 * exactly one caller gets Role::kLeader and runs warmup; the rest get
 * Role::kWaiter and register a callback that fires once the leader
 * publishes (→ re-acquire hits) or abandons (→ one waiter becomes the
 * new leader). Callbacks run outside the pool lock and must not
 * block — the server's waiters just re-schedule their openTask.
 *
 * Capacity: an LRU byte budget over *ready* entries (pending entries
 * are pinned — a leader is mid-warmup for them). Budget 0 disables
 * the pool entirely: every acquire is a leader and publish is a
 * no-op, restoring the pre-pool daemon behavior byte-for-byte.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "workloads/trace.hpp"

namespace pythia::service {

class WarmPool
{
  public:
    /** One published warm state: the post-warmup snapshot image plus
     *  the warmup records the leader consumed producing it. Shared
     *  immutably — hits alias the same buffers, no copies. */
    struct Snapshot
    {
        std::shared_ptr<const std::vector<std::uint8_t>> image;
        std::shared_ptr<const std::vector<wl::TraceRecord>> prefix;
    };

    /** What acquire() decided for this caller. */
    enum class Role
    {
        kHit,    ///< @p out filled; restore and skip warmup
        kLeader, ///< run warmup, then publish() or abandon()
        kWaiter, ///< callback fires when the leader settles
    };

    /** @p byte_budget caps ready-entry bytes (images + prefixes);
     *  0 disables the pool. */
    explicit WarmPool(std::size_t byte_budget);

    /**
     * Look up @p fingerprint. kHit fills @p out. kLeader creates a
     * pending entry this caller must settle via publish() or
     * abandon(). kWaiter stores @p on_settled; it is invoked (outside
     * the lock) after the leader settles, and the waiter re-acquires.
     */
    Role acquire(const std::string& fingerprint, Snapshot* out,
                 std::function<void()> on_settled);

    /** Leader completed warmup: make the entry ready, wake waiters,
     *  then enforce the LRU budget. */
    void publish(const std::string& fingerprint, Snapshot snap);

    /** Leader failed or was evicted before publishing: drop the
     *  pending entry and wake waiters so one can take over. */
    void abandon(const std::string& fingerprint);

    struct Stats
    {
        std::uint64_t hits = 0;      ///< acquires served from a ready entry
        std::uint64_t misses = 0;    ///< acquires that became leader
        std::uint64_t waits = 0;     ///< acquires parked behind a leader
        std::uint64_t inserts = 0;   ///< publishes
        std::uint64_t evictions = 0; ///< LRU drops
        std::size_t bytes = 0;       ///< current ready-entry bytes
        std::size_t entries = 0;     ///< current entries (incl. pending)
    };

    Stats stats() const;

    bool enabled() const { return budget_ > 0; }

  private:
    struct Entry
    {
        Snapshot snap;
        bool ready = false;
        std::size_t bytes = 0;      ///< 0 while pending
        std::uint64_t last_use = 0; ///< LRU clock value
        std::vector<std::function<void()>> waiters;
    };

    /** Drop least-recently-used ready entries until under budget.
     *  Caller holds mu_. */
    void enforceBudget();

    const std::size_t budget_;
    mutable std::mutex mu_;
    std::unordered_map<std::string, Entry> entries_;
    std::size_t bytes_ = 0;  ///< ready-entry bytes
    std::uint64_t clock_ = 0;
    Stats stats_;
};

/** Approximate retained bytes of one snapshot (image + prefix). */
std::size_t warmSnapshotBytes(const WarmPool::Snapshot& snap);

} // namespace pythia::service
