/**
 * @file
 * ServeServer — the prefetch-as-a-service daemon core (DESIGN.md §12).
 *
 * A single-threaded connection loop — epoll on Linux, poll() fallback,
 * selected at runtime (event_loop.hpp) — accepts clients on a Unix
 * or loopback-TCP socket and speaks pythia-serve-v1 (wire.hpp). Each
 * client attaches a *tenant*: an id + ExperimentSpec whose access
 * stream the client feeds in kAccess frames and whose SimSession runs
 * on a worker thread pool, emitting kWindow metrics as measurement
 * windows complete.
 *
 * Concurrency model:
 *  - The loop thread owns sockets: read accumulators, outbox rings,
 *    event-loop registration. It never simulates.
 *  - Workers execute per-tenant task queues (open/restore, pump,
 *    evict), strictly serialized per tenant — a tenant's session is
 *    only ever touched by the one task running for it.
 *  - Workers hand frames back through a mutex-guarded staging buffer
 *    on the connection plus a dirty-connection list and self-pipe
 *    wakeup; the loop splices staged frames into the connection's
 *    iovec outbox ring and flushes it with one vectored write per
 *    batch (event_loop.hpp).
 *
 * Resource caps (per tenant / connection):
 *  - inflight records: when streamed-but-unconsumed records exceed
 *    max_inflight_records the loop stops reading that connection until
 *    the pump catches up (client writes block in the socket buffer).
 *  - outbox bytes: when a slow client lets its write queue exceed
 *    max_outbox_bytes the pump stops advancing windows for it until
 *    the queue drains below half the cap.
 *
 * Eviction: on client disconnect mid-run, explicit kDetach, idle
 * timeout, or drain, the tenant's full streamed history is persisted
 * as a PYT2 trace file plus a pythia-snap-v1 snapshot (written last —
 * its presence marks the pair complete) under state_dir, keyed by the
 * FNV-1a-64 of the tenant id. A later kHello for the same tenant
 * restores both transparently — bit-exact by the PR 6 determinism
 * rule — and tells the client which record index to resume from.
 *
 * Warm-snapshot pool (warm_pool_bytes > 0): tenants with no evicted
 * state share post-warmup machine state keyed by the spec fingerprint.
 * The first Open per fingerprint warms and publishes (single-flight —
 * simultaneous identical Opens wait instead of warming N times);
 * later identical Opens restore from the pooled snapshot and skip
 * warmup bit-exactly (warm_pool.hpp).
 *
 * Graceful drain (SIGTERM → requestDrain(), async-signal-safe): stop
 * accepting, evict every live session to state_dir, flush outstanding
 * frames, close, join() returns 0.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "service/event_loop.hpp"

namespace pythia::service {

struct ServeOptions
{
    /** Unix-domain listen path; non-empty selects AF_UNIX. */
    std::string unix_path;

    /** Loopback TCP port when unix_path is empty; 0 = ephemeral
     *  (read the bound port back via boundAddress()). */
    std::uint16_t tcp_port = 0;

    /** Session-worker threads. */
    unsigned workers = 2;

    /** Directory for evicted-session state (created on start). */
    std::string state_dir = "serve_state";

    /** Per-tenant cap on streamed-but-unconsumed records before the
     *  loop stops reading the connection (input backpressure). */
    std::uint64_t max_inflight_records = 1u << 20;

    /** Per-connection cap on queued outgoing bytes before the pump
     *  stops advancing windows (slow-client write throttling). */
    std::size_t max_outbox_bytes = 8u << 20;

    /** Evict sessions idle for this long and close their connection;
     *  0 disables idle eviction. */
    std::uint64_t idle_evict_ms = 0;

    /** Readiness backend for the connection loop (`io=` knob):
     *  kAuto resolves to epoll on Linux, poll elsewhere. */
    IoBackend io = IoBackend::kAuto;

    /** Byte budget of the shared warm-snapshot pool (`warm_pool_bytes=`
     *  knob): the first tenant finishing warmup for a spec publishes
     *  its post-warmup snapshot, later identical Opens restore from it
     *  and skip warmup bit-exactly. 0 disables the pool. */
    std::size_t warm_pool_bytes = 0;

    /** Diagnostics stream (nullptr = silent). */
    std::ostream* log = nullptr;
};

class ServeServer
{
  public:
    explicit ServeServer(ServeOptions opt = {});
    ~ServeServer();

    ServeServer(const ServeServer&) = delete;
    ServeServer& operator=(const ServeServer&) = delete;

    /** Bind, listen and spawn the loop + worker threads.
     *  @throws ServeError when the address cannot be bound. */
    void start();

    /** "unix:<path>" or "tcp:127.0.0.1:<port>" (valid after start()). */
    std::string boundAddress() const;

    /** Begin graceful drain. Async-signal-safe (atomic flag + one
     *  self-pipe write) — call it from a SIGTERM handler. */
    void requestDrain();

    /** Wait for the loop to finish draining; returns the exit code
     *  (0 = clean drain). */
    int join();

    /** requestDrain() + join(). */
    int stop();

    bool running() const;

    /** Monotonic counters, readable from any thread. */
    struct Stats
    {
        std::uint64_t connections_accepted = 0;
        std::uint64_t sessions_opened = 0;
        std::uint64_t sessions_resumed = 0;
        std::uint64_t sessions_evicted = 0;
        std::uint64_t runs_completed = 0;
        std::uint64_t windows_emitted = 0;
        std::uint64_t records_received = 0;
        std::uint64_t frames_rejected = 0;
        std::uint64_t active_tenants = 0;
        std::uint64_t warm_hits = 0;      ///< opens served from the pool
        std::uint64_t warm_misses = 0;    ///< opens that warmed (leaders)
        std::uint64_t warm_waits = 0;     ///< opens parked behind a leader
        std::uint64_t warm_evictions = 0; ///< pool LRU drops
        std::uint64_t warm_bytes = 0;     ///< pool bytes currently held
    };

    Stats stats() const;

    /** The kStatsAck document: counters plus the aggregate
     *  pythia-timeseries-v1 series of recently emitted windows. */
    std::string statsJson() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace pythia::service
