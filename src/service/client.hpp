/**
 * @file
 * ServeClient — blocking-API client for the pythia-serve-v1 protocol,
 * shared by the serve_client load generator and tests/test_service.cpp.
 *
 * Internally the socket is nonblocking and every call runs a small
 * poll loop that always keeps reading while it writes — so a client
 * streaming records can never deadlock against a daemon that is
 * simultaneously throttling its input (inflight cap) and emitting
 * windows.
 *
 * Flow control: streamRun() keeps at most
 * (warmup + window + 2·kGateSlack) records ahead of the daemon's
 * acknowledged consumption (the records_consumed field every kWindow
 * frame carries), sending in batches.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/spec.hpp"
#include "harness/timeseries.hpp"
#include "service/wire.hpp"
#include "workloads/trace.hpp"

namespace pythia::service {

class ServeClient
{
  public:
    /** @p address is "unix:<path>" or "tcp:<host>:<port>" (as printed
     *  by ServeServer::boundAddress() / pythia_serve). Does not
     *  connect yet; open()/stats() connect on demand. */
    explicit ServeClient(std::string address);
    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /**
     * Open (or transparently resume) tenant @p tenant for @p spec.
     * Retries for up to ~5s when the daemon answers kErrBusy (an
     * eviction for the same tenant is still in flight). @throws
     * ServeRemoteError on other kError answers, ServeWireError on
     * protocol violations.
     */
    HelloAckMsg open(const std::string& tenant,
                     const harness::ExperimentSpec& spec,
                     std::uint64_t window_instrs);

    /** What one attach streamed/observed. */
    struct RunProgress
    {
        harness::TimeSeries series; ///< windows received this attach
        std::optional<sim::RunResult> final_result; ///< set at run end
        std::uint64_t windows_completed = 0; ///< per kRunEnd
        std::uint64_t records_streamed = 0;  ///< sent this attach
        /** Seconds between consecutive received kWindow frames. */
        std::vector<double> window_gaps_s;
    };

    /**
     * Stream @p records[from..] and collect windows until the daemon
     * reports run end — or, when @p stop_after_windows is set, until
     * that many windows arrived this attach (for mid-stream
     * evict/restore tests). @throws ServeWireError when the daemon
     * disappears mid-run.
     */
    RunProgress
    streamRun(const std::vector<wl::TraceRecord>& records,
              std::uint64_t from = 0,
              std::optional<std::uint64_t> stop_after_windows =
                  std::nullopt);

    /** Ask the daemon to evict this tenant to disk. Windows that race
     *  the detach are appended to @p stray_windows when non-null. */
    DetachAckMsg detach(harness::TimeSeries* stray_windows = nullptr);

    /** Fetch the aggregate stats JSON (usable without open()). */
    std::string stats();

    void close();
    bool connected() const { return fd_ >= 0; }

  private:
    void ensureConnected();
    void queueFrame(const std::vector<std::uint8_t>& payload);
    /** Flush pending output and wait for the next complete frame.
     *  @throws ServeWireError on EOF or @p timeout_ms expiry. */
    std::vector<std::uint8_t> waitFrame(int timeout_ms = 120'000);
    /** One poll round; returns a frame if one completed. */
    std::optional<std::vector<std::uint8_t>> pollOnce(int timeout_ms);

    std::string address_;
    int fd_ = -1;
    std::vector<std::uint8_t> inbuf_;
    std::vector<std::uint8_t> outbuf_;
    std::size_t out_off_ = 0;
    std::uint64_t records_consumed_ = 0; ///< daemon's last ack
    harness::ExperimentSpec spec_;
    std::uint64_t window_instrs_ = 0;
};

/** Connect a blocking socket to a serve address ("unix:..."/"tcp:...").
 *  @throws ServeError on failure. */
int connectToServe(const std::string& address);

} // namespace pythia::service
