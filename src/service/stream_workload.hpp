/**
 * @file
 * StreamWorkload — the workload a serve tenant's session runs on.
 *
 * A client streams its access records incrementally (kAccess frames of
 * the pythia-serve-v1 protocol); the server appends them here and the
 * tenant SimSession consumes them through the ordinary Workload
 * interface. Two properties distinguish it from FileWorkload:
 *
 *  - It retains the FULL record history, not a looping window. The
 *    snapshot subsystem restores workload position by replaying
 *    records from the start (Core::loadState), so the history must
 *    reach back to record zero for evict/restore to be bit-exact.
 *  - It does NOT loop at the end: running past the appended history is
 *    a server bug (the pump's gating rule must prevent it) and throws
 *    StreamUnderrunError instead of silently replaying stale records.
 */
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "workloads/trace.hpp"

namespace pythia::service {

/** The session consumed past the streamed history — a gating bug. */
class StreamUnderrunError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

class StreamWorkload : public wl::Workload
{
  public:
    /** @p history seeds the stream (restore path: the records the
     *  evicted session had already received). */
    explicit StreamWorkload(std::string name,
                            std::vector<wl::TraceRecord> history = {})
        : name_(std::move(name)), records_(std::move(history))
    {
    }

    wl::TraceRecord next() override
    {
        if (pos_ >= records_.size())
            throw StreamUnderrunError(
                "StreamWorkload '" + name_ + "': consumed past streamed "
                "history (" + std::to_string(records_.size()) +
                " records) — pump gating bug");
        return records_[pos_++];
    }

    void reset() override { pos_ = 0; }

    const std::string& name() const override { return name_; }

    std::unique_ptr<wl::Workload> clone(std::uint64_t /*reseed*/)
        const override
    {
        return std::make_unique<StreamWorkload>(name_, records_);
    }

    /** Append newly streamed records to the history. */
    void append(const std::vector<wl::TraceRecord>& batch)
    {
        records_.insert(records_.end(), batch.begin(), batch.end());
    }

    /** Records streamed so far (monotonic). */
    std::size_t size() const { return records_.size(); }

    /** Records the session has consumed (≤ size()). */
    std::size_t consumed() const { return pos_; }

    std::size_t available() const { return records_.size() - pos_; }

    /** Full history, for eviction persistence (writeTraceFile). */
    const std::vector<wl::TraceRecord>& records() const { return records_; }

  private:
    std::string name_;
    std::vector<wl::TraceRecord> records_;
    std::size_t pos_ = 0;
};

} // namespace pythia::service
