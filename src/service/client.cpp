#include "service/client.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pythia::service {

namespace {

using Clock = std::chrono::steady_clock;

/** Records per kAccess frame. */
constexpr std::uint64_t kSendBatch = 4096;

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

int
connectToServe(const std::string& address)
{
    std::signal(SIGPIPE, SIG_IGN);
    if (address.rfind("unix:", 0) == 0) {
        const std::string path = address.substr(5);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throw ServeError(std::string("socket: ") +
                             std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path)) {
            ::close(fd);
            throw ServeError("unix socket path too long: " + path);
        }
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) < 0) {
            const int err = errno;
            ::close(fd);
            throw ServeError("connect " + address + ": " +
                             std::strerror(err));
        }
        return fd;
    }
    if (address.rfind("tcp:", 0) == 0) {
        const std::string hostport = address.substr(4);
        const std::size_t colon = hostport.rfind(':');
        if (colon == std::string::npos)
            throw ServeError("bad tcp address (want tcp:host:port): " +
                             address);
        const std::string host = hostport.substr(0, colon);
        const int port = std::atoi(hostport.c_str() + colon + 1);
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            throw ServeError(std::string("socket: ") +
                             std::strerror(errno));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
            ::close(fd);
            throw ServeError("bad tcp host (want a dotted quad): " +
                             address);
        }
        // Small frames fly in both directions; Nagle would hold them
        // back against the daemon's window stream.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) < 0) {
            const int err = errno;
            ::close(fd);
            throw ServeError("connect " + address + ": " +
                             std::strerror(err));
        }
        return fd;
    }
    throw ServeError("bad serve address (want unix:<path> or "
                     "tcp:<host>:<port>): " +
                     address);
}

ServeClient::ServeClient(std::string address)
    : address_(std::move(address))
{
}

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    inbuf_.clear();
    outbuf_.clear();
    out_off_ = 0;
    records_consumed_ = 0;
}

void
ServeClient::ensureConnected()
{
    if (fd_ >= 0)
        return;
    fd_ = connectToServe(address_);
    setNonBlocking(fd_);
}

void
ServeClient::queueFrame(const std::vector<std::uint8_t>& payload)
{
    if (payload.empty() || payload.size() > kMaxFramePayload)
        throw ServeWireError("serve client: invalid frame payload size " +
                             std::to_string(payload.size()));
    const auto n = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        outbuf_.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    outbuf_.insert(outbuf_.end(), payload.begin(), payload.end());
}

std::optional<std::vector<std::uint8_t>>
ServeClient::pollOnce(int timeout_ms)
{
    // A frame may already be buffered.
    if (auto frame = extractFrame(inbuf_))
        return frame;

    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (out_off_ < outbuf_.size())
        pfd.events |= POLLOUT;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
        if (errno == EINTR)
            return std::nullopt;
        throw ServeWireError(std::string("serve client: poll: ") +
                             std::strerror(errno));
    }
    if (rc == 0)
        return std::nullopt;

    if (pfd.revents & POLLOUT) {
        while (out_off_ < outbuf_.size()) {
            const ssize_t n =
                ::send(fd_, outbuf_.data() + out_off_,
                       outbuf_.size() - out_off_, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)
                    break;
                throw ServeWireError(
                    std::string("serve client: send: ") +
                    std::strerror(errno));
            }
            out_off_ += static_cast<std::size_t>(n);
        }
        if (out_off_ == outbuf_.size()) {
            outbuf_.clear();
            out_off_ = 0;
        } else if (out_off_ > (1u << 20)) {
            outbuf_.erase(outbuf_.begin(),
                          outbuf_.begin() +
                              static_cast<std::ptrdiff_t>(out_off_));
            out_off_ = 0;
        }
    }

    if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
        std::uint8_t buf[65536];
        for (;;) {
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)
                    break;
                throw ServeWireError(
                    std::string("serve client: recv: ") +
                    std::strerror(errno));
            }
            if (n == 0) {
                close();
                throw ServeWireError(
                    "serve client: daemon closed the connection");
            }
            inbuf_.insert(inbuf_.end(), buf, buf + n);
            if (static_cast<std::size_t>(n) < sizeof buf)
                break;
        }
    }
    return extractFrame(inbuf_);
}

std::vector<std::uint8_t>
ServeClient::waitFrame(int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const auto left = std::chrono::duration_cast<
                              std::chrono::milliseconds>(deadline -
                                                         Clock::now())
                              .count();
        if (left <= 0)
            throw ServeWireError(
                "serve client: timed out waiting for a frame");
        if (auto frame =
                pollOnce(static_cast<int>(std::min<long long>(left, 100))))
            return *frame;
    }
}

HelloAckMsg
ServeClient::open(const std::string& tenant,
                  const harness::ExperimentSpec& spec,
                  std::uint64_t window_instrs)
{
    spec_ = spec;
    window_instrs_ = window_instrs;
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    for (;;) {
        ensureConnected();
        HelloMsg m;
        m.tenant = tenant;
        m.spec = spec;
        m.window_instrs = window_instrs;
        queueFrame(encodeHello(m));
        const std::vector<std::uint8_t> frame = waitFrame();
        const FrameType type = frameType(frame);
        if (type == FrameType::kHelloAck) {
            const HelloAckMsg ack = decodeHelloAck(frame);
            records_consumed_ = ack.records_consumed;
            return ack;
        }
        if (type == FrameType::kError) {
            const ErrorMsg err = decodeError(frame);
            close(); // the daemon closes after kError
            if (err.kind == kErrBusy && Clock::now() < deadline) {
                // An eviction for this tenant is still in flight;
                // back off and retry.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            throw ServeRemoteError(err.kind, err.message);
        }
        throw ServeWireError("serve client: unexpected frame " +
                             std::to_string(frame[0]) +
                             " answering hello");
    }
}

ServeClient::RunProgress
ServeClient::streamRun(const std::vector<wl::TraceRecord>& records,
                       std::uint64_t from,
                       std::optional<std::uint64_t> stop_after_windows)
{
    RunProgress progress;
    // Never run further ahead of the daemon's acknowledged consumption
    // than one warmup + one window + double slack: bounded daemon
    // memory, and always enough for it to finish the next window.
    const std::uint64_t ahead = spec_.warmup_instrs + window_instrs_ +
                                2 * kGateSlack;
    std::uint64_t sent = from;
    auto last_window_at = Clock::now();
    for (;;) {
        while (sent < records.size() &&
               sent - records_consumed_ < ahead &&
               outbuf_.size() - out_off_ < (4u << 20)) {
            const std::uint64_t n = std::min(
                {kSendBatch,
                 static_cast<std::uint64_t>(records.size()) - sent,
                 ahead - (sent - records_consumed_)});
            queueFrame(encodeAccess(records.data() + sent,
                                    static_cast<std::size_t>(n)));
            sent += n;
            progress.records_streamed += n;
        }
        const std::vector<std::uint8_t> frame = waitFrame();
        switch (frameType(frame)) {
        case FrameType::kWindow: {
            const WindowMsg wm = decodeWindow(frame);
            records_consumed_ = wm.records_consumed;
            progress.series.append(wm.window);
            const auto now = Clock::now();
            progress.window_gaps_s.push_back(
                std::chrono::duration<double>(now - last_window_at)
                    .count());
            last_window_at = now;
            if (stop_after_windows &&
                progress.series.size() >= *stop_after_windows)
                return progress;
            break;
        }
        case FrameType::kRunEnd: {
            const RunEndMsg rm = decodeRunEnd(frame);
            records_consumed_ = rm.records_consumed;
            progress.final_result = rm.final_result;
            progress.windows_completed = rm.windows_completed;
            return progress;
        }
        case FrameType::kError: {
            const ErrorMsg err = decodeError(frame);
            close();
            throw ServeRemoteError(err.kind, err.message);
        }
        default:
            throw ServeWireError(
                "serve client: unexpected frame " +
                std::to_string(frame[0]) + " while streaming");
        }
    }
}

DetachAckMsg
ServeClient::detach(harness::TimeSeries* stray_windows)
{
    queueFrame(encodeDetach());
    for (;;) {
        const std::vector<std::uint8_t> frame = waitFrame();
        switch (frameType(frame)) {
        case FrameType::kDetachAck:
            return decodeDetachAck(frame);
        case FrameType::kWindow: {
            const WindowMsg wm = decodeWindow(frame);
            records_consumed_ = wm.records_consumed;
            if (stray_windows)
                stray_windows->append(wm.window);
            break;
        }
        case FrameType::kRunEnd:
            // The run finished before the detach landed; the daemon
            // acks with no state to evict.
            break;
        case FrameType::kError: {
            const ErrorMsg err = decodeError(frame);
            close();
            throw ServeRemoteError(err.kind, err.message);
        }
        default:
            throw ServeWireError(
                "serve client: unexpected frame " +
                std::to_string(frame[0]) + " awaiting detach ack");
        }
    }
}

std::string
ServeClient::stats()
{
    ensureConnected();
    queueFrame(encodeStats());
    for (;;) {
        const std::vector<std::uint8_t> frame = waitFrame();
        switch (frameType(frame)) {
        case FrameType::kStatsAck:
            return decodeStatsAck(frame);
        case FrameType::kWindow:
        case FrameType::kRunEnd:
            break; // stats interleaved with a live run: skip
        case FrameType::kError: {
            const ErrorMsg err = decodeError(frame);
            close();
            throw ServeRemoteError(err.kind, err.message);
        }
        default:
            throw ServeWireError(
                "serve client: unexpected frame " +
                std::to_string(frame[0]) + " awaiting stats");
        }
    }
}

} // namespace pythia::service
