#include "service/server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/runner.hpp"
#include "harness/session.hpp"
#include "harness/timeseries.hpp"
#include "service/event_loop.hpp"
#include "service/stream_workload.hpp"
#include "service/warm_pool.hpp"
#include "service/wire.hpp"

namespace fs = std::filesystem;

namespace pythia::service {

namespace {

using Clock = std::chrono::steady_clock;

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
setCloexec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/** Windows the aggregate stats series retains (the tail half survives
 *  each compaction, bounding daemon memory over a long life). */
constexpr std::size_t kAggregateSeriesCap = 4096;

/** Drain grace: frames unflushed after this many ms are abandoned. */
constexpr std::uint64_t kDrainGraceMs = 30'000;

std::string
tenantKeyHex(const std::string& tenant)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << snap::fnv1a(tenant);
    return os.str();
}

// --------------------------------------------------------- Connection

/** One client socket. The loop thread owns fd/inbuf/outbox and the
 *  event-loop registration; workers hand frames over via the
 *  mutex-guarded staging buffer plus the server's dirty list. */
struct Connection : std::enable_shared_from_this<Connection>
{
    int fd = -1;
    std::vector<std::uint8_t> inbuf;
    OutboxRing outbox;      ///< staged wire frames, flushed vectored
    bool got_hello = false;
    bool closing = false;   ///< flush outbox, then close
    bool paused_in = false; ///< inflight cap reached; read interest off

    // Event-loop registration mirror: updateEvents() only issues a
    // mod() when the wanted interest differs from what's registered.
    bool registered = false;
    bool reg_in = false;
    bool reg_out = false;

    std::mutex mu;
    std::vector<std::vector<std::uint8_t>> staged; ///< payloads from workers
    bool dead = false; ///< socket closed; staging is a no-op

    /** Total queued outgoing bytes (staged + outbox, headers
     *  included) — exact, updated on every partial write, which is
     *  what the max_outbox_bytes throttle compares against. */
    std::atomic<std::size_t> out_bytes{0};
    std::atomic<bool> close_after_flush{false};
    std::atomic<bool> dirty_queued{false}; ///< on the server dirty list

    std::shared_ptr<struct Tenant> tenant;

    void stage(std::vector<std::uint8_t> payload)
    {
        std::lock_guard<std::mutex> lk(mu);
        if (dead)
            return;
        out_bytes += payload.size() + 4;
        staged.push_back(std::move(payload));
    }
};

// ------------------------------------------------------------- Tenant

/** One client session. Session state (stream/session/run flags) is
 *  touched only inside the tenant's serialized task queue. */
struct Tenant
{
    std::string id;
    harness::ExperimentSpec spec;
    std::uint64_t window_instrs = 0;

    std::mutex mu; ///< guards tasks/task_active/pending
    std::deque<std::function<void()>> tasks;
    bool task_active = false;
    std::vector<wl::TraceRecord> pending; ///< received, not yet spliced

    // Worker-owned (serialized by the task queue).
    StreamWorkload* stream = nullptr; ///< owned by session's System
    std::optional<harness::SimSession> session;

    // Warm-pool leadership (worker-owned): set when this tenant's
    // open acquired the right to warm its fingerprint; cleared on
    // publish, and abandoned on failure/eviction so waiters recover.
    bool warm_leader = false;
    std::string warm_fp;

    std::atomic<bool> run_ended{false};
    std::atomic<bool> evicted{false};
    std::atomic<std::uint64_t> records_received{0};
    std::atomic<std::uint64_t> records_consumed{0};
    std::atomic<bool> pump_queued{false};
    std::atomic<bool> throttled{false};

    Clock::time_point last_activity; ///< loop-owned (idle eviction)
};

} // namespace

// --------------------------------------------------------------- Impl

struct ServeServer::Impl
{
    explicit Impl(ServeOptions o)
        : opt(std::move(o)), warm_pool(opt.warm_pool_bytes)
    {
    }

    ServeOptions opt;
    WarmPool warm_pool;

    int listen_fd = -1;
    int wake_r = -1;
    int wake_w = -1;
    std::string bound_address;

    /** Readiness backend; created in start() so an explicit io=epoll
     *  on a platform without it fails there, not inside the thread. */
    std::unique_ptr<EventLoop> loop;

    /** Connections with worker-staged frames (or other state the loop
     *  must service); populated by markDirty(), drained each tick so
     *  the loop touches O(dirty) connections instead of all of them. */
    std::mutex dirty_mu;
    std::vector<std::shared_ptr<Connection>> dirty;

    std::thread loop_thread;
    std::vector<std::thread> pool;
    std::mutex pool_mu;
    std::condition_variable pool_cv;
    std::deque<std::function<void()>> pool_q;
    bool pool_stop = false;

    std::atomic<bool> started{false};
    std::atomic<bool> drain_requested{false};
    std::atomic<bool> finished{false};
    std::atomic<int> busy_tasks{0}; ///< tenant tasks queued or running
    int exit_code = 0;

    std::mutex tenants_mu;
    std::map<std::string, std::shared_ptr<Tenant>> tenants;

    std::vector<std::shared_ptr<Connection>> conns; ///< loop-owned

    // Stats.
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> sessions_opened{0};
    std::atomic<std::uint64_t> sessions_resumed{0};
    std::atomic<std::uint64_t> sessions_evicted{0};
    std::atomic<std::uint64_t> runs_completed{0};
    std::atomic<std::uint64_t> windows_emitted{0};
    std::atomic<std::uint64_t> records_received{0};
    std::atomic<std::uint64_t> frames_rejected{0};

    mutable std::mutex series_mu;
    harness::TimeSeries aggregate_series;

    // ----------------------------------------------------------- misc

    void log(const std::string& msg)
    {
        if (opt.log)
            *opt.log << "[pythia_serve] " << msg << '\n';
    }

    void wake()
    {
        const char b = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_w, &b, 1);
    }

    /** Ask the loop to service @p c (flush staging, re-check pause /
     *  throttle watermarks). Deduplicated: one entry per connection
     *  per loop tick, and only the first marker pays a wake write —
     *  a pump pass staging many windows wakes the loop once, which
     *  then flushes them in one vectored write. */
    void markDirty(const std::shared_ptr<Connection>& c)
    {
        if (c->dirty_queued.exchange(true))
            return;
        {
            std::lock_guard<std::mutex> lk(dirty_mu);
            dirty.push_back(c);
        }
        wake();
    }

    /** Worker-side send: stage a payload and notify the loop. */
    void stageTo(const std::shared_ptr<Connection>& c,
                 std::vector<std::uint8_t> payload)
    {
        c->stage(std::move(payload));
        markDirty(c);
    }

    std::string statePath(const std::string& tenant,
                          const char* suffix) const
    {
        return opt.state_dir + "/tenant-" + tenantKeyHex(tenant) + suffix;
    }

    bool hasEvictedState(const std::string& tenant) const
    {
        // The snapshot is written last: its presence marks the pair
        // complete.
        return fs::exists(statePath(tenant, ".snap"));
    }

    void removeStateFiles(const std::string& tenant)
    {
        std::error_code ec;
        fs::remove(statePath(tenant, ".snap"), ec);
        fs::remove(statePath(tenant, ".trace"), ec);
    }

    void removeTenant(const std::string& id)
    {
        std::lock_guard<std::mutex> lk(tenants_mu);
        tenants.erase(id);
    }

    void recordWindow(const harness::WindowSample& w)
    {
        std::lock_guard<std::mutex> lk(series_mu);
        if (aggregate_series.size() >= kAggregateSeriesCap) {
            // Compact: keep the most recent half.
            std::vector<harness::WindowSample> tail(
                aggregate_series.samples().begin() +
                    static_cast<std::ptrdiff_t>(kAggregateSeriesCap / 2),
                aggregate_series.samples().end());
            aggregate_series.clear();
            for (auto& s : tail)
                aggregate_series.append(std::move(s));
        }
        aggregate_series.append(w);
    }

    // ------------------------------------------------------ task pool

    void postPool(std::function<void()> fn)
    {
        {
            std::lock_guard<std::mutex> lk(pool_mu);
            pool_q.push_back(std::move(fn));
        }
        pool_cv.notify_one();
    }

    void poolMain()
    {
        for (;;) {
            std::function<void()> fn;
            {
                std::unique_lock<std::mutex> lk(pool_mu);
                pool_cv.wait(lk,
                             [&] { return pool_stop || !pool_q.empty(); });
                if (pool_q.empty())
                    return;
                fn = std::move(pool_q.front());
                pool_q.pop_front();
            }
            fn();
        }
    }

    /** Enqueue @p fn on @p t's serialized task queue. */
    void schedule(const std::shared_ptr<Tenant>& t,
                  std::function<void()> fn)
    {
        ++busy_tasks;
        bool start = false;
        {
            std::lock_guard<std::mutex> lk(t->mu);
            t->tasks.push_back(std::move(fn));
            if (!t->task_active) {
                t->task_active = true;
                start = true;
            }
        }
        if (start)
            postPool([this, t] { tenantTasksMain(t); });
    }

    void tenantTasksMain(const std::shared_ptr<Tenant>& t)
    {
        for (;;) {
            std::function<void()> fn;
            {
                std::lock_guard<std::mutex> lk(t->mu);
                if (t->tasks.empty()) {
                    t->task_active = false;
                    return;
                }
                fn = std::move(t->tasks.front());
                t->tasks.pop_front();
            }
            fn();
            --busy_tasks;
            wake();
        }
    }

    void schedulePump(const std::shared_ptr<Tenant>& t,
                      const std::shared_ptr<Connection>& c)
    {
        if (t->pump_queued.exchange(true))
            return;
        schedule(t, [this, t, c] { pumpTask(t, c); });
    }

    // --------------------------------------------------- worker tasks

    /** Release @p t's warm-pool leadership, waking waiters so one of
     *  them warms instead. No-op unless t is an unpublished leader. */
    void abandonWarmLead(const std::shared_ptr<Tenant>& t)
    {
        if (!t->warm_leader)
            return;
        t->warm_leader = false;
        warm_pool.abandon(t->warm_fp);
    }

    /** Leader just finished warmup: publish its post-warmup snapshot
     *  plus the warmup record prefix it consumed. Serialization
     *  failures (a prefetcher without snapshot support) abandon the
     *  entry — those specs simply keep warming per-tenant. */
    void publishWarm(const std::shared_ptr<Tenant>& t)
    {
        if (!t->warm_leader)
            return;
        t->warm_leader = false;
        try {
            WarmPool::Snapshot snap;
            snap.image =
                std::make_shared<const std::vector<std::uint8_t>>(
                    t->session->snapshotBytes());
            const auto& records = t->stream->records();
            const auto consumed = static_cast<std::ptrdiff_t>(
                t->stream->consumed());
            snap.prefix =
                std::make_shared<const std::vector<wl::TraceRecord>>(
                    records.begin(), records.begin() + consumed);
            warm_pool.publish(t->warm_fp, std::move(snap));
        } catch (const std::exception& e) {
            warm_pool.abandon(t->warm_fp);
            log("warm-pool publish failed for tenant '" + t->id +
                "': " + e.what());
        }
    }

    void failTenant(const std::shared_ptr<Tenant>& t,
                    const std::shared_ptr<Connection>& c,
                    std::uint32_t kind, const std::string& message)
    {
        ++frames_rejected;
        t->evicted = true;
        t->session.reset();
        t->stream = nullptr;
        abandonWarmLead(t);
        removeTenant(t->id);
        if (c) {
            c->stage(encodeError(kind, message));
            c->close_after_flush = true;
            markDirty(c);
        } else {
            wake();
        }
        log("tenant '" + t->id + "' failed: " + message);
    }

    void openTask(const std::shared_ptr<Tenant>& t,
                  const std::shared_ptr<Connection>& c)
    {
        // A warm-pool waiter's callback can re-run this task after
        // the tenant already died (disconnect, drain, idle eviction).
        if (t->evicted || t->run_ended || t->session)
            return;
        if (drain_requested.load()) {
            removeTenant(t->id);
            return;
        }
        try {
            auto stream = std::make_unique<StreamWorkload>(
                "serve:" + t->id);
            bool resumed = false;
            bool warm = false;
            WarmPool::Snapshot warm_snap;
            if (hasEvictedState(t->id)) {
                // Per-tenant evicted state takes precedence over the
                // shared pool: it carries mid-run progress.
                const std::string trace_path =
                    statePath(t->id, ".trace");
                if (!fs::exists(trace_path))
                    throw ServeError(
                        "evicted state for tenant '" + t->id +
                        "' is missing its trace file");
                stream = std::make_unique<StreamWorkload>(
                    "serve:" + t->id, wl::readTraceFile(trace_path));
                resumed = true;
            } else if (warm_pool.enabled()) {
                const std::string fp = harness::fingerprintFor(t->spec);
                const WarmPool::Role role = warm_pool.acquire(
                    fp, &warm_snap, [this, t, c] {
                        // Leader settled (published or abandoned):
                        // retry the open on the tenant's task queue —
                        // normally a pool hit now, else we lead.
                        schedule(t,
                                 [this, t, c] { openTask(t, c); });
                    });
                if (role == WarmPool::Role::kWaiter)
                    return; // parked; the callback re-runs us
                if (role == WarmPool::Role::kHit) {
                    // Seed the stream with the pooled warmup prefix —
                    // restore replays consumed records from the start,
                    // and the client streams from prefix end.
                    stream = std::make_unique<StreamWorkload>(
                        "serve:" + t->id, *warm_snap.prefix);
                    warm = true;
                } else {
                    t->warm_leader = true;
                    t->warm_fp = fp;
                }
            }
            t->stream = stream.get();
            std::vector<std::unique_ptr<wl::Workload>> workloads;
            workloads.push_back(std::move(stream));
            if (resumed) {
                t->session.emplace(harness::SimSession::resumeFrom(
                    t->spec, statePath(t->id, ".snap"),
                    std::move(workloads)));
                ++sessions_resumed;
            } else if (warm) {
                t->session.emplace(harness::SimSession::resumeFromBytes(
                    t->spec, *warm_snap.image, std::move(workloads),
                    "warm-pool"));
            } else {
                t->session.emplace(t->spec, std::move(workloads));
            }
            ++sessions_opened;
            // Restored history counts as already received; the client
            // resumes streaming from this index.
            t->records_received += t->stream->size();
            t->records_consumed = t->stream->consumed();

            HelloAckMsg ack;
            ack.resumed = resumed;
            ack.warm = warm;
            ack.instrs_advanced = t->session->instrsAdvanced();
            ack.windows_completed = t->session->windowsCompleted();
            ack.records_received = t->stream->size();
            ack.records_consumed = t->stream->consumed();
            stageTo(c, encodeHelloAck(ack));
            pumpTask(t, c); // records may already be pending
        } catch (const snap::FingerprintError& e) {
            failTenant(t, c, kErrResume, e.what());
        } catch (const snap::SnapshotError& e) {
            failTenant(t, c, kErrResume, e.what());
        } catch (const std::invalid_argument& e) {
            failTenant(t, c, kErrSpec, e.what());
        } catch (const std::exception& e) {
            failTenant(t, c, kErrInternal, e.what());
        }
    }

    void splicePending(const std::shared_ptr<Tenant>& t)
    {
        std::vector<wl::TraceRecord> batch;
        {
            std::lock_guard<std::mutex> lk(t->mu);
            batch.swap(t->pending);
        }
        if (!batch.empty() && t->stream)
            t->stream->append(batch);
    }

    void pumpTask(const std::shared_ptr<Tenant>& t,
                  const std::shared_ptr<Connection>& c)
    {
        t->pump_queued = false;
        splicePending(t);
        if (!t->session || t->run_ended || t->evicted)
            return;
        harness::SimSession& s = *t->session;
        try {
            // Warmup runs as its own phase (bit-identical to the
            // implicit warmup inside advance(): advance() calls
            // runWarmup() first) so a warm-pool leader can publish
            // the post-warmup machine state before any window runs.
            if (!s.warmupDone()) {
                if (t->stream->available() <
                    t->spec.warmup_instrs + kGateSlack)
                    return; // starved: wait for more records
                s.runWarmup();
                t->records_consumed = t->stream->consumed();
                publishWarm(t);
                if (c)
                    // No frame was staged, but consumption advanced:
                    // the loop must re-check the inflight pause.
                    markDirty(c);
            }
            while (!s.done()) {
                const std::uint64_t step =
                    std::min(t->window_instrs, s.instrsRemaining());
                if (t->stream->available() < step + kGateSlack)
                    return; // starved: wait for more records
                if (c && c->out_bytes.load() > opt.max_outbox_bytes) {
                    // Slow client: stop simulating until its write
                    // queue drains (the loop reschedules us).
                    t->throttled = true;
                    return;
                }
                s.advance(step);
                t->records_consumed = t->stream->consumed();
                WindowMsg wm;
                wm.window = s.lastWindow();
                wm.records_consumed = t->stream->consumed();
                recordWindow(wm.window);
                ++windows_emitted;
                if (c)
                    // Consecutive windows coalesce: markDirty dedups,
                    // so the whole pass flushes as one vectored write.
                    stageTo(c, encodeWindow(wm));
            }
            if (!t->run_ended.exchange(true)) {
                ++runs_completed;
                RunEndMsg rm;
                rm.final_result = s.cumulative();
                rm.windows_completed = s.windowsCompleted();
                rm.records_consumed = t->stream->consumed();
                removeStateFiles(t->id);
                if (c)
                    stageTo(c, encodeRunEnd(rm));
            }
        } catch (const std::exception& e) {
            failTenant(t, c, kErrInternal, e.what());
        }
    }

    /** Persist the tenant's session + history and drop it from the
     *  live map. Idempotent; @p ack_conn gets a kDetachAck when set. */
    void evictTask(const std::shared_ptr<Tenant>& t,
                   const std::shared_ptr<Connection>& ack_conn)
    {
        splicePending(t);
        if (t->run_ended || t->evicted || !t->session) {
            // Terminal either way (covers warm-pool waiters that never
            // opened a session): late waiter callbacks must no-op.
            t->evicted = true;
            abandonWarmLead(t);
            removeTenant(t->id);
            if (ack_conn) {
                DetachAckMsg ack;
                ack.records_received = t->records_received.load();
                ack.instrs_advanced =
                    t->session ? t->session->instrsAdvanced() : 0;
                ack.windows_completed =
                    t->session ? t->session->windowsCompleted() : 0;
                stageTo(ack_conn, encodeDetachAck(ack));
            }
            return;
        }
        try {
            fs::create_directories(opt.state_dir);
            // Trace first, snapshot last: the snapshot's presence
            // marks the pair complete (crash between the two leaves a
            // harmless orphan trace).
            if (!wl::writeTraceFile(statePath(t->id, ".trace"),
                                    t->stream->records()))
                throw ServeError("cannot write trace file for tenant '" +
                                 t->id + "'");
            t->session->snapshotTo(statePath(t->id, ".snap"));
            t->evicted = true;
            abandonWarmLead(t); // evicted mid-warmup: let a waiter lead
            ++sessions_evicted;
            DetachAckMsg ack;
            ack.records_received = t->stream->size();
            ack.instrs_advanced = t->session->instrsAdvanced();
            ack.windows_completed = t->session->windowsCompleted();
            t->session.reset();
            t->stream = nullptr;
            removeTenant(t->id);
            log("evicted tenant '" + t->id + "' (" +
                std::to_string(ack.instrs_advanced) + " instrs)");
            if (ack_conn)
                stageTo(ack_conn, encodeDetachAck(ack));
        } catch (const std::exception& e) {
            failTenant(t, ack_conn, kErrInternal, e.what());
        }
    }

    // ------------------------------------------------------ stats doc

    std::string statsJsonDoc() const
    {
        std::size_t active = 0;
        {
            std::lock_guard<std::mutex> lk(
                const_cast<std::mutex&>(tenants_mu));
            active = tenants.size();
        }
        const WarmPool::Stats wp = warm_pool.stats();
        std::ostringstream os;
        os << "{\n  \"schema\": \"pythia-serve-stats-v1\",\n"
           << "  \"io_backend\": \""
           << (loop ? loop->name() : "unset") << "\",\n"
           << "  \"active_tenants\": " << active << ",\n"
           << "  \"connections_accepted\": " << connections_accepted
           << ",\n"
           << "  \"sessions_opened\": " << sessions_opened << ",\n"
           << "  \"sessions_resumed\": " << sessions_resumed << ",\n"
           << "  \"sessions_evicted\": " << sessions_evicted << ",\n"
           << "  \"runs_completed\": " << runs_completed << ",\n"
           << "  \"windows_emitted\": " << windows_emitted << ",\n"
           << "  \"records_received\": " << records_received << ",\n"
           << "  \"frames_rejected\": " << frames_rejected << ",\n"
           << "  \"warm_pool\": {\"enabled\": "
           << (warm_pool.enabled() ? "true" : "false")
           << ", \"hits\": " << wp.hits
           << ", \"misses\": " << wp.misses
           << ", \"waits\": " << wp.waits
           << ", \"inserts\": " << wp.inserts
           << ", \"evictions\": " << wp.evictions
           << ", \"bytes\": " << wp.bytes
           << ", \"entries\": " << wp.entries << "},\n"
           << "  \"timeseries\": ";
        {
            std::lock_guard<std::mutex> lk(series_mu);
            aggregate_series.writeJson(os);
        }
        os << "\n}\n";
        return os.str();
    }

    // ----------------------------------------------------- frame hand

    void protocolError(const std::shared_ptr<Connection>& c,
                       const std::string& message)
    {
        ++frames_rejected;
        c->stage(encodeError(kErrProtocol, message));
        c->close_after_flush = true;
    }

    void handleFrame(const std::shared_ptr<Connection>& c,
                     const std::vector<std::uint8_t>& payload)
    {
        const FrameType type = frameType(payload);
        switch (type) {
        case FrameType::kHello: {
            if (c->got_hello) {
                protocolError(c, "second hello on one connection");
                return;
            }
            const HelloMsg m = decodeHello(payload);
            c->got_hello = true;
            if (m.spec.num_cores != 1 || !m.spec.mix.empty()) {
                ++frames_rejected;
                c->stage(encodeError(
                    kErrSpec,
                    "serve tenants are single-core: one client is one "
                    "access stream (num_cores=1, no mix)"));
                c->close_after_flush = true;
                return;
            }
            auto t = std::make_shared<Tenant>();
            t->id = m.tenant;
            t->spec = m.spec;
            t->window_instrs = m.window_instrs;
            t->last_activity = Clock::now();
            {
                std::lock_guard<std::mutex> lk(tenants_mu);
                if (!tenants.emplace(t->id, t).second) {
                    ++frames_rejected;
                    c->stage(encodeError(
                        kErrBusy, "tenant '" + t->id +
                                      "' is already attached"));
                    c->close_after_flush = true;
                    return;
                }
            }
            c->tenant = t;
            schedule(t, [this, t, c] { openTask(t, c); });
            return;
        }
        case FrameType::kAccess: {
            auto t = c->tenant;
            if (!t) {
                protocolError(c, "access frame before hello");
                return;
            }
            std::vector<wl::TraceRecord> records = decodeAccess(payload);
            records_received += records.size();
            t->records_received += records.size();
            t->last_activity = Clock::now();
            {
                std::lock_guard<std::mutex> lk(t->mu);
                t->pending.insert(t->pending.end(), records.begin(),
                                  records.end());
            }
            schedulePump(t, c);
            return;
        }
        case FrameType::kDetach: {
            auto t = c->tenant;
            if (!t) {
                protocolError(c, "detach before hello");
                return;
            }
            c->tenant.reset(); // further frames on this conn are errors
            schedule(t, [this, t, c] { evictTask(t, c); });
            return;
        }
        case FrameType::kStats:
            c->stage(encodeStatsAck(statsJsonDoc()));
            return;
        default:
            protocolError(c, "unexpected client frame type " +
                                 std::to_string(payload[0]));
            return;
        }
    }

    // ------------------------------------------------------ socket ops

    void bindAndListen()
    {
        if (!opt.unix_path.empty()) {
            listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (listen_fd < 0)
                throw ServeError(std::string("socket: ") +
                                 std::strerror(errno));
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            if (opt.unix_path.size() >= sizeof(addr.sun_path))
                throw ServeError("unix socket path too long: " +
                                 opt.unix_path);
            std::strncpy(addr.sun_path, opt.unix_path.c_str(),
                         sizeof(addr.sun_path) - 1);
            ::unlink(opt.unix_path.c_str());
            if (::bind(listen_fd,
                       reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) < 0)
                throw ServeError("bind " + opt.unix_path + ": " +
                                 std::strerror(errno));
            bound_address = "unix:" + opt.unix_path;
        } else {
            listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (listen_fd < 0)
                throw ServeError(std::string("socket: ") +
                                 std::strerror(errno));
            const int one = 1;
            ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port = htons(opt.tcp_port);
            if (::bind(listen_fd,
                       reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) < 0)
                throw ServeError(
                    "bind 127.0.0.1:" + std::to_string(opt.tcp_port) +
                    ": " + std::strerror(errno));
            socklen_t len = sizeof(addr);
            ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len);
            bound_address = "tcp:127.0.0.1:" +
                            std::to_string(ntohs(addr.sin_port));
        }
        setCloexec(listen_fd);
        setNonBlocking(listen_fd);
        if (::listen(listen_fd, 128) < 0)
            throw ServeError(std::string("listen: ") +
                             std::strerror(errno));
    }

    void acceptClients()
    {
        for (;;) {
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0)
                return; // EAGAIN or transient error: poll again
            setCloexec(fd);
            setNonBlocking(fd);
            if (opt.unix_path.empty()) {
                // Stream socket: windows and acks are small frames;
                // Nagle would batch them against the client's acks.
                const int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
            }
            auto c = std::make_shared<Connection>();
            c->fd = fd;
            updateEvents(c);
            conns.push_back(std::move(c));
            ++connections_accepted;
        }
    }

    /** Reconcile the event-loop registration with what the connection
     *  currently wants; issues a syscall only on a real transition. */
    void updateEvents(const std::shared_ptr<Connection>& c)
    {
        if (c->fd < 0)
            return;
        const bool want_in = !c->closing && !c->paused_in;
        const bool want_out = !c->outbox.empty();
        if (!c->registered) {
            loop->add(c->fd, c.get(), want_in, want_out);
            c->registered = true;
        } else if (want_in != c->reg_in || want_out != c->reg_out) {
            loop->mod(c->fd, want_in, want_out);
        } else {
            return;
        }
        c->reg_in = want_in;
        c->reg_out = want_out;
    }

    /** Move worker-staged payloads into the outbox ring. */
    void drainStaged(const std::shared_ptr<Connection>& c)
    {
        std::vector<std::vector<std::uint8_t>> staged;
        bool close_req = false;
        {
            std::lock_guard<std::mutex> lk(c->mu);
            staged.swap(c->staged);
            close_req = c->close_after_flush.load();
        }
        for (auto& payload : staged)
            c->outbox.push(std::move(payload));
        if (close_req)
            c->closing = true;
    }

    /** Vectored flush of the outbox ring, with exact out_bytes
     *  accounting. @return false when the connection died. */
    bool flushOut(const std::shared_ptr<Connection>& c)
    {
        if (c->outbox.empty())
            return true;
        const std::size_t before = c->outbox.bytes();
        const FlushResult r = flushOutbox(c->fd, c->outbox);
        c->out_bytes -= before - c->outbox.bytes();
        return r != FlushResult::kDead;
    }

    /**
     * One full service pass over @p c on the loop thread: splice
     * staged frames into the ring, flush, and re-evaluate every
     * backpressure watermark. The single place pause/throttle state
     * transitions happen, so both the dirty path and the readiness
     * path behave identically. @return false when the connection died.
     */
    bool serviceConn(const std::shared_ptr<Connection>& c)
    {
        drainStaged(c);
        if (!flushOut(c))
            return false;
        auto t = c->tenant;
        if (t) {
            const std::uint64_t inflight =
                t->records_received.load() -
                t->records_consumed.load();
            if (!c->paused_in && inflight > opt.max_inflight_records)
                c->paused_in = true;
            else if (c->paused_in &&
                     inflight <= opt.max_inflight_records / 2)
                c->paused_in = false;
            if (t->throttled.load() &&
                c->out_bytes.load() < opt.max_outbox_bytes / 2) {
                if (t->throttled.exchange(false))
                    schedulePump(t, c);
            }
        }
        if (c->closing && c->outbox.empty()) {
            bool staged_empty;
            {
                std::lock_guard<std::mutex> lk(c->mu);
                staged_empty = c->staged.empty();
            }
            if (staged_empty)
                return false; // flushed everything; close for real
        }
        updateEvents(c);
        return true;
    }

    /** @return false when the connection died (EOF or error). */
    bool readIn(const std::shared_ptr<Connection>& c)
    {
        for (;;) {
            std::uint8_t buf[65536];
            const ssize_t n = ::recv(c->fd, buf, sizeof buf, 0);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)
                    break;
                return false;
            }
            if (n == 0)
                return false; // EOF
            c->inbuf.insert(c->inbuf.end(), buf, buf + n);
            if (static_cast<std::size_t>(n) < sizeof buf)
                break;
        }
        try {
            while (auto frame = extractFrame(c->inbuf)) {
                handleFrame(c, *frame);
                if (c->closing || c->close_after_flush)
                    break;
            }
        } catch (const ServeWireError& e) {
            protocolError(c, e.what());
        }
        return true;
    }

    void disconnect(const std::shared_ptr<Connection>& c, bool draining)
    {
        {
            std::lock_guard<std::mutex> lk(c->mu);
            c->dead = true;
            c->staged.clear();
        }
        if (c->registered) {
            loop->del(c->fd);
            c->registered = false;
        }
        ::close(c->fd);
        c->fd = -1;
        if (c->tenant) {
            auto t = c->tenant;
            c->tenant.reset();
            if (!draining && !t->run_ended && !t->evicted)
                schedule(t, [this, t] {
                    evictTask(t, nullptr);
                });
            else if (t->run_ended)
                // Completed runs have no state to evict; drop the
                // tenant so the id can be reopened fresh.
                removeTenant(t->id);
        }
    }

    // ------------------------------------------------------- main loop

    /** Disconnect and forget every connection in @p dead (entries a
     *  prior sweep already closed are skipped). */
    void reapDead(std::vector<std::shared_ptr<Connection>>& dead,
                  bool draining)
    {
        for (auto& c : dead) {
            if (c->fd < 0)
                continue; // already reaped this tick
            disconnect(c, draining);
            conns.erase(std::remove(conns.begin(), conns.end(), c),
                        conns.end());
        }
        dead.clear();
    }

    void loopMain()
    {
        bool draining = false;
        Clock::time_point drain_deadline{};
        std::vector<IoEvent> events;
        std::vector<std::shared_ptr<Connection>> dirty_now;
        std::vector<std::shared_ptr<Connection>> dead;

        loop->add(wake_r, nullptr, true, false);
        if (listen_fd >= 0)
            loop->add(listen_fd, nullptr, true, false);

        while (true) {
            // Service only the connections workers flagged since the
            // last tick — staged frames to splice/flush, watermark
            // transitions — instead of scanning every connection.
            dirty_now.clear();
            {
                std::lock_guard<std::mutex> lk(dirty_mu);
                dirty_now.swap(dirty);
            }
            for (auto& c : dirty_now) {
                c->dirty_queued = false;
                if (c->fd < 0)
                    continue;
                if (!serviceConn(c))
                    dead.push_back(c);
            }
            reapDead(dead, draining);

            if (drain_requested.load() && !draining) {
                draining = true;
                drain_deadline =
                    Clock::now() +
                    std::chrono::milliseconds(kDrainGraceMs);
                if (listen_fd >= 0) {
                    loop->del(listen_fd);
                    ::close(listen_fd);
                    listen_fd = -1;
                }
                std::vector<std::shared_ptr<Tenant>> live;
                {
                    std::lock_guard<std::mutex> lk(tenants_mu);
                    for (auto& [id, t] : tenants)
                        live.push_back(t);
                }
                for (auto& t : live)
                    schedule(t, [this, t] { evictTask(t, nullptr); });
                log("draining: evicting " +
                    std::to_string(live.size()) + " live sessions");
            }

            if (draining) {
                bool flushed = true;
                for (auto& c : conns) {
                    std::lock_guard<std::mutex> lk(c->mu);
                    if (!c->outbox.empty() || !c->staged.empty())
                        flushed = false;
                }
                if ((busy_tasks.load() == 0 && flushed) ||
                    Clock::now() >= drain_deadline) {
                    for (auto& c : conns)
                        disconnect(c, true);
                    conns.clear();
                    break;
                }
            }

            // Idle eviction.
            if (!draining && opt.idle_evict_ms > 0) {
                const auto now = Clock::now();
                for (auto& c : conns) {
                    auto t = c->tenant;
                    if (!t || t->run_ended || t->evicted)
                        continue;
                    const auto idle =
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            now - t->last_activity)
                            .count();
                    if (idle >= 0 &&
                        static_cast<std::uint64_t>(idle) >=
                            opt.idle_evict_ms) {
                        log("idle-evicting tenant '" + t->id + "'");
                        c->closing = true;
                        c->tenant.reset();
                        updateEvents(c); // stop reading immediately
                        schedule(t, [this, t] {
                            evictTask(t, nullptr);
                        });
                        markDirty(c); // close once the outbox drains
                    }
                }
            }

            int timeout_ms = 1000;
            if (draining)
                timeout_ms = 10;
            else if (opt.idle_evict_ms > 0)
                timeout_ms = static_cast<int>(std::min<std::uint64_t>(
                    opt.idle_evict_ms / 2 + 1, 1000));
            loop->wait(events, timeout_ms);

            for (const IoEvent& ev : events) {
                if (ev.fd == wake_r) {
                    std::uint8_t b[256];
                    while (::read(wake_r, b, sizeof b) > 0) {
                    }
                    continue;
                }
                if (listen_fd >= 0 && ev.fd == listen_fd) {
                    if (!draining)
                        acceptClients();
                    continue;
                }
                auto* raw = static_cast<Connection*>(ev.ud);
                if (!raw)
                    continue; // registration already gone
                auto c = raw->shared_from_this();
                if (c->fd < 0)
                    continue;
                bool alive = !ev.err;
                if (alive && ev.in)
                    alive = readIn(c);
                if (alive)
                    alive = serviceConn(c);
                if (!alive)
                    dead.push_back(c);
            }
            reapDead(dead, draining);
        }

        // Shut the pool down (drain eviction tasks already ran:
        // busy_tasks was 0 before the loop broke, except on grace
        // timeout — remaining tasks still run to completion here).
        {
            std::lock_guard<std::mutex> lk(pool_mu);
            pool_stop = true;
        }
        pool_cv.notify_all();
        for (auto& th : pool)
            th.join();
        pool.clear();
        if (listen_fd >= 0) {
            ::close(listen_fd);
            listen_fd = -1;
        }
        if (!opt.unix_path.empty())
            ::unlink(opt.unix_path.c_str());
        finished = true;
        log("drained; exiting " + std::to_string(exit_code));
    }
};

// --------------------------------------------------------- ServeServer

ServeServer::ServeServer(ServeOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt)))
{
}

ServeServer::~ServeServer()
{
    if (impl_ && impl_->started.load() && !impl_->finished.load())
        stop();
    else if (impl_ && impl_->loop_thread.joinable())
        impl_->loop_thread.join();
}

void
ServeServer::start()
{
    std::signal(SIGPIPE, SIG_IGN);
    if (impl_->started.exchange(true))
        throw ServeError("ServeServer::start() called twice");
    fs::create_directories(impl_->opt.state_dir);
    int pipefd[2];
    if (::pipe(pipefd) != 0)
        throw ServeError(std::string("pipe: ") + std::strerror(errno));
    impl_->wake_r = pipefd[0];
    impl_->wake_w = pipefd[1];
    setNonBlocking(impl_->wake_r);
    setNonBlocking(impl_->wake_w);
    setCloexec(impl_->wake_r);
    setCloexec(impl_->wake_w);
    impl_->bindAndListen();
    // Created here, not in the loop thread, so an explicit io=epoll
    // on a platform without it fails the start() call directly.
    impl_->loop = makeEventLoop(impl_->opt.io);
    const unsigned workers = std::max(1u, impl_->opt.workers);
    for (unsigned i = 0; i < workers; ++i)
        impl_->pool.emplace_back([impl = impl_.get()] {
            impl->poolMain();
        });
    impl_->loop_thread = std::thread([impl = impl_.get()] {
        impl->loopMain();
    });
    impl_->log("listening on " + impl_->bound_address);
}

std::string
ServeServer::boundAddress() const
{
    return impl_->bound_address;
}

void
ServeServer::requestDrain()
{
    impl_->drain_requested.store(true);
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(impl_->wake_w, &b, 1);
}

int
ServeServer::join()
{
    if (impl_->loop_thread.joinable())
        impl_->loop_thread.join();
    return impl_->exit_code;
}

int
ServeServer::stop()
{
    requestDrain();
    return join();
}

bool
ServeServer::running() const
{
    return impl_->started.load() && !impl_->finished.load();
}

ServeServer::Stats
ServeServer::stats() const
{
    Stats s;
    s.connections_accepted = impl_->connections_accepted.load();
    s.sessions_opened = impl_->sessions_opened.load();
    s.sessions_resumed = impl_->sessions_resumed.load();
    s.sessions_evicted = impl_->sessions_evicted.load();
    s.runs_completed = impl_->runs_completed.load();
    s.windows_emitted = impl_->windows_emitted.load();
    s.records_received = impl_->records_received.load();
    s.frames_rejected = impl_->frames_rejected.load();
    {
        std::lock_guard<std::mutex> lk(impl_->tenants_mu);
        s.active_tenants = impl_->tenants.size();
    }
    const WarmPool::Stats wp = impl_->warm_pool.stats();
    s.warm_hits = wp.hits;
    s.warm_misses = wp.misses;
    s.warm_waits = wp.waits;
    s.warm_evictions = wp.evictions;
    s.warm_bytes = wp.bytes;
    return s;
}

std::string
ServeServer::statsJson() const
{
    return impl_->statsJsonDoc();
}

} // namespace pythia::service
