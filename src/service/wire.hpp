/**
 * @file
 * pythia-serve-v1 — the prefetch-as-a-service wire protocol.
 *
 * Framing follows the shard transport (DESIGN.md §11): every frame is
 * a u32 little-endian payload length followed by the payload, whose
 * first byte is the FrameType. Payloads ride the snap::Writer/Reader
 * codec, so integers are fixed-width little-endian and floats travel
 * as IEEE-754 bit patterns — windowed metrics deserialize on the
 * client bit-identically to what the server measured.
 *
 * Conversation (client ↔ daemon):
 *
 *     client → kHello     (schema, version, tenant, spec, window_instrs)
 *     server → kHelloAck  (resumed?, instrs_advanced, windows_completed,
 *                          records_received)
 *     client → kAccess*   (batches of trace records)
 *     server → kWindow*   (one per completed measurement window, with
 *                          records_consumed for client flow control)
 *     server → kRunEnd    (final cumulative RunResult; sim budget spent)
 *     client → kDetach    (optional: evict me — snapshot to disk)
 *     server → kDetachAck (records_received = resume point)
 *
 *     client → kStats     (on any connection)
 *     server → kStatsAck  (aggregate daemon stats JSON)
 *
 *     server → kError     (typed; the connection closes after it)
 *
 * The serving determinism rule (DESIGN.md §12): the kWindow stream a
 * tenant receives is bit-identical to running the same spec offline
 * through SimSession with the same window_instrs — including across an
 * evict/restore cycle, because eviction persists the full streamed
 * history (StreamWorkload) plus a pythia-snap-v1 snapshot, and restore
 * replays both.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/session.hpp"
#include "harness/shard.hpp"
#include "harness/spec.hpp"
#include "workloads/trace.hpp"

namespace pythia::service {

// ------------------------------------------------------------- errors

/** Base class of every service failure. */
class ServeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Wire violation: bad frame length, unknown type, malformed payload,
 *  schema/version mismatch, truncated stream. */
class ServeWireError : public ServeError
{
  public:
    using ServeError::ServeError;
};

/** The peer sent a kError frame; carries its typed kind. */
class ServeRemoteError : public ServeError
{
  public:
    ServeRemoteError(std::uint32_t kind, const std::string& message)
        : ServeError(message), kind_(kind)
    {
    }

    std::uint32_t kind() const { return kind_; }

  private:
    std::uint32_t kind_;
};

// ---------------------------------------------------------- constants

inline constexpr const char* kServeSchemaName = "pythia-serve-v1";
inline constexpr std::uint32_t kServeVersion = 1;

/** Hard ceiling on one frame's payload (anti-DoS, like the shard
 *  transport's cap). */
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/**
 * Gating slack, in records: the pump advances a window of W instrs
 * only when the streamed history holds W + kGateSlack unconsumed
 * records. Every record retires at least one instruction, so a window
 * consumes at most W records plus the pipeline drain margin (256-entry
 * ROB × dispatch width 4); 1024 over-covers that with headroom.
 */
inline constexpr std::uint64_t kGateSlack = 1024;

/** Records a client must stream for @p spec to run to completion:
 *  warmup + measurement budget + gating slack. */
inline std::uint64_t
recordBudgetFor(const harness::ExperimentSpec& spec)
{
    return spec.warmup_instrs + spec.sim_instrs + kGateSlack;
}

// -------------------------------------------------------- frame types

enum class FrameType : std::uint8_t {
    kHello = 1,
    kHelloAck = 2,
    kAccess = 3,
    kWindow = 4,
    kRunEnd = 5,
    kDetach = 6,
    kDetachAck = 7,
    kStats = 8,
    kStatsAck = 9,
    kError = 10,
};

/** kError taxonomy, mirrored into ServeRemoteError::kind(). */
enum ErrorKind : std::uint32_t {
    kErrProtocol = 1, ///< malformed/unexpected frame, schema mismatch
    kErrSpec = 2,     ///< unacceptable spec (multi-core, unknown names)
    kErrResume = 3,   ///< evicted state exists but cannot be restored
    kErrBusy = 4,     ///< tenant already attached on another connection
    kErrInternal = 5, ///< simulation failure inside the daemon
};

// ----------------------------------------------------------- messages

struct HelloMsg
{
    std::string tenant;
    harness::ExperimentSpec spec;
    std::uint64_t window_instrs = 0;
};

struct HelloAckMsg
{
    bool resumed = false; ///< session restored from evicted state
    /** Session restored from the daemon's shared warm-snapshot pool:
     *  warmup was skipped bit-exactly, and records_received already
     *  covers the pooled warmup prefix. */
    bool warm = false;
    std::uint64_t instrs_advanced = 0;
    std::uint64_t windows_completed = 0;
    /** Records the daemon already holds for this tenant — the client
     *  resumes streaming from this index. */
    std::uint64_t records_received = 0;
    /** Records the restored session has already consumed — seeds the
     *  client's flow-control window so a resume never stalls waiting
     *  for a first kWindow ack. */
    std::uint64_t records_consumed = 0;
};

struct WindowMsg
{
    harness::WindowSample window;
    /** Stream position the session has consumed (flow control). */
    std::uint64_t records_consumed = 0;
};

struct RunEndMsg
{
    sim::RunResult final_result;
    std::uint64_t windows_completed = 0;
    std::uint64_t records_consumed = 0;
};

struct DetachAckMsg
{
    std::uint64_t records_received = 0;
    std::uint64_t instrs_advanced = 0;
    std::uint64_t windows_completed = 0;
};

struct ErrorMsg
{
    std::uint32_t kind = kErrInternal;
    std::string message;
};

// ------------------------------------------------- payload encode/decode

std::vector<std::uint8_t> encodeHello(const HelloMsg& m);
std::vector<std::uint8_t> encodeHelloAck(const HelloAckMsg& m);
std::vector<std::uint8_t> encodeAccess(const wl::TraceRecord* records,
                                       std::size_t n);
std::vector<std::uint8_t> encodeWindow(const WindowMsg& m);
std::vector<std::uint8_t> encodeRunEnd(const RunEndMsg& m);
std::vector<std::uint8_t> encodeDetach();
std::vector<std::uint8_t> encodeDetachAck(const DetachAckMsg& m);
std::vector<std::uint8_t> encodeStats();
std::vector<std::uint8_t> encodeStatsAck(const std::string& json);
std::vector<std::uint8_t> encodeError(std::uint32_t kind,
                                      const std::string& message);

/** First byte of @p payload as a FrameType.
 *  @throws ServeWireError on empty payload or unknown type. */
FrameType frameType(const std::vector<std::uint8_t>& payload);

/** Decode the payload body after the type byte. Each throws
 *  ServeWireError on malformed bytes (wrapping snap::CorruptError). */
HelloMsg decodeHello(const std::vector<std::uint8_t>& payload);
HelloAckMsg decodeHelloAck(const std::vector<std::uint8_t>& payload);
std::vector<wl::TraceRecord>
decodeAccess(const std::vector<std::uint8_t>& payload);
WindowMsg decodeWindow(const std::vector<std::uint8_t>& payload);
RunEndMsg decodeRunEnd(const std::vector<std::uint8_t>& payload);
DetachAckMsg decodeDetachAck(const std::vector<std::uint8_t>& payload);
std::string decodeStatsAck(const std::vector<std::uint8_t>& payload);
ErrorMsg decodeError(const std::vector<std::uint8_t>& payload);

// -------------------------------------------------------- frame I/O

/** Write one length-prefixed frame to @p fd (blocking, EINTR-safe).
 *  @throws ServeWireError on oversized payload or write failure. */
void writeFrame(int fd, const std::vector<std::uint8_t>& payload);

/** Read one frame from @p fd (blocking). Returns nullopt on clean EOF
 *  at a frame boundary. @throws ServeWireError on truncation, bad
 *  length or read failure. */
std::optional<std::vector<std::uint8_t>> readFrame(int fd);

/**
 * Extract the next complete frame from an accumulator buffer (the
 * nonblocking server path), erasing its bytes. Returns nullopt while
 * the frame is still partial. @throws ServeWireError when the length
 * prefix exceeds kMaxFramePayload or is zero.
 */
std::optional<std::vector<std::uint8_t>>
extractFrame(std::vector<std::uint8_t>& buf);

} // namespace pythia::service
