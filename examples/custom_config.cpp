/**
 * @file
 * Online customization: builds Pythia variants entirely through the
 * public configuration surface — custom reward levels (the paper's §6.6
 * "configuration registers"), a custom feature vector and a pruned
 * action list — and compares them on a target workload. No hardware
 * (i.e., library) changes are needed for any of the variants.
 *
 * Usage: custom_config [workload=<name>]
 */
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/configs.hpp"
#include "harness/experiment.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    Config cli;
    cli.parseArgs(argc, argv);
    const std::string workload = cli.getString("workload", "Ligra-CC");

    // Variant 1: the paper's strict graph-processing rewards.
    auto strict = rl::scaledForSimLength(rl::strictPythiaConfig());

    // Variant 2: a custom feature vector (PC+Offset and last-4 offsets).
    auto offsets = rl::scaledForSimLength(rl::withFeatures(
        rl::basicPythiaConfig(),
        {{rl::ControlKind::Pc, rl::DataKind::PageOffset},
         {rl::ControlKind::None, rl::DataKind::Last4Offsets}}));

    // Variant 3: a conservative action list (short forward offsets only).
    auto short_actions = rl::scaledForSimLength(rl::basicPythiaConfig());
    short_actions.actions = {0, 1, 3, 4, 5};
    short_actions.name = "pythia[short-actions]";

    harness::Runner runner;
    Table table("Customization on " + workload);
    table.setHeader({"variant", "speedup", "coverage", "overpred",
                     "accuracy"});

    auto show = [&](const std::string& label,
                    const harness::Runner::Outcome& o) {
        table.addRow({label, Table::fmt(o.metrics.speedup),
                      Table::pct(o.metrics.coverage),
                      Table::pct(o.metrics.overprediction),
                      Table::pct(o.metrics.accuracy)});
    };
    auto row = [&](const std::string& label, rl::PythiaConfig cfg) {
        show(label, harness::Experiment(workload)
                        .l2Pythia(std::move(cfg))
                        .run(runner));
    };
    show("basic", harness::Experiment(workload).l2("pythia").run(runner));
    // Reward levels are also reachable directly from the spec string —
    // no config object needed for scalar knobs.
    show("strict rewards (spec string)",
         harness::Experiment(workload)
             .l2("pythia:r_in_high=-22,r_in_low=-20,r_np_high=0,"
                 "r_np_low=0")
             .run(runner));
    row("strict rewards", strict);
    row("offset features", offsets);
    row("short action list", short_actions);
    table.print();
    return 0;
}
