/**
 * @file
 * Sharded sweep quickstart: the same declarative grid as
 * parallel_sweep.cpp, but executed by harness::ShardCoordinator across
 * worker *processes* with a durable journal (DESIGN.md §11).
 *
 * The determinism rule makes the topology invisible in the output: this
 * table is byte-identical to the one ParallelRunner prints for any
 * jobs=<n>. What the coordinator adds is crash tolerance — kill this
 * program (or its workers) mid-sweep and re-run it with the same
 * journal= path, and only the jobs missing from the journal execute;
 * completed ones replay bit-exactly from disk:
 *
 *     sharded_sweep workers=4 journal=/tmp/demo.journal
 *     # ... SIGKILL it halfway ...
 *     sharded_sweep workers=4 journal=/tmp/demo.journal   # resumes
 *
 * Usage: sharded_sweep [workers=<n>] [journal=<path>] [steal=0|1]
 */
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/shard.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    Config cli;
    harness::ShardOptions opt;
    try {
        cli.parseArgsStrict(argc, argv, {"workers", "journal", "steal"});
        const std::int64_t n = cli.getInt("workers", 2);
        if (n < 1)
            throw std::invalid_argument("workers must be >= 1");
        opt.workers = static_cast<unsigned>(n);
        opt.journal_path = cli.getString("journal", "");
        opt.steal = cli.getBool("steal", true);
    } catch (const std::exception& e) {
        std::cerr << "sharded_sweep: " << e.what() << "\n";
        return 2;
    }
    opt.report_os = &std::cerr;

    const std::vector<std::string> workloads = {"462.libquantum-1343B",
                                                "429.mcf-184B",
                                                "Ligra-PageRank"};
    const std::vector<std::string> prefetchers = {"spp", "bingo",
                                                  "pythia"};

    Table table("Speedup across workload x prefetcher (sharded)");
    table.setHeader({"workload", "prefetcher", "speedup", "coverage"});

    harness::Sweep sweep;
    sweep.grid(workloads, prefetchers,
               [](const std::string& w, const std::string& pf) {
                   return harness::Experiment(w).l2(pf).warmup(30'000)
                       .measure(80'000);
               },
               [&table](const std::string& w, const std::string& pf,
                        const harness::Runner::Outcome& o) {
                   table.addRow({w, pf, Table::fmt(o.metrics.speedup),
                                 Table::pct(o.metrics.coverage)});
               });

    harness::Runner runner;
    harness::ShardCoordinator coordinator(opt);
    coordinator.run(runner, sweep);

    table.print();
    const auto& r = coordinator.lastReport();
    std::cout << "\n" << r.sweep.experiments << " experiments on "
              << r.sweep.jobs << " worker process(es); " << r.resumed_jobs
              << " resumed from the journal, " << r.stolen_jobs
              << " stolen, " << r.worker_restarts
              << " worker restarts.\n";
    return 0;
}
