/**
 * @file
 * Live introspection of a running simulation through the streaming
 * SimSession API: step a machine window by window, watch the paper's
 * metrics evolve against a baseline session advanced in lockstep, and
 * peek into live component state (DRAM utilization EWMA, LLC counters)
 * that the batch simulate() call could only report post-mortem.
 *
 * Usage: live_introspection [workload=<name>] [prefetcher=<spec>]
 *                           [windows=<n>] [series_out=<path>]
 *
 * Demonstrates both observer styles: a custom SessionObserver printing
 * a live ticker, and a TimeSeries recording every window for CSV
 * emission.
 */
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "common/config.hpp"
#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "harness/timeseries.hpp"

namespace {

using namespace pythia;

/** Prints one ticker line per window, reading the live machine. */
class Ticker final : public harness::SessionObserver
{
  public:
    void onWarmupEnd(harness::SimSession& session) override
    {
        std::printf("[warmup done: %llu instrs/core]\n",
                    static_cast<unsigned long long>(
                        session.spec().warmup_instrs));
    }

    void onWindowEnd(harness::SimSession& session,
                     const harness::WindowSample& w) override
    {
        // Live component state, mid-run: the DRAM bandwidth monitor and
        // the LLC's raw counters — the introspection surface the
        // ROADMAP's serving/checkpointing goals build on.
        sim::System& machine = session.system();
        std::printf("[window %2llu] %6llu..%-6llu ipc=%.3f acc=%.2f "
                    "llc_miss=%llu dram_util=%.2f\n",
                    static_cast<unsigned long long>(w.index),
                    static_cast<unsigned long long>(w.instrs_begin),
                    static_cast<unsigned long long>(w.instrs_end),
                    w.delta.ipc_geomean, w.delta.accuracy(),
                    static_cast<unsigned long long>(
                        w.delta.llc_demand_load_misses),
                    machine.dram().utilization());
    }

    void onRunEnd(harness::SimSession&,
                  const sim::RunResult& final_result) override
    {
        std::printf("[run end] cumulative ipc=%.3f accuracy=%.2f\n",
                    final_result.ipc_geomean, final_result.accuracy());
    }
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace pythia;

    Config cli;
    cli.parseArgs(argc, argv);
    const std::string workload =
        cli.getString("workload", "429.mcf-184B");
    const std::string prefetcher = cli.getString("prefetcher", "pythia");
    const std::uint64_t windows = std::max<std::int64_t>(
        1, cli.getInt("windows", 8));
    const std::string series_out = cli.getString("series_out", "");

    std::cout << "Live introspection: workload=" << workload
              << " prefetcher=" << prefetcher << " windows=" << windows
              << "\n";

    auto series = std::make_shared<harness::TimeSeries>();
    harness::ExperimentBuilder experiment =
        harness::Experiment(workload)
            .l2(prefetcher)
            .warmup(20'000)
            .measure(120'000)
            .observe(std::make_shared<Ticker>())
            .observe(series);

    // A baseline session advanced in lockstep turns every window into a
    // live speedup/coverage reading (the windowed computeMetrics
    // overload) — no post-hoc baseline run needed.
    harness::TimeSeries baseline_series;
    harness::ExperimentSpec baseline_spec = experiment.spec();
    baseline_spec.prefetcher = "none";
    harness::SimSession baseline(baseline_spec);
    baseline.addObserver(&baseline_series);

    harness::SimSession session = experiment.openSession();
    const std::uint64_t step = std::max<std::uint64_t>(
        1, session.spec().sim_instrs / windows);
    while (!session.done()) {
        session.advance(step);
        baseline.advance(session.lastWindow().instrs_end -
                         baseline.instrsAdvanced());
        const harness::Metrics m = harness::computeMetrics(
            session.lastWindow(), baseline_series.samples().back());
        std::printf("            vs baseline: speedup=%.3f "
                    "coverage=%.1f%%\n",
                    m.speedup, 100.0 * m.coverage);
    }

    const auto trajectory =
        harness::computeWindowedMetrics(*series, baseline_series);
    std::printf("windows observed: %zu; final speedup %.3f\n",
                trajectory.size(),
                harness::computeMetrics(series->finalResult(),
                                        baseline_series.finalResult())
                    .speedup);

    if (!series_out.empty()) {
        if (series->writeCsv(series_out))
            std::cout << "[series written: " << series_out << "]\n";
        else
            std::cerr << "[series] cannot write " << series_out << "\n";
    }
    return 0;
}
