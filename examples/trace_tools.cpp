/**
 * @file
 * Trace tooling: generate a binary trace file from any catalog workload,
 * inspect its contents, and replay it through the simulator — the
 * workflow ChampSim users follow with downloaded traces, reproduced on
 * the synthetic substrate.
 *
 * Usage:
 *   trace_tools mode=generate workload=<spec> out=<path> [records=N]
 *   trace_tools mode=inspect  in=<path>
 *   trace_tools mode=replay   in=<path> [prefetcher=<name>]
 *
 * workload= accepts catalog names and registry workload specs alike
 * ("stream:footprint=256M", "phase:stream@40+graph@60"); see
 * tools/trace_capture for the strict-CLI capture tool with built-in
 * replay verification.
 */
#include <iostream>
#include <map>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/prefetcher_registry.hpp"
#include "sim/system.hpp"
#include "workloads/suites.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace pythia;

int
generate(const Config& cli)
{
    const std::string workload = cli.getString("workload");
    const std::string out = cli.getString("out", "trace.bin");
    const auto records =
        static_cast<std::size_t>(cli.getInt("records", 200000));
    auto w = wl::makeWorkload(workload);
    if (!wl::writeTraceFile(out, *w, records)) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    std::cout << "wrote " << records << " records of " << workload
              << " to " << out << "\n";
    return 0;
}

int
inspect(const Config& cli)
{
    const std::string in = cli.getString("in", "trace.bin");
    wl::FileWorkload trace(in);
    std::map<Addr, std::uint64_t> pc_hist;
    std::uint64_t writes = 0, deps = 0, gaps = 0;
    std::map<Addr, std::uint64_t> pages;
    const std::size_t n = trace.size();
    for (std::size_t i = 0; i < n; ++i) {
        const auto r = trace.next();
        ++pc_hist[r.pc];
        writes += r.is_write;
        deps += r.depends_on_prev;
        gaps += r.gap;
        ++pages[pageId(r.addr)];
    }
    Table table("Trace " + in);
    table.setHeader({"property", "value"});
    table.addRow({"memory records", std::to_string(n)});
    table.addRow({"total instructions", std::to_string(n + gaps)});
    table.addRow({"distinct PCs", std::to_string(pc_hist.size())});
    table.addRow({"distinct pages", std::to_string(pages.size())});
    table.addRow({"store fraction",
                  Table::pct(static_cast<double>(writes) / n)});
    table.addRow({"dependent-load fraction",
                  Table::pct(static_cast<double>(deps) / n)});
    table.print();
    return 0;
}

int
replay(const Config& cli)
{
    const std::string in = cli.getString("in", "trace.bin");
    const std::string pf = cli.getString("prefetcher", "pythia");

    auto trace = std::make_unique<wl::FileWorkload>(in);
    sim::SystemConfig cfg;
    std::vector<std::unique_ptr<wl::Workload>> ws;
    ws.push_back(std::move(trace));
    sim::System system(cfg, std::move(ws));
    if (auto built = sim::makePrefetcher(pf))
        system.attachL2Prefetcher(0, std::move(built));
    system.warmup(50'000);
    const auto res = system.run(100'000);

    Table table("Replay of " + in + " with " + pf);
    table.setHeader({"metric", "value"});
    table.addRow({"IPC", Table::fmt(res.ipc_geomean)});
    table.addRow({"LLC demand load misses",
                  std::to_string(res.llc_demand_load_misses)});
    table.addRow({"prefetches issued",
                  std::to_string(res.prefetch_issued)});
    table.addRow({"prefetch accuracy", Table::pct(res.accuracy())});
    table.print();
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const std::string mode = cli.getString("mode", "generate");
    try {
        if (mode == "generate")
            return generate(cli);
        if (mode == "inspect")
            return inspect(cli);
        if (mode == "replay")
            return replay(cli);
        std::cerr << "unknown mode: " << mode << "\n";
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
    }
    return 1;
}
