/**
 * @file
 * Agent introspection: run Pythia on one workload and dump what the agent
 * learned — action/reward distributions and the per-action Q-values of
 * the most recent state. This is the repository's analogue of the
 * paper's §6.5 case-study methodology.
 *
 * Usage: agent_introspection [workload=<name>] [mtps=<n>] [strict=0|1]
 */
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/configs.hpp"
#include "harness/experiment.hpp"
#include "sim/system.hpp"
#include "workloads/suites.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;

    Config cli;
    cli.parseArgs(argc, argv);
    const std::string workload =
        cli.getString("workload", "462.libquantum-1343B");
    const auto mtps = static_cast<std::uint32_t>(cli.getInt("mtps", 2400));
    const bool strict = cli.getBool("strict", false);

    const harness::ExperimentSpec spec =
        harness::Experiment(workload).mtps(mtps).build();

    // Build the system by hand so we keep a handle on the agent.
    auto cfg = rl::scaledForSimLength(
        strict ? rl::strictPythiaConfig() : rl::basicPythiaConfig());
    auto agent = std::make_unique<rl::PythiaPrefetcher>(cfg);
    auto* agent_ptr = agent.get();

    sim::System system(harness::systemConfigFor(spec),
                       harness::workloadsFor(spec));
    system.attachL2Prefetcher(0, std::move(agent));
    system.warmup(spec.warmup_instrs);
    const sim::RunResult run = system.run(spec.sim_instrs);

    std::cout << "workload=" << workload << " IPC="
              << Table::fmt(run.ipc_geomean) << "\n";

    Table stats("Agent statistics");
    stats.setHeader({"counter", "value"});
    for (const auto& [k, v] : agent_ptr->agentStats().counters()) {
        // Counters are pre-registered at construction now; zero rows
        // are just "this never happened" and would drown the table.
        if (v != 0)
            stats.addRow({k, std::to_string(v)});
    }
    stats.print();

    // Q-values of the last observed state, per action.
    const auto state =
        agent_ptr->extractor().extractAll(agent_ptr->config().features);
    Table qtable("Q-values of the final state");
    qtable.setHeader({"offset", "Q"});
    for (std::size_t a = 0; a < agent_ptr->config().actions.size(); ++a) {
        qtable.addRow(
            {std::to_string(agent_ptr->config().actions[a]),
             Table::fmt(agent_ptr->qvstore().q(
                 state, static_cast<std::uint32_t>(a)))});
    }
    qtable.print();
    return 0;
}
