/**
 * @file
 * Bandwidth study: demonstrates Pythia's system-awareness on a
 * bandwidth-hungry graph workload. Sweeps the DRAM transfer rate from a
 * server-like share (150 MTPS per core) to an overprovisioned 9600 MTPS
 * and compares basic Pythia, the bandwidth-oblivious ablation and an
 * aggressive spatial baseline (Bingo).
 *
 * Usage: bandwidth_study [workload=<name>]
 */
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    Config cli;
    cli.parseArgs(argc, argv);
    const std::string workload =
        cli.getString("workload", "Ligra-PageRank");

    harness::Runner runner;
    Table table("Bandwidth study: " + workload);
    table.setHeader({"mtps", "bingo", "pythia", "pythia_bwobl",
                     "pythia_dram_util"});
    for (std::uint32_t mtps : {150u, 300u, 600u, 1200u, 2400u, 9600u}) {
        std::vector<std::string> row = {std::to_string(mtps)};
        double util = 0.0;
        for (const char* pf : {"bingo", "pythia", "pythia_bwobl"}) {
            const auto o = harness::Experiment(workload)
                               .l2(pf)
                               .mtps(mtps)
                               .run(runner);
            row.push_back(Table::fmt(o.metrics.speedup));
            if (std::string(pf) == "pythia")
                util = o.run.dram_utilization;
        }
        row.push_back(Table::pct(util));
        table.addRow(row);
    }
    table.print();
    std::cout << "\nBasic Pythia throttles itself when the bus is scarce"
                 " (R_IN^H / R_NP^H rewards); the oblivious variant and"
                 " aggressive spatial prefetching pay for overprediction"
                 " at low MTPS.\n";
    return 0;
}
