/**
 * @file
 * Bandwidth study: demonstrates Pythia's system-awareness on a
 * bandwidth-hungry graph workload. Sweeps the DRAM transfer rate from a
 * server-like share (150 MTPS per core) to an overprovisioned 9600 MTPS
 * and compares basic Pythia, the bandwidth-oblivious ablation and an
 * aggressive spatial baseline (Bingo).
 *
 * The 18-point grid is declared as a harness::Sweep and executed on a
 * ParallelRunner worker pool; the callbacks replay in declaration
 * order, so the table is identical for any jobs=<n>.
 *
 * Usage: bandwidth_study [workload=<name>] [jobs=<n>]
 */
#include <iostream>
#include <memory>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/sweep.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    Config cli;
    unsigned jobs = 0;
    try {
        cli.parseArgsStrict(argc, argv, {"workload", "jobs"});
        const std::int64_t n = cli.getInt("jobs", 0);
        if (n < 0)
            throw std::invalid_argument("jobs must be >= 0 (0 = auto)");
        jobs = static_cast<unsigned>(n);
    } catch (const std::exception& e) {
        std::cerr << "bandwidth_study: " << e.what() << "\n";
        return 2;
    }
    const std::string workload =
        cli.getString("workload", "Ligra-PageRank");

    harness::Runner runner;
    Table table("Bandwidth study: " + workload);
    table.setHeader({"mtps", "bingo", "pythia", "pythia_bwobl",
                     "pythia_dram_util"});
    harness::Sweep sweep;
    for (std::uint32_t mtps : {150u, 300u, 600u, 1200u, 2400u, 9600u}) {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{std::to_string(mtps)});
        auto util = std::make_shared<double>(0.0);
        for (const char* pf : {"bingo", "pythia", "pythia_bwobl"}) {
            const bool is_pythia = std::string(pf) == "pythia";
            sweep.add(harness::Experiment(workload).l2(pf).mtps(mtps),
                      [row, util,
                       is_pythia](const harness::Runner::Outcome& o) {
                          row->push_back(
                              Table::fmt(o.metrics.speedup));
                          if (is_pythia)
                              *util = o.run.dram_utilization;
                      });
        }
        sweep.then([&table, row, util] {
            row->push_back(Table::pct(*util));
            table.addRow(*row);
        });
    }
    harness::ParallelRunner(jobs).run(runner, sweep);
    table.print();
    std::cout << "\nBasic Pythia throttles itself when the bus is scarce"
                 " (R_IN^H / R_NP^H rewards); the oblivious variant and"
                 " aggressive spatial prefetching pay for overprediction"
                 " at low MTPS.\n";
    return 0;
}
