/**
 * @file
 * Quickstart: simulate one workload with no prefetcher, a classic
 * baseline (SPP) and Pythia, and print the paper's headline metrics
 * (speedup, coverage, overprediction, accuracy).
 *
 * Usage: quickstart [workload=<name>] [prefetcher=<spec>] [mtps=<n>]
 *
 * prefetcher= accepts any registry spec string, including parameterized
 * ("spp:max_lookahead=4") and composed ("stride+spp") forms.
 */
#include <cstdio>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/suites.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;

    Config cli;
    cli.parseArgs(argc, argv);
    const std::string workload =
        cli.getString("workload", "459.GemsFDTD-765B");
    const std::uint32_t mtps =
        static_cast<std::uint32_t>(cli.getInt("mtps", 2400));

    std::cout << "Pythia quickstart: workload=" << workload
              << " mtps=" << mtps << "\n";

    harness::Runner runner;
    Table table("Quickstart: " + workload);
    table.setHeader({"prefetcher", "IPC", "speedup", "coverage",
                     "overpred", "accuracy"});

    const std::vector<std::string> prefetchers =
        cli.has("prefetcher")
            ? std::vector<std::string>{cli.getString("prefetcher")}
            : std::vector<std::string>{"spp", "bingo", "mlop", "pythia"};

    for (const auto& pf : prefetchers) {
        const auto outcome =
            harness::Experiment(workload).l2(pf).mtps(mtps).run(runner);
        table.addRow({pf, Table::fmt(outcome.run.ipc_geomean),
                      Table::fmt(outcome.metrics.speedup),
                      Table::pct(outcome.metrics.coverage),
                      Table::pct(outcome.metrics.overprediction),
                      Table::pct(outcome.metrics.accuracy)});
    }
    table.print();

    // The same run as a stream, in five lines: open a session, step it
    // window by window, read each window's delta as it lands.
    std::cout << "\nStreaming the pythia run, 30k-instruction windows:\n";
    harness::SimSession session(
        harness::Experiment(workload).l2("pythia").mtps(mtps).build());
    while (!session.done()) {
        session.advance(30'000);
        const harness::WindowSample& w = session.lastWindow();
        std::printf("  window %zu: ipc=%.3f accuracy=%.2f\n", w.index,
                    w.delta.ipc_geomean, w.delta.accuracy());
    }
    return 0;
}
