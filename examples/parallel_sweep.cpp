/**
 * @file
 * Parallel sweep quickstart: declare a multi-axis experiment grid
 * (workloads x prefetchers x DRAM bandwidth points) as a harness::Sweep
 * and execute it on a ParallelRunner worker pool.
 *
 * Each job's callback fires on the main thread, in declaration order,
 * after the pool drains — so building the result table needs no locks
 * and the output is identical for any jobs=<n>. The Runner's baseline
 * cache is shared by all workers: the no-prefetching run of each
 * (workload, mtps) machine point is simulated exactly once, however
 * many prefetchers are measured against it concurrently.
 *
 * Usage: parallel_sweep [jobs=<n>]     (0 = hardware concurrency)
 */
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/sweep.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    Config cli;
    unsigned jobs = 0;
    try {
        cli.parseArgsStrict(argc, argv, {"jobs"});
        const std::int64_t n = cli.getInt("jobs", 0);
        if (n < 0)
            throw std::invalid_argument("jobs must be >= 0 (0 = auto)");
        jobs = static_cast<unsigned>(n);
    } catch (const std::exception& e) {
        std::cerr << "parallel_sweep: " << e.what() << "\n";
        return 2;
    }

    const std::vector<std::string> workloads = {"462.libquantum-1343B",
                                                "429.mcf-184B",
                                                "Ligra-PageRank"};
    const std::vector<std::string> prefetchers = {"spp", "bingo",
                                                  "pythia"};
    const std::vector<std::uint32_t> mtps_points = {300, 2400};

    Table table("Speedup across workload x prefetcher x DRAM MTPS");
    table.setHeader({"workload", "mtps", "prefetcher", "speedup",
                     "coverage"});

    // Declare the full cartesian product up front; nothing runs yet.
    harness::Sweep sweep;
    for (const auto& w : workloads)
        for (std::uint32_t mtps : mtps_points)
            for (const auto& pf : prefetchers)
                sweep.add(harness::Experiment(w)
                              .l2(pf)
                              .mtps(mtps)
                              .warmup(30'000)
                              .measure(80'000),
                          [&table, w, mtps,
                           pf](const harness::Runner::Outcome& o) {
                              table.addRow(
                                  {w, std::to_string(mtps), pf,
                                   Table::fmt(o.metrics.speedup),
                                   Table::pct(o.metrics.coverage)});
                          });

    harness::Runner runner;
    harness::ParallelRunner pool(jobs);
    pool.run(runner, sweep);

    table.print();
    const auto& r = pool.lastReport();
    std::cout << "\n" << r.experiments << " experiments on " << r.jobs
              << " worker(s); " << runner.baselinesComputed()
              << " distinct baselines simulated (one per workload x "
                 "machine point, never per prefetcher).\n";
    return 0;
}
