/**
 * @file
 * Property tests for the data-oriented hot-path layouts (DESIGN.md
 * §10): the structure-of-arrays QVStore must be bit-exact against the
 * retained scalar reference across randomized configurations and
 * traffic, and the flat-ring EvaluationQueue must preserve the
 * deque-era FIFO semantics (insert/evict/match/reward order) under
 * randomized traffic, including its serialized byte stream.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/eq.hpp"
#include "core/qvstore.hpp"
#include "core/qvstore_ref.hpp"
#include "snapshot/codec.hpp"

namespace {

using namespace pythia;

// ---------------------------------------------------------------------------
// QVStore (SoA) vs ScalarQVStore (PR 3 row-cached reference)

rl::QVStoreConfig
randomConfig(Rng& rng)
{
    rl::QVStoreConfig cfg;
    cfg.num_features = static_cast<std::uint32_t>(rng.nextRange(1, 4));
    cfg.num_planes = static_cast<std::uint32_t>(rng.nextRange(1, 4));
    cfg.plane_index_bits =
        static_cast<std::uint32_t>(rng.nextRange(4, 8));
    const std::uint32_t action_choices[] = {3, 8, 16, 33};
    cfg.num_actions = action_choices[rng.nextBounded(4)];
    return cfg;
}

std::vector<std::uint64_t>
randomState(Rng& rng, std::uint32_t features)
{
    std::vector<std::uint64_t> s(features);
    for (auto& v : s)
        v = rng.next64();
    return s;
}

TEST(DataLayoutQVStore, MatchesScalarReferenceAcrossRandomConfigs)
{
    Rng rng(0xD417A1A707ull);
    for (int trial = 0; trial < 12; ++trial) {
        const rl::QVStoreConfig cfg = randomConfig(rng);
        rl::QVStore soa(cfg);
        rl::ScalarQVStore ref(cfg);
        std::vector<std::uint32_t> soa_top;

        for (int op = 0; op < 1500; ++op) {
            const auto s1 = randomState(rng, cfg.num_features);
            const auto s2 = randomState(rng, cfg.num_features);
            switch (rng.nextBounded(5)) {
            case 0: {
                const auto a = static_cast<std::uint32_t>(
                    rng.nextBounded(cfg.num_actions));
                const double qs = soa.q(s1, a);
                const double qr = ref.q(s1, a);
                ASSERT_EQ(0, std::memcmp(&qs, &qr, sizeof qs))
                    << "q() diverged, trial " << trial << " op " << op;
                break;
            }
            case 1:
                ASSERT_EQ(ref.maxAction(s1), soa.maxAction(s1))
                    << "maxAction diverged, trial " << trial << " op "
                    << op;
                break;
            case 2: {
                const auto k = static_cast<std::uint32_t>(
                    rng.nextRange(1, cfg.num_actions));
                soa.topActionsInto(s1, k, soa_top);
                const auto ref_top = ref.topActions(s1, k);
                ASSERT_EQ(ref_top, soa_top)
                    << "topActions diverged, trial " << trial << " op "
                    << op;
                break;
            }
            case 3: {
                const double ms = soa.maxQ(s1);
                const double mr = ref.maxQ(s1);
                ASSERT_EQ(0, std::memcmp(&ms, &mr, sizeof ms))
                    << "maxQ diverged, trial " << trial << " op " << op;
                break;
            }
            default: {
                const auto a1 = static_cast<std::uint32_t>(
                    rng.nextBounded(cfg.num_actions));
                const auto a2 = static_cast<std::uint32_t>(
                    rng.nextBounded(cfg.num_actions));
                const double r = rng.nextDouble() * 28.0 - 14.0;
                soa.update(s1, a1, r, s2, a2);
                ref.update(s1, a1, r, s2, a2);
                break;
            }
            }
        }

        // The two tables share one flat layout; after identical traffic
        // the SoA serialization must be byte-identical to a manual
        // write of the reference table.
        snap::Writer got;
        soa.saveState(got);
        snap::Writer want;
        want.vecF32(ref.table());
        want.u64(ref.updates());
        ASSERT_EQ(want.buffer(), got.buffer())
            << "table bytes diverged, trial " << trial;
    }
}

TEST(DataLayoutQVStore, UpdateCachedMatchesPlainUpdate)
{
    Rng rng(0xCACE11ull);
    const rl::QVStoreConfig cfg; // shipping basic config
    rl::QVStore plain(cfg);
    rl::QVStore cached(cfg);
    std::vector<std::uint32_t> top;
    std::uint32_t rows1[rl::kEqRowSlots], rows2[rl::kEqRowSlots];

    for (int op = 0; op < 3000; ++op) {
        const auto s1 = randomState(rng, cfg.num_features);
        const auto s2 = randomState(rng, cfg.num_features);
        const auto a1 = static_cast<std::uint32_t>(
            rng.nextBounded(cfg.num_actions));
        const auto a2 = static_cast<std::uint32_t>(
            rng.nextBounded(cfg.num_actions));
        const double r = rng.nextDouble() * 28.0 - 14.0;

        plain.update(s1, a1, r, s2, a2);

        // Capture each state's rows the way the agent does (after an
        // action-selection pass), then retire through the cached path.
        cached.topActionsInto(s1, 2, top);
        const std::uint32_t n1 =
            cached.lastRowsInto(rows1, rl::kEqRowSlots);
        cached.topActionsInto(s2, 2, top);
        const std::uint32_t n2 =
            cached.lastRowsInto(rows2, rl::kEqRowSlots);
        cached.updateCached(s1.data(), s1.size(), n1 ? rows1 : nullptr,
                            a1, r, s2.data(), s2.size(),
                            n2 ? rows2 : nullptr, a2);
    }

    snap::Writer a, b;
    plain.saveState(a);
    cached.saveState(b);
    EXPECT_EQ(a.buffer(), b.buffer());
}

// ---------------------------------------------------------------------------
// EvaluationQueue (flat ring + open-addressed index) vs deque reference

/** Straight-line reference model of the PR 6 deque-backed EQ,
 *  including the pending-count bookkeeping (same transition points, so
 *  the serialized pending table can be compared byte-for-byte). */
struct RefEq
{
    struct Counts
    {
        std::uint32_t unrewarded = 0;
        std::uint32_t fill_unknown = 0;
    };

    std::size_t capacity;
    std::deque<rl::EqEntry> q;
    std::map<Addr, Counts> pending;

    explicit RefEq(std::size_t cap) : capacity(cap) {}

    void eraseIfDone(std::map<Addr, Counts>::iterator it)
    {
        if (it != pending.end() && it->second.unrewarded == 0 &&
            it->second.fill_unknown == 0)
            pending.erase(it);
    }

    std::optional<rl::EqEntry> insert(rl::EqEntry e)
    {
        std::optional<rl::EqEntry> evicted;
        if (q.size() >= capacity) {
            evicted = q.front();
            q.pop_front();
            if (evicted->has_prefetch) {
                auto it = pending.find(evicted->prefetch_block);
                if (it != pending.end()) {
                    if (!evicted->has_reward &&
                        it->second.unrewarded > 0)
                        --it->second.unrewarded;
                    if (!evicted->fill_known &&
                        it->second.fill_unknown > 0)
                        --it->second.fill_unknown;
                    eraseIfDone(it);
                }
            }
        }
        if (e.has_prefetch) {
            Counts& c = pending[e.prefetch_block];
            if (!e.has_reward)
                ++c.unrewarded;
            if (!e.fill_known)
                ++c.fill_unknown;
        }
        q.push_back(std::move(e));
        return evicted;
    }

    rl::EqEntry* search(Addr block)
    {
        for (auto it = q.rbegin(); it != q.rend(); ++it)
            if (it->has_prefetch && it->prefetch_block == block &&
                !it->has_reward)
                return &*it;
        return nullptr;
    }

    std::vector<rl::EqEntry*> searchAll(Addr block)
    {
        std::vector<rl::EqEntry*> out;
        for (auto& e : q)
            if (e.has_prefetch && e.prefetch_block == block &&
                !e.has_reward)
                out.push_back(&e);
        return out;
    }

    bool markFill(Addr block, Cycle at)
    {
        for (auto it = q.rbegin(); it != q.rend(); ++it) {
            if (it->has_prefetch && it->prefetch_block == block &&
                !it->fill_known) {
                it->fill_time = at;
                it->fill_known = true;
                auto p = pending.find(block);
                if (p != pending.end()) {
                    if (p->second.fill_unknown > 0)
                        --p->second.fill_unknown;
                    eraseIfDone(p);
                }
                return true;
            }
        }
        return false;
    }

    std::size_t rewardAll(Addr block, double reward)
    {
        std::size_t n = 0;
        auto p = pending.find(block);
        for (auto& e : q) {
            if (e.has_prefetch && e.prefetch_block == block &&
                !e.has_reward) {
                e.reward = reward;
                e.has_reward = true;
                ++n;
                if (p != pending.end() && p->second.unrewarded > 0)
                    --p->second.unrewarded;
            }
        }
        if (n > 0)
            eraseIfDone(p);
        return n;
    }
};

void
expectEntryEq(const rl::EqEntry& want, const rl::EqEntry& got,
              const char* where)
{
    EXPECT_TRUE(want.state == got.state) << where;
    EXPECT_EQ(want.action, got.action) << where;
    EXPECT_EQ(want.prefetch_block, got.prefetch_block) << where;
    EXPECT_EQ(want.has_prefetch, got.has_prefetch) << where;
    EXPECT_EQ(want.fill_time, got.fill_time) << where;
    EXPECT_EQ(want.fill_known, got.fill_known) << where;
    EXPECT_EQ(want.has_reward, got.has_reward) << where;
    EXPECT_EQ(want.reward, got.reward) << where;
}

/** saveState() bytes the reference model predicts. */
std::vector<std::uint8_t>
expectedEqBytes(const RefEq& ref)
{
    snap::Writer w;
    w.u64(ref.capacity);
    w.u64(ref.q.size());
    for (const rl::EqEntry& e : ref.q) {
        w.u64(e.state.size());
        for (const std::uint64_t fv : e.state)
            w.u64(fv);
        w.u32(e.action);
        w.u64(e.prefetch_block);
        w.boolean(e.has_prefetch);
        w.u64(e.fill_time);
        w.boolean(e.fill_known);
        w.boolean(e.has_reward);
        w.f64(e.reward);
    }
    // std::map iterates address-ascending — the same order saveState
    // sorts its open-addressed table into.
    w.u64(ref.pending.size());
    for (const auto& [addr, pc] : ref.pending) {
        w.u64(addr);
        w.u32(pc.unrewarded);
        w.u32(pc.fill_unknown);
    }
    return w.buffer();
}

void
runEqTrafficTrial(std::size_t capacity, std::uint64_t seed)
{
    SCOPED_TRACE("capacity=" + std::to_string(capacity) +
                 " seed=" + std::to_string(seed));
    Rng rng(seed);
    rl::EvaluationQueue eq(capacity);
    RefEq ref(capacity);

    // Block 0 is deliberately in the pool: it is a valid address and
    // the open-addressed index must not confuse it with an empty slot.
    auto randomBlock = [&] { return rng.nextBounded(48); };

    for (int op = 0; op < 4000; ++op) {
        const std::uint64_t kind = rng.nextBounded(100);
        if (kind < 40) {
            rl::EqEntry e;
            e.state = {rng.nextBounded(256), rng.nextBounded(256)};
            e.action = static_cast<std::uint32_t>(rng.nextBounded(16));
            e.has_prefetch = rng.nextBool(0.8);
            e.prefetch_block = e.has_prefetch ? randomBlock() : 0;
            if (e.has_prefetch && rng.nextBool(0.2)) {
                e.has_reward = true; // rewarded at insertion (R_NP/R_CL)
                e.reward = rng.nextDouble() * 10.0 - 5.0;
            }
            auto got = eq.insert(e);
            auto want = ref.insert(e);
            ASSERT_EQ(want.has_value(), got.has_value());
            if (want)
                expectEntryEq(*want, *got, "evicted entry");
        } else if (kind < 65) {
            const Addr b = randomBlock();
            const double r = rng.nextDouble() * 24.0 - 12.0;
            const std::size_t got =
                eq.rewardAll(b, [r](rl::EqEntry& e) { e.reward = r; });
            ASSERT_EQ(ref.rewardAll(b, r), got);
        } else if (kind < 80) {
            const Addr b = randomBlock();
            const Cycle at = rng.nextBounded(1 << 20);
            ASSERT_EQ(ref.markFill(b, at), eq.markFill(b, at));
        } else if (kind < 90) {
            const Addr b = randomBlock();
            rl::EqEntry* got = eq.search(b);
            rl::EqEntry* want = ref.search(b);
            ASSERT_EQ(want == nullptr, got == nullptr);
            if (want)
                expectEntryEq(*want, *got, "search result");
        } else {
            const Addr b = randomBlock();
            auto got = eq.searchAll(b);
            auto want = ref.searchAll(b);
            ASSERT_EQ(want.size(), got.size());
            for (std::size_t i = 0; i < want.size(); ++i)
                expectEntryEq(*want[i], *got[i], "searchAll result");
        }

        ASSERT_EQ(ref.q.size(), eq.size());
        ASSERT_EQ(ref.q.empty(), eq.empty());
        if (!ref.q.empty())
            expectEntryEq(ref.q.front(), eq.head(), "head entry");
    }

    // Full-state equivalence: the ring must serialize to exactly the
    // bytes the deque-era layout produced, pending index included.
    snap::Writer w;
    eq.saveState(w);
    ASSERT_EQ(expectedEqBytes(ref), w.buffer());
}

TEST(DataLayoutEq, RingMatchesDequeSemanticsUnderRandomTraffic)
{
    // Non-power-of-two capacities exercise the logical-capacity /
    // backing-store split; 1 exercises the degenerate evict-on-every-
    // insert case.
    runEqTrafficTrial(1, 101);
    runEqTrafficTrial(3, 202);
    runEqTrafficTrial(8, 303);
    runEqTrafficTrial(21, 404);
    runEqTrafficTrial(256, 505);
}

TEST(DataLayoutEq, SaveStateRoundTripsThroughLoad)
{
    Rng rng(0x5A7E11ull);
    rl::EvaluationQueue eq(32);
    for (int i = 0; i < 200; ++i) {
        rl::EqEntry e;
        e.state = {rng.next64(), rng.next64(), rng.next64()};
        e.action = static_cast<std::uint32_t>(rng.nextBounded(16));
        e.has_prefetch = rng.nextBool(0.7);
        e.prefetch_block = e.has_prefetch ? rng.nextBounded(64) : 0;
        eq.insert(std::move(e));
        if (rng.nextBool(0.3))
            eq.markFill(rng.nextBounded(64), i);
        if (rng.nextBool(0.3))
            eq.rewardAll(rng.nextBounded(64),
                         [](rl::EqEntry& x) { x.reward = 2.0; });
    }

    snap::Writer w;
    eq.saveState(w);
    snap::Reader r(w.buffer().data(), w.buffer().size());
    rl::EvaluationQueue restored(32);
    restored.loadState(r);

    snap::Writer w2;
    restored.saveState(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());
}

} // namespace
