/**
 * @file
 * Edge-case tests for binary trace I/O (ctest label: property):
 * empty traces, truncated files, bad headers, loop-boundary replay in
 * FileWorkload, and write → read round-trip equality of TraceRecord
 * streams.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "workloads/trace.hpp"

namespace {

using namespace pythia;
namespace fs = std::filesystem;

/** Unique-per-test scratch path in the working directory, removed on
 *  destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string& tag)
        : path_("trace_io_test_" + tag + ".bin")
    {
        std::error_code ec;
        fs::remove(path_, ec);
    }
    ~ScratchFile()
    {
        std::error_code ec;
        fs::remove(path_, ec);
    }
    const std::string& str() const { return path_; }

  private:
    std::string path_;
};

std::vector<wl::TraceRecord>
sampleRecords(std::size_t n)
{
    std::vector<wl::TraceRecord> recs;
    recs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        wl::TraceRecord r;
        r.pc = 0x400000 + i * 4;
        r.addr = 0x10000 + i * 64;
        r.gap = static_cast<std::uint32_t>(i % 7);
        r.is_write = (i % 3) == 0;
        r.depends_on_prev = (i % 5) == 0;
        recs.push_back(r);
    }
    return recs;
}

bool
sameRecord(const wl::TraceRecord& a, const wl::TraceRecord& b)
{
    return a.pc == b.pc && a.addr == b.addr && a.gap == b.gap &&
           a.is_write == b.is_write &&
           a.depends_on_prev == b.depends_on_prev;
}

TEST(TraceIo, EmptyTraceFileIsRejected)
{
    ScratchFile f("empty");
    wl::FileWorkload src("src", sampleRecords(4));
    ASSERT_TRUE(wl::writeTraceFile(f.str(), src, 0));
    EXPECT_THROW(wl::FileWorkload{f.str()}, std::runtime_error);
}

TEST(TraceIo, EmptyInMemoryTraceIsRejected)
{
    EXPECT_THROW(wl::FileWorkload("empty", std::vector<wl::TraceRecord>{}),
                 std::runtime_error);
}

TEST(TraceIo, MissingFileIsRejected)
{
    EXPECT_THROW(wl::FileWorkload{"does_not_exist_12345.bin"},
                 std::runtime_error);
}

TEST(TraceIo, BadHeaderIsRejected)
{
    ScratchFile f("badmagic");
    {
        std::ofstream out(f.str(), std::ios::binary);
        const char junk[32] = "this is not a pythia trace";
        out.write(junk, sizeof junk);
    }
    EXPECT_THROW(wl::FileWorkload{f.str()}, std::runtime_error);
}

TEST(TraceIo, TruncatedFileIsRejected)
{
    ScratchFile f("trunc");
    wl::FileWorkload src("src", sampleRecords(10));
    ASSERT_TRUE(wl::writeTraceFile(f.str(), src, 10));

    // Chop mid-record: the reader must throw, not hand back garbage.
    const auto full = fs::file_size(f.str());
    fs::resize_file(f.str(), full - 13);
    EXPECT_THROW(wl::FileWorkload{f.str()}, std::runtime_error);

    // A header announcing more records than the file holds, too.
    fs::resize_file(f.str(), 12); // magic + count only
    EXPECT_THROW(wl::FileWorkload{f.str()}, std::runtime_error);
}

TEST(TraceIo, RoundTripPreservesEveryField)
{
    ScratchFile f("roundtrip");
    const auto recs = sampleRecords(23);
    wl::FileWorkload src("src", recs);
    ASSERT_TRUE(wl::writeTraceFile(f.str(), src, recs.size()));

    wl::FileWorkload loaded(f.str());
    ASSERT_EQ(loaded.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const wl::TraceRecord got = loaded.next();
        EXPECT_TRUE(sameRecord(got, recs[i])) << "record " << i;
    }
}

TEST(TraceIo, WriterLoopsTheSourceAtItsBoundary)
{
    ScratchFile f("loopwrite");
    const auto recs = sampleRecords(5);
    wl::FileWorkload src("src", recs);
    // Ask for more records than the source holds: next() wraps, so the
    // file carries two full laps plus two records.
    ASSERT_TRUE(wl::writeTraceFile(f.str(), src, 12));

    wl::FileWorkload loaded(f.str());
    ASSERT_EQ(loaded.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i) {
        const wl::TraceRecord got = loaded.next();
        EXPECT_TRUE(sameRecord(got, recs[i % recs.size()]))
            << "record " << i;
    }
}

TEST(TraceIo, ReplayWrapsAndResetsAtTheLoopBoundary)
{
    const auto recs = sampleRecords(3);
    wl::FileWorkload w("loop", recs);

    // Two full laps: position wraps exactly at size().
    for (std::size_t i = 0; i < 2 * recs.size(); ++i) {
        EXPECT_TRUE(sameRecord(w.next(), recs[i % recs.size()]))
            << "step " << i;
    }
    // Mid-stream reset rewinds to record 0.
    (void)w.next();
    w.reset();
    EXPECT_TRUE(sameRecord(w.next(), recs[0]));

    // A clone starts from the beginning and replays identically.
    auto c = w.clone(0);
    c->reset();
    for (std::size_t i = 0; i < recs.size(); ++i)
        EXPECT_TRUE(sameRecord(c->next(), recs[i % recs.size()]));
}

} // namespace
