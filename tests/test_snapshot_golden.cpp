/**
 * @file
 * Snapshot restore→advance golden gate (ctest label: golden).
 *
 * Over the same eight-cell grid the golden-metrics suite pins, this
 * suite checks the snapshot subsystem's core contract: a session
 * restored from a post-warmup snapshot and advanced to completion is
 * bit-identical — every RunResult field, doubles compared with == —
 * to the session that ran straight through. It also gates the Runner
 * warm-state cache end to end: a warm-started sweep cell reproduces
 * the cold cell's Outcome byte-identically while skipping the warmup
 * simulation.
 *
 * OneCell is a cheap standalone version of the grid test
 * (--gtest_filter='*OneCell*') for the sanitizer CI job, where the
 * full grid would be too slow.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "harness/session.hpp"
#include "snapshot/snapshot.hpp"

namespace pythia {
namespace {

namespace fs = std::filesystem;

struct GridCell
{
    const char* workload;
    const char* prefetcher;
    std::uint32_t cores;
};

/** The golden-metrics grid (tests/test_golden_metrics.cpp), verbatim:
 *  restore→advance must hold for every cell the goldens pin. */
const GridCell kGrid[] = {
    {"462.libquantum-1343B", "pythia", 1},
    {"459.GemsFDTD-765B", "spp", 1},
    {"482.sphinx3-417B", "bingo", 1},
    {"429.mcf-184B", "stride", 1},
    {"Ligra-CC", "stride+spp", 1},
    {"Ligra-PageRank", "pythia", 4},
    {"PARSEC-Canneal", "spp", 4},
    {"Cloudsuite-Cassandra", "bingo", 4},
};

harness::ExperimentSpec
specFor(const GridCell& cell)
{
    return harness::Experiment(cell.workload)
        .l2(cell.prefetcher)
        .cores(cell.cores)
        .warmup(20'000)
        .measure(50'000)
        .spec();
}

std::string
cellName(const GridCell& cell)
{
    return std::string(cell.workload) + " x " + cell.prefetcher + " x " +
           std::to_string(cell.cores) + "c";
}

void
expectSameResult(const sim::RunResult& a, const sim::RunResult& b,
                 const std::string& what)
{
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.ipc_geomean, b.ipc_geomean) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.llc_demand_load_misses, b.llc_demand_load_misses) << what;
    EXPECT_EQ(a.llc_read_misses, b.llc_read_misses) << what;
    EXPECT_EQ(a.prefetch_issued, b.prefetch_issued) << what;
    EXPECT_EQ(a.prefetch_useful, b.prefetch_useful) << what;
    EXPECT_EQ(a.prefetch_useless, b.prefetch_useless) << what;
    EXPECT_EQ(a.prefetch_late, b.prefetch_late) << what;
    EXPECT_EQ(a.dram_buckets, b.dram_buckets) << what;
    EXPECT_EQ(a.dram_utilization, b.dram_utilization) << what;
    EXPECT_EQ(a.core_cycles, b.core_cycles) << what;
    EXPECT_EQ(a.dram_bucket_epochs, b.dram_bucket_epochs) << what;
}

/** Snapshot after warmup, run straight through, then resume from the
 *  snapshot and run again: both results must match bit-exactly. */
void
checkRestoreAdvance(const GridCell& cell)
{
    const harness::ExperimentSpec spec = specFor(cell);
    const std::string path =
        (fs::path(::testing::TempDir()) /
         ("golden-" + std::to_string(snap::fnv1a(cellName(cell))) +
          ".snap"))
            .string();

    harness::SimSession cold(spec);
    cold.runWarmup();
    cold.snapshotTo(path);
    const sim::RunResult straight = cold.runToCompletion();

    harness::SimSession resumed =
        harness::SimSession::resumeFrom(spec, path);
    const sim::RunResult replayed = resumed.runToCompletion();
    expectSameResult(straight, replayed, cellName(cell));
    fs::remove(path);
}

TEST(SnapshotGolden, OneCellRestoreAdvanceIsBitExact)
{
    checkRestoreAdvance(kGrid[0]);
}

TEST(SnapshotGolden, FullGridRestoreAdvanceIsBitExact)
{
    // Cell 0 is OneCell's; still run it here so a full-suite pass
    // covers the grid without depending on test ordering or filters.
    for (const GridCell& cell : kGrid)
        checkRestoreAdvance(cell);
}

TEST(SnapshotGolden, WarmSweepCellMatchesColdOutcome)
{
    // End-to-end warm-state cache gate on a multi-core Pythia cell:
    // a warm-started evaluation must reproduce the cold Outcome
    // byte-identically while skipping both warmups (run + baseline).
    const harness::ExperimentSpec spec = specFor(kGrid[5]);
    const std::string dir =
        (fs::path(::testing::TempDir()) / "golden-warm-cache").string();
    fs::remove_all(dir);
    fs::create_directories(dir);

    harness::Runner cold;
    cold.setSnapshotDir(dir);
    const harness::Runner::Outcome cold_out = cold.evaluate(spec);
    EXPECT_EQ(cold.warmHits(), 0u);
    EXPECT_EQ(cold.warmMisses(), 2u);

    harness::Runner warm;
    warm.setSnapshotDir(dir);
    const harness::Runner::Outcome warm_out = warm.evaluate(spec);
    EXPECT_EQ(warm.warmHits(), 2u);
    EXPECT_EQ(warm.warmMisses(), 0u);

    expectSameResult(cold_out.run, warm_out.run, "warm sweep run");
    expectSameResult(cold_out.baseline, warm_out.baseline,
                     "warm sweep baseline");
    EXPECT_EQ(cold_out.metrics.speedup, warm_out.metrics.speedup);
    EXPECT_EQ(cold_out.metrics.coverage, warm_out.metrics.coverage);
    EXPECT_EQ(cold_out.metrics.accuracy, warm_out.metrics.accuracy);
    fs::remove_all(dir);
}

} // namespace
} // namespace pythia
