/**
 * @file
 * Whole-system property tests swept over the (workload x prefetcher)
 * grid: metric sanity bounds, conservation identities in the cache
 * statistics, prefetcher non-interference with correctness-style
 * invariants, and machine-parameter monotonicity.
 */
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "sim/prefetcher_registry.hpp"
#include "sim/system.hpp"
#include "workloads/suites.hpp"

namespace pythia::harness {
namespace {

struct GridParam
{
    std::string workload;
    std::string prefetcher;
};

std::string
paramName(const ::testing::TestParamInfo<GridParam>& info)
{
    std::string n = info.param.workload + "__" + info.param.prefetcher;
    for (auto& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

class SystemGrid : public ::testing::TestWithParam<GridParam>
{
  protected:
    ExperimentSpec spec() const
    {
        return Experiment(GetParam().workload)
            .l2(GetParam().prefetcher)
            .warmup(15'000)
            .measure(40'000)
            .build();
    }
};

TEST_P(SystemGrid, MetricsWithinSaneBounds)
{
    Runner runner;
    const auto o = runner.evaluate(spec());
    EXPECT_GT(o.run.ipc_geomean, 0.0);
    EXPECT_LE(o.run.ipc_geomean, 4.0); // bounded by core width
    EXPECT_LE(o.metrics.coverage, 1.0);
    EXPECT_GE(o.metrics.accuracy, 0.0);
    EXPECT_LE(o.metrics.accuracy, 1.0);
    EXPECT_GE(o.metrics.overprediction, 0.0);
}

TEST_P(SystemGrid, CoverageRequiresPrefetches)
{
    Runner runner;
    const auto o = runner.evaluate(spec());
    if (o.metrics.coverage > 0.05) {
        EXPECT_GT(o.run.prefetch_issued, 0u);
    }
}

TEST_P(SystemGrid, PrefetchAccountingConserved)
{
    // With no warmup, no prefetched block can predate the measurement
    // window, so useful + useless <= issued (the rest is still
    // resident), and late <= useful.
    ExperimentSpec s = spec();
    s.warmup_instrs = 0;
    const auto res = simulate(s);
    EXPECT_LE(res.prefetch_useful + res.prefetch_useless,
              res.prefetch_issued);
    EXPECT_LE(res.prefetch_late, res.prefetch_useful);
}

TEST_P(SystemGrid, DemandHitsPlusMissesEqualAccesses)
{
    ExperimentSpec s = spec();
    sim::System system(systemConfigFor(s), workloadsFor(s));
    if (auto built = sim::makePrefetcher(s.prefetcher))
        system.attachL2Prefetcher(0, std::move(built));
    system.warmup(s.warmup_instrs);
    const auto res = system.run(s.sim_instrs);
    (void)res;
    const auto& l1 = system.l1(0).stats();
    EXPECT_GE(l1.counter("demand_load_access"),
              l1.counter("demand_load_miss"));
    const auto& llc = system.llc().stats();
    EXPECT_GE(llc.counter("read_miss_total"),
              llc.counter("demand_load_miss"));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystemGrid,
    ::testing::Values(
        GridParam{"462.libquantum-1343B", "pythia"},
        GridParam{"462.libquantum-1343B", "bingo"},
        GridParam{"459.GemsFDTD-765B", "spp"},
        GridParam{"459.GemsFDTD-765B", "pythia"},
        GridParam{"482.sphinx3-417B", "bingo"},
        GridParam{"482.sphinx3-417B", "mlop"},
        GridParam{"429.mcf-184B", "pythia"},
        GridParam{"429.mcf-184B", "spp_ppf"},
        GridParam{"Ligra-CC", "pythia_strict"},
        GridParam{"Ligra-PageRank", "dspatch"},
        GridParam{"Cloudsuite-Cassandra", "pythia"},
        GridParam{"PARSEC-Facesim", "st_s_b_d_m"},
        GridParam{"470.lbm-164B", "ipcp"},
        GridParam{"605.mcf_s-665B", "power7"},
        GridParam{"crypto-aes-17", "cp_hw"}),
    paramName);

// --------------------------------------------------- machine monotonicity

TEST(MachineSweep, PrefetchedIpcNonDecreasingInBandwidthForStreams)
{
    std::vector<double> ipcs;
    for (std::uint32_t mtps : {300u, 1200u, 4800u}) {
        ExperimentSpec s;
        s.workload = "410.bwaves-945B";
        s.prefetcher = "streamer";
        s.mtps = mtps;
        s.warmup_instrs = 15'000;
        s.sim_instrs = 40'000;
        ipcs.push_back(simulate(s).ipc_geomean);
    }
    EXPECT_LE(ipcs[0], ipcs[1] * 1.02);
    EXPECT_LE(ipcs[1], ipcs[2] * 1.02);
}

TEST(MachineSweep, DramUtilizationDropsWithMoreBandwidth)
{
    auto util_at = [](std::uint32_t mtps) {
        ExperimentSpec s;
        s.workload = "Ligra-PageRank";
        s.prefetcher = "none";
        s.mtps = mtps;
        s.warmup_instrs = 15'000;
        s.sim_instrs = 40'000;
        return simulate(s).dram_utilization;
    };
    EXPECT_GT(util_at(150), util_at(9600));
}

TEST(MachineSweep, BandwidthAwarenessEngagesOnlyUnderPressure)
{
    // At 9600 MTPS the bw-oblivious ablation must track basic Pythia
    // closely (the paper's Fig. 11 right end).
    Runner runner;
    ExperimentSpec basic;
    basic.workload = "Ligra-CC";
    basic.prefetcher = "pythia";
    basic.mtps = 9600;
    basic.warmup_instrs = 30'000;
    basic.sim_instrs = 60'000;
    ExperimentSpec obl = basic;
    obl.prefetcher = "pythia_bwobl";
    const double b = runner.evaluate(basic).metrics.speedup;
    const double o = runner.evaluate(obl).metrics.speedup;
    EXPECT_NEAR(o / b, 1.0, 0.10);
}

TEST(MachineSweep, TwelveCoreSystemConstructsAndRuns)
{
    ExperimentSpec s;
    s.workload = "470.lbm-164B";
    s.prefetcher = "pythia";
    s.num_cores = 12;
    s.warmup_instrs = 2'000;
    s.sim_instrs = 6'000;
    const auto res = simulate(s);
    ASSERT_EQ(res.ipc.size(), 12u);
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
}

} // namespace
} // namespace pythia::harness
