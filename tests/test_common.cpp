/**
 * @file
 * Unit tests for the common utilities: address helpers, RNG determinism,
 * hashing, stats, tables and config parsing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "../bench/bench_common.hpp"
#include "common/config.hpp"
#include "common/hashing.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace pythia {
namespace {

// ---------------------------------------------------------------------- types

TEST(Types, BlockAddrDropsOffsetBits)
{
    EXPECT_EQ(blockAddr(0), 0u);
    EXPECT_EQ(blockAddr(63), 0u);
    EXPECT_EQ(blockAddr(64), 1u);
    EXPECT_EQ(blockAddr(4096), 64u);
}

TEST(Types, BlockBaseAlignsDown)
{
    EXPECT_EQ(blockBase(0), 0u);
    EXPECT_EQ(blockBase(65), 64u);
    EXPECT_EQ(blockBase(127), 64u);
}

TEST(Types, PageIdAndOffset)
{
    EXPECT_EQ(pageId(0), 0u);
    EXPECT_EQ(pageId(4095), 0u);
    EXPECT_EQ(pageId(4096), 1u);
    EXPECT_EQ(pageOffset(0), 0u);
    EXPECT_EQ(pageOffset(64), 1u);
    EXPECT_EQ(pageOffset(4095), 63u);
    EXPECT_EQ(pageOffset(4096), 0u);
}

TEST(Types, PageIdOfBlockMatchesByteVersion)
{
    for (Addr byte : {0ull, 4096ull, 1ull << 20, 123456789ull})
        EXPECT_EQ(pageIdOfBlock(blockAddr(byte)), pageId(byte));
}

TEST(Types, SamePageAfterOffsetWithinPage)
{
    // Block 0 of a page: offsets up to +63 stay inside.
    const Addr block = blockAddr(1ull << 20);
    EXPECT_TRUE(sameePageAfterOffset(block, 63));
    EXPECT_FALSE(sameePageAfterOffset(block, 64));
    EXPECT_FALSE(sameePageAfterOffset(block, -1));
}

TEST(Types, SamePageAfterOffsetMidPage)
{
    const Addr block = blockAddr(1ull << 20) + 32;
    EXPECT_TRUE(sameePageAfterOffset(block, 31));
    EXPECT_FALSE(sameePageAfterOffset(block, 32));
    EXPECT_TRUE(sameePageAfterOffset(block, -32));
    EXPECT_FALSE(sameePageAfterOffset(block, -33));
}

TEST(Types, SamePageAfterOffsetNearZero)
{
    EXPECT_FALSE(sameePageAfterOffset(0, -1));
    EXPECT_TRUE(sameePageAfterOffset(1, -1));
}

// ----------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next64() == b.next64());
    EXPECT_LT(same, 2);
}

TEST(Rng, StateRoundTripResumesStreamExactly)
{
    // Capture mid-stream, keep drawing on the original, then restore a
    // fresh generator from the captured state: both must produce the
    // identical remainder of the stream — the property the snapshot
    // subsystem's RNG serialization rests on.
    Rng a(42);
    for (int i = 0; i < 1000; ++i)
        (void)a.next64();
    const RngState st = a.state();

    std::vector<std::uint64_t> expect;
    for (int i = 0; i < 1000; ++i)
        expect.push_back(a.next64());

    Rng b(7); // different position and seed; setState must erase both
    b.setState(st);
    EXPECT_EQ(b.state(), st);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(b.next64(), expect[static_cast<std::size_t>(i)]);
}

TEST(Rng, SetStateRejectsAllZeroState)
{
    Rng r(1);
    EXPECT_THROW(r.setState(RngState{0, 0}), std::invalid_argument);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliFrequencyApproximatesP)
{
    Rng r(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, HeavyTailBounded)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.nextHeavyTail(64);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 64u);
    }
}

// ------------------------------------------------------------------- hashing

TEST(Hashing, Mix64Avalanches)
{
    // Flipping one input bit should flip roughly half the output bits.
    const std::uint64_t h0 = mix64(0x1234567890ABCDEFull);
    const std::uint64_t h1 = mix64(0x1234567890ABCDEEull);
    const int diff = __builtin_popcountll(h0 ^ h1);
    EXPECT_GT(diff, 16);
    EXPECT_LT(diff, 48);
}

TEST(Hashing, FoldedXorWidth)
{
    for (unsigned bits : {4u, 7u, 12u, 16u}) {
        const std::uint32_t v = foldedXor(0xDEADBEEFCAFEF00Dull, bits);
        EXPECT_LT(v, 1u << bits);
    }
}

TEST(Hashing, PlaneIndexWithinRange)
{
    for (std::uint64_t f = 0; f < 1000; ++f)
        EXPECT_LT(planeIndex(f, 3, 7), 128u);
}

TEST(Hashing, DistinctPlaneShiftsDecorrelate)
{
    // Two planes should disagree on the row for most feature values.
    int same = 0;
    for (std::uint64_t f = 0; f < 1000; ++f)
        same += (planeIndex(f, 3, 7) == planeIndex(f, 11, 7));
    EXPECT_LT(same, 100);
}

TEST(Hashing, PlaneIndexSpreads)
{
    std::set<std::uint32_t> rows;
    for (std::uint64_t f = 0; f < 512; ++f)
        rows.insert(planeIndex(f, 3, 7));
    EXPECT_GT(rows.size(), 100u); // most of the 128 rows are used
}

// --------------------------------------------------------------------- stats

TEST(Stats, CountersAccumulate)
{
    StatGroup g("test");
    g.inc("a");
    g.inc("a", 4);
    EXPECT_EQ(g.counter("a"), 5u);
    EXPECT_EQ(g.counter("missing"), 0u);
}

TEST(Stats, ValuesSetAndReset)
{
    StatGroup g;
    g.set("ipc", 1.25);
    EXPECT_DOUBLE_EQ(g.value("ipc"), 1.25);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value("ipc"), 0.0);
    EXPECT_TRUE(g.has("ipc")); // names survive reset
}

TEST(Stats, DumpContainsPrefix)
{
    StatGroup g("l2");
    g.inc("hits", 3);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("l2.hits 3"), std::string::npos);
}

// --------------------------------------------------------------------- table

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::pct(0.034, 1), "+3.4%");
    EXPECT_EQ(Table::pct(-0.021, 1), "-2.1%");
}

TEST(Table, CellsRoundTrip)
{
    Table t("x");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cell(1, 0), "3");
}

TEST(Table, CsvWritten)
{
    Table t("csv");
    t.setHeader({"x"});
    t.addRow({"42"});
    const std::string path = "/tmp/pythia_test_table.csv";
    ASSERT_TRUE(t.writeCsv(path));
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "x\n");
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Table, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

// -------------------------------------------------------------------- config

TEST(Config, TypedAccessors)
{
    Config c;
    c.set("s", "hello");
    c.setInt("i", -7);
    c.setDouble("d", 0.5);
    c.set("b", "true");
    EXPECT_EQ(c.getString("s"), "hello");
    EXPECT_EQ(c.getInt("i"), -7);
    EXPECT_DOUBLE_EQ(c.getDouble("d"), 0.5);
    EXPECT_TRUE(c.getBool("b"));
    EXPECT_EQ(c.getInt("missing", 9), 9);
}

TEST(Config, RejectsMalformedValues)
{
    Config c;
    c.set("i", "12x");
    EXPECT_THROW(c.getInt("i"), std::invalid_argument);
    c.set("b", "maybe");
    EXPECT_THROW(c.getBool("b"), std::invalid_argument);
}

TEST(Config, ParseArgs)
{
    const char* argv[] = {"prog", "workload=mcf", "mtps=600", "--junk"};
    Config c;
    const auto ignored = c.parseArgs(4, argv);
    EXPECT_EQ(c.getString("workload"), "mcf");
    EXPECT_EQ(c.getInt("mtps"), 600);
    ASSERT_EQ(ignored.size(), 1u);
    EXPECT_EQ(ignored[0], "--junk");
}

// ----------------------------------------------------------------- bench args

// parseBenchArgs terminates the bench with status 2 on contradictory
// knob combinations, so these run as death tests.
bench::BenchOptions
parseBench(std::vector<std::string> args)
{
    args.insert(args.begin(), "bench");
    std::vector<char*> argv;
    for (auto& a : args)
        argv.push_back(a.data());
    return bench::parseBenchArgs(static_cast<int>(argv.size()),
                                 argv.data());
}

TEST(BenchArgs, WorkersWithThreadPoolJobsRejected)
{
    EXPECT_EXIT(parseBench({"workers=4", "jobs=8"}),
                ::testing::ExitedWithCode(2), "mutually exclusive");
}

TEST(BenchArgs, JournalWithoutWorkersRejected)
{
    EXPECT_EXIT(parseBench({"journal=sweep.journal"}),
                ::testing::ExitedWithCode(2), "requires workers=");
}

TEST(BenchArgs, WorkersAloneAndWithExplicitSingleJobAccepted)
{
    const bench::BenchOptions a = parseBench({"workers=4"});
    EXPECT_EQ(a.workers, 4u);
    EXPECT_EQ(a.jobs, 0u);
    // jobs=1 is not contradictory: one in-process runner per worker.
    const bench::BenchOptions b = parseBench({"workers=2", "jobs=1"});
    EXPECT_EQ(b.workers, 2u);
    EXPECT_EQ(b.jobs, 1u);
}

} // namespace
} // namespace pythia
