/**
 * @file
 * Tests for the WorkloadRegistry (ctest labels: property + golden —
 * the golden label because catalog-alias equivalence and trace
 * capture/replay equivalence are result-preserving gates):
 *
 *  - parameterized spec construction for every generator family, and
 *    bit-equivalence of catalog aliases resolved through the registry
 *  - "did you mean" diagnostics for misspelled names and parameters
 *  - canonical spec spelling and Runner::baselineKey invariance
 *  - clone(reseed) independence and reset() determinism across all
 *    families (the property the multi-programmed mixes rely on)
 *  - trace capture -> "trace:file=" replay bit-identical to the live
 *    generator for one workload per suite (the equivalence rule of
 *    DESIGN.md §4.2)
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/hashing.hpp"
#include "harness/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/registry.hpp"
#include "workloads/suites.hpp"
#include "workloads/trace.hpp"

namespace pythia::wl {
namespace {

bool
sameRecord(const TraceRecord& a, const TraceRecord& b)
{
    return a.pc == b.pc && a.addr == b.addr && a.gap == b.gap &&
           a.is_write == b.is_write &&
           a.depends_on_prev == b.depends_on_prev;
}

/** First @p n records of @p w, from a fresh reset(). */
std::vector<TraceRecord>
streamOf(Workload& w, int n)
{
    w.reset();
    std::vector<TraceRecord> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(w.next());
    return out;
}

void
expectSameStream(Workload& a, Workload& b, int n, const std::string& why)
{
    const auto sa = streamOf(a, n);
    const auto sb = streamOf(b, n);
    for (int i = 0; i < n; ++i)
        ASSERT_TRUE(sameRecord(sa[static_cast<std::size_t>(i)],
                               sb[static_cast<std::size_t>(i)]))
            << why << " diverges at record " << i;
}

/** Unique-per-test scratch path, removed on destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string& tag)
        : path_("wl_registry_test_" + tag + ".bin")
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }
    ~ScratchFile()
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }
    const std::string& str() const { return path_; }

  private:
    std::string path_;
};

// ----------------------------------------------------- spec construction

TEST(WorkloadRegistry, EveryFamilyConstructsFromABareName)
{
    for (const char* family :
         {"stream", "stride", "spatial", "delta", "irregular", "graph",
          "casestudy"}) {
        auto w = makeWorkload(family);
        ASSERT_NE(w, nullptr) << family;
        EXPECT_EQ(w->name(), family);
        (void)w->next();
    }
}

TEST(WorkloadRegistry, ParamsReachTheGenerator)
{
    // A single forward stream is strictly sequential — the streams=1
    // knob demonstrably arrived at StreamGen.
    auto w = makeWorkload("stream:streams=1");
    Addr prev = w->next().addr;
    for (int i = 0; i < 100; ++i) {
        const Addr cur = w->next().addr;
        EXPECT_EQ(blockAddr(cur), blockAddr(prev) + 1);
        prev = cur;
    }

    // A one-entry stride list walks at exactly that stride.
    auto s = makeWorkload("stride:strides=9");
    prev = s->next().addr;
    for (int i = 0; i < 100; ++i) {
        const Addr cur = s->next().addr;
        EXPECT_EQ(blockAddr(cur), blockAddr(prev) + 9);
        prev = cur;
    }
}

TEST(WorkloadRegistry, RawSpecMatchesDirectConstruction)
{
    const std::uint64_t seed = 0xABCDEF01ull;
    auto via_spec = WorkloadRegistry::instance().make(
        "spatial:patterns=6,density=0.35,mem_ratio=0.15,dep_ratio=0.45",
        seed);
    GenParams p;
    p.mem_ratio = 0.15;
    p.dep_ratio = 0.45;
    SpatialRegionGen direct("x", seed, p, 6, 0.35);
    expectSameStream(*via_spec, direct, 500, "spec vs direct");
}

TEST(WorkloadRegistry, FootprintAcceptsSizeSuffixes)
{
    auto suffixed = makeWorkload(
        "irregular:footprint=8M,stride_fraction=0", 0x5EEDull);
    auto bytes = makeWorkload(
        "irregular:footprint=8388608,stride_fraction=0", 0x5EEDull);
    expectSameStream(*suffixed, *bytes, 300, "8M vs 8388608");
}

TEST(WorkloadRegistry, SpellingOrderDoesNotChangeTheStream)
{
    // Same canonical spec => same default seed => identical stream,
    // even with shuffled parameter order and whitespace.
    auto a = makeWorkload("stream:streams=2,mem_ratio=0.4");
    auto b = makeWorkload(" stream : mem_ratio=0.4 , streams=2 ");
    expectSameStream(*a, *b, 300, "spelling variants");
}

// ------------------------------------------------------- catalog aliases

TEST(WorkloadRegistry, CatalogAliasesResolveThroughTheRegistry)
{
    // Every catalog name is a thin alias: constructing the alias's spec
    // directly through the registry with the same seed must replay the
    // catalog workload bit-identically. (The golden-metrics suite pins
    // the end-to-end result; this pins the stream itself.)
    auto check = [](const WorkloadSpec& entry) {
        const std::uint64_t seed = 0x1234'5678ull;
        auto via_name = makeWorkload(entry.name, seed);
        auto via_spec =
            WorkloadRegistry::instance().make(entry.spec, seed);
        expectSameStream(*via_name, *via_spec, 400, entry.name);
        EXPECT_EQ(via_name->name(), entry.name);
    };
    for (const auto& entry : allWorkloads())
        check(entry);
    for (const auto& entry : unseenWorkloads())
        check(entry);
}

TEST(WorkloadRegistry, CatalogSpecsAreCanonical)
{
    // Alias specs in suites.cpp are stored canonically, so baseline
    // keys and names never depend on incidental spelling.
    for (const auto& entry : allWorkloads())
        EXPECT_EQ(WorkloadRegistry::instance().canonical(entry.spec),
                  entry.spec)
            << entry.name;
}

// ----------------------------------------------------------- diagnostics

TEST(WorkloadRegistry, MisspelledCatalogNameSuggestsIt)
{
    try {
        makeWorkload("Ligra-PageRnk");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("Ligra-PageRank"),
                  std::string::npos)
            << e.what();
    }
}

TEST(WorkloadRegistry, MisspelledFamilySuggestsIt)
{
    try {
        makeWorkload("stram:dep_ratio=0.9");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("stream"),
                  std::string::npos)
            << e.what();
    }
}

TEST(WorkloadRegistry, MisspelledParameterSuggestsIt)
{
    try {
        makeWorkload("stream:streems=2");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("streams"),
                  std::string::npos)
            << e.what();
    }
}

TEST(WorkloadRegistry, IllTypedAndOutOfRangeParametersAreRejected)
{
    EXPECT_THROW(makeWorkload("stream:streams=abc"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("stream:streams=0"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("stream:mem_ratio=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("spatial:density=0"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("delta:deltas=1/-2"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("stride:strides=2x"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("irregular:footprint=63"),
                 std::invalid_argument);
    // strtoull would wrap a negative size to 2^64-1; must reject.
    EXPECT_THROW(makeWorkload("irregular:footprint=-1"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("irregular:footprint=-64M"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("graph:degree=0"),
                 std::invalid_argument);
}

TEST(WorkloadRegistry, MalformedSpecsAreRejected)
{
    // '+' composition belongs to prefetchers; workloads use phase:.
    EXPECT_THROW(makeWorkload("stream+graph"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("phase:"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("phase:stream@x"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("phase:stream@0"), std::invalid_argument);
    // An overlong length must surface as invalid_argument (the
    // documented contract), not std::out_of_range from stoull.
    EXPECT_THROW(
        makeWorkload("phase:stream@99999999999999999999999"),
        std::invalid_argument);
    EXPECT_THROW(makeWorkload("phase:phase:stream@40+graph@60"),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("trace:"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("stream:"), std::invalid_argument);
}

// ------------------------------------------------------ canonical + keys

TEST(WorkloadRegistry, CanonicalSortsKeysAndKeepsCatalogNames)
{
    EXPECT_EQ(canonicalWorkloadSpec("stream:mem_ratio=0.4,footprint=256M"),
              canonicalWorkloadSpec("stream:footprint=256M,mem_ratio=0.4"));
    EXPECT_EQ(canonicalWorkloadSpec("482.sphinx3-417B"),
              "482.sphinx3-417B");
    // Not a valid spec: passes through unchanged (total function).
    EXPECT_EQ(canonicalWorkloadSpec("no-such-trace"), "no-such-trace");
    // Default phase length becomes explicit.
    EXPECT_EQ(canonicalWorkloadSpec("phase:stream+graph@60"),
              canonicalWorkloadSpec("phase:stream@20000+graph@60"));
}

TEST(WorkloadRegistry, BaselineKeyIgnoresSpecSpelling)
{
    harness::ExperimentSpec a;
    a.workload = "stream:mem_ratio=0.4,footprint=256M";
    harness::ExperimentSpec b;
    b.workload = "stream:footprint=256M, mem_ratio=0.4";
    EXPECT_EQ(harness::Runner::baselineKey(a),
              harness::Runner::baselineKey(b));

    // Different parameters stay different keys.
    harness::ExperimentSpec c;
    c.workload = "stream:footprint=128M,mem_ratio=0.4";
    EXPECT_NE(harness::Runner::baselineKey(a),
              harness::Runner::baselineKey(c));

    // Mix entries canonicalize too.
    harness::ExperimentSpec ma;
    ma.num_cores = 2;
    ma.mix = {"stream:streams=2,mem_ratio=0.4", "470.lbm-164B"};
    harness::ExperimentSpec mb;
    mb.num_cores = 2;
    mb.mix = {"stream:mem_ratio=0.4,streams=2", "470.lbm-164B"};
    EXPECT_EQ(harness::Runner::baselineKey(ma),
              harness::Runner::baselineKey(mb));
}

// -------------------------------------------- clone / reset (all families)

/** Clone independence + reset determinism must hold for every family
 *  (the properties multi-programmed mixes and windowed replay rely
 *  on). Parameterized over raw family specs so the registry plumbing
 *  is under test too. */
class FamilyProperties : public ::testing::TestWithParam<const char*>
{
};

TEST_P(FamilyProperties, ResetReplaysBitIdentically)
{
    auto w = makeWorkload(GetParam());
    const auto first = streamOf(*w, 400);
    w->reset();
    for (int i = 0; i < 400; ++i)
        ASSERT_TRUE(sameRecord(w->next(),
                               first[static_cast<std::size_t>(i)]))
            << GetParam() << " at record " << i;
}

TEST_P(FamilyProperties, CloneWithSameSeedReplaysBitIdentically)
{
    auto w = makeWorkload(GetParam());
    auto c = w->clone(0);
    expectSameStream(*w, *c, 400, GetParam());
}

TEST_P(FamilyProperties, CloneWithNewSeedDiverges)
{
    auto w = makeWorkload(GetParam());
    auto c = w->clone(0xFEEDull);
    int same = 0;
    for (int i = 0; i < 300; ++i)
        same += (w->next().addr == c->next().addr);
    EXPECT_LT(same, 150) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyProperties,
    ::testing::Values("stream:streams=3,backwards=0.5",
                      "stride:strides=2/5",
                      "spatial:patterns=3,density=0.4,concurrency=2",
                      "delta:deltas=1/4",
                      "irregular:stride_fraction=0.3",
                      "graph:degree=5,irregularity=0.6",
                      "casestudy",
                      "phase:stream@50+graph@70"),
    [](const auto& info) {
        std::string n = info.param;
        n = n.substr(0, n.find(':'));
        return n + "_" + std::to_string(info.index);
    });

// --------------------------------------------------------- phase composite

TEST(PhaseComposite, RotatesChildrenWithPerChildLengths)
{
    // 40 stream records (PCs 0x400000+), then 60 graph records (PCs
    // 0x900000+), repeating.
    auto w = makeWorkload("phase:stream@40+graph@60");
    for (int lap = 0; lap < 3; ++lap) {
        for (int i = 0; i < 40; ++i) {
            const auto r = w->next();
            EXPECT_LT(r.pc, 0x500000u) << "lap " << lap << " rec " << i;
        }
        for (int i = 0; i < 60; ++i) {
            const auto r = w->next();
            EXPECT_GE(r.pc, 0x900000u) << "lap " << lap << " rec " << i;
        }
    }
}

TEST(PhaseComposite, ChildParametersCompose)
{
    // The stream child's streams=1 knob survives the phase grammar:
    // within the stream phase, addresses are strictly sequential.
    auto w = makeWorkload("phase:stream:streams=1@50+graph@50");
    Addr prev = w->next().addr;
    for (int i = 1; i < 50; ++i) {
        const Addr cur = w->next().addr;
        EXPECT_EQ(blockAddr(cur), blockAddr(prev) + 1) << "record " << i;
        prev = cur;
    }
}

// --------------------------------------------- trace capture / replay gate

/** The capture/replay equivalence rule (DESIGN.md §4.2): a captured
 *  trace replayed through "trace:file=" is bit-identical to the live
 *  generator — verified for one workload per suite plus an unseen
 *  one (phase mixes included via Cloudsuite). */
class TraceRoundTrip : public ::testing::TestWithParam<const char*>
{
};

TEST_P(TraceRoundTrip, ReplayIsBitIdenticalToLiveGenerator)
{
    const std::string name = GetParam();
    std::string tag = name;
    for (auto& c : tag)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    ScratchFile file(tag);

    constexpr int kRecords = 2000;
    auto live = makeWorkload(name);
    ASSERT_TRUE(writeTraceFile(file.str(), *live, kRecords));

    auto replay = makeWorkload("trace:file=" + file.str());
    live->reset();
    for (int i = 0; i < kRecords; ++i)
        ASSERT_TRUE(sameRecord(live->next(), replay->next()))
            << name << " at record " << i;
}

INSTANTIATE_TEST_SUITE_P(
    OnePerSuite, TraceRoundTrip,
    ::testing::Values("462.libquantum-1343B", // SPEC06
                      "605.mcf_s-665B",       // SPEC17
                      "PARSEC-Canneal",       // PARSEC
                      "Ligra-PageRank",       // Ligra
                      "Cloudsuite-Cassandra", // Cloudsuite (phase mix)
                      "srv-9"),               // unseen
    [](const auto& info) {
        std::string n = info.param;
        for (auto& c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(TraceSpec, MissingFileThrows)
{
    EXPECT_THROW(makeWorkload("trace:file=does_not_exist_9876.bin"),
                 std::runtime_error);
}

TEST(TraceSpec, ReplayNameIsTheSpec)
{
    ScratchFile file("name");
    auto live = makeWorkload("stream:streams=1");
    ASSERT_TRUE(writeTraceFile(file.str(), *live, 10));
    auto replay = makeWorkload("trace:file=" + file.str());
    EXPECT_EQ(replay->name(), "trace:file=" + file.str());
}

// ------------------------------------------------------------ harness path

TEST(HarnessIntegration, RawSpecRunsEndToEnd)
{
    harness::ExperimentSpec spec;
    spec.workload = "stream:streams=2,mem_ratio=0.4";
    spec.warmup_instrs = 1'000;
    spec.sim_instrs = 2'000;
    const auto res = harness::simulate(spec);
    EXPECT_GT(res.ipc_geomean, 0.0);
}

TEST(HarnessIntegration, HomogeneousRawSpecMixDecorrelates)
{
    harness::ExperimentSpec spec;
    spec.workload = "irregular:stride_fraction=0.1";
    spec.num_cores = 2;
    auto ws = harness::workloadsFor(spec);
    ASSERT_EQ(ws.size(), 2u);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (ws[0]->next().addr == ws[1]->next().addr);
    EXPECT_LT(same, 100);
}

} // namespace
} // namespace pythia::wl
