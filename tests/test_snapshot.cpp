/**
 * @file
 * Snapshot subsystem property tests (ctest label: property).
 *
 * Covers the pythia-snap-v1 stack bottom-up: codec primitive round
 * trips and section discipline, the file container's validation order
 * and corruption taxonomy (each failure mode its own typed error),
 * configuration fingerprints, StatGroup serialization, SimSession
 * snapshot/resume equivalence (post-warmup and mid-run), the
 * UnsupportedError contract for prefetchers without serialization,
 * and the Runner warm-state cache — including byte-identical warm
 * results and the loud-fallback path for corrupt cache entries.
 * The full golden-grid restore→advance gate lives in
 * test_snapshot_golden.cpp (label: golden).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "harness/session.hpp"
#include "snapshot/snapshot.hpp"

namespace pythia {
namespace {

namespace fs = std::filesystem;

std::string
tmpPath(const std::string& name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

/** A guaranteed-fresh cache directory (runs must not inherit entries
 *  from an earlier test invocation sharing the temp directory). */
std::string
freshDir(const std::string& name)
{
    const std::string dir = tmpPath(name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
readFileBytes(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f) << path;
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

void
writeFileBytes(const std::string& path,
               const std::vector<std::uint8_t>& bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f) << path;
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/** Field-for-field bit-exact RunResult comparison (doubles with ==;
 *  the golden suite pins the same way). */
void
expectSameResult(const sim::RunResult& a, const sim::RunResult& b,
                 const std::string& what)
{
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.ipc_geomean, b.ipc_geomean) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.llc_demand_load_misses, b.llc_demand_load_misses) << what;
    EXPECT_EQ(a.llc_read_misses, b.llc_read_misses) << what;
    EXPECT_EQ(a.prefetch_issued, b.prefetch_issued) << what;
    EXPECT_EQ(a.prefetch_useful, b.prefetch_useful) << what;
    EXPECT_EQ(a.prefetch_useless, b.prefetch_useless) << what;
    EXPECT_EQ(a.prefetch_late, b.prefetch_late) << what;
    EXPECT_EQ(a.dram_buckets, b.dram_buckets) << what;
    EXPECT_EQ(a.dram_utilization, b.dram_utilization) << what;
    EXPECT_EQ(a.core_cycles, b.core_cycles) << what;
    EXPECT_EQ(a.dram_bucket_epochs, b.dram_bucket_epochs) << what;
}

/** A small, cheap spec that still exercises the full Pythia stack
 *  (QVStore, EQ, feature extractor, RNG). */
harness::ExperimentSpec
smallPythiaSpec()
{
    return harness::Experiment("462.libquantum-1343B")
        .l2("pythia")
        .warmup(10'000)
        .measure(20'000)
        .spec();
}

// ------------------------------------------------------------------ codec

TEST(SnapCodec, PrimitivesRoundTrip)
{
    snap::Writer w;
    w.u8(0xAB);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i32(-42);
    w.i64(-1234567890123ll);
    w.boolean(true);
    w.boolean(false);
    w.f32(1.5f);
    w.f64(-0.1); // not exactly representable: bit pattern must survive
    w.str("hello");
    w.vecU8({1, 2, 3});
    w.vecU32({10, 20});
    w.vecU64({1ull << 60});
    w.vecF32({0.25f});
    w.vecF64({1e-300, -0.0});

    snap::Reader r(w.buffer().data(), w.buffer().size());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.i64(), -1234567890123ll);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.f32(), 1.5f);
    EXPECT_EQ(r.f64(), -0.1);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.vecU8(), (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(r.vecU32(), (std::vector<std::uint32_t>{10, 20}));
    EXPECT_EQ(r.vecU64(), (std::vector<std::uint64_t>{1ull << 60}));
    EXPECT_EQ(r.vecF32(), (std::vector<float>{0.25f}));
    const auto f64s = r.vecF64();
    ASSERT_EQ(f64s.size(), 2u);
    EXPECT_EQ(f64s[0], 1e-300);
    // -0.0 == 0.0 under ==, so check the sign bit survived explicitly.
    EXPECT_TRUE(std::signbit(f64s[1]));
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapCodec, SectionsNestAndMustBalanceExactly)
{
    snap::Writer w;
    w.beginSection("outer");
    w.u32(1);
    w.beginSection("inner");
    w.u64(2);
    w.endSection();
    w.endSection();

    snap::Reader r(w.buffer().data(), w.buffer().size());
    r.enterSection("outer");
    EXPECT_EQ(r.u32(), 1u);
    r.enterSection("inner");
    EXPECT_EQ(r.u64(), 2u);
    r.leaveSection();
    r.leaveSection();
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapCodec, UnderConsumedSectionThrows)
{
    snap::Writer w;
    w.beginSection("s");
    w.u32(1);
    w.u32(2);
    w.endSection();

    snap::Reader r(w.buffer().data(), w.buffer().size());
    r.enterSection("s");
    (void)r.u32(); // leave 4 bytes unread
    EXPECT_THROW(r.leaveSection(), snap::CorruptError);
}

TEST(SnapCodec, ReadPastSectionEndThrows)
{
    snap::Writer w;
    w.beginSection("s");
    w.u32(1);
    w.endSection();
    w.u64(99); // bytes after the section must be unreachable inside it

    snap::Reader r(w.buffer().data(), w.buffer().size());
    r.enterSection("s");
    (void)r.u32();
    EXPECT_THROW((void)r.u8(), snap::CorruptError);
}

TEST(SnapCodec, WrongSectionNameThrows)
{
    snap::Writer w;
    w.beginSection("actual");
    w.endSection();
    snap::Reader r(w.buffer().data(), w.buffer().size());
    EXPECT_THROW(r.enterSection("expected"), snap::CorruptError);
}

TEST(SnapCodec, InvalidBoolEncodingThrows)
{
    snap::Writer w;
    w.u8(2);
    snap::Reader r(w.buffer().data(), w.buffer().size());
    EXPECT_THROW((void)r.boolean(), snap::CorruptError);
}

TEST(SnapCodec, TruncatedBufferThrows)
{
    snap::Writer w;
    w.u32(7);
    snap::Reader r(w.buffer().data(), 2); // half the u32
    EXPECT_THROW((void)r.u32(), snap::CorruptError);
}

TEST(SnapCodec, UnclosedSectionIsALogicError)
{
    snap::Writer w;
    w.beginSection("open");
    EXPECT_THROW((void)w.buffer(), std::logic_error);
}

// --------------------------------------------------------------- StatGroup

TEST(SnapStats, StatGroupRoundTripPreservesSlotPointers)
{
    StatGroup g("g");
    g.inc("hits", 7);
    g.inc("misses", 3);
    g.set("ipc", 1.25);
    std::uint64_t* slot = g.counterSlot("hits");

    snap::Writer w;
    g.saveState(w);

    g.inc("hits", 100); // diverge after the snapshot
    g.set("ipc", 9.0);

    snap::Reader r(w.buffer().data(), w.buffer().size());
    g.loadState(r);
    EXPECT_EQ(g.counter("hits"), 7u);
    EXPECT_EQ(g.counter("misses"), 3u);
    EXPECT_EQ(g.value("ipc"), 1.25);
    // The hot-path contract: the pre-load slot pointer still reads the
    // restored value.
    EXPECT_EQ(*slot, 7u);
}

// ----------------------------------------------------------- file container

TEST(SnapFile, WriteReadRoundTrip)
{
    const std::string path = tmpPath("roundtrip.snap");
    snap::writeSnapshotFile(path, "cores=1;", [](snap::Writer& w) {
        w.beginSection("payload");
        w.u64(42);
        w.endSection();
    });

    const snap::SnapshotFile sf = snap::readSnapshotFile(path, "cores=1;");
    EXPECT_EQ(sf.version, snap::kFormatVersion);
    EXPECT_EQ(sf.fingerprint, "cores=1;");
    snap::Reader r = sf.body();
    r.enterSection("payload");
    EXPECT_EQ(r.u64(), 42u);
    r.leaveSection();
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapFile, MissingFileIsIoError)
{
    EXPECT_THROW(snap::readSnapshotFile(tmpPath("nonexistent.snap"), ""),
                 snap::IoError);
}

TEST(SnapFile, TruncatedFileIsCorruptError)
{
    const std::string path = tmpPath("truncated.snap");
    snap::writeSnapshotFile(path, "k=v;", [](snap::Writer& w) {
        w.beginSection("s");
        w.vecU64(std::vector<std::uint64_t>(64, 7));
        w.endSection();
    });
    auto bytes = readFileBytes(path);
    bytes.resize(bytes.size() / 2);
    writeFileBytes(path, bytes);
    EXPECT_THROW(snap::readSnapshotFile(path, "k=v;"), snap::CorruptError);
}

TEST(SnapFile, FlippedByteIsCorruptError)
{
    const std::string path = tmpPath("bitrot.snap");
    snap::writeSnapshotFile(path, "k=v;", [](snap::Writer& w) {
        w.beginSection("s");
        w.u64(7);
        w.endSection();
    });
    auto bytes = readFileBytes(path);
    bytes[bytes.size() / 2] ^= 0x40; // one flipped bit mid-file
    writeFileBytes(path, bytes);
    EXPECT_THROW(snap::readSnapshotFile(path, "k=v;"), snap::CorruptError);
}

TEST(SnapFile, WrongVersionIsVersionError)
{
    const std::string path = tmpPath("version.snap");
    snap::writeSnapshotFile(path, "k=v;", [](snap::Writer& w) {
        w.beginSection("s");
        w.endSection();
    });
    auto bytes = readFileBytes(path);
    bytes[sizeof(snap::kMagic)] = 99; // version u32 follows the magic
    writeFileBytes(path, bytes);
    EXPECT_THROW(snap::readSnapshotFile(path, "k=v;"), snap::VersionError);
}

TEST(SnapFile, BadMagicIsCorruptError)
{
    const std::string path = tmpPath("magic.snap");
    snap::writeSnapshotFile(path, "k=v;", [](snap::Writer& w) {
        w.beginSection("s");
        w.endSection();
    });
    auto bytes = readFileBytes(path);
    bytes[0] = 'X';
    writeFileBytes(path, bytes);
    EXPECT_THROW(snap::readSnapshotFile(path, "k=v;"), snap::CorruptError);
}

TEST(SnapFile, FingerprintMismatchDiagnosesFields)
{
    const std::string path = tmpPath("fingerprint.snap");
    snap::writeSnapshotFile(path, "workload=a;cores=1;seed=0;",
                            [](snap::Writer& w) {
                                w.beginSection("s");
                                w.endSection();
                            });
    try {
        snap::readSnapshotFile(path, "workload=a;cores=4;seed=0;");
        FAIL() << "expected FingerprintError";
    } catch (const snap::FingerprintError& e) {
        const std::string msg = e.what();
        // The did-you-mean diff names the differing field and both
        // values — a stale cache must be diagnosable from the message.
        EXPECT_NE(msg.find("cores"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'1'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'4'"), std::string::npos) << msg;
        EXPECT_EQ(msg.find("workload:"), std::string::npos) << msg;
    }
}

TEST(SnapFile, InspectReportsSectionsAndChecksum)
{
    const std::string path = tmpPath("inspect.snap");
    snap::writeSnapshotFile(path, "k=v;", [](snap::Writer& w) {
        w.beginSection("alpha");
        w.u64(1);
        w.endSection();
        w.beginSection("beta");
        w.u32(2);
        w.endSection();
    });
    const snap::SnapshotInfo info = snap::inspectSnapshotFile(path);
    EXPECT_TRUE(info.checksum_ok);
    EXPECT_EQ(info.fingerprint, "k=v;");
    ASSERT_EQ(info.sections.size(), 2u);
    EXPECT_EQ(info.sections[0].name, "alpha");
    EXPECT_EQ(info.sections[0].length, 8u);
    EXPECT_EQ(info.sections[1].name, "beta");
    EXPECT_EQ(info.sections[1].length, 4u);

    // A flipped byte shows up as a reported (not thrown) bad checksum.
    auto bytes = readFileBytes(path);
    bytes[info.sections[0].offset] ^= 1;
    writeFileBytes(path, bytes);
    EXPECT_FALSE(snap::inspectSnapshotFile(path).checksum_ok);
}

// -------------------------------------------------------------- fingerprint

TEST(SnapFingerprint, CoversEveryStateShapingField)
{
    const harness::ExperimentSpec base = smallPythiaSpec();
    const std::string fp = harness::fingerprintFor(base);

    auto differs = [&](harness::ExperimentSpec s) {
        return harness::fingerprintFor(s) != fp;
    };
    harness::ExperimentSpec s = base;
    s.prefetcher = "spp";
    EXPECT_TRUE(differs(s));
    s = base;
    s.l1_prefetcher = "nextline";
    EXPECT_TRUE(differs(s));
    s = base;
    s.num_cores = 4;
    EXPECT_TRUE(differs(s));
    s = base;
    s.warmup_instrs += 1;
    EXPECT_TRUE(differs(s));
    s = base;
    s.sim_instrs += 1;
    EXPECT_TRUE(differs(s));
    s = base;
    s.workload_seed = 99;
    EXPECT_TRUE(differs(s));
    s = base;
    s.mtps = 4800;
    EXPECT_TRUE(differs(s));
    s = base;
    s.llc_bytes_per_core *= 2;
    EXPECT_TRUE(differs(s));
    s = base;
    s.workload = "429.mcf-184B";
    EXPECT_TRUE(differs(s));
}

TEST(SnapFingerprint, CanonicalizesWorkloadSpellings)
{
    // Two spellings of one parameterized workload spec construct the
    // same stream and must share one fingerprint (and so one warm
    // cache entry).
    harness::ExperimentSpec a = smallPythiaSpec();
    a.workload = "stream:footprint=4M,mem_ratio=0.4";
    harness::ExperimentSpec b = a;
    b.workload = "stream:mem_ratio=0.4,footprint=4M";
    EXPECT_EQ(harness::fingerprintFor(a), harness::fingerprintFor(b));
}

// ------------------------------------------------------------------ session

TEST(SnapSession, PostWarmupResumeMatchesStraightThrough)
{
    const harness::ExperimentSpec spec = smallPythiaSpec();
    const std::string path = tmpPath("warm-session.snap");

    harness::SimSession cold(spec);
    cold.runWarmup();
    cold.snapshotTo(path);
    const sim::RunResult straight = cold.runToCompletion();

    harness::SimSession resumed =
        harness::SimSession::resumeFrom(spec, path);
    EXPECT_TRUE(resumed.warmupDone());
    EXPECT_EQ(resumed.instrsAdvanced(), 0u);
    const sim::RunResult replayed = resumed.runToCompletion();

    expectSameResult(straight, replayed, "post-warmup resume");
}

TEST(SnapSession, MidRunResumeMatchesStraightThrough)
{
    const harness::ExperimentSpec spec = smallPythiaSpec();
    const std::string path = tmpPath("midrun-session.snap");

    harness::SimSession cold(spec);
    cold.advance(spec.sim_instrs / 2);
    cold.snapshotTo(path);
    const sim::RunResult straight = cold.runToCompletion();

    harness::SimSession resumed =
        harness::SimSession::resumeFrom(spec, path);
    EXPECT_EQ(resumed.instrsAdvanced(), spec.sim_instrs / 2);
    EXPECT_EQ(resumed.windowsCompleted(), 1u);
    const sim::RunResult replayed = resumed.runToCompletion();

    expectSameResult(straight, replayed, "mid-run resume");
}

TEST(SnapSession, SnapshotFileHasTheDocumentedSections)
{
    const harness::ExperimentSpec spec = smallPythiaSpec();
    const std::string path = tmpPath("layout.snap");
    harness::SimSession session(spec);
    session.runWarmup();
    session.snapshotTo(path);

    const snap::SnapshotInfo info = snap::inspectSnapshotFile(path);
    EXPECT_TRUE(info.checksum_ok);
    EXPECT_EQ(info.fingerprint, harness::fingerprintFor(spec));
    std::vector<std::string> names;
    for (const auto& s : info.sections)
        names.push_back(s.name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"session", "machine", "dram",
                                        "llc", "l2.0", "l1.0", "core.0",
                                        "pf.0"}));
}

TEST(SnapSession, ResumeUnderDifferentSpecIsFingerprintError)
{
    const harness::ExperimentSpec spec = smallPythiaSpec();
    const std::string path = tmpPath("stale.snap");
    harness::SimSession session(spec);
    session.runWarmup();
    session.snapshotTo(path);

    harness::ExperimentSpec other = spec;
    other.prefetcher = "spp";
    EXPECT_THROW(harness::SimSession::resumeFrom(other, path),
                 snap::FingerprintError);
}

TEST(SnapSession, PrefetcherWithoutSerializationIsUnsupportedError)
{
    // dspatch deliberately has no saveState override: snapshotTo must
    // refuse loudly instead of writing a partial machine.
    harness::ExperimentSpec spec = smallPythiaSpec();
    spec.prefetcher = "dspatch";
    harness::SimSession session(spec);
    session.runWarmup();
    try {
        session.snapshotTo(tmpPath("unsupported.snap"));
        FAIL() << "expected UnsupportedError";
    } catch (const snap::UnsupportedError& e) {
        EXPECT_NE(std::string(e.what()).find("dspatch"),
                  std::string::npos)
            << e.what();
    }
}

// ----------------------------------------------------------- warm cache

TEST(SnapWarmCache, WarmRunReproducesColdRunByteIdentically)
{
    const harness::ExperimentSpec spec = smallPythiaSpec();
    const std::string dir = freshDir("warm-cache-a");

    harness::Runner uncached;
    const harness::Runner::Outcome want = uncached.evaluate(spec);

    harness::Runner cold_runner;
    cold_runner.setSnapshotDir(dir);
    const harness::Runner::Outcome cold = cold_runner.evaluate(spec);
    EXPECT_EQ(cold_runner.warmHits(), 0u);
    EXPECT_EQ(cold_runner.warmMisses(), 2u); // run + baseline

    harness::Runner warm_runner;
    warm_runner.setSnapshotDir(dir);
    const harness::Runner::Outcome warm = warm_runner.evaluate(spec);
    EXPECT_EQ(warm_runner.warmHits(), 2u);
    EXPECT_EQ(warm_runner.warmMisses(), 0u);

    expectSameResult(want.run, cold.run, "cold run, cache populating");
    expectSameResult(want.baseline, cold.baseline, "cold baseline");
    expectSameResult(want.run, warm.run, "warm run");
    expectSameResult(want.baseline, warm.baseline, "warm baseline");
}

TEST(SnapWarmCache, CorruptCacheEntryFallsBackCold)
{
    const harness::ExperimentSpec spec = smallPythiaSpec();
    const std::string dir = freshDir("warm-cache-b");

    harness::Runner populate;
    populate.setSnapshotDir(dir);
    const harness::Runner::Outcome want = populate.evaluate(spec);

    // Flip one byte in every cache entry: the next runner must warn,
    // re-warm cold, and still produce the identical outcome (and leave
    // repaired cache entries behind).
    std::size_t corrupted = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        auto bytes = readFileBytes(entry.path().string());
        bytes[bytes.size() / 2] ^= 0x01;
        writeFileBytes(entry.path().string(), bytes);
        ++corrupted;
    }
    ASSERT_EQ(corrupted, 2u); // run + baseline entries

    harness::Runner recover;
    recover.setSnapshotDir(dir);
    const harness::Runner::Outcome got = recover.evaluate(spec);
    EXPECT_EQ(recover.warmHits(), 0u);
    EXPECT_EQ(recover.warmMisses(), 2u);
    expectSameResult(want.run, got.run, "corrupt-cache fallback run");
    expectSameResult(want.baseline, got.baseline,
                     "corrupt-cache fallback baseline");

    harness::Runner repaired;
    repaired.setSnapshotDir(dir);
    const harness::Runner::Outcome again = repaired.evaluate(spec);
    EXPECT_EQ(repaired.warmHits(), 2u);
    expectSameResult(want.run, again.run, "repaired cache run");
}

TEST(SnapWarmCache, UnsupportedPrefetcherRunsColdWithoutCacheEntry)
{
    harness::ExperimentSpec spec = smallPythiaSpec();
    spec.prefetcher = "dspatch";
    const std::string dir = freshDir("warm-cache-c");

    harness::Runner uncached;
    const harness::Runner::Outcome want = uncached.evaluate(spec);

    harness::Runner runner;
    runner.setSnapshotDir(dir);
    const harness::Runner::Outcome got = runner.evaluate(spec);
    expectSameResult(want.run, got.run, "unsupported prefetcher run");

    // The baseline (prefetcher "none") caches fine; the dspatch run
    // must not leave an entry behind.
    std::size_t entries = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);

    harness::Runner warm;
    warm.setSnapshotDir(dir);
    const harness::Runner::Outcome again = warm.evaluate(spec);
    EXPECT_EQ(warm.warmHits(), 1u);  // baseline only
    EXPECT_EQ(warm.warmMisses(), 1u);
    expectSameResult(want.run, again.run, "unsupported prefetcher rerun");
}

} // namespace
} // namespace pythia
