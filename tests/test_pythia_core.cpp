/**
 * @file
 * Tests for Pythia's core machinery: feature extraction, the QVStore
 * (tile coding, Eqn. 3 max-of-vaults, SARSA updates, optimistic init),
 * the Evaluation Queue reward lifecycle, the agent's Algorithm-1
 * behaviour, the named configurations and the storage model (Table 4).
 */
#include <gtest/gtest.h>

#include "core/agent.hpp"
#include "core/configs.hpp"
#include "core/eq.hpp"
#include "core/feature.hpp"
#include "core/qvstore.hpp"
#include "core/storage_model.hpp"

namespace pythia::rl {
namespace {

constexpr Addr kBase = 1ull << 20;

// ------------------------------------------------------------------ features

TEST(Feature, ThirtyTwoCombinationsMinusDegenerate)
{
    EXPECT_EQ(allFeatureSpecs().size(), 31u); // 4*8 minus None+None
}

TEST(Feature, BasicVectorIsPcDeltaAndLast4Deltas)
{
    const auto basic = basicFeatureSpecs();
    ASSERT_EQ(basic.size(), 2u);
    EXPECT_EQ(featureName(basic[0]), "PC+Delta");
    EXPECT_EQ(featureName(basic[1]), "Last4Deltas");
}

TEST(Feature, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto& s : allFeatureSpecs())
        EXPECT_TRUE(names.insert(featureName(s)).second)
            << featureName(s);
}

TEST(Feature, DeltaTracksInPageDistance)
{
    FeatureExtractor fx;
    fx.observe(0x1, kBase + 3);
    EXPECT_EQ(fx.lastDelta(), 0); // first access: no delta
    fx.observe(0x1, kBase + 7);
    EXPECT_EQ(fx.lastDelta(), 4);
    fx.observe(0x1, kBase + 5);
    EXPECT_EQ(fx.lastDelta(), -2);
}

TEST(Feature, DeltaResetsAcrossPages)
{
    FeatureExtractor fx;
    fx.observe(0x1, kBase + 10);
    fx.observe(0x1, kBase + 64 + 10); // next page
    EXPECT_EQ(fx.lastDelta(), 0);
}

TEST(Feature, PcFeatureReflectsPc)
{
    FeatureExtractor fx;
    fx.observe(0xABC, kBase);
    const FeatureSpec pc_only{ControlKind::Pc, DataKind::None};
    EXPECT_EQ(fx.extract(pc_only), 0xABCu);
}

TEST(Feature, PcDeltaDistinguishesDeltas)
{
    const FeatureSpec spec{ControlKind::Pc, DataKind::Delta};
    FeatureExtractor a, b;
    a.observe(0x1, kBase);
    a.observe(0x1, kBase + 2);
    b.observe(0x1, kBase);
    b.observe(0x1, kBase + 3);
    EXPECT_NE(a.extract(spec), b.extract(spec));
}

TEST(Feature, Last4DeltasIsOrderSensitive)
{
    const FeatureSpec spec{ControlKind::None, DataKind::Last4Deltas};
    FeatureExtractor a, b;
    // a: deltas 1 then 2; b: deltas 2 then 1.
    a.observe(0x1, kBase);
    a.observe(0x1, kBase + 1);
    a.observe(0x1, kBase + 3);
    b.observe(0x1, kBase);
    b.observe(0x1, kBase + 2);
    b.observe(0x1, kBase + 3);
    EXPECT_NE(a.extract(spec), b.extract(spec));
}

TEST(Feature, ResetClearsHistories)
{
    FeatureExtractor fx;
    fx.observe(0x1, kBase + 5);
    fx.observe(0x1, kBase + 9);
    fx.reset();
    const FeatureSpec spec{ControlKind::None, DataKind::Last4Deltas};
    EXPECT_EQ(fx.extract(spec), 0u);
}

// ------------------------------------------------------------------- qvstore

QVStoreConfig
qvCfg()
{
    QVStoreConfig cfg;
    cfg.num_features = 2;
    cfg.num_planes = 3;
    cfg.plane_index_bits = 7;
    cfg.num_actions = 4;
    cfg.alpha = 0.5;
    cfg.gamma = 0.5;
    cfg.q_init = 10.0;
    return cfg;
}

TEST(QVStore, InitializesOptimistically)
{
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s = {1, 2};
    for (std::uint32_t a = 0; a < 4; ++a)
        EXPECT_NEAR(qv.q(s, a), 10.0, 1e-4);
}

TEST(QVStore, UpdateMovesTowardTarget)
{
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s1 = {1, 2}, s2 = {3, 4};
    const double before = qv.q(s1, 0);
    qv.update(s1, 0, /*reward=*/-20.0, s2, 1);
    // target = -20 + 0.5*10 = -15; q moves halfway: 10 -> -2.5 at most
    // (tile sharing can spill, so just require a big decrease).
    EXPECT_LT(qv.q(s1, 0), before - 5.0);
}

TEST(QVStore, MaxActionPicksHighestQ)
{
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s1 = {1, 2}, s2 = {3, 4};
    // Drive action 2's value up relative to the others.
    for (int i = 0; i < 20; ++i)
        qv.update(s1, 2, 50.0, s2, 2);
    EXPECT_EQ(qv.maxAction(s1), 2u);
    EXPECT_NEAR(qv.maxQ(s1), qv.q(s1, 2), 1e-9);
}

TEST(QVStore, MaxOverVaultsDrivesStateQ)
{
    // Eqn. 3: Q(S,A) = max over features. Update with a state whose
    // feature 0 matches but feature 1 differs: the shared feature-0 vault
    // value must lift the Q of the new state too.
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s1 = {7, 100}, s1b = {7, 200};
    const std::vector<std::uint64_t> next = {8, 8};
    for (int i = 0; i < 30; ++i)
        qv.update(s1, 1, 50.0, next, 1);
    // s1b shares feature value 7 in vault 0: its Q for action 1 benefits.
    EXPECT_GT(qv.q(s1b, 1), qv.q(s1b, 0) + 1.0);
}

TEST(QVStore, ResetRestoresInit)
{
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s = {1, 2};
    qv.update(s, 0, -30.0, s, 0);
    qv.resetToOptimistic();
    EXPECT_NEAR(qv.q(s, 0), 10.0, 1e-4);
    EXPECT_EQ(qv.updates(), 0u);
}

TEST(QVStore, TileCodingSharesBetweenSimilarValues)
{
    // Property of tile coding: two very different feature values should
    // rarely share all three plane rows.
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s1 = {42, 42};
    const std::vector<std::uint64_t> s2 = {0xDEADBEEF, 0xDEADBEEF};
    for (int i = 0; i < 30; ++i)
        qv.update(s1, 0, 50.0, s1, 0);
    EXPECT_GT(qv.q(s1, 0), qv.q(s2, 0));
}

TEST(QVStore, UpdateCounterIncrements)
{
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s = {1, 2};
    qv.update(s, 0, 1.0, s, 0);
    qv.update(s, 1, 1.0, s, 0);
    EXPECT_EQ(qv.updates(), 2u);
}

// ------------------------------------------------------------------------ eq

EqEntry
entry(Addr block, std::uint32_t action = 1)
{
    EqEntry e;
    e.state = {1, 2};
    e.action = action;
    e.prefetch_block = block;
    e.has_prefetch = (block != 0);
    return e;
}

TEST(Eq, InsertEvictsFifoWhenFull)
{
    EvaluationQueue eq(3);
    EXPECT_FALSE(eq.insert(entry(10)).has_value());
    EXPECT_FALSE(eq.insert(entry(11)).has_value());
    EXPECT_FALSE(eq.insert(entry(12)).has_value());
    const auto evicted = eq.insert(entry(13));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->prefetch_block, 10u);
    EXPECT_EQ(eq.head().prefetch_block, 11u);
}

TEST(Eq, SearchFindsUnrewardedMatch)
{
    EvaluationQueue eq(8);
    eq.insert(entry(10));
    eq.insert(entry(20));
    EqEntry* hit = eq.search(20);
    ASSERT_NE(hit, nullptr);
    hit->has_reward = true;
    EXPECT_EQ(eq.search(20), nullptr); // rewarded entries excluded
    EXPECT_NE(eq.search(10), nullptr);
}

TEST(Eq, SearchAllReturnsEveryMatch)
{
    EvaluationQueue eq(8);
    eq.insert(entry(30, 1));
    eq.insert(entry(30, 2));
    eq.insert(entry(31, 3));
    const auto all = eq.searchAll(30);
    EXPECT_EQ(all.size(), 2u);
}

TEST(Eq, MarkFillSetsFillTime)
{
    EvaluationQueue eq(8);
    eq.insert(entry(40));
    EXPECT_TRUE(eq.markFill(40, 1234));
    EqEntry* e = eq.search(40);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->fill_known);
    EXPECT_EQ(e->fill_time, 1234u);
    EXPECT_FALSE(eq.markFill(99, 1)); // no such prefetch
}

TEST(Eq, NoPrefetchEntriesNotSearchable)
{
    EvaluationQueue eq(8);
    eq.insert(entry(0)); // no-prefetch action
    EXPECT_EQ(eq.search(0), nullptr);
}

// --------------------------------------------------------------------- agent

PythiaConfig
testAgentCfg()
{
    PythiaConfig cfg;
    cfg.alpha = 0.3;
    cfg.epsilon = 0.0; // deterministic for tests
    cfg.eq_size = 16;
    return cfg;
}

sim::PrefetchAccess
demand(Addr block, Addr pc = 0x42, Cycle cycle = 0)
{
    sim::PrefetchAccess a;
    a.pc = pc;
    a.block = block;
    a.address = block << kBlockShift;
    a.cycle = cycle;
    return a;
}

TEST(Agent, EmitsAtMostOnePrefetchPerDemand)
{
    PythiaPrefetcher agent(testAgentCfg());
    std::vector<sim::PrefetchRequest> out;
    for (int i = 0; i < 100; ++i) {
        out.clear();
        agent.train(demand(kBase + i, 0x42, i * 10), out);
        EXPECT_LE(out.size(), 1u);
    }
}

TEST(Agent, PrefetchTargetsStayInPage)
{
    PythiaConfig cfg = testAgentCfg();
    cfg.epsilon = 0.5; // heavy random exploration: exercise all actions
    PythiaPrefetcher agent(cfg);
    std::vector<sim::PrefetchRequest> out;
    for (int i = 0; i < 3000; ++i) {
        out.clear();
        agent.train(demand(kBase + (i % 64), 0x42, i * 10), out);
        for (const auto& pr : out)
            EXPECT_EQ(pageIdOfBlock(pr.block),
                      pageIdOfBlock(kBase + (i % 64)));
    }
}

TEST(Agent, OutOfPageActionsGetRclWithoutPrefetch)
{
    PythiaConfig cfg = testAgentCfg();
    cfg.actions = {63}; // always out of page except at offset 0
    PythiaPrefetcher agent(cfg);
    std::vector<sim::PrefetchRequest> out;
    for (int i = 1; i < 50; ++i) {
        out.clear();
        agent.train(demand(kBase + i, 0x42, i * 10), out);
        EXPECT_TRUE(out.empty());
    }
    EXPECT_GE(agent.agentStats().counter("action_out_of_page"), 49u);
}

TEST(Agent, NoPrefetchActionRecorded)
{
    PythiaConfig cfg = testAgentCfg();
    cfg.actions = {0};
    PythiaPrefetcher agent(cfg);
    std::vector<sim::PrefetchRequest> out;
    for (int i = 0; i < 20; ++i)
        agent.train(demand(kBase + i), out);
    EXPECT_EQ(agent.agentStats().counter("action_no_prefetch"), 20u);
    EXPECT_TRUE(out.empty());
}

TEST(Agent, AccurateTimelyRewardOnFilledHit)
{
    PythiaConfig cfg = testAgentCfg();
    cfg.actions = {1};
    PythiaPrefetcher agent(cfg);
    std::vector<sim::PrefetchRequest> out;
    agent.train(demand(kBase, 0x42, 100), out);
    ASSERT_EQ(out.size(), 1u);
    agent.onFill(out[0].block, 150); // fill completes at 150
    out.clear();
    agent.train(demand(kBase + 1, 0x42, 500), out); // demand after fill
    EXPECT_EQ(agent.agentStats().counter("reward_accurate_timely"), 1u);
}

TEST(Agent, AccurateLateRewardBeforeFill)
{
    PythiaConfig cfg = testAgentCfg();
    cfg.actions = {1};
    PythiaPrefetcher agent(cfg);
    std::vector<sim::PrefetchRequest> out;
    agent.train(demand(kBase, 0x42, 100), out);
    ASSERT_EQ(out.size(), 1u);
    agent.onFill(out[0].block, 900); // fill far in the future
    out.clear();
    agent.train(demand(kBase + 1, 0x42, 200), out); // demand before fill
    EXPECT_EQ(agent.agentStats().counter("reward_accurate_late"), 1u);
}

TEST(Agent, UnmatchedPrefetchesBecomeInaccurateOnEviction)
{
    PythiaConfig cfg = testAgentCfg();
    cfg.actions = {5};
    cfg.eq_size = 4;
    PythiaPrefetcher agent(cfg);
    std::vector<sim::PrefetchRequest> out;
    // Stride-64 demands: +5 prefetch targets are never demanded.
    for (int i = 0; i < 20; ++i) {
        out.clear();
        agent.train(demand(kBase + 64ull * i, 0x42, i * 10), out);
    }
    EXPECT_GT(agent.agentStats().counter("reward_inaccurate"), 10u);
}

TEST(Agent, LearnsToStopPrefetchingOnRandomPattern)
{
    // Random demands: every prefetch is inaccurate, so the agent should
    // increasingly pick the no-prefetch action (R_NP > R_IN).
    PythiaConfig cfg = testAgentCfg();
    cfg.epsilon = 0.05;
    cfg.alpha = 0.3;
    PythiaPrefetcher agent(cfg);
    Rng rng(4);
    std::vector<sim::PrefetchRequest> out;
    std::uint64_t issued_late = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        out.clear();
        agent.train(
            demand(kBase + rng.nextBounded(1u << 24), 0x42, i * 10), out);
        if (i > n - 5000)
            issued_late += out.size();
    }
    // In the last 5000 demands nearly everything should be no-prefetch.
    EXPECT_LT(issued_late, 1500u);
}

TEST(Agent, LearnsConstantOffsetPattern)
{
    // Demands advance by +2 within pages; +1 and +3 exist in the action
    // list but +2 does not... use a custom list including +2 to verify
    // the agent finds the covering offset.
    PythiaConfig cfg = testAgentCfg();
    cfg.actions = {0, 1, 2, 3};
    cfg.epsilon = 0.05;
    cfg.alpha = 0.3;
    PythiaPrefetcher agent(cfg);
    Rng rng(4);
    std::vector<sim::PrefetchRequest> out;
    Addr page = 0;
    std::uint64_t covered = 0, total = 0;
    Addr prev_target = 0;
    Cycle t = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr block = kBase + page * 64 + (i % 32) * 2;
        if (i % 32 == 31)
            ++page;
        out.clear();
        agent.train(demand(block, 0x42, t), out);
        if (!out.empty()) {
            agent.onFill(out[0].block, t + 50);
            prev_target = out[0].block;
        }
        if (i > 15000) {
            ++total;
            covered += (prev_target == block + 2);
        }
        t += 100;
    }
    EXPECT_GT(static_cast<double>(covered) / total, 0.6);
}

TEST(Agent, RewardCustomizationViaConfigRegisters)
{
    PythiaPrefetcher agent(testAgentCfg());
    RewardConfig strict;
    strict.r_in_high = -22;
    agent.setRewards(strict);
    EXPECT_DOUBLE_EQ(agent.config().rewards.r_in_high, -22.0);
}

TEST(Agent, ActionIndexLookup)
{
    PythiaPrefetcher agent(testAgentCfg());
    EXPECT_EQ(agent.actionIndexOf(0), 3u); // basic list position of 0
    EXPECT_EQ(agent.actionIndexOf(23), 13u);
    EXPECT_EQ(agent.actionIndexOf(99), static_cast<std::size_t>(-1));
}

// ------------------------------------------------------------------- configs

TEST(Configs, BasicMatchesTable2)
{
    const PythiaConfig cfg = basicPythiaConfig();
    EXPECT_EQ(cfg.actions.size(), 16u);
    EXPECT_DOUBLE_EQ(cfg.alpha, 0.0065);
    EXPECT_DOUBLE_EQ(cfg.gamma, 0.556);
    EXPECT_DOUBLE_EQ(cfg.epsilon, 0.002);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_at, 20.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_al, 12.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_cl, -12.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_in_high, -14.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_in_low, -8.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_np_high, -2.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_np_low, -4.0);
}

TEST(Configs, StrictTightensInaccuracyPenalty)
{
    const PythiaConfig cfg = strictPythiaConfig();
    EXPECT_DOUBLE_EQ(cfg.rewards.r_in_high, -22.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_in_low, -20.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_np_high, 0.0);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_np_low, 0.0);
}

TEST(Configs, BandwidthObliviousErasesDistinction)
{
    const PythiaConfig cfg = bandwidthObliviousConfig();
    EXPECT_DOUBLE_EQ(cfg.rewards.r_in_high, cfg.rewards.r_in_low);
    EXPECT_DOUBLE_EQ(cfg.rewards.r_np_high, cfg.rewards.r_np_low);
}

TEST(Configs, WithFeaturesRenames)
{
    const auto cfg = withFeatures(
        basicPythiaConfig(),
        {FeatureSpec{ControlKind::Pc, DataKind::PageOffset}});
    EXPECT_EQ(cfg.features.size(), 1u);
    EXPECT_NE(cfg.name.find("PC+Offset"), std::string::npos);
}

// ------------------------------------------------------------- storage model

TEST(Storage, Table4Reproduces)
{
    const StorageBreakdown s = computeStorage(basicPythiaConfig());
    EXPECT_EQ(s.qvstore_bytes, 24u * 1024); // 24 KB
    EXPECT_EQ(s.eq_bytes, 1536u);           // 1.5 KB
    EXPECT_EQ(s.total_bytes, 26112u);       // 25.5 KB
    EXPECT_EQ(s.eq_entry_bits, 48u);
}

TEST(Storage, ScalesWithVaults)
{
    PythiaConfig cfg = basicPythiaConfig();
    cfg.features.push_back(
        FeatureSpec{ControlKind::Pc, DataKind::PageOffset});
    const StorageBreakdown s = computeStorage(cfg);
    EXPECT_EQ(s.qvstore_bytes, 36u * 1024); // 3 vaults
}

TEST(Storage, OverheadMatchesTable8Anchor)
{
    const auto s = computeStorage(basicPythiaConfig());
    const auto e = estimateOverhead(s);
    EXPECT_NEAR(e.area_mm2, 0.33, 0.01);
    EXPECT_NEAR(e.power_mw, 55.11, 0.5);
    std::size_t n = 0;
    const ReferenceProcessor* refs = referenceProcessors(&n);
    ASSERT_EQ(n, 3u);
    // 4-core desktop: ~1.03% area, ~0.37% power (Table 8 row 1).
    EXPECT_NEAR(e.area_overhead(refs[0].die_area_mm2) * refs[0].cores,
                0.0103, 0.0005);
    EXPECT_NEAR(e.power_overhead(refs[0].tdp_w) * refs[0].cores, 0.0037,
                0.0005);
}

} // namespace
} // namespace pythia::rl
