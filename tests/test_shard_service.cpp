/**
 * @file
 * Adversarial tests of the sharded sweep service (DESIGN.md §11).
 *
 * The claims under test are the ones ISSUE 8 requires proven, not
 * asserted: workers=N subprocesses produce bit-identical outcomes to
 * the in-process runner; a worker SIGKILLed at any protocol point
 * (before its first job, on job receipt, after computing but before
 * sending) is respawned and the sweep still converges to the same
 * bits; a coordinator killed before or after the journal flush resumes
 * from the journal to byte-identical results; a truncated journal tail
 * is discarded with a warning and merely re-runs its job, while a
 * corrupted checksum or a foreign fingerprint fails loudly with a
 * typed error naming the offender; and random truncation/corruption at
 * arbitrary byte offsets never yields wrong results — only repaired
 * resumes or typed errors followed by a clean re-run.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "harness/session.hpp"
#include "harness/shard.hpp"

namespace pythia::harness {
namespace {

namespace fs = std::filesystem;

/** Set an environment variable for one scope, restoring on exit. */
class EnvGuard
{
  public:
    EnvGuard(std::string name, const std::string& value)
        : name_(std::move(name))
    {
        if (const char* old = std::getenv(name_.c_str()))
            old_ = old;
        ::setenv(name_.c_str(), value.c_str(), 1);
    }
    ~EnvGuard()
    {
        if (old_)
            ::setenv(name_.c_str(), old_->c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::optional<std::string> old_;
};

/** Fresh per-test scratch directory under the build tree. */
class ShardService : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::path("shard_test_scratch") /
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path(const std::string& leaf) const
    {
        return (dir_ / leaf).string();
    }
    fs::path dir_;
};

void
expectBitIdentical(const sim::RunResult& a, const sim::RunResult& b)
{
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.ipc_geomean, b.ipc_geomean);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llc_demand_load_misses, b.llc_demand_load_misses);
    EXPECT_EQ(a.llc_read_misses, b.llc_read_misses);
    EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
    EXPECT_EQ(a.prefetch_useful, b.prefetch_useful);
    EXPECT_EQ(a.prefetch_useless, b.prefetch_useless);
    EXPECT_EQ(a.prefetch_late, b.prefetch_late);
    EXPECT_EQ(a.dram_buckets, b.dram_buckets);
    EXPECT_EQ(a.dram_utilization, b.dram_utilization);
    EXPECT_EQ(a.core_cycles, b.core_cycles);
    EXPECT_EQ(a.dram_bucket_epochs, b.dram_bucket_epochs);
}

void
expectBitIdentical(const Runner::Outcome& a, const Runner::Outcome& b)
{
    expectBitIdentical(a.run, b.run);
    expectBitIdentical(a.baseline, b.baseline);
    EXPECT_EQ(a.metrics.speedup, b.metrics.speedup);
    EXPECT_EQ(a.metrics.coverage, b.metrics.coverage);
    EXPECT_EQ(a.metrics.overprediction, b.metrics.overprediction);
    EXPECT_EQ(a.metrics.accuracy, b.metrics.accuracy);
}

void
expectBitIdentical(const std::vector<Runner::Outcome>& a,
                   const std::vector<Runner::Outcome>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectBitIdentical(a[i], b[i]);
    }
}

/** The test grid: two workloads x three prefetchers, small windows.
 *  Six spec jobs is enough to exercise dispatch, stealing and resume
 *  while keeping every adversarial scenario re-runnable in seconds. */
Sweep
testSweep()
{
    Sweep sweep;
    for (const char* w : {"470.lbm-164B", "462.libquantum-1343B"})
        for (const char* pf : {"none", "stride", "pythia"})
            sweep.add(Experiment(w).l2(pf).warmup(2'000).measure(5'000));
    return sweep;
}

/** The uninterrupted single-thread reference every scenario must hit. */
const std::vector<Runner::Outcome>&
reference()
{
    static const std::vector<Runner::Outcome> ref = [] {
        Runner runner;
        Sweep sweep = testSweep();
        return ParallelRunner(1).reportTo(nullptr).run(runner, sweep);
    }();
    return ref;
}

std::vector<Runner::Outcome>
runSharded(ShardOptions opt, Sweep sweep, ShardReport* report = nullptr)
{
    Runner runner;
    ShardCoordinator coordinator(std::move(opt));
    auto outcomes = coordinator.run(runner, sweep);
    if (report)
        *report = coordinator.lastReport();
    return outcomes;
}

// ------------------------------------------------------- wire codec

TEST_F(ShardService, WireSpecRoundTripsEveryField)
{
    ExperimentSpec spec;
    spec.workload = "462.libquantum-1343B";
    spec.mix = {"429.mcf-184B", "Ligra-BFS"};
    spec.prefetcher = "pythia_custom";
    spec.l1_prefetcher = "stride";
    spec.num_cores = 4;
    spec.mtps = 300;
    spec.llc_bytes_per_core = 1ull << 20;
    spec.warmup_instrs = 12'345;
    spec.sim_instrs = 67'890;
    spec.workload_seed = 0xABCDEF;
    rl::PythiaConfig cfg;
    cfg.name = "custom";
    cfg.features = rl::allFeatureSpecs();
    cfg.actions = {-8, 0, 3, 42};
    cfg.rewards.r_at = 21.5;
    cfg.rewards.r_np_low = -3.25;
    cfg.alpha = 0.011;
    cfg.gamma = 0.5;
    cfg.epsilon = 0.0033;
    cfg.eq_size = 512;
    cfg.degree = 2;
    cfg.planes = 2;
    cfg.plane_index_bits = 9;
    cfg.seed = 77;
    spec.pythia_cfg = cfg;

    snap::Writer w;
    writeSpec(w, spec);
    snap::Reader r(w.buffer().data(), w.size());
    const ExperimentSpec back = readSpec(r);
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(back.workload, spec.workload);
    EXPECT_EQ(back.mix, spec.mix);
    EXPECT_EQ(back.prefetcher, spec.prefetcher);
    EXPECT_EQ(back.l1_prefetcher, spec.l1_prefetcher);
    EXPECT_EQ(back.num_cores, spec.num_cores);
    EXPECT_EQ(back.mtps, spec.mtps);
    EXPECT_EQ(back.llc_bytes_per_core, spec.llc_bytes_per_core);
    EXPECT_EQ(back.warmup_instrs, spec.warmup_instrs);
    EXPECT_EQ(back.sim_instrs, spec.sim_instrs);
    EXPECT_EQ(back.workload_seed, spec.workload_seed);
    ASSERT_TRUE(back.pythia_cfg.has_value());
    EXPECT_EQ(back.pythia_cfg->name, cfg.name);
    EXPECT_EQ(back.pythia_cfg->features, cfg.features);
    EXPECT_EQ(back.pythia_cfg->actions, cfg.actions);
    EXPECT_EQ(back.pythia_cfg->rewards.r_at, cfg.rewards.r_at);
    EXPECT_EQ(back.pythia_cfg->rewards.r_np_low, cfg.rewards.r_np_low);
    EXPECT_EQ(back.pythia_cfg->alpha, cfg.alpha);
    EXPECT_EQ(back.pythia_cfg->gamma, cfg.gamma);
    EXPECT_EQ(back.pythia_cfg->epsilon, cfg.epsilon);
    EXPECT_EQ(back.pythia_cfg->eq_size, cfg.eq_size);
    EXPECT_EQ(back.pythia_cfg->degree, cfg.degree);
    EXPECT_EQ(back.pythia_cfg->planes, cfg.planes);
    EXPECT_EQ(back.pythia_cfg->plane_index_bits, cfg.plane_index_bits);
    EXPECT_EQ(back.pythia_cfg->seed, cfg.seed);

    // The same spec fingerprints identically through the snapshot path,
    // which is what binds the journal to the grid that wrote it.
    EXPECT_EQ(fingerprintFor(spec), fingerprintFor(back));
}

TEST_F(ShardService, WireOutcomeRoundTripsBitExactly)
{
    const auto& ref = reference();
    for (const auto& outcome : ref) {
        snap::Writer w;
        writeOutcome(w, outcome);
        snap::Reader r(w.buffer().data(), w.size());
        const Runner::Outcome back = readOutcome(r);
        EXPECT_TRUE(r.atEnd());
        expectBitIdentical(back, outcome);
    }
}

TEST_F(ShardService, SweepFingerprintBindsTheGrid)
{
    Sweep a = testSweep();
    Sweep b = testSweep();
    EXPECT_EQ(sweepFingerprint(a), sweepFingerprint(b));

    // Any grid change — an extra job, a different spec — re-keys it.
    Sweep c = testSweep();
    c.add(Experiment("429.mcf-184B").warmup(2'000).measure(5'000));
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(c));
    Sweep d;
    for (const char* w : {"470.lbm-164B", "462.libquantum-1343B"})
        for (const char* pf : {"none", "stride", "spp"}) // spp != pythia
            d.add(Experiment(w).l2(pf).warmup(2'000).measure(5'000));
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(d));

    // Task jobs are marked as such (they are never journaled).
    Sweep e;
    e.addTask([](Runner&) { return Runner::Outcome{}; });
    EXPECT_NE(sweepFingerprint(e).find("job0=task"), std::string::npos);
}

// ---------------------------------------------- determinism across N

TEST_F(ShardService, WorkersMatchInlineBitIdentical)
{
    ShardOptions opt;
    opt.workers = 3;
    ShardReport report;
    const auto sharded = runSharded(opt, testSweep(), &report);
    expectBitIdentical(sharded, reference());
    EXPECT_EQ(report.sweep.experiments, reference().size());
    EXPECT_EQ(report.sweep.jobs, 3u);
    EXPECT_EQ(report.resumed_jobs, 0u);
}

TEST_F(ShardService, CallbacksReplayInDeclarationOrder)
{
    Sweep sweep;
    std::vector<int> order;
    int i = 0;
    for (const char* pf : {"none", "stride", "pythia"}) {
        sweep.add(
            Experiment("470.lbm-164B").l2(pf).warmup(2'000).measure(
                5'000),
            [&order, i](const Runner::Outcome&) {
                order.push_back(2 * i);
            });
        sweep.then([&order, i] { order.push_back(2 * i + 1); });
        ++i;
    }
    ShardOptions opt;
    opt.workers = 3;
    runSharded(opt, std::move(sweep));
    ASSERT_EQ(order.size(), 6u);
    for (int k = 0; k < 6; ++k)
        EXPECT_EQ(order[k], k);
}

TEST_F(ShardService, TaskJobsRunInCoordinatorProcess)
{
    // Closures cannot cross the process boundary; the coordinator must
    // run them locally — observable side effect included — while spec
    // jobs still go to the workers.
    Sweep sweep;
    const pid_t my_pid = ::getpid();
    pid_t task_pid = -1;
    sweep.add(
        Experiment("470.lbm-164B").l2("stride").warmup(2'000).measure(
            5'000));
    sweep.addTask([&task_pid](Runner& r) {
        task_pid = ::getpid();
        return r.evaluate(Experiment("470.lbm-164B")
                              .l2("none")
                              .warmup(2'000)
                              .measure(5'000)
                              .build());
    });
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("tasks.journal");
    const auto outcomes = runSharded(opt, std::move(sweep));
    EXPECT_EQ(task_pid, my_pid);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_GT(outcomes[1].run.ipc_geomean, 0.0);

    // And the journal holds only the spec job: scanning it back finds
    // exactly one record.
    const JournalScan scan = scanJournal(opt.journal_path, "");
    EXPECT_EQ(scan.entries.size(), 1u);
    EXPECT_EQ(scan.entries[0].job, 0u);
    EXPECT_EQ(scan.discarded_tail_bytes, 0u);
}

// --------------------------------------------------- fault injection

/** Worker killed at each protocol point: before its first frame, on
 *  receiving the K-th job, and after computing but before sending the
 *  result. In every case the respawned fleet must converge to the
 *  reference bits. */
class ShardKillPoint
    : public ShardService,
      public ::testing::WithParamInterface<const char*>
{
};

TEST_P(ShardKillPoint, WorkerDeathIsRecoveredBitIdentically)
{
    EnvGuard kill_worker("PYTHIA_SHARD_KILL_WORKER", "0");
    EnvGuard kill_point("PYTHIA_SHARD_KILL_POINT", GetParam());
    EnvGuard kill_after("PYTHIA_SHARD_KILL_AFTER", "2");
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("kill.journal");
    ShardReport report;
    const auto outcomes = runSharded(opt, testSweep(), &report);
    expectBitIdentical(outcomes, reference());
    EXPECT_GE(report.worker_restarts, 1u);
}

INSTANTIATE_TEST_SUITE_P(KillPoints, ShardKillPoint,
                         ::testing::Values("start", "recv", "pre_send"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

TEST_F(ShardService, SlowWorkerIsStolenFrom)
{
    // Worker 0 sleeps 400ms per job; with 2 workers on 6 jobs the
    // pending queue drains while it crawls, so the idle worker must
    // steal its in-flight job instead of serializing the tail.
    EnvGuard slow_worker("PYTHIA_SHARD_SLOW_WORKER", "0");
    EnvGuard slow_ms("PYTHIA_SHARD_SLOW_MS", "400");
    ShardOptions opt;
    opt.workers = 2;
    ShardReport report;
    const auto outcomes = runSharded(opt, testSweep(), &report);
    expectBitIdentical(outcomes, reference());
    EXPECT_GE(report.stolen_jobs, 1u);
}

TEST_F(ShardService, StealingCanBeDisabled)
{
    EnvGuard slow_worker("PYTHIA_SHARD_SLOW_WORKER", "0");
    EnvGuard slow_ms("PYTHIA_SHARD_SLOW_MS", "100");
    ShardOptions opt;
    opt.workers = 2;
    opt.steal = false;
    ShardReport report;
    const auto outcomes = runSharded(opt, testSweep(), &report);
    expectBitIdentical(outcomes, reference());
    EXPECT_EQ(report.stolen_jobs, 0u);
}

TEST_F(ShardService, MissingWorkerBinaryIsATypedError)
{
    ShardOptions opt;
    opt.workers = 2;
    opt.worker_path = path("no-such-binary");
    Runner runner;
    ShardCoordinator coordinator(opt);
    Sweep sweep = testSweep();
    EXPECT_THROW(coordinator.run(runner, sweep), ShardError);
}

// ---------------------------------------------- coordinator crashes

/** Run the sharded sweep in a forked child with the crash hook armed;
 *  the child must die with exit code 137 at the injected instant. */
void
runCrashingChild(const ShardOptions& opt, const std::string& crash_spec)
{
    std::cout.flush();
    std::cerr.flush();
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1) << "fork failed";
    if (pid == 0) {
        ::setenv("PYTHIA_SHARD_TEST_CRASH", crash_spec.c_str(), 1);
        try {
            Runner runner;
            Sweep sweep = testSweep();
            ShardCoordinator coordinator(opt);
            coordinator.run(runner, sweep);
        } catch (...) {
        }
        ::_exit(86); // the crash hook should have fired first
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137)
        << "child was expected to die at the injected crash point";
}

/** Coordinator killed around the K-th journal flush; resuming from the
 *  journal must reproduce the reference bits, re-running only what the
 *  journal does not hold. */
class ShardCoordinatorCrash
    : public ShardService,
      public ::testing::WithParamInterface<const char*>
{
};

TEST_P(ShardCoordinatorCrash, ResumeAfterCrashIsBitIdentical)
{
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("crash.journal");
    runCrashingChild(opt, std::string(GetParam()) + ":3");
    ASSERT_TRUE(fs::exists(opt.journal_path));

    // The journal must already be scannable: a crash can leave at most
    // a torn tail, never a corrupt prefix.
    const JournalScan scan = scanJournal(opt.journal_path, "");
    const std::size_t flushed = scan.entries.size();
    EXPECT_LE(flushed, reference().size());

    ShardReport report;
    const auto outcomes = runSharded(opt, testSweep(), &report);
    expectBitIdentical(outcomes, reference());
    EXPECT_EQ(report.resumed_jobs, flushed);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, ShardCoordinatorCrash,
                         ::testing::Values("pre_flush", "post_flush"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

// ------------------------------------------------ journal robustness

TEST_F(ShardService, JournalResumeSkipsCompletedJobs)
{
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("resume.journal");
    const auto first = runSharded(opt, testSweep());
    expectBitIdentical(first, reference());

    // Second run: everything replays from the journal, no workers run.
    ShardReport report;
    const auto second = runSharded(opt, testSweep(), &report);
    expectBitIdentical(second, reference());
    EXPECT_EQ(report.resumed_jobs, reference().size());
    EXPECT_EQ(report.sweep.jobs, 0u);
}

TEST_F(ShardService, TruncatedTailIsDiscardedWithWarningAndRerun)
{
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("tail.journal");
    runSharded(opt, testSweep());

    // Chop 7 bytes off the last record: an interrupted append.
    const auto full = fs::file_size(opt.journal_path);
    fs::resize_file(opt.journal_path, full - 7);

    const JournalScan scan = scanJournal(opt.journal_path, "");
    EXPECT_EQ(scan.entries.size(), reference().size() - 1);
    EXPECT_GT(scan.discarded_tail_bytes, 0u);
    EXPECT_EQ(scan.valid_bytes + scan.discarded_tail_bytes, full - 7);

    // Resume: the scan warning names the journal, the lost job
    // re-runs, and the repaired journal is whole again.
    std::ostringstream warning;
    auto* old = std::cerr.rdbuf(warning.rdbuf());
    ShardReport report;
    const auto outcomes = runSharded(opt, testSweep(), &report);
    std::cerr.rdbuf(old);
    expectBitIdentical(outcomes, reference());
    EXPECT_EQ(report.resumed_jobs, reference().size() - 1);
    EXPECT_GT(report.discarded_tail_bytes, 0u);
    EXPECT_NE(warning.str().find("discarding"), std::string::npos);
    const JournalScan repaired = scanJournal(opt.journal_path, "");
    EXPECT_EQ(repaired.entries.size(), reference().size());
    EXPECT_EQ(repaired.discarded_tail_bytes, 0u);
}

TEST_F(ShardService, CorruptedChecksumNamesTheRecord)
{
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("corrupt.journal");
    runSharded(opt, testSweep());

    // Flip one byte in the middle of the record region (past the
    // header, clear of the final record's length prefix).
    std::fstream f(opt.journal_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    const auto size = fs::file_size(opt.journal_path);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
    f.close();

    try {
        scanJournal(opt.journal_path, "");
        FAIL() << "corrupted journal scanned cleanly";
    } catch (const JournalCorruptError& e) {
        EXPECT_NE(std::string(e.what()).find("record"),
                  std::string::npos)
            << e.what();
    }
    // The coordinator surfaces the same typed error instead of
    // silently re-running (silent loss of a journal is a bug magnet).
    Runner runner;
    ShardCoordinator coordinator(opt);
    Sweep sweep = testSweep();
    EXPECT_THROW(coordinator.run(runner, sweep), JournalCorruptError);
}

TEST_F(ShardService, ForeignFingerprintIsATypedErrorWithDiff)
{
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("foreign.journal");
    runSharded(opt, testSweep());

    // Same journal, different grid: must refuse with a field diff, not
    // resume the wrong results.
    Sweep other;
    for (const char* pf : {"none", "stride", "pythia"})
        other.add(Experiment("429.mcf-184B").l2(pf).warmup(2'000)
                      .measure(5'000));
    Runner runner;
    ShardCoordinator coordinator(opt);
    try {
        coordinator.run(runner, other);
        FAIL() << "foreign journal accepted";
    } catch (const JournalFingerprintError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("fingerprint"), std::string::npos) << what;
        // The message carries the field-by-field diff: the job count
        // and at least one per-job spec hash must be named.
        EXPECT_NE(what.find("jobs"), std::string::npos) << what;
        EXPECT_NE(what.find("job0"), std::string::npos) << what;
    }
}

TEST_F(ShardService, UnsupportedJournalVersionIsRejected)
{
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("version.journal");
    runSharded(opt, testSweep());

    // Bump the version field (bytes 8..11, little-endian u32) and
    // repair nothing else: scan must refuse with JournalError, and the
    // checksum guard must not mask it as corruption.
    std::fstream f(opt.journal_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const char v2[4] = {2, 0, 0, 0};
    f.write(v2, 4);
    f.close();
    EXPECT_THROW(scanJournal(opt.journal_path, ""), JournalError);
}

TEST_F(ShardService, RandomTruncationAlwaysResumesBitIdentically)
{
    // Property: truncating the journal at ANY byte offset leaves a
    // resumable file — some prefix of records survives, the torn tail
    // is discarded, and the resumed sweep reproduces the reference.
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("trunc.journal");
    runSharded(opt, testSweep());
    std::vector<std::uint8_t> pristine;
    {
        std::ifstream f(opt.journal_path, std::ios::binary);
        pristine.assign((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
    }
    std::mt19937 rng(20210615); // MICRO'21 — fixed seed, reproducible
    for (int round = 0; round < 8; ++round) {
        const std::size_t cut = rng() % pristine.size();
        SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                     std::to_string(pristine.size()) + " bytes");
        {
            std::ofstream f(opt.journal_path,
                            std::ios::binary | std::ios::trunc);
            f.write(reinterpret_cast<const char*>(pristine.data()),
                    static_cast<std::streamoff>(cut));
        }
        std::ostringstream sink; // swallow the tail-discard warnings
        auto* old = std::cerr.rdbuf(sink.rdbuf());
        std::vector<Runner::Outcome> outcomes;
        try {
            outcomes = runSharded(opt, testSweep());
        } catch (...) {
            std::cerr.rdbuf(old);
            throw;
        }
        std::cerr.rdbuf(old);
        expectBitIdentical(outcomes, reference());
    }
}

TEST_F(ShardService, RandomCorruptionNeverYieldsWrongResults)
{
    // Property: flipping a byte at ANY offset either (a) still resumes
    // to the reference bits (the flip landed in a torn-tail region or
    // was detected and the affected suffix discarded is impossible —
    // detection is loud), or (b) raises a typed JournalError, after
    // which deleting the journal and re-running reproduces the
    // reference. What must NEVER happen is a clean run with different
    // bits.
    ShardOptions opt;
    opt.workers = 2;
    opt.journal_path = path("flip.journal");
    runSharded(opt, testSweep());
    std::vector<std::uint8_t> pristine;
    {
        std::ifstream f(opt.journal_path, std::ios::binary);
        pristine.assign((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
    }
    std::mt19937 rng(1343); // libquantum's favorite trace point
    int typed_errors = 0;
    for (int round = 0; round < 10; ++round) {
        const std::size_t at = rng() % pristine.size();
        const auto flip =
            static_cast<std::uint8_t>(1u << (rng() % 8));
        SCOPED_TRACE("flipped bit at offset " + std::to_string(at));
        auto bytes = pristine;
        bytes[at] = static_cast<std::uint8_t>(bytes[at] ^ flip);
        {
            std::ofstream f(opt.journal_path,
                            std::ios::binary | std::ios::trunc);
            f.write(reinterpret_cast<const char*>(bytes.data()),
                    static_cast<std::streamoff>(bytes.size()));
        }
        std::ostringstream sink;
        auto* old = std::cerr.rdbuf(sink.rdbuf());
        std::vector<Runner::Outcome> outcomes;
        bool clean = false;
        try {
            outcomes = runSharded(opt, testSweep());
            clean = true;
        } catch (const JournalError&) {
            ++typed_errors;
            fs::remove(opt.journal_path);
            outcomes = runSharded(opt, testSweep());
        } catch (const snap::SnapshotError&) {
            // A flip inside the fingerprint string surfaces through
            // the snapshot taxonomy's diff path; equally acceptable.
            ++typed_errors;
            fs::remove(opt.journal_path);
            outcomes = runSharded(opt, testSweep());
        }
        std::cerr.rdbuf(old);
        (void)clean;
        expectBitIdentical(outcomes, reference());
    }
    // The checksums must actually be doing work: across 10 flips at
    // least one must have been caught loudly.
    EXPECT_GE(typed_errors, 1);
}

} // namespace
} // namespace pythia::harness
