/**
 * @file
 * Streaming-session suite (ctest label: property).
 *
 * Pins the contracts of the SimSession API (harness/session.hpp):
 *
 *  - Window algebra: composing the per-window deltas of ANY window
 *    partition reproduces the session's cumulative RunResult
 *    bit-exactly, for 1-core and 4-core machines, pythia and spp.
 *  - Batch equivalence: a session that spends its budget in one
 *    advance() — and, on a single core, in any window partition — is
 *    bit-identical to harness::simulate().
 *  - Observer lifecycle: onWarmupEnd once before the first window,
 *    onWindowEnd per advance(), onRunEnd exactly once at budget
 *    exhaustion.
 *  - Runner::evaluateWindowed: single-boundary streaming degenerates
 *    to evaluate() bit-exactly, and the windowed baseline series is
 *    cached once per (key, boundaries).
 *  - Zero-denominator conventions of RunResult::accuracy() and
 *    computeMetrics() (harness/metrics.hpp).
 *  - Strict-CLI did-you-mean coverage for the session/window bench
 *    flags (windows=, window_instrs=, series_out=).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "harness/experiment.hpp"
#include "harness/session.hpp"
#include "harness/timeseries.hpp"

namespace {

using namespace pythia;

harness::ExperimentSpec
specFor(const std::string& workload, const std::string& pf,
        std::uint32_t cores)
{
    return harness::Experiment(workload)
        .l2(pf)
        .cores(cores)
        .warmup(10'000)
        .measure(40'000)
        .build();
}

void
expectSameRunResult(const sim::RunResult& a, const sim::RunResult& b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t c = 0; c < a.ipc.size(); ++c)
        EXPECT_EQ(a.ipc[c], b.ipc[c]) << "core " << c;
    EXPECT_EQ(a.ipc_geomean, b.ipc_geomean);
    EXPECT_EQ(a.llc_demand_load_misses, b.llc_demand_load_misses);
    EXPECT_EQ(a.llc_read_misses, b.llc_read_misses);
    EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
    EXPECT_EQ(a.prefetch_useful, b.prefetch_useful);
    EXPECT_EQ(a.prefetch_useless, b.prefetch_useless);
    EXPECT_EQ(a.prefetch_late, b.prefetch_late);
    EXPECT_EQ(a.core_cycles, b.core_cycles);
    EXPECT_EQ(a.dram_bucket_epochs, b.dram_bucket_epochs);
    ASSERT_EQ(a.dram_buckets.size(), b.dram_buckets.size());
    for (std::size_t i = 0; i < a.dram_buckets.size(); ++i)
        EXPECT_EQ(a.dram_buckets[i], b.dram_buckets[i]) << "bucket " << i;
    EXPECT_EQ(a.dram_utilization, b.dram_utilization);
    EXPECT_EQ(a.accuracy(), b.accuracy());
}

/** Stream @p spec over uneven windows; return (deltas, cumulative). */
std::pair<std::vector<sim::RunResult>, sim::RunResult>
streamUneven(const harness::ExperimentSpec& spec)
{
    harness::SimSession session(spec);
    std::vector<sim::RunResult> deltas;
    // Deliberately uneven partition of the 40k budget, with a final
    // over-sized request that the session clamps.
    for (std::uint64_t step : {7'000ull, 13'000ull, 1'000ull, 50'000ull}) {
        if (session.advance(step) > 0)
            deltas.push_back(session.lastWindow().delta);
    }
    EXPECT_TRUE(session.done());
    return {deltas, session.cumulative()};
}

// ------------------------------------------------------- window algebra

class WindowAlgebra
    : public ::testing::TestWithParam<std::tuple<const char*, int>>
{
};

TEST_P(WindowAlgebra, ComposedDeltasEqualCumulativeBitExactly)
{
    const auto [pf, cores] = GetParam();
    const auto spec = specFor(
        cores == 1 ? "429.mcf-184B" : "Ligra-PageRank", pf,
        static_cast<std::uint32_t>(cores));
    const auto [deltas, cumulative] = streamUneven(spec);
    ASSERT_EQ(deltas.size(), 4u);
    expectSameRunResult(harness::composeDeltas(deltas), cumulative);

    // The counter fields also telescope window by window.
    std::uint64_t issued = 0;
    for (const auto& d : deltas)
        issued += d.prefetch_issued;
    EXPECT_EQ(issued, cumulative.prefetch_issued);
}

INSTANTIATE_TEST_SUITE_P(
    PrefetcherByCores, WindowAlgebra,
    ::testing::Combine(::testing::Values("pythia", "spp"),
                       ::testing::Values(1, 4)));

// ----------------------------------------------------- batch equivalence

TEST(SimSession, SingleAdvanceMatchesSimulateBitExactly)
{
    for (std::uint32_t cores : {1u, 4u}) {
        const auto spec = specFor("482.sphinx3-417B", "spp", cores);
        harness::SimSession session(spec);
        const sim::RunResult streamed = session.runToCompletion();
        expectSameRunResult(streamed, harness::simulate(spec));
    }
}

TEST(SimSession, SingleCoreAnyPartitionMatchesSimulateBitExactly)
{
    // Absolute window targets make single-core execution
    // window-invariant: the machine passes through the same states
    // whatever the observation boundaries (DESIGN.md §8).
    const auto spec = specFor("459.GemsFDTD-765B", "pythia", 1);
    const auto [deltas, cumulative] = streamUneven(spec);
    (void)deltas;
    expectSameRunResult(cumulative, harness::simulate(spec));
}

// ---------------------------------------------------- observer lifecycle

struct RecordingObserver final : harness::SessionObserver
{
    std::vector<std::string> events;
    std::vector<harness::WindowSample> samples;

    void onWarmupEnd(harness::SimSession&) override
    {
        events.push_back("warmup");
    }
    void onWindowEnd(harness::SimSession& session,
                     const harness::WindowSample& w) override
    {
        events.push_back("window");
        samples.push_back(w);
        EXPECT_EQ(session.windowsCompleted(), w.index + 1);
    }
    void onRunEnd(harness::SimSession&,
                  const sim::RunResult& final_result) override
    {
        events.push_back("end");
        EXPECT_EQ(final_result.instructions, 30'000u);
    }
};

TEST(SimSession, ObserverLifecycle)
{
    auto observer = std::make_shared<RecordingObserver>();
    harness::SimSession session =
        harness::Experiment("462.libquantum-1343B")
            .l2("stride")
            .warmup(5'000)
            .measure(30'000)
            .observe(observer)
            .openSession();

    EXPECT_FALSE(session.warmupDone());
    EXPECT_EQ(session.advance(10'000), 10'000u);
    EXPECT_TRUE(session.warmupDone());
    EXPECT_EQ(session.advance(50'000), 20'000u); // clamped to budget
    EXPECT_TRUE(session.done());
    EXPECT_EQ(session.advance(1'000), 0u);  // done: no-op, no hooks
    session.runToCompletion();              // idempotent, no double end

    ASSERT_EQ(observer->events,
              (std::vector<std::string>{"warmup", "window", "window",
                                        "end"}));
    ASSERT_EQ(observer->samples.size(), 2u);
    EXPECT_EQ(observer->samples[0].instrs_begin, 0u);
    EXPECT_EQ(observer->samples[0].instrs_end, 10'000u);
    EXPECT_EQ(observer->samples[1].instrs_begin, 10'000u);
    EXPECT_EQ(observer->samples[1].instrs_end, 30'000u);
    expectSameRunResult(observer->samples.back().cumulative,
                        session.cumulative());

    const auto snap = session.snapshot();
    EXPECT_EQ(snap.windows, 2u);
    expectSameRunResult(snap.cumulative, session.cumulative());
    expectSameRunResult(snap.last_window.delta,
                        session.lastWindow().delta);
}

TEST(SimSession, LastWindowThrowsBeforeFirstAdvance)
{
    harness::SimSession session(specFor("429.mcf-184B", "none", 1));
    EXPECT_THROW(session.lastWindow(), std::logic_error);
}

// --------------------------------------------------- windowed evaluation

TEST(EvaluateWindowed, SingleBoundaryDegeneratesToEvaluate)
{
    const auto spec = specFor("Ligra-CC", "spp", 1);
    harness::Runner runner;
    const auto batch = runner.evaluate(spec);
    const auto windowed =
        runner.evaluateWindowed(spec, {spec.sim_instrs});
    ASSERT_EQ(windowed.run.size(), 1u);
    expectSameRunResult(windowed.final.run, batch.run);
    expectSameRunResult(windowed.final.baseline, batch.baseline);
    EXPECT_EQ(windowed.final.metrics.speedup, batch.metrics.speedup);
    EXPECT_EQ(windowed.final.metrics.coverage, batch.metrics.coverage);
    EXPECT_EQ(windowed.final.metrics.overprediction,
              batch.metrics.overprediction);
    EXPECT_EQ(windowed.final.metrics.accuracy, batch.metrics.accuracy);
}

TEST(EvaluateWindowed, BaselineSeriesCachedOncePerBoundaries)
{
    const auto spec = specFor("Ligra-CC", "spp", 1);
    harness::Runner runner;
    const std::vector<std::uint64_t> ends = {20'000, spec.sim_instrs};
    runner.evaluateWindowed(spec, ends);
    EXPECT_EQ(runner.windowedBaselinesComputed(), 1u);
    auto spec2 = spec;
    spec2.prefetcher = "stride";
    runner.evaluateWindowed(spec2, ends);
    EXPECT_EQ(runner.windowedBaselinesComputed(), 1u); // same key+ends
    runner.evaluateWindowed(spec, {spec.sim_instrs});
    EXPECT_EQ(runner.windowedBaselinesComputed(), 2u); // new boundaries
}

TEST(EvaluateWindowed, RejectsBadBoundaries)
{
    const auto spec = specFor("Ligra-CC", "spp", 1);
    harness::Runner runner;
    EXPECT_THROW(runner.evaluateWindowed(spec, {}),
                 std::invalid_argument);
    EXPECT_THROW(runner.evaluateWindowed(spec, {10'000, 10'000,
                                                spec.sim_instrs}),
                 std::invalid_argument);
    EXPECT_THROW(runner.evaluateWindowed(spec, {spec.sim_instrs / 2}),
                 std::invalid_argument);
}

TEST(EvaluateWindowed, PerWindowMetricTrajectory)
{
    const auto spec = specFor("462.libquantum-1343B", "spp", 1);
    harness::Runner runner;
    const auto out =
        runner.evaluateWindowed(spec, {10'000, 25'000, spec.sim_instrs});
    const auto trajectory =
        harness::computeWindowedMetrics(out.run, out.baseline);
    ASSERT_EQ(trajectory.size(), 3u);
    // The last-window metric is a genuine delta-vs-delta reading, not
    // the cumulative one.
    const harness::Metrics last =
        harness::computeMetrics(out.run[2], out.baseline[2]);
    EXPECT_EQ(trajectory[2].speedup, last.speedup);
}

TEST(TimeSeries, ComposeRangeAlignsOrThrows)
{
    const auto spec = specFor("429.mcf-184B", "stride", 1);
    harness::Runner runner;
    const auto out =
        runner.evaluateWindowed(spec, {10'000, 25'000, spec.sim_instrs});
    expectSameRunResult(out.run.composeRange(0, spec.sim_instrs),
                        out.run.finalResult());
    const auto tail = out.run.composeRange(10'000, spec.sim_instrs);
    EXPECT_EQ(tail.instructions, spec.sim_instrs - 10'000);
    EXPECT_THROW(out.run.composeRange(5'000, spec.sim_instrs),
                 std::invalid_argument);
    EXPECT_THROW(out.run.composeRange(10'000, 26'000),
                 std::invalid_argument);
    EXPECT_THROW(out.run.composeRange(10'000, 10'000),
                 std::invalid_argument);
    EXPECT_THROW(out.run.composeRange(0, spec.sim_instrs + 1),
                 std::invalid_argument);
}

TEST(TimeSeries, CsvAndJsonEmission)
{
    const auto spec = specFor("429.mcf-184B", "spp", 1);
    harness::Runner runner;
    const auto out =
        runner.evaluateWindowed(spec, {20'000, spec.sim_instrs});
    std::ostringstream csv;
    out.run.writeCsv(csv);
    const std::string text = csv.str();
    // Header + one row per window.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
    EXPECT_NE(text.find("ipc_geomean"), std::string::npos);
    std::ostringstream json;
    out.run.writeJson(json);
    EXPECT_NE(json.str().find("\"schema\": \"pythia-timeseries-v1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"instrs_end\": 40000"),
              std::string::npos);
}

namespace {

/** The raw text of `"key": <number>` inside @p obj, or "" if absent. */
std::string
jsonNumber(const std::string& obj, const std::string& key)
{
    const std::string needle = "\"" + key + "\": ";
    const std::size_t at = obj.find(needle);
    if (at == std::string::npos)
        return "";
    const std::size_t begin = at + needle.size();
    const std::size_t end = obj.find_first_of(",}", begin);
    return obj.substr(begin, end - begin);
}

/** Split one csvRow() line into its comma-separated fields. */
std::vector<std::string>
csvFields(const std::string& row)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= row.size(); ++i) {
        if (i < row.size() && row[i] != ',')
            continue;
        out.push_back(row.substr(start, i - start));
        start = i + 1;
    }
    return out;
}

/** Reformat a parsed JSON double the way csvRow() prints it. */
std::string
asCsvDouble(const std::string& json_value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g",
                  std::strtod(json_value.c_str(), nullptr));
    return buf;
}

} // namespace

TEST(TimeSeries, JsonRoundTripMatchesCsvNumbers)
{
    // Parse the JSON we emit and check every field against both the
    // in-memory samples and the CSV emission: the two serializations
    // must describe the same numbers (JSON carries %.9g, CSV %.6g, so
    // doubles are compared after reformatting at CSV precision).
    const auto spec = specFor("429.mcf-184B", "pythia", 1);
    harness::Runner runner;
    const auto out = runner.evaluateWindowed(
        spec, {10'000, 20'000, 30'000, spec.sim_instrs});
    const auto& samples = out.run.samples();
    ASSERT_GE(samples.size(), 3u);

    std::ostringstream json;
    out.run.writeJson(json);
    const std::string text = json.str();

    // Slice the windows array into one object string per sample.
    std::vector<std::string> objects;
    std::size_t cursor = text.find('[');
    ASSERT_NE(cursor, std::string::npos);
    for (;;) {
        const std::size_t open = text.find('{', cursor);
        if (open == std::string::npos)
            break;
        const std::size_t close = text.find('}', open);
        ASSERT_NE(close, std::string::npos);
        objects.push_back(text.substr(open, close - open + 1));
        cursor = close + 1;
    }
    // Slicing starts after '[', so the outer schema object is skipped.
    ASSERT_EQ(objects.size(), samples.size());

    for (std::size_t i = 0; i < samples.size(); ++i) {
        SCOPED_TRACE("window " + std::to_string(i));
        const std::string& obj = objects[i];
        const auto fields =
            csvFields(harness::TimeSeries::csvRow(samples[i]));
        ASSERT_EQ(fields.size(), 14u);

        // Integers must round-trip exactly and agree with the sample.
        EXPECT_EQ(jsonNumber(obj, "window"), std::to_string(i));
        EXPECT_EQ(jsonNumber(obj, "instrs_begin"),
                  std::to_string(samples[i].instrs_begin));
        EXPECT_EQ(jsonNumber(obj, "instrs_end"),
                  std::to_string(samples[i].instrs_end));
        EXPECT_EQ(jsonNumber(obj, "llc_demand_load_misses"), fields[5]);
        EXPECT_EQ(jsonNumber(obj, "llc_read_misses"), fields[6]);
        EXPECT_EQ(jsonNumber(obj, "prefetch_issued"), fields[7]);
        EXPECT_EQ(jsonNumber(obj, "prefetch_useful"), fields[8]);
        EXPECT_EQ(jsonNumber(obj, "prefetch_useless"), fields[9]);
        EXPECT_EQ(jsonNumber(obj, "prefetch_late"), fields[10]);

        // Doubles: JSON carries more digits than CSV; reformatted at
        // CSV precision they must match the CSV text byte for byte.
        EXPECT_EQ(asCsvDouble(jsonNumber(obj, "ipc_geomean")),
                  fields[3]);
        EXPECT_EQ(asCsvDouble(jsonNumber(obj, "cum_ipc_geomean")),
                  fields[4]);
        EXPECT_EQ(asCsvDouble(jsonNumber(obj, "accuracy")), fields[11]);
        EXPECT_EQ(asCsvDouble(jsonNumber(obj, "cum_accuracy")),
                  fields[12]);
        EXPECT_EQ(asCsvDouble(jsonNumber(obj, "dram_utilization")),
                  fields[13]);

        // And the JSON text itself is exactly what %.9g produces from
        // the in-memory doubles — no second formatting path.
        char nine[64];
        std::snprintf(nine, sizeof nine, "%.9g",
                      samples[i].delta.ipc_geomean);
        EXPECT_EQ(jsonNumber(obj, "ipc_geomean"), nine);
        std::snprintf(nine, sizeof nine, "%.9g",
                      samples[i].delta.accuracy());
        EXPECT_EQ(jsonNumber(obj, "accuracy"), nine);
    }
}

// ------------------------------------------- zero-denominator contracts

TEST(ZeroDenominators, AccuracyIsOneWhenNothingIssued)
{
    sim::RunResult r;
    EXPECT_EQ(r.accuracy(), 1.0);
    r.prefetch_issued = 10;
    r.prefetch_useful = 15; // warmup-issued turned useful in-window
    EXPECT_EQ(r.accuracy(), 1.0); // clamped from above
    r.prefetch_useful = 5;
    EXPECT_EQ(r.accuracy(), 0.5);
}

TEST(ZeroDenominators, MetricsDegenerateBaselines)
{
    const sim::RunResult empty;
    const harness::Metrics m = harness::computeMetrics(empty, empty);
    EXPECT_EQ(m.speedup, 1.0);        // 0-IPC baseline: neutral
    EXPECT_EQ(m.coverage, 0.0);       // nothing to cover
    EXPECT_EQ(m.overprediction, 0.0); // no baseline reads
    EXPECT_EQ(m.accuracy, 1.0);       // nothing issued

    // Prefetching that REDUCES total reads reports overprediction 0,
    // not a negative value (the win shows up as coverage).
    sim::RunResult base;
    base.llc_demand_load_misses = 100;
    base.llc_read_misses = 100;
    base.ipc_geomean = 1.0;
    sim::RunResult better = base;
    better.llc_demand_load_misses = 40;
    better.llc_read_misses = 60;
    better.ipc_geomean = 1.5;
    const harness::Metrics w = harness::computeMetrics(better, base);
    EXPECT_EQ(w.overprediction, 0.0);
    EXPECT_DOUBLE_EQ(w.coverage, 0.6);
    EXPECT_DOUBLE_EQ(w.speedup, 1.5);
}

// ------------------------------------------------ session CLI coverage

TEST(SessionFlags, StrictParserSuggestsSessionKeys)
{
    const std::vector<std::string> allowed = {
        "sim_scale", "jobs", "quiet", "perf_out",
        "windows",   "window_instrs", "series_out"};
    const auto expectSuggestion = [&](const char* typo,
                                      const std::string& want) {
        Config cli;
        const char* argv[] = {"bench", typo};
        try {
            cli.parseArgsStrict(2, argv, allowed);
            FAIL() << typo << " was accepted";
        } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("did you mean '" +
                                                 want + "'"),
                      std::string::npos)
                << "message: " << e.what();
        }
    };
    expectSuggestion("windws=4", "windows");
    expectSuggestion("window_instr=1000", "window_instrs");
    expectSuggestion("serie_out=x.csv", "series_out");
}

} // namespace
