/**
 * @file
 * Tests of the prefetch-as-a-service layer (DESIGN.md §12): the
 * pythia-serve-v1 wire codec, the StreamWorkload contract, and the
 * ServeServer/ServeClient pair over real sockets.
 *
 * The load-bearing claim is the serving determinism rule: the kWindow
 * stream a tenant receives is bit-identical to running the same spec
 * offline through SimSession with the same window size — for every
 * suite workload × {pythia, spp, stride}, under concurrent tenants,
 * under both backpressure caps, and across evict/restore cycles
 * (explicit detach, abrupt disconnect, daemon restart, idle timeout,
 * SIGTERM drain). The adversarial half covers malformed frames,
 * oversized frames, busy tenants, rejected specs and resume-state
 * mismatches: every failure is a typed kError, never a wrong result.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "harness/runner.hpp"
#include "harness/session.hpp"
#include "harness/timeseries.hpp"
#include "service/client.hpp"
#include "service/event_loop.hpp"
#include "service/server.hpp"
#include "service/stream_workload.hpp"
#include "service/warm_pool.hpp"
#include "service/wire.hpp"
#include "snapshot/codec.hpp"
#include "workloads/suites.hpp"
#include "workloads/trace.hpp"

namespace pythia::service {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// --------------------------------------------------------------- helpers

harness::ExperimentSpec
makeSpec(const std::string& workload, const std::string& prefetcher,
         std::uint64_t warmup = 2000, std::uint64_t sim = 6000)
{
    harness::ExperimentSpec spec;
    spec.workload = workload;
    spec.prefetcher = prefetcher;
    spec.warmup_instrs = warmup;
    spec.sim_instrs = sim;
    return spec;
}

/** The records the offline run would consume — same seeded generator. */
std::vector<wl::TraceRecord>
captureRecords(const harness::ExperimentSpec& spec)
{
    auto workloads = harness::workloadsFor(spec);
    const std::uint64_t n = recordBudgetFor(spec);
    std::vector<wl::TraceRecord> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(workloads[0]->next());
    return out;
}

struct OfflineRun
{
    harness::TimeSeries series;
    sim::RunResult final_result;
};

OfflineRun
runOffline(const harness::ExperimentSpec& spec, std::uint64_t window)
{
    OfflineRun run;
    harness::SimSession session(spec);
    session.addObserver(&run.series);
    while (!session.done())
        session.advance(window);
    run.final_result = session.cumulative();
    return run;
}

std::vector<std::uint8_t>
sampleBits(const harness::WindowSample& s)
{
    snap::Writer w;
    harness::writeWindowSample(w, s);
    return w.buffer();
}

std::vector<std::uint8_t>
resultBits(const sim::RunResult& r)
{
    snap::Writer w;
    harness::writeRunResult(w, r);
    return w.buffer();
}

std::vector<std::uint8_t>
specBits(const harness::ExperimentSpec& s)
{
    snap::Writer w;
    harness::writeSpec(w, s);
    return w.buffer();
}

/** Bit-exact window-by-window comparison (the determinism rule). */
void
expectSeriesEqual(const std::vector<harness::WindowSample>& got,
                  const std::vector<harness::WindowSample>& want,
                  const std::string& what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(sampleBits(got[i]), sampleBits(want[i]))
            << what << ": window " << i << " diverges";
}

/** Instructions covered by records[0..k): each record retires gap+1. */
std::uint64_t
instrsCovered(const std::vector<wl::TraceRecord>& records,
              std::uint64_t k)
{
    std::uint64_t instrs = 0;
    for (std::uint64_t i = 0; i < k && i < records.size(); ++i)
        instrs += records[i].gap + 1;
    return instrs;
}

/** Smallest record count covering at least @p target instructions. */
std::uint64_t
recordsForInstrs(const std::vector<wl::TraceRecord>& records,
                 std::uint64_t target)
{
    std::uint64_t instrs = 0;
    for (std::uint64_t i = 0; i < records.size(); ++i) {
        instrs += records[i].gap + 1;
        if (instrs >= target)
            return i + 1;
    }
    return records.size();
}

/**
 * A record prefix that guarantees a MID-RUN session: enough records
 * for the pre-warmup gate to release the first window, but covering
 * only about half the sim budget, so the pump must starve long before
 * the run can complete. Tests assert the guarantee (instrsCovered
 * strictly below the budget) so a generator gap-profile change fails
 * loudly instead of silently turning eviction tests into no-ops.
 */
std::uint64_t
midRunPrefix(const harness::ExperimentSpec& spec,
             const std::vector<wl::TraceRecord>& records,
             std::uint64_t window)
{
    const std::uint64_t gate1 =
        spec.warmup_instrs + window + kGateSlack + 256;
    const std::uint64_t half = recordsForInstrs(
        records, spec.warmup_instrs + spec.sim_instrs / 2);
    return std::max(gate1, half);
}

/**
 * Every received window must equal the offline window with the same
 * index, bit for bit. @p require_all additionally demands the union
 * covers every offline window exactly once (clean-handoff paths: an
 * explicit detach or a drain loses nothing).
 */
void
expectWindowsMatchOffline(
    const std::vector<std::vector<harness::WindowSample>>& parts,
    const OfflineRun& off, bool require_all, const std::string& what)
{
    std::vector<int> seen(off.series.size(), 0);
    for (const auto& part : parts)
        for (const auto& s : part) {
            ASSERT_LT(s.index, off.series.size())
                << what << ": window index out of range";
            EXPECT_EQ(sampleBits(s), sampleBits(off.series[s.index]))
                << what << ": window " << s.index << " diverges";
            ++seen[s.index];
        }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_LE(seen[i], 1)
            << what << ": window " << i << " delivered twice";
        if (require_all) {
            EXPECT_EQ(seen[i], 1)
                << what << ": window " << i << " never delivered";
        }
    }
}

bool
waitFor(const std::function<bool()>& pred, std::chrono::milliseconds max)
{
    const auto deadline = std::chrono::steady_clock::now() + max;
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(10ms);
    }
    return pred();
}

/** Fresh per-test scratch dir; servers bind ephemeral loopback ports. */
class ServiceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::path("service_test_scratch") /
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    ServeOptions baseOptions() const
    {
        ServeOptions opt;
        opt.tcp_port = 0; // ephemeral
        opt.workers = 4;
        opt.state_dir = (dir_ / "state").string();
        return opt;
    }

    /** Evicted-state snapshot path for @p tenant (server layout). */
    std::string snapPath(const std::string& tenant) const
    {
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(
                          snap::fnv1a(tenant)));
        return (dir_ / "state" / ("tenant-" + std::string(hex) + ".snap"))
            .string();
    }

    fs::path dir_;
};

// ------------------------------------------------------------ wire codec

TEST_F(ServiceTest, WireHelloRoundTrip)
{
    HelloMsg m;
    m.tenant = "tenant-a";
    m.spec = makeSpec("470.lbm-164B", "pythia");
    m.window_instrs = 1234;
    const HelloMsg got = decodeHello(encodeHello(m));
    EXPECT_EQ(got.tenant, m.tenant);
    EXPECT_EQ(got.window_instrs, m.window_instrs);
    EXPECT_EQ(specBits(got.spec), specBits(m.spec));

    HelloAckMsg a;
    a.resumed = true;
    a.warm = true;
    a.instrs_advanced = 4000;
    a.windows_completed = 2;
    a.records_received = 5524;
    a.records_consumed = 4100;
    const HelloAckMsg ga = decodeHelloAck(encodeHelloAck(a));
    EXPECT_EQ(ga.resumed, a.resumed);
    EXPECT_EQ(ga.warm, a.warm);
    EXPECT_EQ(ga.instrs_advanced, a.instrs_advanced);
    EXPECT_EQ(ga.windows_completed, a.windows_completed);
    EXPECT_EQ(ga.records_received, a.records_received);
    EXPECT_EQ(ga.records_consumed, a.records_consumed);
}

TEST_F(ServiceTest, WireWindowAndRunEndRoundTripBitExact)
{
    // Real samples from a real (tiny) run, not synthetic field values.
    const auto spec = makeSpec("470.lbm-164B", "stride", 500, 1500);
    const OfflineRun off = runOffline(spec, 500);
    ASSERT_GE(off.series.size(), 2u);

    WindowMsg wm;
    wm.window = off.series[1];
    wm.records_consumed = 777;
    const WindowMsg gw = decodeWindow(encodeWindow(wm));
    EXPECT_EQ(sampleBits(gw.window), sampleBits(wm.window));
    EXPECT_EQ(gw.records_consumed, wm.records_consumed);

    RunEndMsg rm;
    rm.final_result = off.final_result;
    rm.windows_completed = off.series.size();
    rm.records_consumed = 2024;
    const RunEndMsg gr = decodeRunEnd(encodeRunEnd(rm));
    EXPECT_EQ(resultBits(gr.final_result), resultBits(rm.final_result));
    EXPECT_EQ(gr.windows_completed, rm.windows_completed);
    EXPECT_EQ(gr.records_consumed, rm.records_consumed);

    DetachAckMsg dm;
    dm.records_received = 10;
    dm.instrs_advanced = 20;
    dm.windows_completed = 30;
    const DetachAckMsg gd = decodeDetachAck(encodeDetachAck(dm));
    EXPECT_EQ(gd.records_received, dm.records_received);
    EXPECT_EQ(gd.instrs_advanced, dm.instrs_advanced);
    EXPECT_EQ(gd.windows_completed, dm.windows_completed);

    EXPECT_EQ(decodeStatsAck(encodeStatsAck("{\"x\": 1}")), "{\"x\": 1}");

    const ErrorMsg ge = decodeError(encodeError(kErrBusy, "busy"));
    EXPECT_EQ(ge.kind, kErrBusy);
    EXPECT_EQ(ge.message, "busy");
}

TEST_F(ServiceTest, WireAccessRoundTripPreservesFlags)
{
    const auto spec = makeSpec("429.mcf-184B", "none", 1000, 4000);
    const auto records = captureRecords(spec);
    ASSERT_GE(records.size(), 2000u);
    const std::vector<wl::TraceRecord> batch(records.begin(),
                                             records.begin() + 2000);
    const auto got = decodeAccess(encodeAccess(batch.data(), batch.size()));
    ASSERT_EQ(got.size(), batch.size());
    bool saw_write = false, saw_dep = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(got[i].pc, batch[i].pc);
        EXPECT_EQ(got[i].addr, batch[i].addr);
        EXPECT_EQ(got[i].gap, batch[i].gap);
        EXPECT_EQ(got[i].is_write, batch[i].is_write);
        EXPECT_EQ(got[i].depends_on_prev, batch[i].depends_on_prev);
        saw_write |= batch[i].is_write;
        saw_dep |= batch[i].depends_on_prev;
    }
    // A flag-free batch would vacuously pass; make sure both bits
    // actually travelled.
    EXPECT_TRUE(saw_write);
    EXPECT_TRUE(saw_dep);
}

TEST_F(ServiceTest, WireRejectsMalformedFrames)
{
    EXPECT_THROW(frameType({}), ServeWireError);
    EXPECT_THROW(frameType({0x63}), ServeWireError);

    HelloMsg m;
    m.tenant = "t";
    m.spec = makeSpec("470.lbm-164B", "pythia");
    m.window_instrs = 100;
    auto hello = encodeHello(m);

    // Wrong frame type for the decoder.
    EXPECT_THROW(decodeHelloAck(hello), ServeWireError);
    // Truncated payload.
    auto truncated = hello;
    truncated.pop_back();
    EXPECT_THROW(decodeHello(truncated), ServeWireError);
    // Trailing garbage.
    auto trailing = hello;
    trailing.push_back(0);
    EXPECT_THROW(decodeHello(trailing), ServeWireError);
    // window_instrs=0 is meaningless.
    HelloMsg zero = m;
    zero.window_instrs = 0;
    EXPECT_THROW(decodeHello(encodeHello(zero)), ServeWireError);
    // Unknown access-record flag bits must be rejected, not ignored —
    // they are the protocol's forward-compat escape hatch.
    wl::TraceRecord rec;
    auto access = encodeAccess(&rec, 1);
    access.back() |= 0x80;
    EXPECT_THROW(decodeAccess(access), ServeWireError);

    // Framing: zero and oversized length prefixes are hostile input.
    std::vector<std::uint8_t> buf = {0, 0, 0, 0};
    EXPECT_THROW(extractFrame(buf), ServeWireError);
    const std::uint32_t huge = kMaxFramePayload + 1;
    buf.clear();
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(huge >> (8 * i)));
    EXPECT_THROW(extractFrame(buf), ServeWireError);
    // A partial frame is not an error — it is "keep reading".
    buf = {5, 0, 0, 0, 1, 2};
    auto partial = extractFrame(buf);
    EXPECT_FALSE(partial.has_value());
    EXPECT_EQ(buf.size(), 6u);
}

// --------------------------------------------------------- StreamWorkload

TEST_F(ServiceTest, StreamWorkloadRetainsHistoryAndThrowsOnUnderrun)
{
    StreamWorkload s("t");
    EXPECT_THROW(s.next(), StreamUnderrunError);

    const auto spec = makeSpec("602.gcc_s-734B", "none", 100, 400);
    const auto records = captureRecords(spec);
    s.append({records.begin(), records.begin() + 10});
    for (int i = 0; i < 10; ++i)
        s.next();
    EXPECT_EQ(s.consumed(), 10u);
    EXPECT_EQ(s.available(), 0u);
    EXPECT_THROW(s.next(), StreamUnderrunError);

    // Appending more resumes exactly where the stream stopped.
    s.append({records.begin() + 10, records.begin() + 20});
    EXPECT_EQ(s.next().addr, records[10].addr);

    // reset() replays from record zero (the snapshot-restore path).
    s.reset();
    EXPECT_EQ(s.consumed(), 0u);
    EXPECT_EQ(s.next().addr, records[0].addr);

    // clone() keeps the full history, not the cursor.
    auto c = s.clone(0);
    EXPECT_EQ(c->next().addr, records[0].addr);
}

TEST_F(ServiceTest, TraceRecordVectorFileRoundTrip)
{
    const auto spec = makeSpec("Cloudsuite-Cassandra", "none", 100, 400);
    const auto records = captureRecords(spec);
    const std::vector<wl::TraceRecord> sub(records.begin(),
                                           records.begin() + 200);
    const std::string path = (dir_ / "roundtrip.trace").string();
    ASSERT_TRUE(wl::writeTraceFile(path, sub));
    const auto got = wl::readTraceFile(path);
    ASSERT_EQ(got.size(), sub.size());
    for (std::size_t i = 0; i < sub.size(); ++i) {
        EXPECT_EQ(got[i].pc, sub[i].pc);
        EXPECT_EQ(got[i].addr, sub[i].addr);
        EXPECT_EQ(got[i].gap, sub[i].gap);
        EXPECT_EQ(got[i].is_write, sub[i].is_write);
        EXPECT_EQ(got[i].depends_on_prev, sub[i].depends_on_prev);
    }

    // An empty history is a valid evicted state (tenant detached
    // before streaming anything).
    const std::string empty_path = (dir_ / "empty.trace").string();
    ASSERT_TRUE(wl::writeTraceFile(empty_path, {}));
    EXPECT_TRUE(wl::readTraceFile(empty_path).empty());

    // Truncation fails loudly.
    fs::resize_file(path, fs::file_size(path) - 7);
    EXPECT_THROW(wl::readTraceFile(path), std::runtime_error);
}

// ------------------------------------------------- serving determinism

TEST_F(ServiceTest, ServingMatchesOfflineEverySuiteWorkloadAndPrefetcher)
{
    ServeServer server(baseOptions());
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 1000;

    struct Case
    {
        std::string workload;
        std::string prefetcher;
    };
    std::vector<Case> cases;
    for (const auto& w : wl::allWorkloads())
        for (const char* pf : {"pythia", "spp", "stride"})
            cases.push_back({w.name, pf});

    // gtest assertions are not thread-safe: collect failures and
    // assert from the main thread.
    std::mutex fail_mu;
    std::vector<std::string> failures;
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= cases.size())
                return;
            const Case& c = cases[i];
            const std::string what = c.workload + " × " + c.prefetcher;
            try {
                const auto spec =
                    makeSpec(c.workload, c.prefetcher, 1000, 4000);
                const auto records = captureRecords(spec);
                const OfflineRun off = runOffline(spec, kWindow);

                ServeClient client(addr);
                client.open("sweep-" + std::to_string(i), spec, kWindow);
                const auto progress = client.streamRun(records);

                std::string err;
                if (!progress.final_result)
                    err = "no final result";
                else if (resultBits(*progress.final_result) !=
                         resultBits(off.final_result))
                    err = "final RunResult diverges";
                else if (progress.series.size() != off.series.size())
                    err = "window count diverges";
                else
                    for (std::size_t k = 0; k < off.series.size(); ++k)
                        if (sampleBits(progress.series[k]) !=
                            sampleBits(off.series[k])) {
                            err = "window " + std::to_string(k) +
                                  " diverges";
                            break;
                        }
                if (!err.empty()) {
                    std::lock_guard<std::mutex> lk(fail_mu);
                    failures.push_back(what + ": " + err);
                }
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lk(fail_mu);
                failures.push_back(what + ": threw " + e.what());
            }
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back(worker);
    for (auto& t : threads)
        t.join();

    std::string joined;
    for (const auto& f : failures)
        joined += "\n  " + f;
    EXPECT_TRUE(failures.empty())
        << failures.size() << "/" << cases.size()
        << " serving-determinism cases failed:" << joined;
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, ConcurrentTenantsIsolated)
{
    // 8 tenants with DIFFERENT specs live on the daemon at once; each
    // must see exactly its own offline series (no cross-tenant bleed).
    ServeServer server(baseOptions());
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const std::vector<std::string> workloads = {
        "470.lbm-164B", "602.gcc_s-734B", "Ligra-PageRank",
        "Cloudsuite-Cassandra"};

    std::mutex fail_mu;
    std::vector<std::string> failures;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            const std::string wlname = workloads[t % workloads.size()];
            const std::string pf = (t % 2) ? "pythia" : "spp";
            try {
                const auto spec = makeSpec(wlname, pf);
                const auto records = captureRecords(spec);
                const OfflineRun off = runOffline(spec, kWindow);
                ServeClient client(addr);
                client.open("tenant-" + std::to_string(t), spec,
                            kWindow);
                const auto progress = client.streamRun(records);
                if (!progress.final_result ||
                    resultBits(*progress.final_result) !=
                        resultBits(off.final_result) ||
                    progress.series.size() != off.series.size()) {
                    std::lock_guard<std::mutex> lk(fail_mu);
                    failures.push_back("tenant " + std::to_string(t) +
                                       " diverged");
                }
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lk(fail_mu);
                failures.push_back("tenant " + std::to_string(t) +
                                   " threw: " + e.what());
            }
        });
    }
    for (auto& th : threads)
        th.join();
    std::string joined;
    for (const auto& f : failures)
        joined += "\n  " + f;
    EXPECT_TRUE(failures.empty()) << joined;

    const auto s = server.stats();
    EXPECT_GE(s.sessions_opened, 8u);
    EXPECT_GE(s.runs_completed, 8u);
    EXPECT_EQ(server.stop(), 0);
}

// ------------------------------------------------------- evict/restore

TEST_F(ServiceTest, DetachEvictRestoreMidStreamMatchesOffline)
{
    ServeServer server(baseOptions());
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("470.lbm-164B", "pythia", 2000, 60000);
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);
    ASSERT_EQ(off.series.size(), 30u);

    // Phase 1: stream a prefix that cannot finish the run, collect the
    // first window, then detach. Windows the pump completed between
    // our stop and the detach ack arrive as strays — a clean handoff
    // loses none of them.
    const std::uint64_t prefix = midRunPrefix(spec, records, kWindow);
    ASSERT_LT(instrsCovered(records, prefix),
              spec.warmup_instrs + spec.sim_instrs - 2 * kWindow)
        << "prefix can complete the run; eviction test is vacuous";
    const std::vector<wl::TraceRecord> part1(records.begin(),
                                             records.begin() + prefix);
    ServeClient client1(addr);
    client1.open("evictee", spec, kWindow);
    const auto progress1 = client1.streamRun(part1, 0, 1);
    ASSERT_GE(progress1.series.size(), 1u);
    EXPECT_FALSE(progress1.final_result.has_value());
    harness::TimeSeries strays;
    const DetachAckMsg ack = client1.detach(&strays);
    EXPECT_GE(ack.windows_completed, 1u);
    EXPECT_LT(ack.windows_completed, off.series.size());
    EXPECT_EQ(ack.windows_completed,
              progress1.series.size() + strays.size());
    client1.close();
    EXPECT_TRUE(fs::exists(snapPath("evictee")));

    // Phase 2: reconnect — transparent restore — and finish the run.
    ServeClient client2(addr);
    const HelloAckMsg hello = client2.open("evictee", spec, kWindow);
    EXPECT_TRUE(hello.resumed);
    EXPECT_EQ(hello.windows_completed, ack.windows_completed);
    EXPECT_EQ(hello.records_received, ack.records_received);
    const auto progress2 =
        client2.streamRun(records, hello.records_received);
    ASSERT_TRUE(progress2.final_result.has_value());
    EXPECT_EQ(progress2.windows_completed, off.series.size());

    // The stitched stream must be bit-identical to offline, with every
    // window delivered exactly once.
    expectWindowsMatchOffline({progress1.series.samples(),
                               strays.samples(),
                               progress2.series.samples()},
                              off, true, "evict/restore");
    EXPECT_EQ(resultBits(*progress2.final_result),
              resultBits(off.final_result));

    // Completion removes the evicted state.
    EXPECT_FALSE(fs::exists(snapPath("evictee")));
    const auto s = server.stats();
    EXPECT_EQ(s.sessions_resumed, 1u);
    EXPECT_GE(s.sessions_evicted, 1u);
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, AbruptDisconnectEvictsAndResumeMatchesOffline)
{
    ServeServer server(baseOptions());
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("602.gcc_s-734B", "spp", 2000, 60000);
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);

    const std::uint64_t prefix = midRunPrefix(spec, records, kWindow);
    ASSERT_LT(instrsCovered(records, prefix),
              spec.warmup_instrs + spec.sim_instrs - 2 * kWindow);
    const std::vector<wl::TraceRecord> part1(records.begin(),
                                             records.begin() + prefix);
    ServeClient client1(addr);
    client1.open("dropper", spec, kWindow);
    const auto progress1 = client1.streamRun(part1, 0, 1);
    ASSERT_GE(progress1.series.size(), 1u);
    client1.close(); // no detach: the daemon must evict on its own

    ASSERT_TRUE(waitFor([&] { return fs::exists(snapPath("dropper")); },
                        5s))
        << "daemon did not evict the dropped tenant";

    ServeClient client2(addr);
    const HelloAckMsg hello = client2.open("dropper", spec, kWindow);
    EXPECT_TRUE(hello.resumed);
    EXPECT_GE(hello.windows_completed, 1u);
    const auto progress2 =
        client2.streamRun(records, hello.records_received);
    ASSERT_TRUE(progress2.final_result.has_value());

    // Windows the daemon emitted after we hung up are lost with the
    // connection (they were staged for a dead socket); the resumed
    // stream covers everything from the eviction point on, and every
    // window anybody received is bit-identical to offline.
    EXPECT_EQ(progress2.series.size(),
              off.series.size() - hello.windows_completed);
    expectWindowsMatchOffline({progress1.series.samples(),
                               progress2.series.samples()},
                              off, false, "abrupt-disconnect resume");
    EXPECT_EQ(resultBits(*progress2.final_result),
              resultBits(off.final_result));
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, DaemonRestartResumesFromStateDir)
{
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("Ligra-PageRank", "pythia", 2000, 60000);
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);
    const std::uint64_t prefix = midRunPrefix(spec, records, kWindow);
    ASSERT_LT(instrsCovered(records, prefix),
              spec.warmup_instrs + spec.sim_instrs - 2 * kWindow);

    harness::TimeSeries part1;
    std::uint64_t resume_from = 0;
    {
        ServeServer server(baseOptions());
        server.start();
        ServeClient client(server.boundAddress());
        client.open("survivor", spec, kWindow);
        const auto progress = client.streamRun(
            {records.begin(), records.begin() + prefix}, 0, 1);
        for (const auto& w : progress.series.samples())
            part1.append(w);
        harness::TimeSeries strays;
        const DetachAckMsg ack = client.detach(&strays);
        for (const auto& w : strays.samples())
            part1.append(w);
        resume_from = ack.records_received;
        EXPECT_EQ(server.stop(), 0); // whole process goes away
    }
    ASSERT_TRUE(fs::exists(snapPath("survivor")));

    // A brand-new daemon over the same state_dir picks the tenant up.
    ServeServer server2(baseOptions());
    server2.start();
    ServeClient client2(server2.boundAddress());
    const HelloAckMsg hello = client2.open("survivor", spec, kWindow);
    EXPECT_TRUE(hello.resumed);
    EXPECT_EQ(hello.records_received, resume_from);
    const auto progress2 =
        client2.streamRun(records, hello.records_received);
    ASSERT_TRUE(progress2.final_result.has_value());

    expectWindowsMatchOffline({part1.samples(),
                               progress2.series.samples()},
                              off, true, "daemon-restart resume");
    EXPECT_EQ(resultBits(*progress2.final_result),
              resultBits(off.final_result));
    EXPECT_EQ(server2.stop(), 0);
}

TEST_F(ServiceTest, IdleSessionEvictedAndRestoredOnReconnect)
{
    auto opt = baseOptions();
    opt.idle_evict_ms = 150;
    ServeServer server(opt);
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec =
        makeSpec("Cloudsuite-Cassandra", "stride", 2000, 60000);
    const auto records = captureRecords(spec);
    const std::uint64_t prefix = midRunPrefix(spec, records, kWindow);
    ASSERT_LT(instrsCovered(records, prefix),
              spec.warmup_instrs + spec.sim_instrs - 2 * kWindow);

    ServeClient client1(addr);
    client1.open("sleeper", spec, kWindow);
    const auto progress1 = client1.streamRun(
        {records.begin(), records.begin() + prefix}, 0, 1);
    ASSERT_GE(progress1.series.size(), 1u);

    // Go quiet; the daemon must snapshot and hang up on its own.
    ASSERT_TRUE(waitFor([&] { return fs::exists(snapPath("sleeper")); },
                        5s))
        << "idle tenant was never evicted";

    ServeClient client2(addr);
    const HelloAckMsg hello = client2.open("sleeper", spec, kWindow);
    EXPECT_TRUE(hello.resumed);
    // The daemon pumps as far as the gate allows from the records the
    // client pushed before going quiet, so it may be several windows
    // ahead of the one the client actually read.
    EXPECT_GE(hello.windows_completed, 1u);
    const auto progress2 =
        client2.streamRun(records, hello.records_received);
    EXPECT_TRUE(progress2.final_result.has_value());
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, DrainEvictsLiveSessionsAndExitsZero)
{
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("470.lbm-164B", "spp", 2000, 60000);
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);
    const std::uint64_t prefix = midRunPrefix(spec, records, kWindow);
    ASSERT_LT(instrsCovered(records, prefix),
              spec.warmup_instrs + spec.sim_instrs - 2 * kWindow);

    ServeServer server(baseOptions());
    server.start();
    ServeClient client1(server.boundAddress());
    client1.open("drained", spec, kWindow);
    const auto progress1 = client1.streamRun(
        {records.begin(), records.begin() + prefix}, 0, 1);
    ASSERT_GE(progress1.series.size(), 1u);

    // SIGTERM path: requestDrain() is exactly what the signal handler
    // calls. The daemon must evict the live mid-run session and exit 0.
    server.requestDrain();
    EXPECT_EQ(server.join(), 0);
    EXPECT_TRUE(fs::exists(snapPath("drained")));

    ServeServer server2(baseOptions());
    server2.start();
    ServeClient client2(server2.boundAddress());
    const HelloAckMsg hello = client2.open("drained", spec, kWindow);
    EXPECT_TRUE(hello.resumed);
    EXPECT_GE(hello.windows_completed, 1u);
    const auto progress2 =
        client2.streamRun(records, hello.records_received);
    ASSERT_TRUE(progress2.final_result.has_value());

    // Windows emitted between our stop and the drain may not have been
    // read before the daemon exited; everything received must still be
    // bit-identical to offline, and the resume covers the tail.
    EXPECT_EQ(progress2.series.size(),
              off.series.size() - hello.windows_completed);
    expectWindowsMatchOffline({progress1.series.samples(),
                               progress2.series.samples()},
                              off, false, "drain resume");
    EXPECT_EQ(resultBits(*progress2.final_result),
              resultBits(off.final_result));
    EXPECT_EQ(server2.stop(), 0);
}

TEST_F(ServiceTest, ReopenAfterCompletionStartsFresh)
{
    ServeServer server(baseOptions());
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("602.gcc_s-734B", "stride");
    const auto records = captureRecords(spec);

    ServeClient client1(addr);
    client1.open("phoenix", spec, kWindow);
    const auto progress1 = client1.streamRun(records);
    ASSERT_TRUE(progress1.final_result.has_value());
    client1.close();

    // Completed runs leave no evicted state; the id opens fresh (the
    // busy-retry inside open() absorbs the disconnect race).
    ServeClient client2(addr);
    const HelloAckMsg hello = client2.open("phoenix", spec, kWindow);
    EXPECT_FALSE(hello.resumed);
    EXPECT_EQ(hello.records_received, 0u);
    EXPECT_EQ(hello.instrs_advanced, 0u);
    const auto progress2 = client2.streamRun(records);
    ASSERT_TRUE(progress2.final_result.has_value());
    EXPECT_EQ(resultBits(*progress2.final_result),
              resultBits(*progress1.final_result));
    EXPECT_EQ(server.stop(), 0);
}

// ------------------------------------------------------- resource caps

TEST_F(ServiceTest, InflightCapBackpressureKeepsResultsExact)
{
    auto opt = baseOptions();
    // Small enough to force pause/resume cycles over the ~9k-record
    // budget, large enough for the gate (warmup + window + slack) to
    // ever be satisfiable.
    opt.max_inflight_records = 6144;
    ServeServer server(opt);
    server.start();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("470.lbm-164B", "pythia");
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);

    ServeClient client(server.boundAddress());
    client.open("pressured", spec, kWindow);
    const auto progress = client.streamRun(records);
    ASSERT_TRUE(progress.final_result.has_value());
    expectSeriesEqual(progress.series.samples(), off.series.samples(),
                      "inflight backpressure");
    EXPECT_EQ(resultBits(*progress.final_result),
              resultBits(off.final_result));
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, TinyOutboxThrottleKeepsResultsExact)
{
    auto opt = baseOptions();
    // Smaller than one encoded kWindow frame: the pump throttles after
    // every window and must be rescheduled by the loop each time.
    opt.max_outbox_bytes = 256;
    ServeServer server(opt);
    server.start();
    constexpr std::uint64_t kWindow = 500; // 12 throttle cycles
    const auto spec = makeSpec("Ligra-BFS", "spp");
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);

    ServeClient client(server.boundAddress());
    client.open("throttled", spec, kWindow);
    const auto progress = client.streamRun(records);
    ASSERT_TRUE(progress.final_result.has_value());
    expectSeriesEqual(progress.series.samples(), off.series.samples(),
                      "outbox throttle");
    EXPECT_EQ(resultBits(*progress.final_result),
              resultBits(off.final_result));
    EXPECT_EQ(server.stop(), 0);
}

// ------------------------------------------------------ typed failures

TEST_F(ServiceTest, SecondHelloForLiveTenantIsBusy)
{
    ServeServer server(baseOptions());
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("470.lbm-164B", "stride", 2000, 60000);
    const auto records = captureRecords(spec);
    const std::uint64_t prefix = midRunPrefix(spec, records, kWindow);

    ServeClient client(addr);
    client.open("hog", spec, kWindow);
    client.streamRun({records.begin(), records.begin() + prefix}, 0, 1);

    // Raw wire: a second hello must get a typed kErrBusy, immediately
    // (ServeClient::open would hide it behind the retry loop).
    const int fd = connectToServe(addr);
    HelloMsg m;
    m.tenant = "hog";
    m.spec = spec;
    m.window_instrs = kWindow;
    writeFrame(fd, encodeHello(m));
    const auto frame = readFrame(fd);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frameType(*frame), FrameType::kError);
    EXPECT_EQ(decodeError(*frame).kind, kErrBusy);
    EXPECT_FALSE(readFrame(fd).has_value()) << "expected EOF after kError";
    ::close(fd);

    client.detach();
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, MultiCoreSpecRejectedTyped)
{
    ServeServer server(baseOptions());
    server.start();
    auto spec = makeSpec("470.lbm-164B", "pythia");
    spec.num_cores = 2;
    ServeClient client(server.boundAddress());
    try {
        client.open("multicore", spec, 2000);
        FAIL() << "multi-core spec was accepted";
    } catch (const ServeRemoteError& e) {
        EXPECT_EQ(e.kind(), kErrSpec);
    }
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, ResumeWithDifferentSpecFailsTyped)
{
    ServeServer server(baseOptions());
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("470.lbm-164B", "pythia", 2000, 60000);
    const auto records = captureRecords(spec);
    const std::uint64_t prefix = midRunPrefix(spec, records, kWindow);
    ASSERT_LT(instrsCovered(records, prefix),
              spec.warmup_instrs + spec.sim_instrs - 2 * kWindow);

    ServeClient client1(addr);
    client1.open("turncoat", spec, kWindow);
    client1.streamRun({records.begin(), records.begin() + prefix}, 0, 1);
    client1.detach();
    ASSERT_TRUE(fs::exists(snapPath("turncoat")));

    // Same tenant id, different prefetcher: the snapshot fingerprint
    // must refuse the restore with a typed kErrResume — never silently
    // splice incompatible state.
    ServeClient client2(addr);
    try {
        client2.open("turncoat", makeSpec("470.lbm-164B", "spp"),
                     kWindow);
        FAIL() << "mismatched resume was accepted";
    } catch (const ServeRemoteError& e) {
        EXPECT_EQ(e.kind(), kErrResume);
    }
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, MalformedFirstFrameGetsProtocolErrorAndClose)
{
    ServeServer server(baseOptions());
    server.start();
    const int fd = connectToServe(server.boundAddress());
    writeFrame(fd, {0x63}); // unknown frame type
    const auto frame = readFrame(fd);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frameType(*frame), FrameType::kError);
    EXPECT_EQ(decodeError(*frame).kind, kErrProtocol);
    EXPECT_FALSE(readFrame(fd).has_value()) << "expected EOF after kError";
    ::close(fd);

    const auto s = server.stats();
    EXPECT_GE(s.frames_rejected, 1u);
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, OversizedFrameLengthRejected)
{
    ServeServer server(baseOptions());
    server.start();
    const int fd = connectToServe(server.boundAddress());
    // Hand-rolled hostile header: length beyond kMaxFramePayload. The
    // daemon must answer with a typed error and hang up, NOT allocate.
    const std::uint32_t huge = kMaxFramePayload + 1;
    std::uint8_t header[4];
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<std::uint8_t>(huge >> (8 * i));
    ASSERT_EQ(::write(fd, header, 4), 4);
    const auto frame = readFrame(fd);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frameType(*frame), FrameType::kError);
    EXPECT_EQ(decodeError(*frame).kind, kErrProtocol);
    EXPECT_FALSE(readFrame(fd).has_value()) << "expected EOF after kError";
    ::close(fd);
    EXPECT_EQ(server.stop(), 0);
}

// -------------------------------------------------------------- stats

TEST_F(ServiceTest, StatsEndpointAggregatesAcrossTenants)
{
    ServeServer server(baseOptions());
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("470.lbm-164B", "pythia");
    const auto records = captureRecords(spec);

    ServeClient client(addr);
    client.open("counted", spec, kWindow);
    const auto progress = client.streamRun(records);
    ASSERT_TRUE(progress.final_result.has_value());

    // The kStats endpoint works from a fresh connection, no hello.
    ServeClient probe(addr);
    const std::string json = probe.stats();
    EXPECT_NE(json.find("\"schema\": \"pythia-serve-stats-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"runs_completed\": 1"), std::string::npos);
    EXPECT_NE(json.find("pythia-timeseries-v1"), std::string::npos);

    const auto s = server.stats();
    EXPECT_EQ(s.sessions_opened, 1u);
    EXPECT_EQ(s.runs_completed, 1u);
    EXPECT_EQ(s.windows_emitted, progress.series.size());
    // The client stops streaming once the run ends, so the daemon saw
    // at most the full budget — and at least what the gate demanded.
    EXPECT_LE(s.records_received, records.size());
    EXPECT_GT(s.records_received, 0u);
    EXPECT_GE(s.connections_accepted, 2u);
    EXPECT_EQ(server.stop(), 0);
}

// ------------------------------------------------- event-loop backends

namespace {

/** One spec served end to end under @p opt; asserts bit-exactness
 *  against the offline run and that the stats document names the
 *  expected readiness backend. */
void
expectBackendServesBitExact(ServeOptions opt, const char* backend)
{
    opt.io = parseIoBackend(backend);
    ServeServer server(opt);
    server.start();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("470.lbm-164B", "pythia");
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);

    ServeClient client(server.boundAddress());
    client.open(std::string("io-") + backend, spec, kWindow);
    const auto progress = client.streamRun(records);
    ASSERT_TRUE(progress.final_result.has_value()) << backend;
    EXPECT_EQ(resultBits(*progress.final_result),
              resultBits(off.final_result))
        << backend;
    expectSeriesEqual(progress.series.samples(), off.series.samples(),
                      std::string("io=") + backend);

    ServeClient probe(server.boundAddress());
    const std::string json = probe.stats();
    EXPECT_NE(json.find(std::string("\"io_backend\": \"") + backend +
                        "\""),
              std::string::npos)
        << json;
    EXPECT_EQ(server.stop(), 0);
}

} // namespace

TEST_F(ServiceTest, PollBackendServesBitExact)
{
    expectBackendServesBitExact(baseOptions(), "poll");
}

#ifdef __linux__
TEST_F(ServiceTest, EpollBackendServesBitExact)
{
    expectBackendServesBitExact(baseOptions(), "epoll");
}
#endif

TEST_F(ServiceTest, ParseIoBackendRejectsUnknownNames)
{
    EXPECT_EQ(parseIoBackend("auto"), IoBackend::kAuto);
    EXPECT_EQ(parseIoBackend("poll"), IoBackend::kPoll);
    EXPECT_EQ(parseIoBackend("epoll"), IoBackend::kEpoll);
    EXPECT_THROW(parseIoBackend("kqueue"), ServeError);
    EXPECT_THROW(parseIoBackend(""), ServeError);
}

// ---------------------------------------------------------- outbox ring

TEST_F(ServiceTest, OutboxRingGatherResumesFromPartialOffset)
{
    // Frames small enough that a 7-byte consume step lands inside
    // headers as well as payloads — every partial-write resume point
    // the flush path can hit.
    OutboxRing ring;
    std::vector<std::uint8_t> expected; // exact wire stream
    for (std::size_t f = 0; f < 64; ++f) {
        std::vector<std::uint8_t> payload(f % 6); // 0..5 bytes
        for (std::size_t i = 0; i < payload.size(); ++i)
            payload[i] = static_cast<std::uint8_t>(f * 31 + i);
        const auto len = static_cast<std::uint32_t>(payload.size());
        for (int b = 0; b < 4; ++b)
            expected.push_back(
                static_cast<std::uint8_t>(len >> (8 * b)));
        expected.insert(expected.end(), payload.begin(), payload.end());
        ring.push(std::move(payload));
    }
    ASSERT_EQ(ring.bytes(), expected.size());
    ASSERT_EQ(ring.frames(), 64u);

    std::size_t off = 0;
    while (!ring.empty()) {
        struct iovec iov[4];
        const std::size_t n = ring.gather(iov, 4);
        ASSERT_GT(n, 0u);
        std::vector<std::uint8_t> flat;
        for (std::size_t i = 0; i < n; ++i)
            flat.insert(flat.end(),
                        static_cast<const std::uint8_t*>(iov[i].iov_base),
                        static_cast<const std::uint8_t*>(iov[i].iov_base) +
                            iov[i].iov_len);
        ASSERT_LE(flat.size(), expected.size() - off);
        EXPECT_TRUE(std::equal(flat.begin(), flat.end(),
                               expected.begin() + off))
            << "gather diverges from the wire stream at offset " << off;
        const std::size_t step = std::min<std::size_t>(7, ring.bytes());
        ring.consume(step);
        off += step;
        EXPECT_EQ(ring.bytes(), expected.size() - off);
    }
    EXPECT_EQ(off, expected.size());
    EXPECT_EQ(ring.frames(), 0u);
}

TEST_F(ServiceTest, OutboxRingShortWritesPreserveFramesAndByteCount)
{
    // Socket-pair harness from the issue: shrink SO_SNDBUF so
    // flushOutbox() hits EAGAIN/short-write repeatedly, then assert
    // the receiver sees the exact framed byte stream and that bytes()
    // dropped by precisely what the kernel accepted each call — the
    // accounting max_outbox_bytes backpressure relies on.
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    int snd = 4096;
    ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &snd, sizeof snd);
    const int flags = ::fcntl(sv[0], F_GETFL, 0);
    ASSERT_EQ(::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK), 0);

    OutboxRing ring;
    std::vector<std::uint8_t> expected;
    for (std::size_t f = 0; f < 512; ++f) {
        std::vector<std::uint8_t> payload(1 + (f * 37) % 900);
        for (std::size_t i = 0; i < payload.size(); ++i)
            payload[i] = static_cast<std::uint8_t>(f + i);
        const auto len = static_cast<std::uint32_t>(payload.size());
        for (int b = 0; b < 4; ++b)
            expected.push_back(
                static_cast<std::uint8_t>(len >> (8 * b)));
        expected.insert(expected.end(), payload.begin(), payload.end());
        ring.push(std::move(payload));
    }
    ASSERT_EQ(ring.bytes(), expected.size());

    std::vector<std::uint8_t> received;
    auto drain = [&] {
        std::uint8_t buf[8192];
        ssize_t n;
        while ((n = ::recv(sv[1], buf, sizeof buf, MSG_DONTWAIT)) > 0)
            received.insert(received.end(), buf, buf + n);
    };

    bool blocked = false;
    std::size_t written = 0;
    while (!ring.empty()) {
        const std::size_t before = ring.bytes();
        const FlushResult r = flushOutbox(sv[0], ring);
        ASSERT_NE(r, FlushResult::kDead);
        written += before - ring.bytes();
        if (r == FlushResult::kBlocked) {
            blocked = true;
            drain();
        }
    }
    drain();
    ::close(sv[0]);
    ::close(sv[1]);

    EXPECT_TRUE(blocked)
        << "SO_SNDBUF shrink never forced a short write — harness is "
           "not exercising the partial-write path";
    EXPECT_EQ(written, expected.size());
    EXPECT_EQ(ring.bytes(), 0u);
    ASSERT_EQ(received.size(), expected.size());
    EXPECT_EQ(received, expected)
        << "reassembled stream diverges: frame integrity lost across "
           "partial writes";
}

// ------------------------------------------------------------ warm pool

namespace {

WarmPool::Snapshot
fakeSnap(std::size_t image_bytes, std::size_t prefix_records)
{
    WarmPool::Snapshot s;
    s.image = std::make_shared<const std::vector<std::uint8_t>>(
        image_bytes, std::uint8_t{0xab});
    s.prefix = std::make_shared<const std::vector<wl::TraceRecord>>(
        prefix_records);
    return s;
}

} // namespace

TEST_F(ServiceTest, WarmPoolSingleFlightPublishAbandonAndLru)
{
    const WarmPool::Snapshot proto = fakeSnap(1024, 8);
    const std::size_t sz = warmSnapshotBytes(proto);
    ASSERT_GT(sz, 0u);
    WarmPool pool(2 * sz); // room for exactly two ready entries
    ASSERT_TRUE(pool.enabled());

    // Single-flight: first acquire leads, second parks, and the
    // callback fires only when the leader settles.
    WarmPool::Snapshot out;
    int woken = 0;
    ASSERT_EQ(pool.acquire("a", &out, {}), WarmPool::Role::kLeader);
    ASSERT_EQ(pool.acquire("a", &out, [&] { ++woken; }),
              WarmPool::Role::kWaiter);
    EXPECT_EQ(woken, 0);
    pool.publish("a", fakeSnap(1024, 8));
    EXPECT_EQ(woken, 1);
    ASSERT_EQ(pool.acquire("a", &out, {}), WarmPool::Role::kHit);
    ASSERT_TRUE(out.image && out.prefix);
    EXPECT_EQ(out.image->size(), 1024u);
    EXPECT_EQ(out.prefix->size(), 8u);

    // Abandon wakes waiters too, and the re-acquire takes over as the
    // new leader instead of hitting a dead entry.
    ASSERT_EQ(pool.acquire("b", &out, {}), WarmPool::Role::kLeader);
    ASSERT_EQ(pool.acquire("b", &out, [&] { ++woken; }),
              WarmPool::Role::kWaiter);
    pool.abandon("b");
    EXPECT_EQ(woken, 2);
    ASSERT_EQ(pool.acquire("b", &out, {}), WarmPool::Role::kLeader);
    pool.publish("b", fakeSnap(1024, 8));

    // LRU: touch "a" so "b" is the eviction victim when "c" lands.
    ASSERT_EQ(pool.acquire("a", &out, {}), WarmPool::Role::kHit);
    ASSERT_EQ(pool.acquire("c", &out, {}), WarmPool::Role::kLeader);
    pool.publish("c", fakeSnap(1024, 8));
    EXPECT_EQ(pool.acquire("b", &out, {}), WarmPool::Role::kLeader)
        << "LRU should have evicted b, the least recently used entry";
    pool.abandon("b");
    EXPECT_EQ(pool.acquire("a", &out, {}), WarmPool::Role::kHit);
    EXPECT_EQ(pool.acquire("c", &out, {}), WarmPool::Role::kHit);

    const auto s = pool.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.inserts, 3u);
    EXPECT_EQ(s.waits, 2u);
    EXPECT_LE(s.bytes, 2 * sz);

    // Budget 0 disables the pool: every acquire leads, publish no-ops.
    WarmPool off(0);
    EXPECT_FALSE(off.enabled());
    EXPECT_EQ(off.acquire("a", &out, {}), WarmPool::Role::kLeader);
    off.publish("a", fakeSnap(64, 1));
    EXPECT_EQ(off.acquire("a", &out, {}), WarmPool::Role::kLeader);
}

TEST_F(ServiceTest, WarmPoolHitRestoresBitExact)
{
    // Second open of an identical spec must skip warmup (warm ack,
    // nonzero resume index) yet produce the byte-identical window
    // series and final result — the determinism bar of DESIGN.md §12
    // extended across warm-pool restores.
    auto opt = baseOptions();
    opt.warm_pool_bytes = 64u << 20;
    ServeServer server(opt);
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("470.lbm-164B", "pythia");
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);

    ServeClient cold(addr);
    const HelloAckMsg cold_ack = cold.open("warm-cold", spec, kWindow);
    EXPECT_FALSE(cold_ack.warm);
    EXPECT_EQ(cold_ack.records_received, 0u);
    const auto cold_run = cold.streamRun(records);
    ASSERT_TRUE(cold_run.final_result.has_value());
    expectSeriesEqual(cold_run.series.samples(), off.series.samples(),
                      "cold open");

    ServeClient warm(addr);
    const HelloAckMsg warm_ack = warm.open("warm-hit", spec, kWindow);
    EXPECT_TRUE(warm_ack.warm) << "second identical open should hit";
    EXPECT_GT(warm_ack.records_received, 0u)
        << "a warm hit resumes past the pooled warmup prefix";
    const auto warm_run =
        warm.streamRun(records, warm_ack.records_received);
    ASSERT_TRUE(warm_run.final_result.has_value());
    EXPECT_EQ(resultBits(*warm_run.final_result),
              resultBits(off.final_result));
    expectSeriesEqual(warm_run.series.samples(), off.series.samples(),
                      "warm-pool restore");
    EXPECT_LT(warm_run.records_streamed, cold_run.records_streamed)
        << "warm hit should stream fewer records (warmup skipped)";

    const auto s = server.stats();
    EXPECT_EQ(s.warm_misses, 1u);
    EXPECT_EQ(s.warm_hits, 1u);
    EXPECT_GT(s.warm_bytes, 0u);

    ServeClient probe(addr);
    const std::string json = probe.stats();
    EXPECT_NE(json.find("\"warm_pool\""), std::string::npos);
    EXPECT_NE(json.find("\"hits\": 1"), std::string::npos) << json;
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, WarmPoolSingleFlightWarmsOnceUnderRacingOpens)
{
    // Six racing opens of the same spec: exactly one leader warms,
    // everyone else eventually restores from the pool, and every
    // stream stays bit-exact against the offline run.
    auto opt = baseOptions();
    opt.warm_pool_bytes = 64u << 20;
    ServeServer server(opt);
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("602.gcc_s-734B", "spp");
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);

    std::mutex fail_mu;
    std::vector<std::string> failures;
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&, t] {
            try {
                ServeClient client(addr);
                const auto ack = client.open(
                    "race-" + std::to_string(t), spec, kWindow);
                const auto run =
                    client.streamRun(records, ack.records_received);
                std::string err;
                if (!run.final_result)
                    err = "no final result";
                else if (resultBits(*run.final_result) !=
                         resultBits(off.final_result))
                    err = "final result diverges";
                else if (run.series.size() != off.series.size())
                    err = "window count diverges";
                else
                    for (std::size_t k = 0; k < off.series.size(); ++k)
                        if (sampleBits(run.series[k]) !=
                            sampleBits(off.series[k])) {
                            err = "window " + std::to_string(k) +
                                  " diverges";
                            break;
                        }
                if (!err.empty()) {
                    std::lock_guard<std::mutex> lk(fail_mu);
                    failures.push_back("open " + std::to_string(t) +
                                       ": " + err);
                }
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lk(fail_mu);
                failures.push_back("open " + std::to_string(t) +
                                   " threw: " + e.what());
            }
        });
    }
    for (auto& th : threads)
        th.join();
    std::string joined;
    for (const auto& f : failures)
        joined += "\n  " + f;
    EXPECT_TRUE(failures.empty()) << joined;

    const auto s = server.stats();
    EXPECT_EQ(s.warm_misses, 1u)
        << "single-flight: exactly one open warms per fingerprint";
    EXPECT_EQ(s.warm_hits, 5u);
    EXPECT_EQ(server.stop(), 0);
}

TEST_F(ServiceTest, WarmPoolTinyBudgetEvictsInsteadOfServing)
{
    // A 1-byte budget keeps the pool enabled but every publish blows
    // the budget and is LRU-evicted immediately: both opens must warm
    // themselves (no hit ever), results stay exact, evictions tick.
    auto opt = baseOptions();
    opt.warm_pool_bytes = 1;
    ServeServer server(opt);
    server.start();
    const std::string addr = server.boundAddress();
    constexpr std::uint64_t kWindow = 2000;
    const auto spec = makeSpec("Ligra-PageRank", "pythia");
    const auto records = captureRecords(spec);
    const OfflineRun off = runOffline(spec, kWindow);

    for (int i = 0; i < 2; ++i) {
        ServeClient client(addr);
        const auto ack =
            client.open("tiny-" + std::to_string(i), spec, kWindow);
        EXPECT_FALSE(ack.warm) << "open " << i;
        const auto run = client.streamRun(records);
        ASSERT_TRUE(run.final_result.has_value()) << "open " << i;
        expectSeriesEqual(run.series.samples(), off.series.samples(),
                          "tiny-budget open " + std::to_string(i));
    }

    const auto s = server.stats();
    EXPECT_EQ(s.warm_hits, 0u);
    EXPECT_EQ(s.warm_misses, 2u);
    EXPECT_GE(s.warm_evictions, 1u);
    EXPECT_EQ(server.stop(), 0);
}

} // namespace
} // namespace pythia::service
