/**
 * @file
 * Tests for the spec-string construction API: the shared spec parser,
 * the self-registering prefetcher registry (round-trips, parameterized
 * construction, compositions, error quality) and the cache-boundary
 * fill-level validation.
 */
#include <gtest/gtest.h>

#include "common/spec.hpp"
#include "core/agent.hpp"
#include "harness/experiment.hpp"
#include "prefetchers/prefetcher.hpp"
#include "sim/cache.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia {
namespace {

/** Expect that constructing @p spec throws std::invalid_argument whose
 *  message contains every string in @p needles. */
void
expectBadSpec(const std::string& spec,
              const std::vector<std::string>& needles)
{
    try {
        (void)sim::makePrefetcher(spec);
        FAIL() << "spec '" << spec << "' did not throw";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        for (const auto& needle : needles)
            EXPECT_NE(msg.find(needle), std::string::npos)
                << "message for '" << spec << "' lacks '" << needle
                << "': " << msg;
    }
}

// -------------------------------------------------------------- spec parser

TEST(SpecParser, NameOnly)
{
    const auto parts = parseSpecList("spp");
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].name, "spp");
    EXPECT_TRUE(parts[0].params.empty());
}

TEST(SpecParser, ParamsAndWhitespaceAndCase)
{
    const auto parts = parseSpecList(" SPP : degree = 4 , x = 0.5 ");
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].name, "spp");
    ASSERT_EQ(parts[0].params.size(), 2u);
    EXPECT_EQ(parts[0].params[0],
              (std::pair<std::string, std::string>{"degree", "4"}));
    EXPECT_EQ(parts[0].params[1],
              (std::pair<std::string, std::string>{"x", "0.5"}));
}

TEST(SpecParser, Composition)
{
    const auto parts = parseSpecList("stride:degree=2+spp+bingo");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0].name, "stride");
    ASSERT_EQ(parts[0].params.size(), 1u);
    EXPECT_EQ(parts[1].name, "spp");
    EXPECT_EQ(parts[2].name, "bingo");
}

TEST(SpecParser, StructuralErrors)
{
    EXPECT_THROW(parseSpecList("spp:degree="), std::invalid_argument);
    EXPECT_THROW(parseSpecList("spp:=4"), std::invalid_argument);
    EXPECT_THROW(parseSpecList("spp:degree"), std::invalid_argument);
    EXPECT_THROW(parseSpecList("spp:"), std::invalid_argument);
    EXPECT_THROW(parseSpecList("spp++bingo"), std::invalid_argument);
    EXPECT_THROW(parseSpecList(""), std::invalid_argument);
}

TEST(SpecParser, ClosestMatchSuggests)
{
    EXPECT_EQ(closestMatch("strid", {"stride", "spp", "bingo"}),
              "stride");
    EXPECT_EQ(closestMatch("zzzzzzzz", {"stride", "spp"}), "");
}

// ----------------------------------------------------------------- registry

TEST(SpecRegistry, EveryHarnessNameRoundTrips)
{
    const auto names = harness::harnessPrefetcherNames();
    ASSERT_GE(names.size(), 14u);
    for (const auto& name : names) {
        auto pf = sim::makePrefetcher(name);
        ASSERT_NE(pf, nullptr) << name;
        EXPECT_EQ(pf->name(), name);
        EXPECT_GT(pf->storageBytes(), 0u) << name;
    }
}

TEST(SpecRegistry, UnknownNameSuggestsAlternative)
{
    expectBadSpec("nosuch", {"unknown prefetcher 'nosuch'"});
    expectBadSpec("strid", {"unknown prefetcher 'strid'",
                            "did you mean 'stride'?"});
    expectBadSpec("pythai", {"did you mean 'pythia'?"});
}

TEST(SpecRegistry, UnknownParamRejectedWithHint)
{
    expectBadSpec("spp:bogus=1", {"spp", "unknown parameter 'bogus'",
                                  "max_lookahead"});
    expectBadSpec("nextline:degre=4", {"did you mean 'degree'?"});
}

TEST(SpecRegistry, EmptyValueRejected)
{
    expectBadSpec("spp:degree=", {"empty value", "degree"});
}

TEST(SpecRegistry, IllTypedValueRejected)
{
    expectBadSpec("nextline:degree=fast",
                  {"nextline", "degree", "'fast'"});
    expectBadSpec("pythia:alpha=squishy", {"pythia", "alpha"});
    expectBadSpec("nextline:degree=-2", {"degree"});
}

TEST(SpecRegistry, ParameterizedSpecChangesBehavior)
{
    auto deg1 = sim::makePrefetcher("nextline");
    auto deg4 = sim::makePrefetcher("nextline:degree=4");

    sim::PrefetchAccess acc;
    acc.pc = 0x400;
    acc.block = blockAddr(1ull << 20) + 8; // mid-page: room for +4
    std::vector<sim::PrefetchRequest> out;
    deg1->train(acc, out);
    EXPECT_EQ(out.size(), 1u);
    out.clear();
    deg4->train(acc, out);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].block, acc.block + i + 1);
}

TEST(SpecRegistry, PythiaHyperparametersApplied)
{
    auto pf = sim::makePrefetcher("pythia:alpha=0.5,gamma=0.25,degree=2");
    auto* agent = dynamic_cast<rl::PythiaPrefetcher*>(pf.get());
    ASSERT_NE(agent, nullptr);
    EXPECT_DOUBLE_EQ(agent->config().alpha, 0.5);
    EXPECT_DOUBLE_EQ(agent->config().gamma, 0.25);
    EXPECT_EQ(agent->config().degree, 2u);
    // Untouched knobs keep the scaled defaults.
    EXPECT_DOUBLE_EQ(agent->config().epsilon, 0.05);
}

TEST(SpecRegistry, CompositionBuildsAndSumsStorage)
{
    auto composed = sim::makePrefetcher("stride+spp+bingo");
    ASSERT_NE(composed, nullptr);
    EXPECT_EQ(composed->name(), "stride+spp+bingo");
    const auto total = sim::makePrefetcher("stride")->storageBytes() +
                       sim::makePrefetcher("spp")->storageBytes() +
                       sim::makePrefetcher("bingo")->storageBytes();
    EXPECT_EQ(composed->storageBytes(), total);
}

TEST(SpecRegistry, CompositionKeepsFirstEmissionOrder)
{
    // Two next-line children with overlapping degrees: the union must
    // preserve the first child's emission order (priority), not sort by
    // block address.
    auto composed =
        sim::makePrefetcher("nextline:degree=4+nextline:degree=2");
    sim::PrefetchAccess acc;
    acc.block = blockAddr(1ull << 21) + 8;
    std::vector<sim::PrefetchRequest> out;
    composed->train(acc, out);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].block, acc.block + i + 1);
}

TEST(SpecRegistry, NoneInCompositionRejected)
{
    expectBadSpec("none+spp", {"none"});
}

TEST(SpecRegistry, NoneVariantsAreNull)
{
    EXPECT_EQ(sim::makePrefetcher("none"), nullptr);
    EXPECT_EQ(sim::makePrefetcher("NONE"), nullptr);
    EXPECT_EQ(sim::makePrefetcher(" none "), nullptr);
    EXPECT_THROW(sim::makePrefetcher("none:x=1"), std::invalid_argument);
}

// --------------------------------------------------------- fluent builder

TEST(ExperimentBuilderApi, AccumulatesIntoSpec)
{
    const harness::ExperimentSpec spec =
        harness::Experiment("mix1")
            .cores(4)
            .l2("pythia:gamma=0.5")
            .l1("stride")
            .mtps(1200)
            .llcBytesPerCore(1ull << 20)
            .warmup(1'000)
            .measure(2'000)
            .workloadSeed(7)
            .build();
    EXPECT_EQ(spec.workload, "mix1");
    EXPECT_EQ(spec.num_cores, 4u);
    EXPECT_EQ(spec.prefetcher, "pythia:gamma=0.5");
    EXPECT_EQ(spec.l1_prefetcher, "stride");
    EXPECT_EQ(spec.mtps, 1200u);
    EXPECT_EQ(spec.llc_bytes_per_core, 1ull << 20);
    EXPECT_EQ(spec.warmup_instrs, 1'000u);
    EXPECT_EQ(spec.sim_instrs, 2'000u);
    EXPECT_EQ(spec.workload_seed, 7u);
}

TEST(ExperimentBuilderApi, ParameterizedSpecRunsEndToEnd)
{
    harness::Runner runner;
    const auto o = harness::Experiment("462.libquantum-1343B")
                       .l2("streamer:degree=2")
                       .warmup(5'000)
                       .measure(15'000)
                       .run(runner);
    EXPECT_GT(o.run.prefetch_issued, 0u);
    EXPECT_GT(o.metrics.speedup, 1.0);
}

TEST(ExperimentBuilderApi, ScaleWindows)
{
    const auto spec = harness::Experiment("x")
                          .warmup(10'000)
                          .measure(20'000)
                          .scaleWindows(0.5)
                          .build();
    EXPECT_EQ(spec.warmup_instrs, 5'000u);
    EXPECT_EQ(spec.sim_instrs, 10'000u);
}

// ------------------------------------------------- fill-level validation

/** Terminal memory with a flat latency. */
class FlatMemory : public sim::MemoryLevel
{
  public:
    Cycle access(const sim::MemAccess& req) override
    {
        return req.at + 100;
    }
    const std::string& levelName() const override { return name_; }

  private:
    std::string name_ = "flat";
};

/** Emits one candidate with a bogus fill level and one valid one. */
class BadFillPrefetcher : public pf::PrefetcherBase
{
  public:
    BadFillPrefetcher() : PrefetcherBase("badfill", 1) {}

    void train(const sim::PrefetchAccess& access,
               std::vector<sim::PrefetchRequest>& out) override
    {
        out.push_back({access.block + 1, 7});  // invalid level
        out.push_back({access.block + 2, 0});  // invalid level
        out.push_back({access.block + 3, 2});  // valid
    }
};

TEST(CacheFillLevel, OutOfRangeCandidatesRejected)
{
    FlatMemory mem;
    sim::Cache cache(sim::CacheConfig{}, mem);
    BadFillPrefetcher pf;
    cache.setPrefetcher(&pf);

    sim::MemAccess req;
    req.block = blockAddr(1ull << 20);
    req.type = AccessType::Load;
    cache.access(req);

    EXPECT_EQ(cache.stats().counter("prefetch_bad_fill_level"), 2u);
    EXPECT_EQ(cache.stats().counter("prefetch_issued"), 1u);
    EXPECT_TRUE(cache.contains(req.block + 3));
    EXPECT_FALSE(cache.contains(req.block + 1));
    EXPECT_FALSE(cache.contains(req.block + 2));
}

} // namespace
} // namespace pythia
