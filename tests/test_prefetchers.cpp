/**
 * @file
 * Tests for the baseline prefetchers: each algorithm is driven with the
 * access pattern it is designed to capture and with an adversarial one,
 * checking both that it fires correctly and that it abstains.
 */
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "prefetchers/bingo.hpp"
#include "prefetchers/composite.hpp"
#include "prefetchers/cp_hw.hpp"
#include "prefetchers/dspatch.hpp"
#include "prefetchers/ipcp.hpp"
#include "prefetchers/mlop.hpp"
#include "prefetchers/nextline.hpp"
#include "prefetchers/power7.hpp"
#include "prefetchers/ppf.hpp"
#include "prefetchers/spp.hpp"
#include "prefetchers/streamer.hpp"
#include "prefetchers/stride.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia::pf {
namespace {

PrefetchAccess
access(Addr block, Addr pc = 0x400, Cycle cycle = 0)
{
    PrefetchAccess a;
    a.pc = pc;
    a.block = block;
    a.address = block << kBlockShift;
    a.cycle = cycle;
    return a;
}

/** Drive @p pf with a block sequence; returns all emitted targets. */
std::vector<Addr>
drive(PrefetcherApi& pf, const std::vector<Addr>& blocks, Addr pc = 0x400)
{
    std::vector<Addr> targets;
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    for (Addr b : blocks) {
        out.clear();
        pf.train(access(b, pc, t), out);
        for (const auto& pr : out)
            targets.push_back(pr.block);
        t += 50;
    }
    return targets;
}

constexpr Addr kBase = 1ull << 20; // page-aligned block address

// ---------------------------------------------------------------- prefetcher

TEST(PrefetcherBase, EmitWithinPageClampsPageCrossers)
{
    std::vector<PrefetchRequest> out;
    EXPECT_TRUE(PrefetcherBase::emitWithinPage(kBase, 5, out));
    EXPECT_FALSE(PrefetcherBase::emitWithinPage(kBase, 64, out));
    EXPECT_FALSE(PrefetcherBase::emitWithinPage(kBase, -1, out));
    EXPECT_FALSE(PrefetcherBase::emitWithinPage(kBase, 0, out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].block, kBase + 5);
}

TEST(PageTracker, DeltaWithinPage)
{
    PageTracker t;
    EXPECT_EQ(t.recordAndDelta(kBase + 3), 0); // first touch
    EXPECT_EQ(t.recordAndDelta(kBase + 7), 4);
    EXPECT_EQ(t.recordAndDelta(kBase + 5), -2);
    EXPECT_EQ(t.lastOffset(kBase), 5);
}

// ------------------------------------------------------------------ nextline

TEST(NextLine, EmitsSequentialLines)
{
    NextLinePrefetcher pf(3);
    const auto targets = drive(pf, {kBase + 10});
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_EQ(targets[0], kBase + 11);
    EXPECT_EQ(targets[2], kBase + 13);
}

TEST(NextLine, StopsAtPageBoundary)
{
    NextLinePrefetcher pf(4);
    const auto targets = drive(pf, {kBase + 62});
    EXPECT_EQ(targets.size(), 1u); // only +1 stays in page
}

// -------------------------------------------------------------------- stride

TEST(Stride, LearnsConstantStride)
{
    StridePrefetcher pf(64, 2);
    const auto targets =
        drive(pf, {kBase, kBase + 3, kBase + 6, kBase + 9});
    // Confidence reaches 2 on the 4th access, which prefetches +3/+6.
    ASSERT_GE(targets.size(), 2u);
    EXPECT_EQ(targets[0], kBase + 12);
    EXPECT_EQ(targets[1], kBase + 15);
}

TEST(Stride, IgnoresUnstablePcs)
{
    StridePrefetcher pf(64, 2);
    const auto targets =
        drive(pf, {kBase, kBase + 3, kBase + 10, kBase + 12, kBase + 30});
    EXPECT_TRUE(targets.empty());
}

TEST(Stride, TracksDistinctPcsIndependently)
{
    StridePrefetcher pf(64, 1);
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 5; ++i) {
        out.clear();
        pf.train(access(kBase + 2 * i, 0xA), out);
        pf.train(access(kBase + 512 + 5 * i, 0xB), out);
    }
    out.clear();
    pf.train(access(kBase + 10, 0xA), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].block, kBase + 12);
}

// ------------------------------------------------------------------ streamer

TEST(Streamer, DetectsAscendingStream)
{
    StreamerPrefetcher pf(16, 4, 2);
    const auto targets =
        drive(pf, {kBase, kBase + 1, kBase + 2, kBase + 3});
    ASSERT_GE(targets.size(), 4u);
    EXPECT_EQ(targets[0], kBase + 3); // +1 from the confirming access
}

TEST(Streamer, DetectsDescendingStream)
{
    StreamerPrefetcher pf(16, 2, 2);
    const auto targets =
        drive(pf, {kBase + 40, kBase + 39, kBase + 38, kBase + 37});
    // Direction confirmed at the 3rd access (block 38): prefetch 37, 36.
    ASSERT_GE(targets.size(), 2u);
    EXPECT_EQ(targets[0], kBase + 37);
    EXPECT_EQ(targets[1], kBase + 36);
}

TEST(Streamer, DegreeSettable)
{
    StreamerPrefetcher pf(16, 2, 1);
    pf.setDegree(6);
    EXPECT_EQ(pf.degree(), 6u);
    const auto targets = drive(pf, {kBase, kBase + 1, kBase + 2});
    EXPECT_GE(targets.size(), 6u);
}

// ----------------------------------------------------------------------- spp

TEST(Spp, SignatureAdvancesDeterministically)
{
    const std::uint32_t s1 = SppPrefetcher::advanceSignature(0, 1);
    const std::uint32_t s2 = SppPrefetcher::advanceSignature(0, 1);
    EXPECT_EQ(s1, s2);
    EXPECT_NE(SppPrefetcher::advanceSignature(0, 2), s1);
    // Negative deltas map to distinct signatures.
    EXPECT_NE(SppPrefetcher::advanceSignature(0, -1), s1);
}

TEST(Spp, LearnsRepeatingDeltaChain)
{
    SppPrefetcher pf;
    // Walk many pages with the constant-delta pattern +2.
    std::vector<Addr> blocks;
    for (Addr page = 0; page < 40; ++page)
        for (Addr o = 0; o < 64; o += 2)
            blocks.push_back(kBase + page * 64 + o);
    const auto targets = drive(pf, blocks);
    EXPECT_GT(targets.size(), 100u);
    // Targets must be ahead on the +2 lattice.
    int on_lattice = 0;
    for (Addr t : targets)
        on_lattice += ((t - kBase) % 2 == 0);
    EXPECT_GT(static_cast<double>(on_lattice) / targets.size(), 0.95);
}

TEST(Spp, AbstainsOnRandomAccesses)
{
    SppPrefetcher pf;
    Rng rng(1);
    std::vector<Addr> blocks;
    for (int i = 0; i < 3000; ++i)
        blocks.push_back(kBase + rng.nextBounded(1u << 22));
    const auto targets = drive(pf, blocks);
    EXPECT_LT(targets.size(), blocks.size() / 10);
}

TEST(Spp, LookaheadDepthBounded)
{
    SppConfig cfg;
    cfg.max_lookahead = 2;
    SppPrefetcher pf(cfg);
    std::vector<Addr> blocks;
    for (Addr page = 0; page < 40; ++page)
        for (Addr o = 0; o < 64; ++o)
            blocks.push_back(kBase + page * 64 + o);
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    std::size_t max_batch = 0;
    for (Addr b : blocks) {
        out.clear();
        pf.train(access(b, 0x400, t), out);
        max_batch = std::max(max_batch, out.size());
        t += 10;
    }
    EXPECT_LE(max_batch, 2u);
}

// --------------------------------------------------------------------- bingo

TEST(Bingo, ReplaysLearnedFootprint)
{
    BingoPrefetcher pf;
    // Train: repeatedly visit regions with footprint {0, 3, 7} triggered
    // by the same PC. Regions are distinct, so only PC+Offset matches.
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    // More regions than the accumulation table holds, so completed
    // footprints get evicted into the PHT.
    for (Addr r = 0; r < 300; ++r) {
        const Addr base = kBase + r * 512; // distinct 2KB regions
        for (Addr o : {0ull, 3ull, 7ull}) {
            out.clear();
            pf.train(access(base + o, 0x777, t), out);
            t += 20;
        }
    }
    // A fresh region trigger by the same PC must prefetch +3 and +7.
    out.clear();
    const Addr fresh = kBase + 100 * 512;
    pf.train(access(fresh, 0x777, t), out);
    std::set<Addr> targets;
    for (const auto& pr : out)
        targets.insert(pr.block);
    EXPECT_TRUE(targets.count(fresh + 3));
    EXPECT_TRUE(targets.count(fresh + 7));
}

TEST(Bingo, NonTriggerAccessesOnlyAccumulate)
{
    BingoPrefetcher pf;
    std::vector<PrefetchRequest> out;
    pf.train(access(kBase, 0x1, 0), out);
    const std::size_t after_trigger = out.size();
    pf.train(access(kBase + 1, 0x1, 10), out);
    EXPECT_EQ(out.size(), after_trigger); // second access emits nothing
}

TEST(Bingo, SingletonFootprintsNotStored)
{
    BingoPrefetcher pf;
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    // Touch 30 regions exactly once each with the same PC.
    for (Addr r = 0; r < 30; ++r) {
        out.clear();
        pf.train(access(kBase + r * 512, 0x9, t), out);
        t += 20;
    }
    // Footprints of popcount 1 are dropped, so no predictions emerge.
    out.clear();
    pf.train(access(kBase + 999 * 512, 0x9, t), out);
    EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------- mlop

TEST(Mlop, LearnsDominantOffset)
{
    MlopConfig cfg;
    cfg.update_round = 200;
    MlopPrefetcher pf(cfg);
    // Pattern: +2 strided within pages.
    std::vector<Addr> blocks;
    for (Addr page = 0; page < 60; ++page)
        for (Addr o = 0; o < 64; o += 2)
            blocks.push_back(kBase + page * 64 + o);
    drive(pf, blocks);
    const auto& chosen = pf.chosenOffsets();
    ASSERT_FALSE(chosen.empty());
    bool has_plus2_multiple = false;
    for (auto off : chosen)
        has_plus2_multiple |= (off > 0 && off % 2 == 0);
    EXPECT_TRUE(has_plus2_multiple);
}

TEST(Mlop, AbstainsBeforeFirstRound)
{
    MlopPrefetcher pf; // 500-update rounds
    const auto targets = drive(pf, {kBase, kBase + 1, kBase + 2});
    EXPECT_TRUE(targets.empty());
}

// ------------------------------------------------------------------- dspatch

TEST(Dspatch, LearnsAndReplaysPattern)
{
    DspatchPrefetcher pf;
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    for (Addr r = 0; r < 40; ++r) {
        const Addr base = kBase + r * 1024;
        for (Addr o : {0ull, 2ull, 5ull}) {
            out.clear();
            pf.train(access(base + o, 0x55, t), out);
            t += 20;
        }
    }
    out.clear();
    const Addr fresh = kBase + 4096 * 32;
    pf.train(access(fresh, 0x55, t), out);
    std::set<Addr> targets;
    for (const auto& pr : out)
        targets.insert(pr.block);
    EXPECT_TRUE(targets.count(fresh + 2));
    EXPECT_TRUE(targets.count(fresh + 5));
}

// ---------------------------------------------------------------------- ipcp

TEST(Ipcp, ClassifiesConstantStride)
{
    IpcpPrefetcher pf;
    const auto targets = drive(
        pf, {kBase, kBase + 4, kBase + 8, kBase + 12, kBase + 16});
    ASSERT_FALSE(targets.empty());
    EXPECT_EQ(targets[0] % 4, (kBase + 4 * 4 + 4) % 4);
}

TEST(Ipcp, ClassifiesStreams)
{
    IpcpPrefetcher pf;
    std::vector<Addr> blocks;
    for (Addr i = 0; i < 10; ++i)
        blocks.push_back(kBase + i);
    const auto targets = drive(pf, blocks);
    EXPECT_GT(targets.size(), 8u);
}

// -------------------------------------------------------------------- power7

TEST(Power7, DepthRampsDownOnWaste)
{
    Power7Prefetcher pf;
    const std::uint32_t initial = pf.depth();
    // Issue a stream (generates prefetches), then mark everything wasted.
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    for (int round = 0; round < 40; ++round) {
        for (Addr i = 0; i < 32; ++i) {
            out.clear();
            pf.train(access(kBase + round * 64 + i, 0x2, t), out);
            for (const auto& pr : out)
                pf.onPrefetchEvicted(pr.block, /*used=*/false);
            t += 20;
        }
    }
    EXPECT_LT(pf.depth(), initial + 1);
    EXPECT_EQ(pf.depth(), 1u);
}

TEST(Power7, DepthRampsUpOnAccuracy)
{
    Power7Prefetcher pf;
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    for (int round = 0; round < 40; ++round) {
        for (Addr i = 0; i < 32; ++i) {
            out.clear();
            pf.train(access(kBase + round * 64 + i, 0x2, t), out);
            for (const auto& pr : out)
                pf.onPrefetchUsed(pr.block, true);
            t += 20;
        }
    }
    EXPECT_GT(pf.depth(), 4u);
}

// --------------------------------------------------------------------- cp_hw

TEST(CpHw, LearnsUsefulOffset)
{
    CpHwConfig cfg;
    cfg.epsilon = 0.0; // deterministic greedy for the test
    cfg.alpha = 0.5;
    CpHwPrefetcher pf(cfg);
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    // Reward every issued prefetch as timely-used; the bandit should
    // settle on a non-zero offset and keep prefetching.
    std::size_t issued = 0;
    for (int i = 0; i < 4000; ++i) {
        out.clear();
        pf.train(access(kBase + (i % 32), 0x3, t), out);
        for (const auto& pr : out) {
            ++issued;
            pf.onPrefetchUsed(pr.block, true);
        }
        t += 20;
    }
    EXPECT_GT(issued, 1000u);
}

TEST(CpHw, SharesPythiaActionList)
{
    EXPECT_EQ(CpHwPrefetcher::actionList().size(), 16u);
    EXPECT_EQ(CpHwPrefetcher::actionList()[3], 0);
}

// ----------------------------------------------------------------- composite

TEST(Composite, MergesAndDeduplicatesChildren)
{
    std::vector<std::unique_ptr<PrefetcherApi>> kids;
    kids.push_back(std::make_unique<NextLinePrefetcher>(2));
    kids.push_back(std::make_unique<NextLinePrefetcher>(3));
    CompositePrefetcher pf("nl+nl", std::move(kids));
    std::vector<PrefetchRequest> out;
    pf.train(access(kBase), out);
    // Union of {+1,+2} and {+1,+2,+3} = {+1,+2,+3}.
    EXPECT_EQ(out.size(), 3u);
}

TEST(Composite, StorageIsSumOfChildren)
{
    std::vector<std::unique_ptr<PrefetcherApi>> kids;
    kids.push_back(std::make_unique<SppPrefetcher>());
    kids.push_back(std::make_unique<BingoPrefetcher>());
    const std::size_t expect =
        SppPrefetcher().storageBytes() + BingoPrefetcher().storageBytes();
    CompositePrefetcher pf("s+b", std::move(kids));
    EXPECT_EQ(pf.storageBytes(), expect);
}

// ----------------------------------------------------------------------- ppf

TEST(Ppf, RejectsAfterNegativeTraining)
{
    PpfConfig cfg;
    cfg.threshold = 0;
    PpfPrefetcher pf(cfg);
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    std::uint64_t early_rejects = 0, late_rejects = 0;
    for (int round = 0; round < 60; ++round) {
        // Strided pattern that SPP learns quickly.
        for (Addr page = 0; page < 4; ++page) {
            for (Addr o = 0; o < 64; o += 2) {
                out.clear();
                pf.train(access(kBase + (round * 4 + page) * 64 + o,
                                0x6, t),
                         out);
                // Everything is wasted: teach the filter to reject.
                for (const auto& pr : out)
                    pf.onPrefetchEvicted(pr.block, false);
                t += 10;
            }
        }
        if (round == 10)
            early_rejects = pf.rejected();
    }
    late_rejects = pf.rejected();
    EXPECT_GT(late_rejects, early_rejects);
}

// ------------------------------------------------------------------ registry

TEST(Registry, AllNamesConstruct)
{
    for (const auto& name : sim::prefetcherNames()) {
        auto pf = sim::makePrefetcher(name);
        ASSERT_NE(pf, nullptr) << name;
        EXPECT_EQ(pf->name(), name);
    }
}

TEST(Registry, NoneIsNull)
{
    EXPECT_EQ(sim::makePrefetcher("none"), nullptr);
}

TEST(Registry, UnknownThrows)
{
    EXPECT_THROW(sim::makePrefetcher("warp-drive"),
                 std::invalid_argument);
}

TEST(Registry, StorageBudgetsMatchTable7)
{
    // Paper Table 7 metadata budgets (bytes, approximate).
    EXPECT_NEAR(sim::makePrefetcher("spp")->storageBytes(), 6349, 64);
    EXPECT_NEAR(sim::makePrefetcher("bingo")->storageBytes(), 47104, 64);
    EXPECT_NEAR(sim::makePrefetcher("mlop")->storageBytes(), 8192, 64);
    EXPECT_NEAR(sim::makePrefetcher("dspatch")->storageBytes(), 3686,
                64);
    EXPECT_NEAR(sim::makePrefetcher("spp_ppf")->storageBytes(), 40243,
                64);
}

/** Property: no prefetcher ever emits a target outside the demand page
 *  (post-L1 prefetchers are page-local, paper §3.1). */
class PageLocality : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PageLocality, AllTargetsStayInPage)
{
    auto pf = sim::makePrefetcher(GetParam());
    ASSERT_NE(pf, nullptr);
    Rng rng(99);
    std::vector<PrefetchRequest> out;
    Cycle t = 0;
    Addr walker = kBase;
    for (int i = 0; i < 5000; ++i) {
        // Blend of strided and random accesses to provoke predictions.
        walker += (i % 3 == 0) ? rng.nextBounded(1u << 18) : 2;
        out.clear();
        pf->train(access(walker, 0x400 + (i % 4) * 0x40, t), out);
        for (const auto& pr : out)
            EXPECT_EQ(pageIdOfBlock(pr.block), pageIdOfBlock(walker))
                << GetParam() << " emitted a cross-page prefetch";
        t += 15;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, PageLocality,
    ::testing::Values("nextline", "stride", "streamer", "spp", "spp_ppf",
                      "bingo", "mlop", "dspatch", "ipcp", "power7",
                      "cp_hw", "st_s_b_d_m"),
    [](const auto& info) { return info.param; });

} // namespace
} // namespace pythia::pf
